"""Provenance of the CalibratedEnergyModel constants.

Fits the per-event energy constants of
:class:`repro.power.energy_model.CalibratedEnergyModel` by least
squares against the paper's published power anchors, using activity
vectors produced by the cycle-accurate simulator at the Fig. 6
operating point (653 Gb/s broadcast delivery) and at the low-load
point of Section 4.1 (3/255 injection with the identical-PRBS chip
artifact).

Run with ``python tools/calibrate_power.py``; it prints the fitted
constants and the anchor residuals.  The defaults already baked into
the library came from this script.
"""

import numpy as np
from scipy.optimize import least_squares

from repro import (
    Simulator,
    baseline_network,
    proposed_network,
    strawman_network,
)
from repro.noc.metrics import aggregate
from repro.traffic import BROADCAST_ONLY, BernoulliTraffic

BASE_DP = np.array([1.3, 2.45, 4.8, 2.1])  # in/out/link/ejection proportions
LEAK = 76.7
FIG6_RATE = 653 / 64 / 256  # offered rate for 653 Gb/s broadcast delivery
LOW_RATE = 3 / 255

NAMES = [
    "clock",
    "vc_state",
    "pointer",
    "buffer_write",
    "buffer_read",
    "arbitration",
    "allocator_state",
    "lookahead",
    "scale_fs",
    "scale_ls",
]


def activity_per_cycle(config, rate, identical=False):
    traffic = BernoulliTraffic(
        BROADCAST_ONLY, rate, seed=7, identical_generators=identical
    )
    sim = Simulator(config, traffic)
    sim.run(1000)
    start = aggregate(sim.network.router_stats).snapshot()
    sim.run(4000)
    delta = aggregate(sim.network.router_stats) - start
    return {k: v / 4000 for k, v in delta.as_dict().items()}


def powers(x, a, low_swing):
    e_clk, e_vc, e_ptr, e_w, e_r, e_arb, e_as, e_la, s_fs, s_ls = x
    clk = 16 * e_clk
    buf = (
        a["buffer_writes"] * e_w
        + a["buffer_reads"] * e_r
        + 16 * e_ptr
        + a["bypasses"] * 0.5 * e_w
    )
    logic = (
        (a["msa1_grants"] + a["msa2_grants"]) * e_arb
        + a["la_sent"] * e_la
        + 16 * e_vc
        + 16 * e_as
    )
    events = [
        a["xbar_input_traversals"],
        a["xbar_output_traversals"],
        a["link_traversals"],
        a["ejections"],
    ]
    dp = float(np.dot(events, BASE_DP)) * (s_ls if low_swing else s_fs)
    return clk, buf, logic, dp, clk + buf + logic + dp + LEAK


def main():
    acts = {
        "A": activity_per_cycle(baseline_network(), FIG6_RATE),
        "B": activity_per_cycle(baseline_network(), FIG6_RATE),
        "C": activity_per_cycle(strawman_network(), FIG6_RATE),
        "D": activity_per_cycle(proposed_network(), FIG6_RATE),
    }
    low = activity_per_cycle(proposed_network(), LOW_RATE, identical=True)

    def residuals(x):
        a = powers(x, acts["A"], False)
        b = powers(x, acts["B"], True)
        c = powers(x, acts["C"], True)
        d = powers(x, acts["D"], True)
        lw = powers(x, low, True)
        alloc_pr = (
            (low["msa1_grants"] + low["msa2_grants"]) * x[5] + 16 * x[6]
        ) / 16
        return [
            3 * (b[3] / a[3] - 0.517),  # Fig 6: -48.3% datapath
            3 * (c[2] / b[2] - 0.861),  # Fig 6: -13.9% router logic
            3 * (d[1] / c[1] - 0.678),  # Fig 6: -32.2% buffers
            4 * (d[4] / a[4] - 0.618),  # Fig 6: -38.2% total
            0.8 * (d[4] - 427.3) / 427.3,  # Table 2 chip total (soft)
            1.0 * ((lw[0] + lw[3]) / 16 - 5.6) / 5.6,  # power floor
            1.0 * (x[1] - 1.9) / 1.9,  # VC state mW/router
            1.0 * (lw[1] / 16 - 2.0) / 2.0,  # buffers mW/router
            1.0 * (alloc_pr - 0.7) / 0.7,  # allocators mW/router
            0.7 * (low["la_sent"] * x[7] / 16 - 0.2) / 0.2,  # lookaheads
            0.8 * ((lw[4] - LEAK) / 16 - 13.2) / 13.2,  # low-load total
        ]

    lo = np.array([2.0, 0.5, 0.1, 0.3, 0.2, 0.05, 0.1, 0.03, 0.2, 0.1])
    hi = np.array([8.0, 3.0, 1.5, 2.5, 2.0, 0.8, 1.2, 0.35, 3.0, 2.0])
    x0 = np.array([4.5, 1.9, 0.8, 0.8, 0.6, 0.2, 0.6, 0.15, 0.9, 0.5])
    fit = least_squares(residuals, x0, bounds=(lo, hi))

    print("fitted constants (pJ / scales):")
    for name, value in zip(NAMES, fit.x):
        print(f"  {name:16s} {value:.4f}")
    s_fs, s_ls = fit.x[8], fit.x[9]
    print("datapath event energies (in/out/link/ej, pJ):")
    print("  full-swing:", np.round(BASE_DP * s_fs, 3))
    print("  low-swing: ", np.round(BASE_DP * s_ls, 3))
    for key in "ABCD":
        p = powers(fit.x, acts[key], key != "A")
        print(
            f"{key}: clk={p[0]:.1f} buf={p[1]:.1f} logic={p[2]:.1f} "
            f"dp={p[3]:.1f} total={p[4]:.1f}"
        )


if __name__ == "__main__":
    main()
