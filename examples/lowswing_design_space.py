"""Design-space exploration of the low-swing datapath.

Sweeps the RSD voltage swing and link length, reporting energy per
bit, the maximum single-cycle ST+LT clock, and the sense-amplifier
reliability — the three-way trade-off of Sections 3.4/4.3 behind the
chip's choice of 300 mV and 1mm-class links.

Run:  python examples/lowswing_design_space.py
"""

from repro.circuits.rsd import TriStateRSD
from repro.circuits.sense_amp import SenseAmplifier
from repro.circuits.eye import repeated_vs_direct
from repro.harness.tables import format_table


def swing_sweep():
    amp = SenseAmplifier()
    rows = []
    for swing_mv in (100, 150, 200, 250, 300, 350):
        rsd = TriStateRSD(1.0).with_swing(swing_mv / 1000.0)
        rows.append(
            [
                swing_mv,
                rsd.energy_per_bit_fj(),
                f"{rsd.energy_advantage():.2f}x",
                rsd.max_clock_ghz(),
                amp.failure_probability(swing_mv),
                f"{amp.sigma_margin(swing_mv):.1f}",
            ]
        )
    print(
        format_table(
            ["swing mV", "fJ/bit", "vs full-swing", "fmax GHz",
             "P(link fail)", "sigma"],
            rows,
            title="Voltage-swing design space, 1mm link "
            "(chip point: 300mV = 3 sigma)",
        )
    )


def length_sweep():
    rows = []
    for length in (0.5, 1.0, 1.5, 2.0, 3.0):
        rsd = TriStateRSD(length)
        rows.append(
            [
                length,
                rsd.energy_per_bit_fj(),
                rsd.max_clock_ghz(),
                "yes" if rsd.max_clock_ghz() >= 1.0 else "no",
            ]
        )
    print()
    print(
        format_table(
            ["link mm", "fJ/bit", "fmax GHz", "1-cycle @1GHz?"],
            rows,
            title="Link-length design space (paper: 5.4 GHz @1mm, "
            "2.6 GHz @2mm)",
        )
    )


def repeater_tradeoff():
    out = repeated_vs_direct(runs=1000)
    print()
    print(
        format_table(
            ["2mm option", "mean eye mV", "worst eye mV", "cycles", "fJ/bit"],
            [
                ["1mm-repeated", out["repeated"]["mean_eye_mv"],
                 out["repeated"]["worst_eye_mv"], out["repeated"]["cycles"],
                 out["repeated"]["energy_fj"]],
                ["direct", out["direct"]["mean_eye_mv"],
                 out["direct"]["worst_eye_mv"], out["direct"]["cycles"],
                 out["direct"]["energy_fj"]],
            ],
            title=(
                "Repeated vs direct 2mm transmission "
                f"(repeated costs +{100 * out['energy_overhead']:.0f}% energy "
                "and a cycle, buys margin)"
            ),
        )
    )


def main():
    swing_sweep()
    length_sweep()
    repeater_tradeoff()


if __name__ == "__main__":
    main()
