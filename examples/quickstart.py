"""Quickstart: simulate the fabricated 4x4 NoC and its baseline.

Builds the proposed network (router-level multicast + virtual
bypassing + low-swing datapath) and the measured baseline, runs the
paper's mixed coherence traffic at a moderate load, and prints
latency, throughput, bypass rate and a power breakdown.

Run:  python examples/quickstart.py

The same sweeps are available from the command line via the experiment
engine (parallel backends + persistent result cache), e.g.:

    python -m repro sweep --config proposed --mix mixed --rates 0.08
    python -m repro figure fig5 --executor process
    python -m repro cache stats

See README.md for the full CLI reference.
"""

from repro import Simulator, baseline_network, proposed_network
from repro.noc.metrics import aggregate
from repro.power import PowerMeter
from repro.traffic import BernoulliTraffic, MIXED_TRAFFIC


def simulate(config, low_swing, name):
    traffic = BernoulliTraffic(MIXED_TRAFFIC, injection_rate=0.08, seed=42)
    sim = Simulator(config, traffic, name=name)
    stats = sim.run_experiment(warmup=1_000, measure=5_000, drain=5_000)
    activity = aggregate(sim.network.router_stats)
    power = PowerMeter(low_swing=low_swing).evaluate(activity, sim.cycle)
    return stats, power


def main():
    print("Mixed coherence traffic (50% bcast req / 25% uni req / 25% resp)")
    print("at R = 0.08 flits/node/cycle, 1 GHz, 64b flits\n")
    results = {}
    for name, config, low_swing in [
        ("proposed", proposed_network(), True),
        ("baseline", baseline_network(), False),
    ]:
        stats, power = simulate(config, low_swing, name)
        results[name] = (stats, power)
        print(f"== {name} ==")
        print(f"  avg packet latency : {stats.avg_latency:8.2f} cycles")
        for kind, latency in sorted(stats.avg_latency_by_kind.items()):
            print(f"    {kind:17s}: {latency:8.2f} cycles")
        print(f"  delivered          : {stats.throughput_gbps:8.1f} Gb/s")
        print(f"  bypass rate        : {100 * stats.bypass_fraction:8.1f} %")
        print(f"  network power      : {power.total_mw:8.1f} mW "
              f"(datapath {power.datapath_mw:.1f}, "
              f"buffers {power.buffers_mw:.1f}, "
              f"logic {power.logic_mw:.1f}, "
              f"clock {power.clock_mw:.1f}, "
              f"leakage {power.leakage_mw:.1f})")
        print()

    prop, base = results["proposed"], results["baseline"]
    print(f"latency reduction : "
          f"{100 * (1 - prop[0].avg_latency / base[0].avg_latency):.1f}% "
          f"(paper: 48.7% on mixed traffic)")
    print(f"power reduction   : "
          f"{100 * prop[1].reduction_vs(base[1]):.1f}% "
          f"(paper: 38.2% at 653 Gb/s broadcast)")


if __name__ == "__main__":
    main()
