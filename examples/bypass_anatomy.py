"""Anatomy of virtual bypassing: what the lookaheads actually buy.

Follows single messages through the network at zero load to show the
cycle-exact pipeline (1 cycle/hop bypassed vs 3 cycles/hop buffered),
then loads the network up and tracks how the bypass success rate and
the buffer activity degrade — including the chip's identical-PRBS
artifact that capped bypassing on silicon.

Run:  python examples/bypass_anatomy.py
"""

from repro import Simulator, proposed_network, strawman_network
from repro.harness.tables import format_table
from repro.noc.flit import MessageClass
from repro.noc.metrics import aggregate
from repro.noc.routing import xy_distance
from repro.traffic import (
    BernoulliTraffic,
    MIXED_TRAFFIC,
    MessageSpec,
    SyntheticBurst,
)


def single_hop_trace():
    rows = []
    for name, factory in (("bypassed", proposed_network),
                          ("buffered", strawman_network)):
        for src, dst in ((0, 1), (0, 5), (0, 15)):
            spec = MessageSpec(frozenset([dst]), MessageClass.REQUEST, 1)
            sim = Simulator(factory(), SyntheticBurst({(2, src): [spec]}))
            sim.run(60)
            msg = sim.network.messages[0]
            hops = xy_distance(src, dst, 4)
            rows.append([name, f"{src}->{dst}", hops, msg.latency,
                         f"{msg.latency / hops:.2f}" if hops else "-"])
    print(
        format_table(
            ["pipeline", "route", "hops", "latency cyc", "cyc/hop"],
            rows,
            title="Zero-load pipeline anatomy (bypassed: H+2 cycles; "
            "buffered: 3 cycles/hop + NIC)",
        )
    )


def bypass_under_load():
    rows = []
    for rate in (0.02, 0.06, 0.10, 0.14, 0.18):
        for identical in (False, True):
            traffic = BernoulliTraffic(
                MIXED_TRAFFIC, rate, seed=11, identical_generators=identical
            )
            sim = Simulator(proposed_network(), traffic)
            stats = sim.run_experiment(warmup=500, measure=2_500, drain=2_500)
            activity = aggregate(sim.network.router_stats)
            rows.append(
                [
                    rate,
                    "chip PRBS" if identical else "decorrelated",
                    f"{100 * stats.bypass_fraction:.1f}%",
                    stats.avg_latency,
                    activity.buffer_writes,
                ]
            )
    print()
    print(
        format_table(
            ["R", "NIC generators", "bypass rate", "avg latency",
             "buffer writes"],
            rows,
            title="Bypass success under load (the identical-PRBS chip "
            "artifact suppresses bypassing — Section 4.1)",
        )
    )


def main():
    single_hop_trace()
    bypass_under_load()


if __name__ == "__main__":
    main()
