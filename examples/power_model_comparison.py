"""Compare power models on the same workload (the Section 4.4 study).

Runs the proposed and baseline networks at the Fig. 6 operating point
and evaluates three estimators on identical activity traces: the
calibrated silicon-proxy model, a mini ORION 2.0 and a post-layout
style estimator.  Shows why ORION is fine for *relative* comparisons
but dangerous for absolute power budgets.

Run:  python examples/power_model_comparison.py
"""

from repro import Simulator, baseline_network, proposed_network
from repro.harness.experiments import FIG6_RATE
from repro.harness.tables import format_table
from repro.noc.metrics import aggregate
from repro.power import OrionPowerModel, PostLayoutPowerModel, PowerMeter
from repro.traffic import BROADCAST_ONLY, BernoulliTraffic


def activity_of(config, cycles=5_000):
    sim = Simulator(config, BernoulliTraffic(BROADCAST_ONLY, FIG6_RATE, seed=7))
    sim.run(1_000)
    start = aggregate(sim.network.router_stats).snapshot()
    sim.run(cycles)
    return aggregate(sim.network.router_stats) - start, cycles


def main():
    base_cfg, prop_cfg = baseline_network(), proposed_network()
    act_base, cycles = activity_of(base_cfg)
    act_prop, _ = activity_of(prop_cfg)

    models = {
        "measured (calibrated)": (
            PowerMeter(low_swing=False),
            PowerMeter(low_swing=True),
        ),
        "ORION 2.0 style": (
            OrionPowerModel(base_cfg),
            OrionPowerModel(prop_cfg),
        ),
        "post-layout style": (
            PostLayoutPowerModel(low_swing=False),
            PostLayoutPowerModel(low_swing=True),
        ),
    }
    measured_base = models["measured (calibrated)"][0].evaluate(act_base, cycles)
    measured_prop = models["measured (calibrated)"][1].evaluate(act_prop, cycles)

    rows = []
    for name, (base_model, prop_model) in models.items():
        base = base_model.evaluate(act_base, cycles)
        prop = prop_model.evaluate(act_prop, cycles)
        rows.append(
            [
                name,
                base.total_mw,
                prop.total_mw,
                f"{base.total_mw / measured_base.total_mw:.2f}x",
                f"{prop.total_mw / measured_prop.total_mw:.2f}x",
                f"{100 * (1 - prop.total_mw / base.total_mw):.0f}%",
            ]
        )
    print(
        format_table(
            ["model", "baseline mW", "proposed mW", "abs err (base)",
             "abs err (prop)", "predicted saving"],
            rows,
            title="Power estimators at ~653 Gb/s broadcast "
            "(paper: ORION 4.8-5.3x / 32%, post-layout 6-13% / 34%, "
            "measured 38%)",
        )
    )
    print(
        "\nLesson (Section 4.4): use architectural models for design-space\n"
        "ranking, never for absolute power budgets; post-layout accuracy\n"
        "costs days of simulation per data point."
    )


if __name__ == "__main__":
    main()
