"""Latency-throughput study of a broadcast coherence protocol.

The paper's motivation: cache-coherence protocols turn increasingly
broadcast-heavy as core counts grow, and a NoC without router-level
multicast collapses under them.  This example sweeps injection rate
for three broadcast shares (0%, 50%, 100%) on both networks and
reports the saturation point by the paper's 3x-zero-load rule.

Run:  python examples/coherence_saturation_study.py
"""

from repro import baseline_network, proposed_network
from repro.analysis.limits import MeshLimits
from repro.analysis.saturation import find_saturation, saturation_throughput
from repro.harness.sweep import default_rates, run_sweep
from repro.harness.tables import format_table
from repro.traffic.mix import BROADCAST_ONLY, MIXED_TRAFFIC, UNIFORM_UNICAST

FAST = dict(warmup=800, measure=3_000, drain=3_000)


def saturation_row(mix, label):
    rates = default_rates(mix, 16, points=6)
    rows = []
    for name, factory in (("proposed", proposed_network),
                          ("baseline", baseline_network)):
        sweep = run_sweep(factory(), mix, rates, name=name, **FAST)
        rows.append(
            {
                "mix": label,
                "design": name,
                "zero_load": sweep[0].avg_latency,
                "sat_rate": find_saturation(sweep),
                "sat_gbps": saturation_throughput(sweep),
            }
        )
    return rows


def main():
    lim = MeshLimits(4)
    mixes = [
        (UNIFORM_UNICAST, "unicast-only (0% bcast)"),
        (MIXED_TRAFFIC, "mixed (50% bcast)"),
        (BROADCAST_ONLY, "broadcast-only"),
    ]
    table = []
    for mix, label in mixes:
        rows = saturation_row(mix, label)
        prop, base = rows
        gain = prop["sat_gbps"] / base["sat_gbps"]
        for r in rows:
            table.append(
                [r["mix"], r["design"], r["zero_load"],
                 r["sat_rate"] if r["sat_rate"] else "-", r["sat_gbps"],
                 f"{100 * r['sat_gbps'] / lim.mix_throughput_limit_gbps(mix):.0f}%"]
            )
        table.append([label, "gain", "-", "-", f"{gain:.2f}x", "-"])
    print(
        format_table(
            ["traffic", "design", "0-load lat", "sat rate", "sat Gb/s",
             "% of limit"],
            table,
            title="Saturation by broadcast share (paper: 2.1x mixed, "
            "2.2x broadcast-only)",
        )
    )
    print(
        "\nThe proposed network's advantage grows with broadcast share — "
        "the paper's Appendix D conclusion."
    )


if __name__ == "__main__":
    main()
