"""Wire, repeater and RSD circuit models (Sections 3.4 and 4.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.circuits.repeater import FullSwingRepeatedLink
from repro.circuits.rsd import TriStateRSD
from repro.circuits.technology import TECH_45NM_SOI
from repro.circuits.wire import Wire


class TestWire:
    def test_rc_scales_linearly(self):
        w1, w2 = Wire(1.0), Wire(2.0)
        assert w2.resistance == pytest.approx(2 * w1.resistance)
        assert w2.capacitance == pytest.approx(2 * w1.capacitance)

    def test_differential_doubles_cap(self):
        assert Wire(1.0, differential=True).capacitance == pytest.approx(
            2 * Wire(1.0).capacitance
        )

    def test_elmore_superlinear_in_length(self):
        d1 = Wire(1.0).elmore_delay_ps(500)
        d2 = Wire(2.0).elmore_delay_ps(500)
        assert d2 > 2 * d1  # the RC^2 term

    def test_full_swing_energy(self):
        w = Wire(1.0)
        e = w.full_swing_energy_fj(alpha=1.0)
        assert e == pytest.approx(w.capacitance * 1.1**2)

    def test_low_swing_energy_linear_in_swing(self):
        w = Wire(1.0)
        assert w.low_swing_energy_fj(0.3) == pytest.approx(
            1.5 * w.low_swing_energy_fj(0.2)
        )

    def test_low_swing_beats_full_swing(self):
        w = Wire(1.0)
        assert w.low_swing_energy_fj(0.3) < w.full_swing_energy_fj()

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            Wire(0)
        with pytest.raises(ValueError):
            Wire(1.0).low_swing_energy_fj(0)

    @given(st.floats(0.1, 5.0))
    def test_delay_positive_and_monotone_in_driver(self, length):
        w = Wire(length)
        assert w.elmore_delay_ps(200) < w.elmore_delay_ps(2000)


class TestRepeatedLink:
    def test_repeater_count_grows_with_length(self):
        assert (
            FullSwingRepeatedLink(2.0).num_repeaters
            > FullSwingRepeatedLink(0.5).num_repeaters
        )

    def test_delay_roughly_linear_with_repeaters(self):
        d1 = FullSwingRepeatedLink(1.0).delay_ps()
        d4 = FullSwingRepeatedLink(4.0).delay_ps()
        assert 3.0 < d4 / d1 < 5.5

    def test_energy_includes_repeaters(self):
        link = FullSwingRepeatedLink(1.0)
        wire_only = Wire(1.0).full_swing_energy_fj()
        assert link.energy_per_bit_fj() > wire_only

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            FullSwingRepeatedLink(0)


class TestTriStateRSD:
    """Measured anchors: 5.4 GHz at 1mm, 2.6 GHz at 2mm, 3.2x energy."""

    def test_max_clock_1mm(self):
        assert TriStateRSD(1.0).max_clock_ghz() == pytest.approx(5.4, rel=0.05)

    def test_max_clock_2mm(self):
        assert TriStateRSD(2.0).max_clock_ghz() == pytest.approx(2.6, rel=0.05)

    def test_energy_advantage_1mm(self):
        assert TriStateRSD(1.0).energy_advantage() == pytest.approx(3.2, rel=0.05)

    def test_supports_chip_clock(self):
        """Single-cycle ST+LT at the chip's 1 GHz has ample margin."""
        assert TriStateRSD(1.0).max_clock_ghz() > 1.0

    def test_energy_linear_in_swing(self):
        r2 = TriStateRSD(1.0, swing_v=0.2)
        r3 = TriStateRSD(1.0, swing_v=0.3)
        wire2 = r2.energy_per_bit_fj() - r2.tech.sense_amp_energy_fj - 23.0
        wire3 = r3.energy_per_bit_fj() - r3.tech.sense_amp_energy_fj - 23.0
        assert wire3 / wire2 == pytest.approx(1.5)

    def test_smaller_swing_saves_energy(self):
        assert (
            TriStateRSD(1.0, swing_v=0.15).energy_per_bit_fj()
            < TriStateRSD(1.0, swing_v=0.30).energy_per_bit_fj()
        )

    def test_smaller_swing_is_faster(self):
        assert (
            TriStateRSD(1.0, swing_v=0.15).max_clock_ghz()
            > TriStateRSD(1.0, swing_v=0.30).max_clock_ghz()
        )

    def test_swing_must_fit_under_lvdd(self):
        with pytest.raises(ValueError):
            TriStateRSD(1.0, swing_v=0.5)  # above LVDD = 0.4
        with pytest.raises(ValueError):
            TriStateRSD(1.0, swing_v=0.0)

    def test_with_swing_preserves_geometry(self):
        base = TriStateRSD(1.0)
        varied = base.with_swing(0.2)
        assert varied.length_mm == base.length_mm
        assert varied.drive_res == base.drive_res
        assert varied.swing_v == 0.2

    @given(st.floats(0.3, 3.0))
    def test_longer_is_slower(self, length):
        assert (
            TriStateRSD(length + 0.5).max_clock_ghz()
            < TriStateRSD(length).max_clock_ghz()
        )

    def test_driver_resistance_dominates_short_wires(self):
        """fmax falls ~2x (not 4x) from 1mm to 2mm: Rdrv dominates."""
        ratio = TriStateRSD(1.0).max_clock_ghz() / TriStateRSD(2.0).max_clock_ghz()
        assert 1.8 < ratio < 2.5

    def test_technology_constants(self):
        assert TECH_45NM_SOI.vdd == 1.1
        assert TECH_45NM_SOI.lvdd == 0.4
        assert TECH_45NM_SOI.nominal_swing_mv == 300.0
        r, c = TECH_45NM_SOI.wire_rc(1.0)
        assert r == pytest.approx(1000.0)
        assert c == pytest.approx(200.0)
