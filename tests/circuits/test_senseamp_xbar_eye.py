"""Sense-amp reliability, crossbar multicast power, eye margins."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.crossbar import FullSwingCrossbar, LowSwingCrossbar
from repro.circuits.eye import LinkConfig, eye_margin, repeated_vs_direct
from repro.circuits.sense_amp import SenseAmplifier, q_function


class TestSenseAmplifier:
    def test_chip_design_point_is_three_sigma(self):
        """The paper chose 300mV for >= 3-sigma reliability."""
        assert SenseAmplifier().sigma_margin(300) == pytest.approx(3.0)

    def test_three_sigma_failure_rate(self):
        p = SenseAmplifier().failure_probability(300)
        assert p == pytest.approx(2 * q_function(3.0), rel=1e-6)
        assert 2e-3 < p < 3e-3

    def test_failure_monotone_in_swing(self):
        amp = SenseAmplifier()
        probs = [amp.failure_probability(s) for s in (100, 200, 300, 400)]
        assert probs == sorted(probs, reverse=True)

    def test_monte_carlo_matches_analytic(self):
        amp = SenseAmplifier()
        mc = amp.monte_carlo_failures(150, runs=200_000, seed=1)
        analytic = 2 * q_function(amp.sigma_margin(150))
        assert mc == pytest.approx(analytic, rel=0.1)

    def test_monte_carlo_1000_runs_like_paper(self):
        # at 300mV, 1000 runs typically see a handful of failures at most
        assert SenseAmplifier().monte_carlo_failures(300, runs=1000, seed=0) < 0.02

    def test_monte_carlo_deterministic_by_seed(self):
        amp = SenseAmplifier()
        assert amp.monte_carlo_failures(200, seed=5) == amp.monte_carlo_failures(
            200, seed=5
        )

    def test_min_swing_for_sigma(self):
        amp = SenseAmplifier()
        assert amp.min_swing_for_sigma(3) == pytest.approx(300.0)
        with pytest.raises(ValueError):
            amp.min_swing_for_sigma(0)

    def test_invalid_swing(self):
        with pytest.raises(ValueError):
            SenseAmplifier().failure_probability(0)

    def test_custom_sigma(self):
        assert SenseAmplifier(offset_sigma_mv=25).sigma_margin(300) == 6.0


class TestCrossbarMulticast:
    """Fig. 11: power grows linearly with multicast fanout."""

    def test_power_linear_in_fanout(self):
        xbar = LowSwingCrossbar()
        powers = [xbar.dynamic_power_uw(5.0, fanout=m) for m in range(1, 6)]
        increments = [b - a for a, b in zip(powers, powers[1:])]
        assert all(
            inc == pytest.approx(increments[0], rel=1e-9) for inc in increments
        )

    def test_shared_input_wire_constant(self):
        """The intercept is the horizontal (input) wire charge."""
        xbar = LowSwingCrossbar()
        e1 = xbar.traversal_energy_fj(fanout=1)
        e2 = xbar.traversal_energy_fj(fanout=2)
        assert e2 - e1 == pytest.approx(xbar.rsd.energy_per_bit_fj())
        assert e1 - (e2 - e1) == pytest.approx(xbar.input_energy_fj())

    def test_broadcast_cheaper_than_five_unicasts(self):
        xbar = LowSwingCrossbar()
        assert xbar.traversal_energy_fj(fanout=5) < 5 * xbar.traversal_energy_fj(
            fanout=1
        )

    def test_flit_energy_scales_with_bits(self):
        xbar = LowSwingCrossbar()
        assert xbar.flit_energy_fj(1) == pytest.approx(
            64 * xbar.traversal_energy_fj(1)
        )

    def test_fanout_bounds(self):
        with pytest.raises(ValueError):
            LowSwingCrossbar().traversal_energy_fj(fanout=0)
        with pytest.raises(ValueError):
            LowSwingCrossbar().traversal_energy_fj(fanout=6)

    def test_low_swing_beats_full_swing_crossbar(self):
        ls, fs = LowSwingCrossbar(), FullSwingCrossbar()
        for fanout in range(1, 6):
            assert ls.traversal_energy_fj(fanout) < fs.traversal_energy_fj(fanout)

    def test_full_swing_replication_linear(self):
        fs = FullSwingCrossbar()
        assert fs.traversal_energy_fj(4) == pytest.approx(
            4 * fs.traversal_energy_fj(1)
        )

    def test_crossbar_supports_multi_ghz(self):
        assert LowSwingCrossbar().max_clock_ghz() > 4.0

    def test_port_count_validation(self):
        with pytest.raises(ValueError):
            LowSwingCrossbar(ports=1)


class TestEyeMargins:
    """Fig. 12: repeated vs directly-transmitted 2mm low-swing links."""

    def test_repeated_has_larger_eye(self):
        out = repeated_vs_direct(runs=300, seed=2)
        assert out["repeated"]["mean_eye_mv"] > out["direct"]["mean_eye_mv"]
        assert out["repeated"]["worst_eye_mv"] >= out["direct"]["worst_eye_mv"]

    def test_repeated_costs_a_cycle(self):
        out = repeated_vs_direct(runs=100)
        assert out["repeated"]["cycles"] == 2
        assert out["direct"]["cycles"] == 1

    def test_repeated_costs_more_energy(self):
        """Paper: ~28% more energy for the repeated configuration."""
        out = repeated_vs_direct(runs=100)
        assert 0.15 < out["energy_overhead"] < 0.55

    def test_eye_closes_at_high_rate(self):
        cfg = LinkConfig("direct", 2.0, segments=1)
        fast = eye_margin(cfg, bit_time_ps=100)
        slow = eye_margin(cfg, bit_time_ps=1500)
        assert fast < slow
        assert slow <= cfg.swing_v

    def test_eye_degrades_with_wire_resistance(self):
        cfg = LinkConfig("direct", 2.0, segments=1)
        assert eye_margin(cfg, 400, wire_res_scale=1.3) <= eye_margin(
            cfg, 400, wire_res_scale=0.8
        )

    def test_eye_clamped_nonnegative(self):
        cfg = LinkConfig("direct", 2.0, segments=1)
        assert eye_margin(cfg, bit_time_ps=1) == 0.0

    @given(st.floats(150, 2000))
    @settings(max_examples=30)
    def test_repeated_never_worse(self, bit_time):
        rep = LinkConfig("r", 2.0, segments=2)
        direct = LinkConfig("d", 2.0, segments=1)
        assert eye_margin(rep, bit_time) >= eye_margin(direct, bit_time)

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            LinkConfig("bad", 2.0, segments=0)

    def test_deterministic_by_seed(self):
        a = repeated_vs_direct(runs=200, seed=3)
        b = repeated_vs_direct(runs=200, seed=3)
        assert a == b
