"""Public API surface: the imports the README promises."""

import repro


def test_version():
    assert repro.__version__ == "1.1.0"


def test_top_level_exports():
    for name in repro.__all__:
        assert hasattr(repro, name)


def test_presets_distinct():
    base = repro.baseline_network()
    straw = repro.strawman_network()
    prop = repro.proposed_network()
    text = repro.textbook_network()
    assert not base.multicast and not base.bypass and not base.separate_st_lt
    assert straw.multicast and not straw.bypass
    assert prop.multicast and prop.bypass
    assert text.separate_st_lt and not text.bypass
    # all share the fabricated buffer provisioning
    assert base.vcs == straw.vcs == prop.vcs == text.vcs


def test_preset_overrides():
    cfg = repro.proposed_network(k=8, flit_bits=128)
    assert cfg.k == 8 and cfg.flit_bits == 128 and cfg.bypass


def test_subpackage_imports():
    from repro.analysis import MeshLimits
    from repro.circuits import TriStateRSD
    from repro.harness import experiments, format_table, run_sweep
    from repro.noc import MeshNetwork, NocConfig, Simulator
    from repro.power import OrionPowerModel, PowerMeter
    from repro.physical import AreaModel, CriticalPathAnalysis
    from repro.traffic import BernoulliTraffic, MIXED_TRAFFIC

    assert MeshLimits(4).k == 4
    assert NocConfig().num_nodes == 16


def test_quickstart_snippet_runs():
    """The README quickstart, verbatim semantics, tiny cycle counts."""
    from repro import proposed_network, Simulator
    from repro.traffic import BernoulliTraffic, MIXED_TRAFFIC
    from repro.power import PowerMeter

    sim = Simulator(
        proposed_network(),
        BernoulliTraffic(MIXED_TRAFFIC, injection_rate=0.08, seed=42),
    )
    stats = sim.run_experiment(warmup=100, measure=400, drain=500)
    assert stats.throughput_gbps > 0
    power = PowerMeter(low_swing=True).evaluate(sim.activity(), sim.cycle)
    assert power.total_mw > power.leakage_mw
