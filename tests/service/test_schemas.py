"""The sweep service's wire shapes — no Flask required."""

import json

import pytest

from repro.core.presets import proposed_network
from repro.engine.jobspec import JobSpec
from repro.service import schemas
from repro.service.workers import CACHED, FAILED, JobRecord
from repro.traffic.mix import MIXED_TRAFFIC


def make_spec(rate=0.05, **overrides):
    kwargs = dict(
        config=proposed_network(),
        mix=MIXED_TRAFFIC,
        rate=rate,
        name="proposed",
        warmup=100,
        measure=300,
        drain=400,
    )
    kwargs.update(overrides)
    return JobSpec(**kwargs)


class TestParseSweepRequest:
    def test_round_trips_jobspec_dicts(self):
        specs = [make_spec(0.02), make_spec(0.05)]
        parsed = schemas.parse_sweep_request(
            {"jobs": [s.to_dict() for s in specs]}
        )
        assert parsed == specs
        assert [p.cache_key for p in parsed] == [s.cache_key for s in specs]

    def test_accepts_payload_shape_with_backend_key(self):
        # to_payload() adds the execution-only backend key; the parse
        # accepts it and the content address is unchanged by it
        spec = make_spec(backend="array")
        (parsed,) = schemas.parse_sweep_request(
            {"jobs": [spec.to_payload()]}
        )
        assert parsed.backend == "array"
        assert parsed.cache_key == make_spec().cache_key

    def test_rejects_non_object_bodies(self):
        for body in (None, [], "jobs", 7):
            with pytest.raises(schemas.SchemaError, match="JSON object"):
                schemas.parse_sweep_request(body)

    def test_rejects_unknown_request_fields(self):
        with pytest.raises(schemas.SchemaError, match="bogus"):
            schemas.parse_sweep_request({"jobs": [], "bogus": 1})

    def test_rejects_missing_or_empty_jobs(self):
        for body in ({}, {"jobs": []}, {"jobs": "all"}):
            with pytest.raises(schemas.SchemaError, match="non-empty"):
                schemas.parse_sweep_request(body)

    def test_rejects_oversized_batches(self):
        jobs = [{}] * (schemas.MAX_JOBS + 1)
        with pytest.raises(schemas.SchemaError, match="limited to"):
            schemas.parse_sweep_request({"jobs": jobs})

    def test_errors_carry_the_offending_index(self):
        good = make_spec().to_dict()
        with pytest.raises(schemas.SchemaError, match=r"jobs\[1\]"):
            schemas.parse_sweep_request({"jobs": [good, "nope"]})
        with pytest.raises(
            schemas.SchemaError, match=r"jobs\[0\].*missing.*'config'"
        ):
            schemas.parse_sweep_request({"jobs": [{}]})

    def test_domain_validation_failures_become_schema_errors(self):
        bad = make_spec().to_dict()
        bad["rate"] = 2.0  # out of [0, 1]
        with pytest.raises(schemas.SchemaError, match=r"jobs\[0\]"):
            schemas.parse_sweep_request({"jobs": [bad]})


class TestViews:
    def test_job_view_links_the_result(self):
        record = JobRecord(make_spec(0.05), CACHED)
        view = schemas.job_view(record)
        assert view == {
            "key": record.key,
            "status": "cached",
            "name": "proposed",
            "rate": 0.05,
            "result_url": f"/results/{record.key}",
        }

    def test_job_view_carries_the_error_when_failed(self):
        record = JobRecord(make_spec(), FAILED)
        record.error = "kaboom"
        assert schemas.job_view(record)["error"] == "kaboom"

    def test_summary_counts_and_hit_rate(self):
        records = [
            JobRecord(make_spec(0.02), CACHED),
            JobRecord(make_spec(0.05), CACHED),
            JobRecord(make_spec(0.08), "done"),
            JobRecord(make_spec(0.11), "queued"),
        ]
        summary = schemas.summary_view(records, queue_depth=1)
        assert summary["total"] == 4
        assert summary["cached"] == 2
        assert summary["done"] == 1
        assert summary["queued"] == 1
        assert summary["hit_rate"] == pytest.approx(0.5)
        assert summary["complete"] is False
        assert summary["queue_depth"] == 1

    def test_summary_of_no_records_is_degenerate_but_defined(self):
        summary = schemas.summary_view([], queue_depth=0)
        assert summary["total"] == 0
        assert summary["hit_rate"] == 0.0
        assert summary["complete"] is True

    def test_sweep_view_is_json_serializable(self):
        records = [JobRecord(make_spec(), CACHED)]
        body = schemas.sweep_view("sweep-1", records, queue_depth=0)
        parsed = json.loads(json.dumps(body))
        assert parsed["id"] == "sweep-1"
        assert parsed["jobs"][0]["status"] == "cached"


class TestKeyRe:
    def test_matches_only_full_content_addresses(self):
        key = make_spec().cache_key
        assert schemas.KEY_RE.fullmatch(key)
        for bad in ("deadbeef", key[:-1], key + "0", key.upper(),
                    "../" + key[3:], key[:-1] + "/"):
            assert not schemas.KEY_RE.fullmatch(bad)
