"""End-to-end exercise of the sweep service through Flask's test client.

The headline assertion is DESIGN.md §10's identity contract: a result
computed *by the service* is byte-for-byte the entry an equivalent CLI
run writes, lives under the same content address, and each side's cache
hits cover the other's work.
"""

import time
from types import SimpleNamespace

import pytest

flask = pytest.importorskip("flask")

from repro.core.presets import proposed_network
from repro.engine import cli
from repro.engine.cache import ResultCache
from repro.engine.jobspec import JobSpec
from repro.service.app import create_app
from repro.traffic.mix import MIXED_TRAFFIC

#: tiny but non-degenerate measurement window, matching the CLI flags
#: used in test_byte_identity_with_a_cli_run below
WINDOW = dict(warmup=100, measure=300, drain=400)

RATES = (0.02, 0.05)


def make_spec(rate, **overrides):
    kwargs = dict(
        config=proposed_network(),
        mix=MIXED_TRAFFIC,
        rate=rate,
        name="proposed",
        **WINDOW,
    )
    kwargs.update(overrides)
    return JobSpec(**kwargs)


def sweep_body(rates=RATES, **overrides):
    return {"jobs": [make_spec(r, **overrides).to_dict() for r in rates]}


@pytest.fixture
def service(tmp_path):
    """``(client, cache_root)`` over a started app; workers stopped after."""
    cache_root = tmp_path / "cache"
    app = create_app(cache_root=cache_root, workers=2)
    try:
        yield app.test_client(), cache_root
    finally:
        app.extensions["repro"].shutdown()


def poll_complete(client, sweep_id, deadline=60.0):
    """The sweep body once every job reached a terminal status."""
    give_up = time.monotonic() + deadline
    while True:
        response = client.get(f"/sweeps/{sweep_id}")
        assert response.status_code == 200
        body = response.get_json()
        if body["summary"]["complete"]:
            return body
        assert time.monotonic() < give_up, f"sweep never completed: {body}"
        time.sleep(0.05)


class TestSweepLifecycle:
    def test_miss_then_run_then_serve(self, service):
        client, cache_root = service
        posted = client.post("/sweeps", json=sweep_body())
        assert posted.status_code == 201
        body = posted.get_json()
        assert posted.headers["Location"] == f"/sweeps/{body['id']}"
        assert body["summary"]["cached"] == 0
        assert body["summary"]["hit_rate"] == 0.0

        done = poll_complete(client, body["id"])
        assert done["summary"]["done"] == len(RATES)
        assert done["summary"]["failed"] == 0
        for job in done["jobs"]:
            served = client.get(job["result_url"])
            assert served.status_code == 200
            entry = served.get_json()
            assert entry["key"] == job["key"]
            assert entry["stats"]["injection_rate"] == job["rate"]

    def test_repost_is_all_cache_hits_with_zero_executions(self, service):
        client, _ = service
        first = client.post("/sweeps", json=sweep_body()).get_json()
        poll_complete(client, first["id"])
        executed = client.get("/healthz").get_json()["executed"]
        assert executed == len(RATES)

        again = client.post("/sweeps", json=sweep_body()).get_json()
        assert again["id"] != first["id"]
        summary = again["summary"]
        assert summary["cached"] == summary["total"] == len(RATES)
        assert summary["hit_rate"] == 1.0
        assert summary["complete"] is True
        # nothing was enqueued, so nothing ran
        assert client.get("/healthz").get_json()["executed"] == executed

    def test_byte_identity_with_a_cli_run(self, service, tmp_path, capsys):
        """Service-computed bytes == CLI-computed bytes, same address."""
        client, cache_root = service
        sweep = client.post("/sweeps", json=sweep_body()).get_json()
        poll_complete(client, sweep["id"])

        cli_root = tmp_path / "cli-cache"
        rc = cli.main([
            "sweep", "--config", "proposed", "--mix", "mixed",
            "--rates", ",".join(str(r) for r in RATES),
            "--warmup", str(WINDOW["warmup"]),
            "--measure", str(WINDOW["measure"]),
            "--drain", str(WINDOW["drain"]),
            "--cache-dir", str(cli_root),
        ])
        assert rc == 0
        capsys.readouterr()

        for job in sweep["jobs"]:
            name = f"{job['key']}.json"
            service_bytes = (cache_root / name).read_bytes()
            assert (cli_root / name).read_bytes() == service_bytes
            assert client.get(job["result_url"]).data == service_bytes

    def test_cli_warmed_cache_answers_the_service(self, service, capsys):
        """The other direction: the service front-door hits CLI entries."""
        client, cache_root = service
        rc = cli.main([
            "sweep", "--config", "proposed", "--mix", "mixed",
            "--rates", "0.02", "--warmup", "100", "--measure", "300",
            "--drain", "400", "--cache-dir", str(cache_root),
        ])
        assert rc == 0
        capsys.readouterr()
        body = client.post(
            "/sweeps", json=sweep_body(rates=(0.02,))
        ).get_json()
        assert body["summary"]["cached"] == 1
        assert client.get("/healthz").get_json()["executed"] == 0

    def test_process_executor_smoke(self, tmp_path):
        app = create_app(
            cache_root=tmp_path / "cache", workers=1,
            executor="process", exec_workers=1,
        )
        try:
            client = app.test_client()
            sweep = client.post(
                "/sweeps", json=sweep_body(rates=(0.02,))
            ).get_json()
            done = poll_complete(client, sweep["id"])
            assert done["summary"]["done"] == 1
            key = done["jobs"][0]["key"]
            assert client.get(f"/results/{key}").status_code == 200
        finally:
            app.extensions["repro"].shutdown()


class TestValidationAndErrors:
    def test_malformed_json_is_a_400(self, service):
        client, _ = service
        response = client.post(
            "/sweeps", data="not json", content_type="application/json"
        )
        assert response.status_code == 400
        assert "JSON object" in response.get_json()["error"]

    def test_bad_job_is_a_400_naming_the_index(self, service):
        client, _ = service
        good = make_spec(0.02).to_dict()
        response = client.post("/sweeps", json={"jobs": [good, {}]})
        assert response.status_code == 400
        assert "jobs[1]" in response.get_json()["error"]

    def test_unknown_sweep_is_a_404(self, service):
        client, _ = service
        assert client.get("/sweeps/sweep-999").status_code == 404

    def test_results_refuses_non_addresses(self, service):
        client, _ = service
        for key in ("deadbeef", "..%2f..%2fetc%2fpasswd", "a" * 63):
            assert client.get(f"/results/{key}").status_code == 404

    def test_uncomputed_address_is_a_404(self, service):
        client, _ = service
        assert client.get(f"/results/{'0' * 64}").status_code == 404


class _FailingExecutor:
    """Stands in for Executor: every job fails with a structured error."""

    def __init__(self):
        self.executed = 0
        self.last_batch = None

    def run_one(self, job):
        self.executed += 1
        self.last_batch = {"failures": [{"error": "kaboom"}]}
        return SimpleNamespace(stop_reason="failed")


class _ExplodingExecutor:
    """Stands in for Executor: run_one raises instead of returning."""

    executed = 0
    last_batch = None

    def run_one(self, job):
        raise RuntimeError("worker blew up")


class TestFailureHandling:
    def failing_app(self, tmp_path, factory):
        return create_app(
            cache_root=tmp_path / "cache", workers=1,
            executor_factory=lambda cache: factory(),
        )

    def test_structured_failures_mark_the_job_failed(self, tmp_path):
        app = self.failing_app(tmp_path, _FailingExecutor)
        try:
            client = app.test_client()
            sweep = client.post(
                "/sweeps", json=sweep_body(rates=(0.02,))
            ).get_json()
            done = poll_complete(client, sweep["id"])
            (job,) = done["jobs"]
            assert job["status"] == "failed"
            assert job["error"] == "kaboom"
            assert done["summary"]["failed"] == 1
            # failures are never cached, so the result stays a 404
            assert client.get(job["result_url"]).status_code == 404
        finally:
            app.extensions["repro"].shutdown()

    def test_a_raising_worker_fails_the_job_not_the_service(self, tmp_path):
        app = self.failing_app(tmp_path, _ExplodingExecutor)
        try:
            client = app.test_client()
            sweep = client.post(
                "/sweeps", json=sweep_body(rates=(0.02,))
            ).get_json()
            done = poll_complete(client, sweep["id"])
            (job,) = done["jobs"]
            assert job["status"] == "failed"
            assert "RuntimeError" in job["error"]
            # the worker thread survived its exception and serves again
            assert client.get("/healthz").get_json()["status"] == "ok"
        finally:
            app.extensions["repro"].shutdown()


class TestIntrospection:
    def test_healthz_shape(self, service):
        client, cache_root = service
        body = client.get("/healthz").get_json()
        assert body["status"] == "ok"
        assert body["workers"] == 2
        assert body["queue_depth"] == 0
        assert body["executed"] == 0
        assert body["cache_root"] == str(cache_root)

    def test_cache_stats_reuses_resultcache_stats(self, service):
        client, cache_root = service
        sweep = client.post(
            "/sweeps", json=sweep_body(rates=(0.02,))
        ).get_json()
        poll_complete(client, sweep["id"])
        served = client.get("/cache/stats").get_json()
        expected = ResultCache(cache_root).stats()
        # instance-local session counters differ per handle; the disk
        # truth (occupancy, lifetime totals) must agree
        for key in ("root", "entries", "bytes", "quarantined", "lifetime"):
            assert served[key] == expected[key]
        assert served["entries"] == 1
        assert served["lifetime"]["puts"] == 1
