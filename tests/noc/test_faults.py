"""Fault injection, recovery and the zero-overhead-off contract."""

import json
import math

import pytest

from repro import proposed_network
from repro.engine.jobspec import JobSpec
from repro.noc.faults import (
    BitErrorFaults,
    LinkFaults,
    RandomFaults,
    SwingFaults,
    fault_from_dict,
    fault_names,
    make_fault,
)
from repro.noc.routing import make_routing
from repro.traffic.mix import MIXED_TRAFFIC, UNIFORM_UNICAST
from repro.traffic.processes import OnOffProcess


class TestRegistry:
    def test_all_models_registered(self):
        assert fault_names() == ["biterror", "links", "random", "swing"]

    def test_make_fault_unknown_name(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            make_fault("cosmic-rays")

    @pytest.mark.parametrize(
        "model",
        [
            BitErrorFaults(rate=2e-3),
            SwingFaults(swing_mv=200.0, sigma_mv=30.0),
            LinkFaults(links=((1, 2, 500),), routers=((5, 900),), rate=1e-4),
            RandomFaults(count=3, at=250, rate=1e-3),
        ],
        ids=lambda m: m.name,
    )
    def test_round_trip_through_json(self, model):
        # JSON turns the tuples into lists; fault_from_dict restores them
        data = json.loads(json.dumps(model.to_dict()))
        assert fault_from_dict(data) == model

    def test_fault_from_dict_rejects_garbage(self):
        with pytest.raises(ValueError, match="not a serialized fault model"):
            fault_from_dict({"rate": 0.1})


class TestValidation:
    def test_bit_error_rate_must_be_probability(self):
        with pytest.raises(ValueError, match="probability"):
            BitErrorFaults(rate=1.5).validate(proposed_network())

    def test_link_death_must_be_a_mesh_link(self):
        # nodes 0 and 5 are diagonal neighbours in the k=4 mesh
        with pytest.raises(ValueError, match="not a mesh link"):
            LinkFaults(links=((0, 5, 0),)).validate(proposed_network())

    def test_random_count_bounded_by_mesh_links(self):
        with pytest.raises(ValueError, match="undirected links"):
            RandomFaults(count=999).validate(proposed_network())

    def test_recovery_parameters_validated(self):
        with pytest.raises(ValueError, match="retry_timeout"):
            BitErrorFaults(retry_timeout=0).validate(proposed_network())
        with pytest.raises(ValueError, match="backoff"):
            BitErrorFaults(backoff_base=16, backoff_cap=8).validate(
                proposed_network()
            )


class TestModels:
    def test_swing_error_rate_monotone_in_swing(self):
        cfg = proposed_network()
        low = SwingFaults(swing_mv=180.0).error_rate(cfg)
        high = SwingFaults(swing_mv=340.0).error_rate(cfg)
        assert 0.0 < high < low < 1.0

    def test_random_fault_sets_are_nested_across_counts(self):
        # the monotone reliability curve depends on count=2's dead
        # links being a subset of count=6's for a fixed seed
        cfg = proposed_network()
        small, _ = RandomFaults(count=2).hard_schedule(cfg, seed=7)
        large, _ = RandomFaults(count=6).hard_schedule(cfg, seed=7)
        assert set(small) <= set(large)
        assert len(large) == 6

    def test_random_count_zero_schedules_nothing(self):
        assert RandomFaults(count=0).hard_schedule(proposed_network(), 7) == (
            (),
            (),
        )
        assert not RandomFaults(count=0).is_hard

    def test_hard_flags(self):
        assert not BitErrorFaults().is_hard
        assert not SwingFaults().is_hard
        assert not LinkFaults().is_hard
        assert LinkFaults(links=((1, 2, 0),)).is_hard
        assert LinkFaults(routers=((5, 0),)).is_hard
        assert RandomFaults(count=1).is_hard


def _job(faults, mix=UNIFORM_UNICAST, rate=0.05, **overrides):
    kwargs = dict(
        config=proposed_network(),
        mix=mix,
        rate=rate,
        seed=7,
        warmup=100,
        measure=500,
        drain=1200,
        faults=faults,
    )
    kwargs.update(overrides)
    return JobSpec(**kwargs)


class TestRecovery:
    def test_soft_faults_recovered_by_retransmission(self):
        stats = _job(BitErrorFaults(rate=0.01), mix=MIXED_TRAFFIC).run()
        assert stats.dropped_flits > 0
        assert stats.retransmissions > 0
        assert stats.stop_reason == "completed"
        assert 0.9 < stats.delivered_fraction <= 1.0

    def test_link_death_rerouted_without_loss(self):
        stats = _job(LinkFaults(links=((5, 6, 300),))).run()
        assert stats.stop_reason == "completed"
        assert stats.delivered_fraction == 1.0
        assert stats.messages_measured > 0

    def test_router_death_partitions_the_run(self):
        stats = _job(LinkFaults(routers=((5, 300),))).run()
        assert stats.stop_reason == "partitioned"
        assert stats.delivered_fraction < 1.0

    def test_hard_faults_reject_multicast_mixes(self):
        with pytest.raises(ValueError, match="multicast"):
            _job(LinkFaults(links=((5, 6, 300),)), mix=MIXED_TRAFFIC).run()


class TestZeroOverheadOff:
    """``faults=None`` and a zero-rate soft model must agree exactly.

    A fault engine with nothing to do may not perturb the simulation:
    the reliability layer's "off" position is byte-identical to the
    pre-fault simulator across injection processes and routing
    algorithms (DESIGN.md §7).
    """

    @pytest.mark.parametrize("routing", ["xy", "o1turn"])
    @pytest.mark.parametrize(
        "injection",
        [None, OnOffProcess()],
        ids=["bernoulli", "onoff"],
    )
    def test_zero_rate_faults_are_byte_identical(self, routing, injection):
        config = proposed_network(routing=make_routing(routing))
        base = _job(
            None, mix=MIXED_TRAFFIC, config=config, injection=injection
        ).run()
        gated = _job(
            BitErrorFaults(rate=0.0),
            mix=MIXED_TRAFFIC,
            config=config,
            injection=injection,
        ).run()
        assert gated == base
        assert not math.isnan(base.avg_latency)
