"""Activity-gating correctness: wake/sleep semantics of the cycle loop.

The gated loop (DESIGN.md §3) must be an *exact* no-op-skipping
transformation of the reference loop: same traffic trace, same
arbitration decisions, same WindowStats bytes.  These tests pin down
the three claims the design rests on:

1. an idle mesh steps in O(1) — no router or NIC phase executes;
2. components wake exactly when something is delivered to them or
   work is handed to them (source attach, direct ``submit``);
3. gated and ungated stepping are byte-identical across the fig5/fig13
   driver configurations.
"""

import json

import pytest

from repro import Simulator, baseline_network, proposed_network
from repro.noc.flit import MessageClass
from repro.noc.routing import route_xy_tree
from repro.noc.simulator import WATCHDOG_CYCLES
from repro.traffic import (
    BernoulliTraffic,
    MessageSpec,
    SyntheticBurst,
    SyntheticTraffic,
)
from repro.traffic.mix import BROADCAST_ONLY, MIXED_TRAFFIC
from repro.traffic.processes import OnOffProcess, make_process

FAST = dict(warmup=100, measure=300, drain=400)


def canonical(stats):
    return json.dumps(stats.to_dict(), sort_keys=True)


class TestIdleNetwork:
    def test_idle_mesh_executes_no_router_phases(self):
        sim = Simulator(proposed_network())
        sim.run(500)
        assert sim.router_cycles_executed == 0
        assert sim.nic_receives_executed == 0

    def test_nics_retire_after_first_probe(self):
        # construction leaves every NIC live (a source may be attached
        # before the first step); with no source they retire at once
        sim = Simulator(proposed_network())
        sim.run(1)
        assert sim.nic_steps_executed == sim.cfg.num_nodes
        sim.run(499)
        assert sim.nic_steps_executed == sim.cfg.num_nodes
        assert sim.network.quiescent() and sim.network.idle()

    def test_long_idle_does_not_trip_watchdog(self):
        # the O(1) watchdog consults the idle predicate only on its
        # slow path; a legitimately quiet network must never trip it
        sim = Simulator(proposed_network())
        sim.run(WATCHDOG_CYCLES + 500)
        assert sim.cycle == WATCHDOG_CYCLES + 500

    def test_burst_near_watchdog_boundary_does_not_trip(self):
        # traffic injected just before the sparse idle probe fires:
        # the probe sees a busy network with no recent ejection, which
        # must arm the grace window, not abort a healthy run
        inject_at = 2 * WATCHDOG_CYCLES + 1
        spec = MessageSpec(frozenset([15]), MessageClass.REQUEST, 1)
        sim = Simulator(
            proposed_network(), SyntheticBurst({(inject_at, 0): [spec]})
        )
        sim.run(inject_at + 100)
        assert sim.network.messages[0].complete


class TestWakeSemantics:
    def test_wake_on_injection_and_resleep(self):
        spec = MessageSpec(frozenset([15]), MessageClass.REQUEST, 1)
        sim = Simulator(proposed_network(), SyntheticBurst({(5, 0): [spec]}))
        sim.run(120)
        assert sim.network.messages[0].complete
        # one 6-hop unicast: a handful of router-cycles, not 16*120
        assert 0 < sim.router_cycles_executed < 100
        assert sim.network.quiescent() and sim.network.idle()

    def test_direct_submit_wakes_nic(self):
        sim = Simulator(proposed_network())
        sim.run(50)  # let the live set drain completely
        spec = MessageSpec(frozenset([3]), MessageClass.REQUEST, 1)
        sim.network.nics[0].submit(spec, sim.cycle)
        sim.run(60)
        assert sim.network.messages[0].complete

    def test_source_attach_mid_run_wakes_nic(self):
        sim = Simulator(proposed_network())
        sim.run(50)
        spec = MessageSpec(frozenset([9]), MessageClass.REQUEST, 1)
        burst = SyntheticBurst({(55, 2): [spec]})
        burst.bind(sim.cfg)
        sim.network.nics[2].source = burst
        sim.run(80)
        assert sim.network.messages[0].complete

    def test_quiescent_tracks_idle_through_busy_trace(self):
        sim = Simulator(
            proposed_network(), BernoulliTraffic(MIXED_TRAFFIC, 0.05, seed=3)
        )
        for _ in range(300):
            sim.step()
            assert sim.network.quiescent() == sim.network.idle()
        for nic in sim.network.nics:
            nic.source = None
        for _ in range(400):
            sim.step()
            assert sim.network.quiescent() == sim.network.idle()

    def test_cycles_folded_into_activity_snapshots(self):
        sim = Simulator(proposed_network())
        sim.run(123)
        n = sim.cfg.num_nodes
        assert sim.network.total_router_activity().cycles == 123 * n
        assert sim.network.total_nic_activity().cycles == 123 * n
        assert sim.activity().cycles == 123 * n


class TestGatedMatchesReference:
    @pytest.mark.parametrize(
        "mix,rate",
        [
            (MIXED_TRAFFIC, 0.02),  # lowest fig5 operating point
            (MIXED_TRAFFIC, 0.14),
            (BROADCAST_ONLY, 0.005),  # lowest fig13 operating point
            (BROADCAST_ONLY, 0.045),
        ],
    )
    @pytest.mark.parametrize("preset", [proposed_network, baseline_network])
    def test_window_stats_byte_identical(self, preset, mix, rate):
        results = []
        for gated in (True, False):
            traffic = BernoulliTraffic(mix, rate, seed=7)
            sim = Simulator(preset(), traffic, gated=gated)
            results.append(sim.run_experiment(**FAST))
        assert canonical(results[0]) == canonical(results[1])

    @pytest.mark.parametrize("injection", ["bernoulli", "onoff"])
    @pytest.mark.parametrize(
        "mix,rate", [(MIXED_TRAFFIC, 0.05), (BROADCAST_ONLY, 0.02)]
    )
    def test_byte_identical_across_injection_processes(
        self, injection, mix, rate
    ):
        # bursty injection is the adversarial case for the wake/sleep
        # contract: long OFF gaps put whole regions of the mesh to
        # sleep mid-run, and every wake-on-burst must replay exactly.
        # A long burst length at low rate maximises the idle gaps.
        process = (
            None
            if injection == "bernoulli"
            else OnOffProcess(burst_length=32.0)
        )
        results = []
        for gated in (True, False):
            traffic = SyntheticTraffic(mix, rate, seed=7, process=process)
            sim = Simulator(proposed_network(), traffic, gated=gated)
            results.append(sim.run_experiment(**FAST))
        assert canonical(results[0]) == canonical(results[1])

    def test_bursty_idle_gaps_actually_gate(self):
        # the claim above is only meaningful if OFF gaps really retire
        # routers: at this load the gated loop must execute far fewer
        # router-cycles than the exhaustive 16 * cycles
        traffic = SyntheticTraffic(
            MIXED_TRAFFIC, 0.01, seed=7, process=make_process("onoff")
        )
        sim = Simulator(proposed_network(), traffic)
        sim.run(2_000)
        assert 0 < sim.router_cycles_executed < 16 * 2_000 / 2

    def test_activity_counters_identical(self):
        # stronger than WindowStats: every per-router event count must
        # match, or gating skipped (or double-ran) some phase
        snapshots = []
        for gated in (True, False):
            traffic = BernoulliTraffic(MIXED_TRAFFIC, 0.08, seed=11)
            sim = Simulator(proposed_network(), traffic, gated=gated)
            sim.run(800)
            snapshots.append(
                (
                    [s.as_dict() for s in sim.network.router_stats],
                    [s.as_dict() for s in sim.network.nic_stats],
                )
            )
        assert snapshots[0] == snapshots[1]

    def test_identical_generators_chip_artifact(self):
        results = []
        for gated in (True, False):
            traffic = BernoulliTraffic(
                BROADCAST_ONLY, 0.01, seed=7, identical_generators=True
            )
            sim = Simulator(proposed_network(), traffic, gated=gated)
            results.append(sim.run_experiment(**FAST))
        assert canonical(results[0]) == canonical(results[1])


class TestRouteMemo:
    """The per-network RouteState memo that replaced the module-global
    lru_cache: shared within a simulation, dropped with it."""

    def test_memoized_route_is_shared_within_a_network(self):
        rs = Simulator(proposed_network()).network.route_state
        a = rs.route(0, frozenset([5, 10]), None)
        b = rs.route(0, frozenset([10, 5]), None)
        assert a is b  # same key -> cached object

    def test_memo_is_per_network_instance(self):
        dests = frozenset([1, 4, 11])
        rs1 = Simulator(proposed_network()).network.route_state
        rs2 = Simulator(proposed_network()).network.route_state
        a, b = rs1.route(6, dests, None), rs2.route(6, dests, None)
        assert a == b
        assert a is not b  # no process-wide sharing across simulations

    def test_cache_stats_hook(self):
        rs = Simulator(proposed_network()).network.route_state
        dests = frozenset([7])
        rs.route(0, dests, None)
        rs.route(0, dests, None)
        info = rs.cache_info()
        assert info["misses"] == 1 and info["hits"] == 1
        assert info["size"] == 1 and info["capacity"] >= 1

    def test_memo_matches_uncached_helper(self):
        rs = Simulator(proposed_network()).network.route_state
        dests = frozenset([1, 4, 11])
        assert rs.route(6, dests, None) == route_xy_tree(6, dests, 4)

    def test_empty_destinations_still_rejected(self):
        with pytest.raises(ValueError):
            route_xy_tree(0, frozenset(), 4)
        # the router hot path goes through the memo; it must raise the
        # same diagnostic, not cache or return {}
        rs = Simulator(proposed_network()).network.route_state
        with pytest.raises(ValueError):
            rs.route(0, frozenset(), None)
        assert rs.cache_info()["size"] == 0

    def test_normalizes_unhashed_iterables(self):
        assert route_xy_tree(0, {15}, 4) == route_xy_tree(0, frozenset([15]), 4)

    def test_simulation_routes_through_the_shared_memo(self):
        sim = Simulator(
            proposed_network(), BernoulliTraffic(MIXED_TRAFFIC, 0.05, seed=7)
        )
        sim.run(300)
        info = sim.network.route_state.cache_info()
        assert info["hits"] > info["misses"] > 0
