"""NIC injection/ejection, mesh wiring and simulator harness."""

import pytest

from repro import (
    NocConfig,
    Simulator,
    baseline_network,
    proposed_network,
)
from repro.noc.flit import MessageClass
from repro.noc.mesh import MeshNetwork
from repro.noc.metrics import ActivityCounters, aggregate, message_kind
from repro.noc.ports import EAST, LOCAL, NORTH, SOUTH, WEST
from repro.traffic import BernoulliTraffic, MessageSpec, SyntheticBurst
from repro.traffic.mix import MIXED_TRAFFIC


class TestMeshWiring:
    def test_edge_ports_unconnected(self):
        net = MeshNetwork(NocConfig())
        corner = net.routers[0]  # (0, 0)
        assert corner.in_ports[NORTH].connected
        assert corner.in_ports[EAST].connected
        assert not corner.in_ports[SOUTH].connected
        assert not corner.in_ports[WEST].connected

    def test_all_local_ports_connected(self):
        net = MeshNetwork(NocConfig())
        for router, nic in zip(net.routers, net.nics):
            assert router.in_ports[LOCAL].connected
            assert router.out_ports[LOCAL].connected
            assert nic.link_out is not None and nic.link_in is not None

    def test_interior_router_fully_connected(self):
        net = MeshNetwork(NocConfig())
        router = net.routers[5]  # (1, 1)
        assert all(p.connected for p in router.in_ports)
        assert all(p.connected for p in router.out_ports)

    def test_link_count(self):
        net = MeshNetwork(NocConfig())
        mesh_links = sum(
            1
            for r in net.routers
            for p in (NORTH, EAST, SOUTH, WEST)
            if r.out_ports[p].connected
        )
        # 2 * k * (k-1) bidirectional pairs = 48 directed links for k=4
        assert mesh_links == 48

    def test_k2_mesh(self):
        net = MeshNetwork(NocConfig(k=2))
        assert len(net.routers) == 4

    def test_k8_mesh(self):
        net = MeshNetwork(NocConfig(k=8))
        assert len(net.routers) == 64
        assert all(p.connected for p in net.routers[9 * 8 // 2].in_ports)


class TestNic:
    def test_broadcast_expansion_without_multicast(self):
        cfg = baseline_network()
        net = MeshNetwork(cfg)
        spec = MessageSpec(frozenset(range(16)), MessageClass.REQUEST, 1)
        message = net.nics[0].submit(spec, cycle=0)
        assert len(message._pending) == 16
        assert net.nics[0].backlog() == 16

    def test_no_expansion_with_multicast(self):
        cfg = proposed_network()
        net = MeshNetwork(cfg)
        spec = MessageSpec(frozenset(range(16)), MessageClass.REQUEST, 1)
        message = net.nics[0].submit(spec, cycle=0)
        assert len(message._pending) == 16  # 16 deliveries, one packet
        assert net.nics[0].backlog() == 1

    def test_injection_rate_one_flit_per_cycle(self):
        cfg = proposed_network()
        sim = Simulator(cfg)
        spec = MessageSpec(frozenset([1]), MessageClass.REQUEST, 1)
        burst = SyntheticBurst({(0, 0): [spec] * 5})
        burst.bind(cfg)
        sim.network.nics[0].source = burst
        sim.run(3)
        # one decision per cycle at most
        assert sim.network.nic_stats[0].injections <= 3

    def test_mc_round_robin_interleaves(self):
        cfg = proposed_network()
        sim = Simulator(cfg)
        req = MessageSpec(frozenset([1]), MessageClass.REQUEST, 1)
        resp = MessageSpec(frozenset([2]), MessageClass.RESPONSE, 5)
        burst = SyntheticBurst({(0, 0): [resp, req]})
        burst.bind(cfg)
        sim.network.nics[0].source = burst
        sim.run(30)
        msgs = sim.network.messages
        assert all(m.complete for m in msgs)
        req_msg = next(m for m in msgs if m.mclass == MessageClass.REQUEST)
        # the request must not wait behind all five response flits
        assert req_msg.latency <= 8


class TestSimulator:
    def test_determinism_same_seed(self):
        results = []
        for _ in range(2):
            sim = Simulator(
                proposed_network(),
                BernoulliTraffic(MIXED_TRAFFIC, 0.05, seed=3),
            )
            stats = sim.run_experiment(warmup=200, measure=800, drain=800)
            results.append((stats.avg_latency, stats.received_flits))
        assert results[0] == results[1]

    def test_different_seeds_differ(self):
        outcomes = set()
        for seed in (1, 2):
            sim = Simulator(
                proposed_network(),
                BernoulliTraffic(MIXED_TRAFFIC, 0.05, seed=seed),
            )
            stats = sim.run_experiment(warmup=200, measure=800, drain=800)
            outcomes.add(stats.received_flits)
        assert len(outcomes) == 2

    def test_flit_conservation(self):
        sim = Simulator(
            proposed_network(), BernoulliTraffic(MIXED_TRAFFIC, 0.04, seed=5)
        )
        sim.run(1500)
        # drain completely
        for nic in sim.network.nics:
            nic.source = None
        guard = 0
        while not sim.network.idle() and guard < 3000:
            sim.step()
            guard += 1
        assert sim.network.idle()
        assert all(m.complete for m in sim.network.messages)

    def test_run_experiment_reports_rate(self):
        sim = Simulator(
            proposed_network(), BernoulliTraffic(MIXED_TRAFFIC, 0.05, seed=1)
        )
        stats = sim.run_experiment(warmup=100, measure=500, drain=500)
        assert stats.injection_rate == 0.05
        assert stats.cycles == 500
        assert stats.throughput_gbps == pytest.approx(
            stats.throughput_flits_per_cycle * 64
        )

    def test_named_simulator(self):
        sim = Simulator(baseline_network(), name="base")
        assert sim.name == "base"
        assert Simulator(proposed_network()).name == "proposed"
        assert Simulator(baseline_network()).name == "baseline"


class TestMetrics:
    def test_counters_arithmetic(self):
        a = ActivityCounters(buffer_writes=5, ejections=2)
        b = ActivityCounters(buffer_writes=2, ejections=1)
        assert (a - b).buffer_writes == 3
        assert (a + b).ejections == 3

    def test_snapshot_is_independent(self):
        a = ActivityCounters(buffer_writes=5)
        snap = a.snapshot()
        a.buffer_writes = 9
        assert snap.buffer_writes == 5

    def test_aggregate(self):
        total = aggregate(
            [ActivityCounters(ejections=1), ActivityCounters(ejections=2)]
        )
        assert total.ejections == 3

    def test_message_kind(self):
        from repro.noc.flit import Message

        bcast = Message(0, 0, frozenset(range(16)), MessageClass.REQUEST, 1, 0,
                        is_multicast=True)
        uni = Message(1, 0, frozenset([2]), MessageClass.REQUEST, 1, 0)
        resp = Message(2, 0, frozenset([2]), MessageClass.RESPONSE, 5, 0)
        assert message_kind(bcast) == "broadcast"
        assert message_kind(uni) == "unicast_request"
        assert message_kind(resp) == "unicast_response"
