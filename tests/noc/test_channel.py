"""Fixed-delay channel semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.channel import Channel, MultiChannel


class TestChannel:
    def test_delay_one_visibility(self):
        ch = Channel(1)
        ch.send(5, "x")
        assert ch.receive(5) == []
        assert ch.receive(6) == ["x"]

    def test_delay_two(self):
        ch = Channel(2)
        ch.send(0, "a")
        assert ch.receive(1) == []
        assert ch.receive(2) == ["a"]

    def test_receive_drains(self):
        ch = Channel(1)
        ch.send(0, "a")
        ch.receive(1)
        assert ch.receive(1) == []

    def test_fifo_order(self):
        ch = Channel(1)
        ch.send(0, "a")
        ch.send(1, "b")
        assert ch.receive(2) == ["a", "b"]

    def test_double_drive_same_cycle_rejected(self):
        ch = Channel(1)
        ch.send(3, "a")
        with pytest.raises(RuntimeError):
            ch.send(3, "b")

    def test_zero_delay_rejected(self):
        with pytest.raises(ValueError):
            Channel(0)

    def test_peek_does_not_drain(self):
        ch = Channel(1)
        ch.send(0, "a")
        assert ch.peek_arrivals(1) == ["a"]
        assert ch.receive(1) == ["a"]

    def test_in_flight_count(self):
        ch = Channel(3)
        ch.send(0, "a")
        ch.send(1, "b")
        assert ch.in_flight == 2
        ch.receive(3)
        assert ch.in_flight == 1

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=20, unique=True))
    def test_every_payload_arrives_exactly_delay_later(self, cycles):
        ch = Channel(2)
        for c in sorted(cycles):
            ch.send(c, c)
        received = []
        for t in range(max(cycles) + 3):
            received.extend(ch.receive(t))
        assert received == sorted(cycles)


class TestMultiChannel:
    def test_multiple_sends_same_cycle(self):
        ch = MultiChannel(2)
        ch.send(0, "a")
        ch.send(0, "b")
        assert ch.receive(2) == ["a", "b"]

    def test_preserves_order_across_cycles(self):
        ch = MultiChannel(1)
        ch.send(0, 1)
        ch.send(0, 2)
        ch.send(1, 3)
        assert ch.receive(1) == [1, 2]
        assert ch.receive(2) == [3]
