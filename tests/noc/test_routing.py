"""XY routing and XY-tree multicast partitioning."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.ports import EAST, LOCAL, NORTH, SOUTH, WEST
from repro.noc.routing import (
    coords,
    next_router,
    node_at,
    route_xy_tree,
    tree_hop_counts,
    xy_distance,
)


class TestCoords:
    def test_row_major_ids(self):
        assert coords(0, 4) == (0, 0)
        assert coords(5, 4) == (1, 1)
        assert coords(15, 4) == (3, 3)

    def test_node_at_roundtrip(self):
        for n in range(16):
            x, y = coords(n, 4)
            assert node_at(x, y, 4) == n

    def test_node_at_rejects_outside(self):
        with pytest.raises(ValueError):
            node_at(4, 0, 4)
        with pytest.raises(ValueError):
            node_at(0, -1, 4)

    def test_distance(self):
        assert xy_distance(0, 15, 4) == 6
        assert xy_distance(5, 5, 4) == 0
        assert xy_distance(0, 3, 4) == 3


class TestUnicastRouting:
    def test_local_delivery(self):
        assert route_xy_tree(5, frozenset([5]), 4) == {LOCAL: frozenset([5])}

    def test_x_first(self):
        # node 0 -> node 15 must head EAST first
        assert set(route_xy_tree(0, frozenset([15]), 4)) == {EAST}

    def test_y_after_x_aligned(self):
        # node 3 (3,0) -> node 15 (3,3): same column, go NORTH
        assert set(route_xy_tree(3, frozenset([15]), 4)) == {NORTH}

    def test_west_and_south(self):
        # node 15 -> node 0: WEST first
        assert set(route_xy_tree(15, frozenset([0]), 4)) == {WEST}
        assert set(route_xy_tree(12, frozenset([0]), 4)) == {SOUTH}

    def test_empty_destinations_rejected(self):
        with pytest.raises(ValueError):
            route_xy_tree(0, frozenset(), 4)

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_unicast_progress(self, src, dst):
        """Following the route always reaches the destination in
        exactly the Manhattan distance."""
        here = src
        hops = 0
        while True:
            route = route_xy_tree(here, frozenset([dst]), 4)
            assert len(route) == 1
            port, subset = next(iter(route.items()))
            assert subset == frozenset([dst])
            if port == LOCAL:
                break
            here = next_router(here, port, 4)
            hops += 1
            assert hops <= 6
        assert hops == xy_distance(src, dst, 4)


class TestMulticastTree:
    def test_partition_is_disjoint_and_complete(self):
        dests = frozenset(range(16))
        route = route_xy_tree(5, dests, 4)
        union = frozenset().union(*route.values())
        assert union == dests
        total = sum(len(s) for s in route.values())
        assert total == len(dests)

    def test_broadcast_from_corner_uses_three_ports(self):
        route = route_xy_tree(0, frozenset(range(16)), 4)
        assert set(route) == {LOCAL, NORTH, EAST}

    def test_broadcast_from_center(self):
        route = route_xy_tree(5, frozenset(range(16)), 4)
        assert set(route) == {LOCAL, NORTH, EAST, SOUTH, WEST}

    def test_x_dimension_keeps_off_column_dests(self):
        # from node 5 (1,1): node 11 (3,2) must go EAST, not NORTH
        route = route_xy_tree(5, frozenset([11]), 4)
        assert set(route) == {EAST}

    @given(
        st.integers(0, 15),
        st.sets(st.integers(0, 15), min_size=1, max_size=16),
    )
    def test_partition_properties(self, router, dests):
        route = route_xy_tree(router, frozenset(dests), 4)
        union = set()
        for port, subset in route.items():
            assert subset  # no empty branches
            assert not (union & subset)  # disjoint
            union |= subset
        assert union == dests

    @given(
        st.integers(0, 15),
        st.sets(st.integers(0, 15), min_size=1, max_size=16),
    )
    def test_tree_delivers_everyone_without_u_turns(self, src, dests):
        """Walk the whole tree; every destination must eject exactly
        once and no branch may revisit a router."""
        delivered = []
        frontier = [(src, frozenset(dests), None)]
        steps = 0
        while frontier:
            router, subset, came_from = frontier.pop()
            steps += 1
            assert steps < 200
            route = route_xy_tree(router, subset, 4)
            for port, branch in route.items():
                if port == LOCAL:
                    delivered.extend(branch)
                else:
                    assert port != came_from, "U-turn in the XY tree"
                    from repro.noc.ports import OPPOSITE

                    frontier.append(
                        (next_router(router, port, 4), branch, OPPOSITE[port])
                    )
        assert sorted(delivered) == sorted(dests)

    def test_broadcast_tree_link_count(self):
        """A full broadcast spanning tree uses exactly k^2 - 1 links."""
        for src in range(16):
            assert tree_hop_counts(src, frozenset(range(16)), 4) == 15

    @given(st.integers(0, 8), st.sets(st.integers(0, 8), min_size=1, max_size=9))
    def test_tree_hop_counts_3x3(self, src, dests):
        """Tree links are bounded by the sum of unicast distances and
        at least the distance to the furthest destination."""
        links = tree_hop_counts(src, frozenset(dests), 3)
        far = max(xy_distance(src, d, 3) for d in dests)
        total = sum(xy_distance(src, d, 3) for d in dests)
        assert far <= links <= total if dests != {src} else links == 0

    def test_next_router_rejects_local(self):
        with pytest.raises(ValueError):
            next_router(0, LOCAL, 4)
