"""The pluggable routing strategy layer: algorithms, headers, VC
partitions and serialization (DESIGN.md §5)."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.config import NocConfig, VCSpec, routed_vc_config
from repro.noc.flit import MessageClass
from repro.noc.ports import EAST, LOCAL, NORTH, OPPOSITE, SOUTH, WEST
from repro.noc.routing import (
    O1TurnRouting,
    RouteState,
    ValiantRouting,
    XYRouting,
    YXRouting,
    coords,
    make_routing,
    next_router,
    route_xy_tree,
    routing_from_dict,
    routing_names,
    xy_distance,
)
from repro.noc.vc import OutputVCTracker


def walk_unicast(algorithm, src, dst, k, header, max_hops=64):
    """Follow an algorithm's route hop by hop; returns (path, hops)."""
    here, hops, path = src, 0, [src]
    dests = frozenset([dst])
    while True:
        header, _phase = algorithm.advance(here, dests, header)
        route = algorithm.compute_route(here, dests, header, k)
        assert len(route) == 1, f"unicast fan-out at {here}: {route}"
        port, subset = next(iter(route.items()))
        assert subset == dests, "payload destinations must survive the hop"
        if port == LOCAL:
            return path, hops
        here = next_router(here, port, k)
        path.append(here)
        hops += 1
        assert hops <= max_hops


class TestRegistry:
    def test_names(self):
        assert routing_names() == ["o1turn", "valiant", "xy", "yx"]

    def test_make_routing_unknown_name(self):
        with pytest.raises(ValueError, match="unknown routing"):
            make_routing("zigzag")

    @pytest.mark.parametrize("name", ("xy", "yx", "o1turn", "valiant"))
    def test_to_dict_round_trip(self, name):
        alg = make_routing(name)
        assert routing_from_dict(alg.to_dict()) == alg

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValueError):
            routing_from_dict({"nom": "xy"})
        with pytest.raises(ValueError):
            routing_from_dict("xy")


class TestYXRouting:
    @given(st.integers(0, 15), st.integers(0, 15))
    def test_progress_and_dimension_order(self, src, dst):
        path, hops = walk_unicast(YXRouting(), src, dst, 4, None)
        assert hops == xy_distance(src, dst, 4)
        # Y moves must all precede X moves
        moves = [
            "x" if coords(a, 4)[1] == coords(b, 4)[1] else "y"
            for a, b in zip(path, path[1:])
        ]
        assert moves == ["y"] * moves.count("y") + ["x"] * moves.count("x")

    def test_single_phase_no_header(self):
        alg = YXRouting()
        assert alg.phases == 1 and not alg.advancing and not alg.uses_rng
        assert alg.packet_header(0, frozenset([5]), None, 16) == (None, 0)

    def test_rejects_router_level_multicast_at_bind(self):
        from repro.core.presets import proposed_network
        from repro.noc.simulator import Simulator
        from repro.traffic.generators import BernoulliTraffic
        from repro.traffic.mix import MIXED_TRAFFIC

        cfg = proposed_network(routing=YXRouting())
        with pytest.raises(ValueError, match="multicast"):
            Simulator(cfg, BernoulliTraffic(MIXED_TRAFFIC, 0.05, seed=7))

    def test_baseline_expansion_is_allowed(self):
        from repro.core.presets import baseline_network
        from repro.noc.simulator import Simulator
        from repro.traffic.generators import BernoulliTraffic
        from repro.traffic.mix import MIXED_TRAFFIC

        cfg = baseline_network(routing=YXRouting())
        sim = Simulator(cfg, BernoulliTraffic(MIXED_TRAFFIC, 0.02, seed=7))
        stats = sim.run_experiment(warmup=50, measure=200, drain=1000)
        assert stats.incomplete_messages == 0


class TestO1TurnRouting:
    def test_header_selects_dimension_order(self):
        alg = O1TurnRouting()
        dests = frozenset([15])
        assert alg.compute_route(0, dests, 0, 4) == route_xy_tree(0, dests, 4)
        # YX from node 0 to node 15 heads NORTH first, not EAST
        assert set(alg.compute_route(0, dests, 1, 4)) == {NORTH}

    def test_header_draw_is_a_fair_coin(self):
        rs = RouteState(O1TurnRouting(), 4, seed=7)
        draws = [rs.packet_header(3, frozenset([9]))[0] for _ in range(400)]
        assert set(draws) == {0, 1}
        assert 120 < sum(draws) < 280  # fair-ish PRBS coin

    def test_phase_equals_order(self):
        alg = O1TurnRouting()
        assert alg.phase_of(0) == 0 and alg.phase_of(1) == 1
        assert alg.phase_of(None) == 0  # multicast tree partition

    def test_multicast_takes_the_xy_tree(self):
        alg = O1TurnRouting()
        dests = frozenset(range(16))
        assert alg.packet_header(5, dests, None, 16) == (None, 0)
        assert alg.compute_route(5, dests, None, 4) == route_xy_tree(5, dests, 4)

    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 1))
    def test_both_orders_are_minimal(self, src, dst, order):
        _path, hops = walk_unicast(O1TurnRouting(), src, dst, 4, order)
        assert hops == xy_distance(src, dst, 4)


class TestValiantRouting:
    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 15))
    def test_two_phase_walk(self, src, dst, w):
        alg = ValiantRouting()
        header = w if w != src else -1
        path, hops = walk_unicast(alg, src, dst, 4, header)
        assert path[-1] == dst
        if w != src:
            assert w in path
        assert hops == xy_distance(src, w, 4) + xy_distance(w, dst, 4)

    def test_advance_flips_exactly_at_the_intermediate(self):
        alg = ValiantRouting()
        dests = frozenset([3])
        assert alg.advance(2, dests, 9) == (9, 0)
        assert alg.advance(9, dests, 9) == (-1, 1)
        assert alg.advance(9, dests, -1) == (-1, 1)
        assert alg.advance(9, dests, None) == (None, 0)  # multicast tree

    def test_header_draw_range_and_self_pick(self):
        rs = RouteState(ValiantRouting(), 4, seed=11)
        seen_terminal = False
        for src in range(16):
            for _ in range(50):
                header, phase = rs.packet_header(src, frozenset([(src + 1) % 16]))
                if header == -1:
                    assert phase == 1  # w == src: born terminal
                    seen_terminal = True
                else:
                    assert 0 <= header < 16 and phase == 0
        assert seen_terminal

    def test_phase1_route_keeps_payload_destinations(self):
        # the route must steer toward w while the flit still carries
        # its true destination set (forks copy the subset downstream)
        alg = ValiantRouting()
        dests = frozenset([3])
        route = alg.compute_route(0, dests, 12, 4)  # w=12 is due north
        assert route == {NORTH: dests}


class TestVCPartition:
    def test_single_phase_identity(self):
        cfg = NocConfig()
        assert cfg.vc_phases == (0,) * 6

    def test_two_phase_alternation(self):
        cfg = NocConfig(routing=O1TurnRouting())
        # REQUEST VCs 0-3 alternate, RESPONSE VCs 4-5 alternate
        assert cfg.vc_phases == (0, 1, 0, 1, 0, 1)

    def test_validation_needs_two_vcs_per_class(self):
        vcs = (
            VCSpec(MessageClass.REQUEST, 1),
            VCSpec(MessageClass.REQUEST, 1),
            VCSpec(MessageClass.RESPONSE, 3),
        )
        with pytest.raises(ValueError, match="RESPONSE"):
            NocConfig(vcs=vcs, routing=ValiantRouting())
        NocConfig(vcs=vcs)  # single-phase XY is fine

    def test_tracker_allocates_within_partition_only(self):
        cfg = NocConfig(routing=O1TurnRouting())
        t = OutputVCTracker(cfg.vcs, cfg.vc_phases)
        a = t.alloc_head(MessageClass.REQUEST, 1, phase=0)
        b = t.alloc_head(MessageClass.REQUEST, 2, phase=0)
        assert {a, b} == {0, 2}
        assert t.peek_free(MessageClass.REQUEST, 0) is None
        # partition 1 is untouched
        assert t.peek_free(MessageClass.REQUEST, 1) == 1

    def test_default_tracker_behaviour_is_unchanged(self):
        cfg = NocConfig()
        t = OutputVCTracker(cfg.vcs, cfg.vc_phases)
        order = [t.alloc_head(MessageClass.REQUEST, i) for i in range(4)]
        assert order == [0, 1, 2, 3]
        assert t.alloc_head(MessageClass.REQUEST, 9) is None

    def test_routed_vc_config_partitions_like_the_chip(self):
        cfg = NocConfig(vcs=routed_vc_config(), routing=O1TurnRouting())
        # each partition holds the chip's original 4 request + 1 response
        assert cfg.vc_phases.count(0) == cfg.vc_phases.count(1) == 5


class TestConfigSerialization:
    def test_default_routing_is_omitted(self):
        data = NocConfig().to_dict()
        assert "routing" not in data
        assert NocConfig.from_dict(data) == NocConfig()

    def test_explicit_xy_normalises_to_the_default(self):
        assert NocConfig(routing=XYRouting()) == NocConfig()
        assert NocConfig(routing=None) == NocConfig()
        assert "routing" not in NocConfig(routing=XYRouting()).to_dict()

    @pytest.mark.parametrize("name", ("yx", "o1turn", "valiant"))
    def test_non_default_round_trips(self, name):
        cfg = NocConfig(routing=make_routing(name))
        data = cfg.to_dict()
        assert data["routing"] == {"name": name}
        assert NocConfig.from_dict(data) == cfg

    def test_jobspec_cache_keys_stay_byte_identical(self):
        from repro.engine.jobspec import JobSpec
        from repro.traffic.mix import UNIFORM_UNICAST

        default = JobSpec(config=NocConfig(), mix=UNIFORM_UNICAST, rate=0.1)
        explicit = JobSpec(
            config=NocConfig(routing=XYRouting()), mix=UNIFORM_UNICAST, rate=0.1
        )
        assert "routing" not in default.canonical_json()
        assert explicit.cache_key == default.cache_key
        routed = JobSpec(
            config=NocConfig(routing=O1TurnRouting()),
            mix=UNIFORM_UNICAST,
            rate=0.1,
        )
        assert routed.cache_key != default.cache_key
        assert JobSpec.from_dict(routed.to_dict()) == routed
        assert routed.routing == O1TurnRouting()


class TestRouteStateStreams:
    def test_reseed_restarts_header_draws(self):
        a = RouteState(ValiantRouting(), 4, seed=3)
        b = RouteState(ValiantRouting(), 4, seed=3)
        dests = frozenset([7])
        seq_a = [a.packet_header(0, dests) for _ in range(20)]
        assert [b.packet_header(0, dests) for _ in range(20)] == seq_a
        b.reseed(4)
        diverged = [b.packet_header(0, dests) for _ in range(20)]
        b.reseed(3)
        assert [b.packet_header(0, dests) for _ in range(20)] == seq_a
        assert diverged != seq_a

    def test_streams_are_per_source_node(self):
        rs = RouteState(ValiantRouting(), 4, seed=3)
        dests = frozenset([7])
        seq0 = [rs.packet_header(0, dests)[0] for _ in range(30)]
        seq1 = [rs.packet_header(1, dests)[0] for _ in range(30)]
        assert seq0 != seq1

    def test_capacity_bound_clears_instead_of_growing(self):
        rs = RouteState(XYRouting(), 4, capacity=8)
        for d in range(16):
            rs.route(0, frozenset([d]), None)
        assert rs.cache_info()["size"] <= 8
