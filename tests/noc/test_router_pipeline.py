"""Cycle-exact pipeline behaviour of every router design point.

These are the load-bearing tests of the reproduction: the zero-load
latency of each design must match the analytical pipeline model
exactly — one cycle per hop plus two NIC links for the bypassed router,
three (four) cycles per hop for the aggressive (textbook) baseline —
because the paper's Fig. 5/13 latency floors are precisely these
numbers.
"""

import pytest

from repro import (
    Simulator,
    baseline_network,
    proposed_network,
    strawman_network,
    textbook_network,
)
from repro.noc.flit import MessageClass
from repro.noc.routing import xy_distance
from repro.traffic import MessageSpec, SyntheticBurst


def run_single_message(cfg, src, dests, mclass=MessageClass.REQUEST, flits=1,
                       cycles=120, inject_at=2):
    spec = MessageSpec(frozenset(dests), mclass, flits)
    sim = Simulator(cfg, SyntheticBurst({(inject_at, src): [spec]}))
    sim.run(cycles)
    message = sim.network.messages[0]
    assert message.complete, "message never delivered"
    return message.latency, sim


class TestProposedZeroLoad:
    """Bypassed router: exactly H + 2 cycles for single-flit packets."""

    @pytest.mark.parametrize(
        "src,dst", [(0, 1), (0, 4), (0, 15), (5, 6), (12, 3), (15, 0), (3, 12)]
    )
    def test_unicast_is_hops_plus_two(self, src, dst):
        latency, _ = run_single_message(proposed_network(), src, [dst])
        assert latency == xy_distance(src, dst, 4) + 2

    def test_self_delivery_two_nic_cycles(self):
        latency, _ = run_single_message(proposed_network(), 5, [5])
        assert latency == 2

    @pytest.mark.parametrize("src", [0, 3, 5, 10, 15])
    def test_broadcast_is_furthest_hops_plus_two(self, src):
        latency, _ = run_single_message(proposed_network(), src, range(16))
        furthest = max(xy_distance(src, d, 4) for d in range(16))
        assert latency == furthest + 2

    def test_every_hop_bypassed_at_zero_load(self):
        _, sim = run_single_message(proposed_network(), 0, [15])
        activity = sim.network.total_router_activity()
        assert activity.bypasses == activity.xbar_input_traversals == 7
        assert activity.buffer_writes == 0

    def test_five_flit_response_latency(self):
        # head: H+2; tail follows with one credit-turnaround stall on
        # the 3-deep response VC (measured contract of the design)
        latency, _ = run_single_message(
            proposed_network(), 0, [3], MessageClass.RESPONSE, flits=5
        )
        assert latency == xy_distance(0, 3, 4) + 2 + 5


class TestStrawmanZeroLoad:
    """Multicast router without bypassing: 3 cycles per hop."""

    @pytest.mark.parametrize("src,dst", [(0, 1), (0, 15), (5, 10)])
    def test_unicast_three_cycles_per_hop(self, src, dst):
        latency, _ = run_single_message(strawman_network(), src, [dst])
        hops = xy_distance(src, dst, 4)
        assert latency == 3 * (hops + 1) + 1

    def test_broadcast_single_injection(self):
        latency, sim = run_single_message(strawman_network(), 0, range(16))
        assert latency == 3 * (6 + 1) + 1
        # one injected flit, tree-replicated: 15 links + 16 ejections
        activity = sim.network.total_router_activity()
        assert activity.link_traversals == 15
        assert activity.ejections == 16

    def test_no_lookaheads_without_bypass(self):
        _, sim = run_single_message(strawman_network(), 0, [15])
        assert sim.network.total_router_activity().la_sent == 0


class TestBaselineZeroLoad:
    """No multicast: broadcasts become 16 serialised unicasts."""

    @pytest.mark.parametrize("src,dst", [(0, 1), (0, 15)])
    def test_unicast_same_as_strawman(self, src, dst):
        latency, _ = run_single_message(baseline_network(), src, [dst])
        assert latency == 3 * (xy_distance(src, dst, 4) + 1) + 1

    def test_broadcast_serialization_blowup(self):
        latency, sim = run_single_message(baseline_network(), 0, range(16))
        # 16 unicast copies injected one per cycle through one NIC
        assert latency > 3 * 7 + 1 + 14
        activity = sim.network.total_router_activity()
        assert activity.ejections == 16
        # unicast copies do not share links: far more link traversals
        # than the multicast tree's 15
        assert activity.link_traversals > 30

    def test_broadcast_expands_to_16_packets(self):
        _, sim = run_single_message(baseline_network(), 0, range(16))
        message = sim.network.messages[0]
        assert len(message._pending) == 0
        assert sim.network.total_nic_activity().injections == 16


class TestTextbookZeroLoad:
    """Separate ST and LT stages: 4 cycles per hop (Fig. 1)."""

    @pytest.mark.parametrize("src,dst", [(0, 1), (0, 15)])
    def test_four_cycles_per_hop(self, src, dst):
        latency, _ = run_single_message(textbook_network(), src, [dst])
        assert latency == 4 * (xy_distance(src, dst, 4) + 1) + 1

    def test_textbook_cannot_bypass(self):
        with pytest.raises(ValueError):
            textbook_network(bypass=True)


class TestPipelineCorrectness:
    def test_flits_of_packet_arrive_in_order(self):
        _, sim = run_single_message(
            proposed_network(), 0, [15], MessageClass.RESPONSE, flits=5
        )
        assert sim.network.messages[0].complete

    def test_two_concurrent_broadcasts_all_delivered(self):
        cfg = proposed_network()
        spec = MessageSpec(frozenset(range(16)), MessageClass.REQUEST, 1)
        sim = Simulator(
            cfg, SyntheticBurst({(2, 0): [spec], (2, 15): [spec]})
        )
        sim.run(200)
        assert all(m.complete for m in sim.network.messages)
        assert sim.network.total_router_activity().ejections == 32

    def test_contention_forces_buffering(self):
        """Two flits fighting for one output port cannot both bypass.

        Node 0's flit (3 hops via routers 1,2,3) and node 6's flit
        (2 hops via router 7) both reach router 3's ejection port in
        the same cycle; exactly one lookahead wins pre-allocation and
        the loser must buffer.
        """
        cfg = proposed_network()
        spec = MessageSpec(frozenset([3]), MessageClass.REQUEST, 1)
        sim = Simulator(cfg, SyntheticBurst({(2, 0): [spec], (3, 6): [spec]}))
        sim.run(100)
        assert all(m.complete for m in sim.network.messages)
        activity = sim.network.total_router_activity()
        assert activity.buffer_writes >= 1  # someone lost pre-allocation

    def test_network_drains_clean(self):
        cfg = proposed_network()
        spec = MessageSpec(frozenset(range(16)), MessageClass.REQUEST, 1)
        sim = Simulator(cfg, SyntheticBurst({(2, 5): [spec]}))
        sim.run(120)
        assert sim.network.idle()
        for router in sim.network.routers:
            for op in router.out_ports:
                assert op.tracker.all_free()

    def test_credits_conserved_after_drain(self):
        cfg = baseline_network()
        specs = {
            (2, n): [MessageSpec(frozenset([(n + 7) % 16]), MessageClass.REQUEST, 1)]
            for n in range(16)
        }
        sim = Simulator(cfg, SyntheticBurst(specs))
        sim.run(200)
        assert sim.network.idle()
        for nic in sim.network.nics:
            assert nic.tracker.all_free()

    def test_multiflit_multicast_rejected(self):
        cfg = proposed_network()
        with pytest.raises(NotImplementedError):
            run_single_message(
                cfg, 0, range(16), MessageClass.RESPONSE, flits=5
            )
