"""Object-vs-array backend equivalence (DESIGN.md §9).

The array backend's contract is *byte identity*: for every workload it
accepts, ``Simulator(backend="array")`` must produce the same
WindowStats bytes — and the same per-router and per-NIC activity
counters — as the object-loop oracle.  These tests pin that contract
across the {injection} × {routing} × {pattern} matrix named in the
backend's support matrix, plus the adversarial axes the matrix hides
(multi-flit bodies, the no-bypass baseline pipeline, hotspot's
two-word destination draws, MMP's masked chain streams), and they pin
the *rejection* surface: everything outside the support matrix must
raise a clear ValueError instead of silently diverging.
"""

import json

import pytest

from repro.noc.backend import backend_names, resolve_backend
from repro.noc.config import (
    NocConfig,
    proposed_vc_config,
    routed_vc_config,
)
from repro.noc.simulator import Simulator
from repro.noc.routing import make_routing
from repro.traffic import SyntheticBurst, SyntheticTraffic
from repro.traffic.mix import (
    MIXED_TRAFFIC,
    TrafficComponent,
    TrafficMix,
    UNIFORM_UNICAST,
)
from repro.noc.flit import MessageClass
from repro.traffic.patterns import HotspotPattern, make_pattern
from repro.traffic.processes import MMPProcess, make_process

FAST = dict(warmup=100, measure=300, drain=400)

#: unicast mix with 5-flit response bodies: exercises the body-flit
#: credit path and the NIC's class round-robin, which the single-flit
#: UNIFORM_UNICAST mix never touches
MULTI_FLIT = TrafficMix(
    "uni_multi",
    (
        TrafficComponent(
            "unicast_request", 0.5, MessageClass.REQUEST, 1, broadcast=False
        ),
        TrafficComponent(
            "unicast_response", 0.5, MessageClass.RESPONSE, 5, broadcast=False
        ),
    ),
)


def run_backend(backend, routing="xy", pattern="uniform",
                injection="bernoulli", mix=UNIFORM_UNICAST, bypass=True,
                rate=0.14, k=4, seed=11):
    """One experiment window; returns (stats bytes, router counters,
    NIC counters) so comparisons cover every observable surface."""
    alg = make_routing(routing)
    vcs = routed_vc_config() if routing == "o1turn" else proposed_vc_config()
    cfg = NocConfig(k=k, vcs=vcs, bypass=bypass, routing=alg)
    traffic = SyntheticTraffic(
        mix,
        injection_rate=rate,
        seed=seed,
        pattern=None if pattern == "uniform" else make_pattern(pattern),
        process=None if injection == "bernoulli" else make_process(injection),
    )
    sim = Simulator(cfg, traffic=traffic, backend=backend)
    stats = sim.run_experiment(**FAST)
    return (
        json.dumps(stats.to_dict(), sort_keys=True),
        [s.as_dict() for s in sim.network.router_stats],
        [s.as_dict() for s in sim.network.nic_stats],
    )


def assert_equivalent(**kwargs):
    assert run_backend("object", **kwargs) == run_backend("array", **kwargs)


class TestEquivalenceMatrix:
    """The ISSUE's {bernoulli,onoff} × {xy,o1turn} × {uniform,
    transpose,tornado} matrix, byte-identical on every surface."""

    @pytest.mark.parametrize("injection", ["bernoulli", "onoff"])
    @pytest.mark.parametrize("routing", ["xy", "o1turn"])
    @pytest.mark.parametrize("pattern", ["uniform", "transpose", "tornado"])
    def test_window_stats_and_counters_byte_identical(
        self, injection, routing, pattern
    ):
        assert_equivalent(
            routing=routing, pattern=pattern, injection=injection
        )


class TestEquivalenceEdges:
    def test_yx_routing(self):
        assert_equivalent(routing="yx", pattern="transpose")

    def test_multi_flit_bodies(self):
        assert_equivalent(mix=MULTI_FLIT, rate=0.2)

    def test_no_bypass_baseline_pipeline(self):
        assert_equivalent(bypass=False, rate=0.21, pattern="transpose")

    def test_mmp_injection_with_hotspot_pattern(self):
        # two-word destination draws + masked per-state chain streams
        cfg = NocConfig(k=4)
        results = []
        for backend in ("object", "array"):
            traffic = SyntheticTraffic(
                UNIFORM_UNICAST,
                injection_rate=0.14,
                seed=11,
                pattern=HotspotPattern(hot_nodes=(0, 5), fraction=0.3),
                process=MMPProcess(),
            )
            sim = Simulator(cfg, traffic=traffic, backend=backend)
            stats = sim.run_experiment(**FAST)
            results.append(json.dumps(stats.to_dict(), sort_keys=True))
        assert results[0] == results[1]

    def test_saturated_8x8(self):
        assert_equivalent(rate=0.21, k=8)

    def test_identical_generators_chip_artifact(self):
        cfg = NocConfig(k=4)
        results = []
        for backend in ("object", "array"):
            traffic = SyntheticTraffic(
                UNIFORM_UNICAST, 0.1, seed=7, identical_generators=True
            )
            sim = Simulator(cfg, traffic=traffic, backend=backend)
            results.append(
                json.dumps(
                    sim.run_experiment(**FAST).to_dict(), sort_keys=True
                )
            )
        assert results[0] == results[1]


class TestBackendSelection:
    def test_registry_names(self):
        assert backend_names() == ("array", "object")

    def test_unknown_backend_raises_with_choices(self):
        with pytest.raises(ValueError, match=r"array.*object"):
            Simulator(NocConfig(k=4), backend="vector")

    def test_resolve_unknown_names_available(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            resolve_backend("cuda")

    def test_object_backend_is_default_class(self):
        sim = Simulator(NocConfig(k=4))
        assert type(sim) is Simulator
        assert sim.backend == "object"

    def test_array_backend_dispatches(self):
        sim = Simulator(NocConfig(k=4), backend="array")
        assert sim.backend == "array"
        assert type(sim) is not Simulator


class TestSupportMatrixRejections:
    """Everything outside the support matrix fails loudly, never
    silently diverges."""

    def test_broadcast_mix_rejected(self):
        sim = Simulator(NocConfig(k=4), backend="array")
        with pytest.raises(ValueError, match="broadcast"):
            sim.attach_traffic(SyntheticTraffic(MIXED_TRAFFIC, 0.05, seed=7))

    def test_valiant_routing_rejected(self):
        cfg = NocConfig(
            k=4, vcs=routed_vc_config(), routing=make_routing("valiant")
        )
        with pytest.raises(ValueError, match="valiant"):
            Simulator(cfg, backend="array")

    def test_separate_st_lt_rejected(self):
        cfg = NocConfig(k=4, bypass=False, separate_st_lt=True)
        with pytest.raises(ValueError, match="separate_st_lt"):
            Simulator(cfg, backend="array")

    def test_faults_rejected(self):
        from repro.noc.faults import BitErrorFaults

        sim = Simulator(NocConfig(k=4), backend="array")
        with pytest.raises(ValueError, match="fault"):
            sim.attach_faults(BitErrorFaults(rate=0.01), seed=7)

    def test_scripted_burst_source_rejected(self):
        sim = Simulator(NocConfig(k=4), backend="array")
        with pytest.raises(ValueError, match="SyntheticTraffic"):
            sim.attach_traffic(SyntheticBurst({}))
