"""Object-vs-array backend equivalence (DESIGN.md §9).

The array backend's contract is *byte identity*: for every workload it
accepts, ``Simulator(backend="array")`` must produce the same
WindowStats bytes — and the same per-router and per-NIC activity
counters — as the object-loop oracle.  These tests pin that contract
across the {injection} × {routing} × {pattern} matrix named in the
backend's support matrix, plus the adversarial axes the matrix hides
(multi-flit bodies, the no-bypass baseline pipeline, hotspot's
two-word destination draws, MMP's masked chain streams), and they pin
the *rejection* surface: everything outside the support matrix must
raise a clear ValueError instead of silently diverging.
"""

import json

import pytest

from repro.noc.backend import backend_names, resolve_backend
from repro.noc.config import (
    NocConfig,
    proposed_vc_config,
    routed_vc_config,
)
from repro.noc.simulator import Simulator
from repro.noc.routing import make_routing
from repro.traffic import SyntheticBurst, SyntheticTraffic
from repro.traffic.mix import (
    MIXED_TRAFFIC,
    TrafficComponent,
    TrafficMix,
    UNIFORM_UNICAST,
)
from repro.noc.flit import MessageClass
from repro.traffic.patterns import HotspotPattern, make_pattern
from repro.traffic.processes import MMPProcess, make_process

FAST = dict(warmup=100, measure=300, drain=400)

#: unicast mix with 5-flit response bodies: exercises the body-flit
#: credit path and the NIC's class round-robin, which the single-flit
#: UNIFORM_UNICAST mix never touches
MULTI_FLIT = TrafficMix(
    "uni_multi",
    (
        TrafficComponent(
            "unicast_request", 0.5, MessageClass.REQUEST, 1, broadcast=False
        ),
        TrafficComponent(
            "unicast_response", 0.5, MessageClass.RESPONSE, 5, broadcast=False
        ),
    ),
)


def _point(routing="xy", pattern="uniform", injection="bernoulli",
           mix=UNIFORM_UNICAST, bypass=True, rate=0.14, k=4, seed=11):
    """(config, traffic) for one operating point of the matrix."""
    alg = make_routing(routing)
    vcs = (
        routed_vc_config()
        if routing in ("o1turn", "valiant")
        else proposed_vc_config()
    )
    cfg = NocConfig(k=k, vcs=vcs, bypass=bypass, routing=alg)
    traffic = SyntheticTraffic(
        mix,
        injection_rate=rate,
        seed=seed,
        pattern=None if pattern == "uniform" else make_pattern(pattern),
        process=None if injection == "bernoulli" else make_process(injection),
    )
    return cfg, traffic


def _observables(stats, network):
    return (
        json.dumps(stats.to_dict(), sort_keys=True),
        [s.as_dict() for s in network.router_stats],
        [s.as_dict() for s in network.nic_stats],
    )


def run_backend(backend, **kwargs):
    """One experiment window; returns (stats bytes, router counters,
    NIC counters) so comparisons cover every observable surface."""
    cfg, traffic = _point(**kwargs)
    sim = Simulator(cfg, traffic=traffic, backend=backend)
    stats = sim.run_experiment(**FAST)
    return _observables(stats, sim.network)


def run_batched(seeds, **kwargs):
    """One batched multi-seed window; returns the per-lane observable
    triples, in seed order."""
    cfg, traffic = _point(**kwargs)
    sim = Simulator(cfg, traffic=traffic, backend="array", seeds=seeds)
    stats = sim.run_experiment_batch(**FAST)
    return [
        _observables(st, sim.lane_network(b)) for b, st in enumerate(stats)
    ]


def assert_equivalent(**kwargs):
    assert run_backend("object", **kwargs) == run_backend("array", **kwargs)


class TestEquivalenceMatrix:
    """The ISSUE's {bernoulli,onoff} × {xy,o1turn,valiant} × {uniform,
    transpose,tornado} matrix, byte-identical on every surface."""

    @pytest.mark.parametrize("injection", ["bernoulli", "onoff"])
    @pytest.mark.parametrize("routing", ["xy", "o1turn", "valiant"])
    @pytest.mark.parametrize("pattern", ["uniform", "transpose", "tornado"])
    def test_window_stats_and_counters_byte_identical(
        self, injection, routing, pattern
    ):
        assert_equivalent(
            routing=routing, pattern=pattern, injection=injection
        )


class TestMulticastEquivalence:
    """XY-tree broadcast fanout (the k²-scaling traffic): the mixed
    broadcast/unicast mix, byte-identical on every observable,
    including when the unicasts route o1turn or valiant around the XY
    multicast trees."""

    @pytest.mark.parametrize("routing", ["xy", "o1turn", "valiant"])
    def test_mixed_mix_byte_identical(self, routing):
        assert_equivalent(mix=MIXED_TRAFFIC, routing=routing, rate=0.05)

    def test_mixed_mix_saturating(self):
        assert_equivalent(mix=MIXED_TRAFFIC, rate=0.12)

    def test_mixed_mix_no_bypass(self):
        assert_equivalent(mix=MIXED_TRAFFIC, rate=0.05, bypass=False)


class TestBatchedLanes:
    """The batch axis: lane *k* of ``seeds=[...]`` must be
    byte-identical — WindowStats JSON, per-router counters, per-NIC
    counters — to a single-seed array run (and, transitively through
    the equivalence matrix above, to the object oracle)."""

    SEEDS = [3, 101]

    @pytest.mark.parametrize("injection", ["bernoulli", "onoff"])
    @pytest.mark.parametrize("routing", ["xy", "o1turn", "valiant"])
    @pytest.mark.parametrize("pattern", ["uniform", "transpose"])
    def test_lanes_match_single_seed_runs(self, injection, routing, pattern):
        kwargs = dict(routing=routing, pattern=pattern, injection=injection)
        lanes = run_batched(self.SEEDS, **kwargs)
        for seed, lane in zip(self.SEEDS, lanes):
            assert lane == run_backend("array", seed=seed, **kwargs)

    def test_multicast_lanes_match_single_seed_runs(self):
        kwargs = dict(mix=MIXED_TRAFFIC, rate=0.05)
        lanes = run_batched(self.SEEDS, **kwargs)
        for seed, lane in zip(self.SEEDS, lanes):
            assert lane == run_backend("array", seed=seed, **kwargs)

    def test_lanes_match_the_object_oracle(self):
        lanes = run_batched([11, 42], routing="valiant")
        for seed, lane in zip([11, 42], lanes):
            assert lane == run_backend("object", seed=seed, routing="valiant")

    def test_template_seed_is_ignored(self):
        cfg, traffic = _point(seed=999)
        sim = Simulator(cfg, traffic=traffic, backend="array", seeds=[3, 11])
        stats = sim.run_experiment_batch(**FAST)
        singles = [
            run_backend("array", seed=s)[0] for s in (3, 11)
        ]
        assert [
            json.dumps(st.to_dict(), sort_keys=True) for st in stats
        ] == singles

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Simulator(NocConfig(k=4), backend="array", seeds=[])

    def test_object_backend_rejects_seeds(self):
        with pytest.raises(ValueError, match="backend='array'"):
            Simulator(NocConfig(k=4), seeds=[3, 11])


class TestEquivalenceEdges:
    def test_yx_routing(self):
        assert_equivalent(routing="yx", pattern="transpose")

    def test_multi_flit_bodies(self):
        assert_equivalent(mix=MULTI_FLIT, rate=0.2)

    def test_no_bypass_baseline_pipeline(self):
        assert_equivalent(bypass=False, rate=0.21, pattern="transpose")

    def test_mmp_injection_with_hotspot_pattern(self):
        # two-word destination draws + masked per-state chain streams
        cfg = NocConfig(k=4)
        results = []
        for backend in ("object", "array"):
            traffic = SyntheticTraffic(
                UNIFORM_UNICAST,
                injection_rate=0.14,
                seed=11,
                pattern=HotspotPattern(hot_nodes=(0, 5), fraction=0.3),
                process=MMPProcess(),
            )
            sim = Simulator(cfg, traffic=traffic, backend=backend)
            stats = sim.run_experiment(**FAST)
            results.append(json.dumps(stats.to_dict(), sort_keys=True))
        assert results[0] == results[1]

    def test_saturated_8x8(self):
        assert_equivalent(rate=0.21, k=8)

    def test_identical_generators_chip_artifact(self):
        cfg = NocConfig(k=4)
        results = []
        for backend in ("object", "array"):
            traffic = SyntheticTraffic(
                UNIFORM_UNICAST, 0.1, seed=7, identical_generators=True
            )
            sim = Simulator(cfg, traffic=traffic, backend=backend)
            results.append(
                json.dumps(
                    sim.run_experiment(**FAST).to_dict(), sort_keys=True
                )
            )
        assert results[0] == results[1]


class TestBackendSelection:
    def test_registry_names(self):
        assert backend_names() == ("array", "object")

    def test_unknown_backend_raises_with_choices(self):
        with pytest.raises(ValueError, match=r"array.*object"):
            Simulator(NocConfig(k=4), backend="vector")

    def test_resolve_unknown_names_available(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            resolve_backend("cuda")

    def test_object_backend_is_default_class(self):
        sim = Simulator(NocConfig(k=4))
        assert type(sim) is Simulator
        assert sim.backend == "object"

    def test_array_backend_dispatches(self):
        sim = Simulator(NocConfig(k=4), backend="array")
        assert sim.backend == "array"
        assert type(sim) is not Simulator


class TestSupportMatrixRejections:
    """Everything outside the support matrix fails loudly, never
    silently diverges.  Broadcast mixes and valiant routing moved to
    the *supported* side (TestMulticastEquivalence /
    TestEquivalenceMatrix above); what remains rejected is
    ``separate_st_lt``, faults, probes, non-synthetic sources — and
    broadcast traffic on a config without router-level multicast,
    which would need per-destination flit replication."""

    def test_broadcast_on_multicast_free_config_rejected(self):
        sim = Simulator(NocConfig(k=4, multicast=False), backend="array")
        with pytest.raises(ValueError, match="multicast=False"):
            sim.attach_traffic(SyntheticTraffic(MIXED_TRAFFIC, 0.05, seed=7))

    def test_broadcast_under_yx_routing_rejected(self):
        # yx cannot share the network with XY multicast trees; the
        # array backend mirrors the object backend's rejection
        cfg = NocConfig(k=4, routing=make_routing("yx"))
        sim = Simulator(cfg, backend="array")
        with pytest.raises(ValueError, match="multicast trees are XY-only"):
            sim.attach_traffic(SyntheticTraffic(MIXED_TRAFFIC, 0.05, seed=7))

    def test_separate_st_lt_rejected(self):
        cfg = NocConfig(k=4, bypass=False, separate_st_lt=True)
        with pytest.raises(ValueError, match="separate_st_lt"):
            Simulator(cfg, backend="array")

    def test_faults_rejected(self):
        from repro.noc.faults import BitErrorFaults

        sim = Simulator(NocConfig(k=4), backend="array")
        with pytest.raises(ValueError, match="fault"):
            sim.attach_faults(BitErrorFaults(rate=0.01), seed=7)

    def test_scripted_burst_source_rejected(self):
        sim = Simulator(NocConfig(k=4), backend="array")
        with pytest.raises(ValueError, match="SyntheticTraffic"):
            sim.attach_traffic(SyntheticBurst({}))
