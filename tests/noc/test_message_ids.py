"""Message/packet id counters are per-simulation, not per-process.

The counters used to be module-level ``itertools.count()`` instances,
so a worker's Nth simulation saw different mids than a fresh
interpreter would — ids are now owned by the :class:`MeshNetwork` and
every run numbers from 0.
"""

from repro.noc.config import NocConfig
from repro.noc.metrics import ActivityCounters
from repro.noc.nic import Nic
from repro.noc.simulator import Simulator
from repro.noc.flit import MessageClass
from repro.traffic.generators import BernoulliTraffic
from repro.traffic.mix import MIXED_TRAFFIC
from repro.traffic.spec import MessageSpec


def run_small_sim():
    traffic = BernoulliTraffic(MIXED_TRAFFIC, 0.1, seed=3)
    sim = Simulator(NocConfig(), traffic)
    sim.run(200)
    return sim.network


def test_ids_start_from_zero_every_simulation():
    for _ in range(2):
        net = run_small_sim()
        messages = net.messages
        assert messages, "expected traffic at rate 0.1 within 200 cycles"
        assert messages[0].mid == 0
        assert min(m.mid for m in messages) == 0
        # probing the shared counters shows how many ids were issued;
        # a fresh network must have issued exactly len(messages) mids
        assert next(net.message_ids) == len(messages)
        assert next(net.packet_ids) >= len(messages)


def test_back_to_back_simulations_are_identical():
    first = run_small_sim().messages
    second = run_small_sim().messages
    assert [m.mid for m in first] == [m.mid for m in second]
    assert [m.src for m in first] == [m.src for m in second]
    assert [m.destinations for m in first] == [m.destinations for m in second]


def test_ids_are_unique_within_a_network():
    messages = run_small_sim().messages
    mids = [m.mid for m in messages]
    assert len(set(mids)) == len(mids)


def test_standalone_nic_numbers_from_zero():
    cfg = NocConfig()
    nic = Nic(cfg, 0, ActivityCounters(), [])
    spec = MessageSpec(frozenset([1]), MessageClass.REQUEST, 1)
    first = nic.submit(spec, 0)
    second = nic.submit(spec, 1)
    assert first.mid == 0
    assert second.mid == 1
