"""Round-robin and matrix arbiter behaviour."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.arbiters import MatrixArbiter, RoundRobinArbiter


class TestRoundRobin:
    def test_single_requester_wins(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([2]) == 2

    def test_no_requesters(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([]) is None

    def test_pointer_advances_past_winner(self):
        arb = RoundRobinArbiter(4)
        assert arb.grant([0, 1, 2, 3]) == 0
        assert arb.peek() == 1

    def test_full_contention_round_robins(self):
        arb = RoundRobinArbiter(4)
        winners = [arb.grant([0, 1, 2, 3]) for _ in range(8)]
        assert winners == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_starvation_freedom_under_contention(self):
        arb = RoundRobinArbiter(5)
        served = set()
        for _ in range(5):
            served.add(arb.grant([0, 1, 2, 3, 4]))
        assert served == {0, 1, 2, 3, 4}

    def test_skips_non_requesters(self):
        arb = RoundRobinArbiter(4)
        arb.grant([0, 1, 2, 3])  # pointer now at 1
        assert arb.grant([0, 3]) == 3

    def test_wraps_around(self):
        arb = RoundRobinArbiter(3)
        arb.grant([2])
        assert arb.grant([0]) == 0

    def test_rejects_zero_requesters(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=8))
    def test_winner_is_always_a_requester(self, requests):
        arb = RoundRobinArbiter(8)
        winner = arb.grant(requests)
        assert winner in set(requests)

    @given(st.lists(st.sets(st.integers(0, 5), min_size=1), min_size=2, max_size=30))
    def test_bounded_wait(self, rounds):
        """A requester that requests every round is served within n rounds."""
        arb = RoundRobinArbiter(6)
        persistent = 3
        waited = 0
        for req in rounds:
            winner = arb.grant(req | {persistent})
            if winner == persistent:
                waited = 0
            else:
                waited += 1
            assert waited <= 6

    def test_deterministic_sequence(self):
        a, b = RoundRobinArbiter(4), RoundRobinArbiter(4)
        reqs = [[0, 2], [1, 3], [0, 1, 2, 3], [2], [0, 3]]
        assert [a.grant(r) for r in reqs] == [b.grant(r) for r in reqs]


class TestMatrixArbiter:
    def test_single_requester_wins(self):
        arb = MatrixArbiter(5)
        assert arb.grant([4]) == 4

    def test_no_requesters(self):
        arb = MatrixArbiter(5)
        assert arb.grant([]) is None

    def test_initial_priority_order(self):
        arb = MatrixArbiter(4)
        assert arb.grant([1, 2, 3]) == 1

    def test_winner_becomes_lowest_priority(self):
        arb = MatrixArbiter(3)
        assert arb.grant([0, 1]) == 0
        assert arb.grant([0, 1]) == 1
        assert arb.grant([0, 2]) == 2

    def test_least_recently_served_fairness(self):
        arb = MatrixArbiter(4)
        winners = [arb.grant([0, 1, 2, 3]) for _ in range(8)]
        assert winners[:4] == [0, 1, 2, 3]
        assert winners[4:] == [0, 1, 2, 3]

    def test_priority_is_total_order(self):
        arb = MatrixArbiter(5)
        for i in range(5):
            for j in range(5):
                if i != j:
                    assert arb.wins_over(i, j) != arb.wins_over(j, i)

    def test_duplicate_requests_collapse(self):
        arb = MatrixArbiter(3)
        assert arb.grant([2, 2, 2]) == 2

    def test_rejects_zero_requesters(self):
        with pytest.raises(ValueError):
            MatrixArbiter(0)

    @given(st.lists(st.sets(st.integers(0, 4), min_size=1), min_size=1, max_size=40))
    def test_winner_always_a_requester_and_no_starvation(self, rounds):
        arb = MatrixArbiter(5)
        waiting = {}
        for req in rounds:
            winner = arb.grant(sorted(req))
            assert winner in req
            for r in req:
                waiting[r] = 0 if r == winner else waiting.get(r, 0) + 1
                assert waiting[r] <= 5

    @given(st.sets(st.integers(0, 4), min_size=2))
    def test_state_update_consistent(self, req):
        arb = MatrixArbiter(5)
        winner = arb.grant(sorted(req))
        for other in req:
            if other != winner:
                assert arb.wins_over(other, winner)
