"""NocConfig validation and flit/packet/message semantics."""

import pytest

from repro.noc.config import NocConfig, VCSpec, proposed_vc_config
from repro.noc.flit import Flit, Message, MessageClass, Packet


class TestNocConfig:
    def test_chip_defaults(self):
        cfg = NocConfig()
        assert cfg.k == 4
        assert cfg.num_nodes == 16
        assert cfg.flit_bits == 64
        assert cfg.num_vcs == 6
        assert cfg.buffers_per_port == 10
        assert cfg.frequency_ghz == 1.0

    def test_vc_classes(self):
        cfg = NocConfig()
        assert cfg.vcs_of_class(MessageClass.REQUEST) == (0, 1, 2, 3)
        assert cfg.vcs_of_class(MessageClass.RESPONSE) == (4, 5)

    def test_ejection_bandwidth(self):
        assert NocConfig().ejection_bandwidth_gbps == 1024.0

    def test_link_delay(self):
        assert NocConfig().link_delay == 1
        assert NocConfig(
            separate_st_lt=True, bypass=False
        ).link_delay == 2

    def test_with_override(self):
        cfg = NocConfig().with_(k=8)
        assert cfg.k == 8
        assert cfg.num_nodes == 64

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(k=1),
            dict(flit_bits=0),
            dict(frequency_ghz=0),
            dict(vcs=()),
            dict(vcs=(VCSpec(MessageClass.REQUEST, 1),)),  # no RESPONSE VC
            dict(bypass=True, separate_st_lt=True),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NocConfig(**kwargs)

    def test_proposed_vc_config_sizing(self):
        vcs = proposed_vc_config()
        req = [v for v in vcs if v.mclass == MessageClass.REQUEST]
        resp = [v for v in vcs if v.mclass == MessageClass.RESPONSE]
        assert len(req) == 4 and all(v.depth == 1 for v in req)
        assert len(resp) == 2 and all(v.depth == 3 for v in resp)


class TestPacketMessage:
    def make_message(self, dests, flits=1, mclass=MessageClass.REQUEST):
        return Message(1, 0, frozenset(dests), mclass, flits, 10)

    def test_packet_validation(self):
        msg = self.make_message([1])
        with pytest.raises(ValueError):
            Packet(1, msg, 0, frozenset([1]), MessageClass.REQUEST, 0)

    def test_multiflit_multicast_rejected(self):
        msg = self.make_message([1, 2], flits=5)
        with pytest.raises(NotImplementedError):
            Packet(1, msg, 0, frozenset([1, 2]), MessageClass.RESPONSE, 5)

    def test_make_flits_head_tail(self):
        msg = self.make_message([1], flits=5, mclass=MessageClass.RESPONSE)
        pkt = Packet(1, msg, 0, frozenset([1]), MessageClass.RESPONSE, 5)
        flits = pkt.make_flits()
        assert len(flits) == 5
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert all(not f.is_head and not f.is_tail for f in flits[1:-1])

    def test_single_flit_is_head_and_tail(self):
        msg = self.make_message([1])
        pkt = Packet(1, msg, 0, frozenset([1]), MessageClass.REQUEST, 1)
        (flit,) = pkt.make_flits()
        assert flit.is_head and flit.is_tail

    def test_message_completion_tracking(self):
        msg = self.make_message([1, 2])
        pkt = Packet(1, msg, 0, frozenset([1, 2]), MessageClass.REQUEST, 1)
        msg.register_packet(pkt)
        assert not msg.complete
        msg.record_delivery(1, pkt, 20)
        assert not msg.complete
        msg.record_delivery(2, pkt, 25)
        assert msg.complete
        assert msg.latency == 15

    def test_latency_before_completion_raises(self):
        msg = self.make_message([1])
        with pytest.raises(ValueError):
            _ = msg.latency

    def test_fork_splits_destinations(self):
        msg = self.make_message([1, 2, 3])
        pkt = Packet(1, msg, 0, frozenset([1, 2, 3]), MessageClass.REQUEST, 1)
        (flit,) = pkt.make_flits()
        flit.hops = 2
        copy = flit.fork([1])
        assert copy.destinations == frozenset([1])
        assert copy.hops == 2
        assert copy.packet is pkt
        assert copy.stage is None and copy.route is None

    def test_flit_uid_unique(self):
        msg = self.make_message([1], flits=3, mclass=MessageClass.RESPONSE)
        pkt = Packet(1, msg, 0, frozenset([1]), MessageClass.RESPONSE, 3)
        uids = [f.uid for f in pkt.make_flits()]
        assert len(set(uids)) == 3
