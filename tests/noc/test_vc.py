"""Input VC buffers and output-side credit trackers."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.config import VCSpec, proposed_vc_config
from repro.noc.flit import Flit, Message, MessageClass, Packet
from repro.noc.vc import CreditMsg, InputVC, OutputVCTracker


def make_flit(pid=1, seq=0, head=True, tail=True, mclass=MessageClass.REQUEST):
    msg = Message(0, 0, frozenset([1]), mclass, 1, 0)
    pkt = Packet(pid, msg, 0, frozenset([1]), mclass, max(seq + 1, 1))
    return Flit(pkt, seq, head, tail, frozenset([1]))


class TestInputVC:
    def test_write_and_occupancy(self):
        vc = InputVC(0, VCSpec(MessageClass.REQUEST, 2))
        vc.write(make_flit())
        assert vc.occupancy == 1

    def test_overflow_detected(self):
        vc = InputVC(0, VCSpec(MessageClass.REQUEST, 1))
        vc.write(make_flit())
        with pytest.raises(RuntimeError):
            vc.write(make_flit())

    def test_write_resets_stage(self):
        vc = InputVC(0, VCSpec(MessageClass.REQUEST, 2))
        f = make_flit()
        f.stage = "S2"
        vc.write(f)
        assert f.stage is None

    def test_oldest_unrequested_order(self):
        vc = InputVC(0, VCSpec(MessageClass.RESPONSE, 3))
        f1, f2 = make_flit(seq=0, tail=False), make_flit(seq=1, head=False)
        vc.write(f1)
        vc.write(f2)
        assert vc.oldest_unrequested() is f1

    def test_s2_flit_blocks_msa1(self):
        vc = InputVC(0, VCSpec(MessageClass.RESPONSE, 3))
        f1, f2 = make_flit(seq=0, tail=False), make_flit(seq=1, head=False)
        vc.write(f1)
        vc.write(f2)
        f1.stage = "S2"
        assert vc.oldest_unrequested() is None
        assert vc.s2_flit() is f1

    def test_granted_flit_skipped(self):
        vc = InputVC(0, VCSpec(MessageClass.RESPONSE, 3))
        f1, f2 = make_flit(seq=0, tail=False), make_flit(seq=1, head=False)
        vc.write(f1)
        vc.write(f2)
        f1.stage = "GRANTED"
        assert vc.oldest_unrequested() is f2

    def test_pop_enforces_fifo(self):
        vc = InputVC(0, VCSpec(MessageClass.RESPONSE, 3))
        f1, f2 = make_flit(seq=0, tail=False), make_flit(seq=1, head=False)
        vc.write(f1)
        vc.write(f2)
        with pytest.raises(RuntimeError):
            vc.pop(f2)
        vc.pop(f1)
        vc.pop(f2)
        assert vc.occupancy == 0

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            VCSpec(MessageClass.REQUEST, 0)


class TestOutputVCTracker:
    def tracker(self):
        return OutputVCTracker(proposed_vc_config())

    def test_initially_all_free(self):
        assert self.tracker().all_free()

    def test_alloc_head_takes_free_vc(self):
        t = self.tracker()
        vc = t.alloc_head(MessageClass.REQUEST, 42)
        assert vc in (0, 1, 2, 3)
        assert t.owner[vc] == 42
        assert t.credits[vc] == 0  # 1-deep request VC, slot consumed

    def test_alloc_exhaustion(self):
        t = self.tracker()
        for pid in range(4):
            assert t.alloc_head(MessageClass.REQUEST, pid) is not None
        assert t.alloc_head(MessageClass.REQUEST, 99) is None
        assert t.peek_free(MessageClass.REQUEST) is None

    def test_response_class_independent(self):
        t = self.tracker()
        for pid in range(4):
            t.alloc_head(MessageClass.REQUEST, pid)
        assert t.alloc_head(MessageClass.RESPONSE, 50) is not None

    def test_body_credit_flow(self):
        t = self.tracker()
        vc = t.alloc_head(MessageClass.RESPONSE, 7)
        assert t.credits[vc] == 2
        assert t.body_vc(7) == vc
        t.consume_body(7)
        t.consume_body(7)
        assert t.body_vc(7) is None  # out of credits

    def test_credit_return_restores_body_credit(self):
        t = self.tracker()
        vc = t.alloc_head(MessageClass.RESPONSE, 7)
        t.consume_body(7)
        t.consume_body(7)
        t.credit_return(CreditMsg(vc, tail=False))
        assert t.body_vc(7) == vc

    def test_tail_credit_frees_vc(self):
        t = self.tracker()
        vc = t.alloc_head(MessageClass.REQUEST, 7)
        t.credit_return(CreditMsg(vc, tail=True))
        assert t.owner[vc] is None
        assert t.all_free()

    def test_tail_free_requires_all_credits_back(self):
        t = self.tracker()
        vc = t.alloc_head(MessageClass.RESPONSE, 7)
        t.consume_body(7)
        with pytest.raises(RuntimeError):
            t.credit_return(CreditMsg(vc, tail=True))

    def test_freed_vc_is_reallocable(self):
        t = self.tracker()
        vc = t.alloc_head(MessageClass.REQUEST, 1)
        t.credit_return(CreditMsg(vc, tail=True))
        vc2 = t.alloc_head(MessageClass.REQUEST, 2)
        assert t.owner[vc2] == 2

    def test_credit_overflow_detected(self):
        t = self.tracker()
        with pytest.raises(RuntimeError):
            t.credit_return(CreditMsg(0, tail=False))

    def test_tail_credit_unowned_vc_detected(self):
        t = self.tracker()
        vc = t.alloc_head(MessageClass.REQUEST, 1)
        t.credit_return(CreditMsg(vc, tail=True))
        t.alloc_head(MessageClass.REQUEST, 2)  # different vc (FIFO free queue)
        with pytest.raises(RuntimeError):
            t.credit_return(CreditMsg(vc, tail=True))

    def test_free_queue_is_fifo(self):
        t = self.tracker()
        first = t.alloc_head(MessageClass.REQUEST, 1)
        t.credit_return(CreditMsg(first, tail=True))
        # freed VC goes to the back of the queue
        order = [t.alloc_head(MessageClass.REQUEST, 10 + i) for i in range(4)]
        assert order[-1] == first

    @given(st.lists(st.integers(0, 2), min_size=1, max_size=60))
    def test_random_alloc_release_never_corrupts(self, ops):
        """Random alloc/consume/release sequences keep invariants."""
        t = OutputVCTracker(proposed_vc_config())
        live = {}  # pid -> vc
        next_pid = 0
        for op in ops:
            if op == 0:  # allocate
                vc = t.alloc_head(MessageClass.RESPONSE, next_pid)
                if vc is not None:
                    live[next_pid] = [vc, 1]  # vc, outstanding slots
                    next_pid += 1
            elif op == 1 and live:  # consume a body credit
                pid = next(iter(live))
                if t.body_vc(pid) is not None:
                    t.consume_body(pid)
                    live[pid][1] += 1
            elif op == 2 and live:  # retire the packet
                pid, (vc, outstanding) = next(iter(live.items()))
                for _ in range(outstanding - 1):
                    t.credit_return(CreditMsg(vc, tail=False))
                t.credit_return(CreditMsg(vc, tail=True))
                del live[pid]
            for v, spec in enumerate(t.specs):
                assert 0 <= t.credits[v] <= spec.depth
        for pid, (vc, outstanding) in list(live.items()):
            for _ in range(outstanding - 1):
                t.credit_return(CreditMsg(vc, tail=False))
            t.credit_return(CreditMsg(vc, tail=True))
        assert t.all_free()
