"""Critical-path (Table 3) and area (Table 4) models."""

import pytest

from repro.physical.area import AreaModel
from repro.physical.critical_path import CriticalPathAnalysis
from repro.physical.gates import STD_GATES, Gate, GateChain


class TestGates:
    def test_logical_effort_delay(self):
        inv = STD_GATES["INV"]
        # d = tau * (p + g*h) = 3.5 * (1 + 1*4)
        assert inv.delay(4, 3.5) == pytest.approx(17.5)

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            STD_GATES["NAND2"].delay(0, 3.5)

    def test_chain_delay_is_sum(self):
        chain = GateChain(
            "t", [(STD_GATES["INV"], 2), (STD_GATES["NAND2"], 3)], 3.5
        )
        expected = STD_GATES["INV"].delay(2, 3.5) + STD_GATES["NAND2"].delay(
            3, 3.5
        )
        assert chain.delay_ps() == pytest.approx(expected)

    def test_chain_extension(self):
        chain = GateChain("t", [(STD_GATES["INV"], 2)], 3.5)
        longer = chain.extended("t2", [(STD_GATES["INV"], 2)])
        assert len(longer) == 2
        assert longer.delay_ps() == pytest.approx(2 * chain.delay_ps())

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            GateChain("t", [], 3.5)

    def test_stage_delays_named(self):
        chain = GateChain("t", [(STD_GATES["MUX2"], 3)], 3.5)
        (name_delay,) = chain.stage_delays()
        assert name_delay[0] == "MUX2"

    def test_higher_effort_gates_slower(self):
        assert Gate("x", 2.0, 2.0).delay(4, 3.5) > Gate("y", 1.0, 2.0).delay(
            4, 3.5
        )


class TestTable3:
    """Paper: 549/593 pre-layout, 658/793 post-layout, 961 measured."""

    def setup_method(self):
        self.report = CriticalPathAnalysis().report()

    def test_pre_layout_baseline(self):
        assert self.report.pre_layout_baseline_ps == pytest.approx(549, rel=0.02)

    def test_pre_layout_bypassed(self):
        assert self.report.pre_layout_bypassed_ps == pytest.approx(593, rel=0.02)

    def test_pre_layout_overhead_8pct(self):
        assert self.report.pre_layout_overhead == pytest.approx(1.08, abs=0.015)

    def test_post_layout_baseline(self):
        assert self.report.post_layout_baseline_ps == pytest.approx(658, rel=0.02)

    def test_post_layout_bypassed(self):
        assert self.report.post_layout_bypassed_ps == pytest.approx(793, rel=0.02)

    def test_post_layout_overhead_21pct(self):
        assert self.report.post_layout_overhead == pytest.approx(1.21, abs=0.02)

    def test_measured_961ps(self):
        assert self.report.measured_bypassed_ps == pytest.approx(961, rel=0.02)

    def test_measured_fmax_104ghz(self):
        assert self.report.measured_fmax_ghz == pytest.approx(1.04, abs=0.02)

    def test_layout_only_adds_delay(self):
        assert self.report.post_layout_baseline_ps > self.report.pre_layout_baseline_ps
        assert self.report.post_layout_bypassed_ps > self.report.pre_layout_bypassed_ps

    def test_silicon_slower_than_post_layout(self):
        assert self.report.measured_bypassed_ps > self.report.post_layout_bypassed_ps

    def test_overhead_masked_by_slower_core(self):
        """Section 4.2: a 1 GHz core hides the router timing overhead."""
        analysis = CriticalPathAnalysis()
        assert analysis.masked_by_core(core_frequency_ghz=1.0)
        assert not analysis.masked_by_core(core_frequency_ghz=2.0)


class TestTable4:
    """Paper: crossbars 26,840 vs 83,200 um^2 (3.1x); routers 227,230
    vs 318,600 um^2 (1.4x)."""

    def setup_method(self):
        self.area = AreaModel()

    def test_full_swing_crossbar(self):
        assert self.area.full_swing_crossbar_um2 == pytest.approx(26_840, rel=0.01)

    def test_low_swing_crossbar(self):
        assert self.area.low_swing_crossbar_um2 == pytest.approx(83_200, rel=0.01)

    def test_crossbar_overhead_3_1x(self):
        assert self.area.crossbar_overhead == pytest.approx(3.1, abs=0.05)

    def test_full_swing_router(self):
        assert self.area.full_swing_router_um2 == pytest.approx(227_230, rel=0.01)

    def test_low_swing_router(self):
        assert self.area.low_swing_router_um2 == pytest.approx(318_600, rel=0.01)

    def test_router_overhead_1_4x(self):
        assert self.area.router_overhead == pytest.approx(1.4, abs=0.02)

    def test_bypass_overhead_5pct(self):
        assert self.area.bypass_overhead_fraction == pytest.approx(0.05, abs=0.005)

    def test_overhead_dilutes_up_the_hierarchy(self):
        """3.1x crossbar -> 1.4x router -> ~1.0x tile (Section 4.3)."""
        assert (
            self.area.tile_overhead()
            < self.area.router_overhead
            < self.area.crossbar_overhead
        )
        assert self.area.tile_overhead() < 1.1

    def test_buffers_dominate_router(self):
        assert self.area.buffer_array_um2 > self.area.full_swing_crossbar_um2
