"""Table 1 theoretical limits and Appendix A derivations."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.limits import MeshLimits


class TestTable1Values:
    """The exact k=4 numbers the paper's Table 1/2 quote."""

    def setup_method(self):
        self.lim = MeshLimits(4)

    def test_unicast_hops(self):
        assert self.lim.unicast_hops == pytest.approx(10 / 3)

    def test_broadcast_hops_paper_formula(self):
        assert self.lim.broadcast_hops_paper == 5.5

    def test_unicast_channel_loads(self):
        assert self.lim.bisection_load("unicast", 1.0) == 1.0  # kR/4
        assert self.lim.ejection_load("unicast", 1.0) == 1.0  # R

    def test_broadcast_channel_loads(self):
        assert self.lim.bisection_load("broadcast", 1.0) == 4.0  # k^2 R/4
        assert self.lim.ejection_load("broadcast", 1.0) == 16.0  # k^2 R

    def test_broadcast_limited_by_ejection(self):
        """Appendix A: broadcast throughput binds on ejection links."""
        rate = 0.05
        assert self.lim.ejection_load("broadcast", rate) > self.lim.bisection_load(
            "broadcast", rate
        )

    def test_unicast_max_rate_k4(self):
        # k <= 4: ejection binds, R = 1
        assert self.lim.max_injection_rate("unicast") == 1.0

    def test_broadcast_max_rate(self):
        assert self.lim.max_injection_rate("broadcast") == pytest.approx(1 / 16)

    def test_throughput_limit_gbps(self):
        # 16 nodes x 64b x 1GHz = 1024 Gb/s for both traffic types
        assert self.lim.throughput_limit_gbps("unicast") == 1024.0
        assert self.lim.throughput_limit_gbps("broadcast") == 1024.0

    def test_energy_limits(self):
        # unicast: (H+1) Exbar + H Elink; broadcast: k^2 Exbar + (k^2-1) Elink
        e = self.lim.energy_limit("unicast", 2.0, 3.0)
        assert e == pytest.approx((10 / 3 + 1) * 2 + (10 / 3) * 3)
        e = self.lim.energy_limit("broadcast", 2.0, 3.0)
        assert e == 16 * 2 + 15 * 3

    def test_latency_limit_with_nic(self):
        assert self.lim.latency_limit("unicast") == pytest.approx(10 / 3 + 2)
        assert self.lim.latency_limit("broadcast") == 7.5


class TestFormulas:
    def test_odd_k_broadcast_formula(self):
        lim = MeshLimits(5)
        assert lim.broadcast_hops_paper == pytest.approx(4 * 16 / 10)

    def test_broadcast_hops_exact_matches_geometry(self):
        """Fig. 9: furthest destination is the opposite quadrant corner."""
        lim = MeshLimits(4)
        # exact average of max-distance over all 16 sources
        assert lim.broadcast_hops_exact == pytest.approx(5.0)
        # the paper's printed (3k-1)/2 is the +1/2 variant
        assert lim.broadcast_hops_paper - lim.broadcast_hops_exact == 0.5

    def test_unicast_exact_below_paper_formula(self):
        """The paper's 2(k+1)/3 upper-bounds the exact mean distance."""
        for k in (2, 4, 8):
            lim = MeshLimits(k)
            assert lim.unicast_hops_exact <= lim.unicast_hops

    def test_bisection_binds_large_k(self):
        lim = MeshLimits(8)
        assert lim.max_injection_rate("unicast") == 0.5  # 4/k

    @given(st.integers(2, 16))
    def test_monotone_in_k(self, k):
        lim, big = MeshLimits(k), MeshLimits(k + 1)
        assert big.unicast_hops > lim.unicast_hops
        assert big.broadcast_hops_paper > lim.broadcast_hops_paper
        assert big.energy_limit("broadcast", 1, 1) > lim.energy_limit(
            "broadcast", 1, 1
        )

    @given(st.integers(2, 16), st.floats(0.001, 1.0))
    def test_loads_linear_in_rate(self, k, rate):
        lim = MeshLimits(k)
        for traffic in ("unicast", "broadcast"):
            assert lim.bisection_load(traffic, rate) == pytest.approx(
                rate * lim.bisection_load(traffic, 1.0)
            )

    def test_broadcast_energy_quadratic(self):
        """Appendix A: the broadcast energy limit grows as k^2."""
        e4 = MeshLimits(4).energy_limit("broadcast", 1.0, 0.0)
        e8 = MeshLimits(8).energy_limit("broadcast", 1.0, 0.0)
        assert e8 / e4 == 4.0

    def test_invalid_traffic_rejected(self):
        lim = MeshLimits(4)
        with pytest.raises(ValueError):
            lim.latency_limit("hotspot")
        with pytest.raises(ValueError):
            lim.bisection_load("hotspot", 1.0)
        with pytest.raises(ValueError):
            lim.energy_limit("hotspot", 1, 1)

    def test_small_k_rejected(self):
        with pytest.raises(ValueError):
            MeshLimits(1)


class TestMixLimits:
    def test_mixed_saturation_rate(self):
        from repro.traffic.mix import MIXED_TRAFFIC

        lim = MeshLimits(4)
        assert lim.mix_saturation_rate(MIXED_TRAFFIC) == pytest.approx(1 / 4.75)

    def test_mix_throughput_ceiling(self):
        from repro.traffic.mix import BROADCAST_ONLY

        assert MeshLimits(4).mix_throughput_limit_gbps(BROADCAST_ONLY) == 1024.0
