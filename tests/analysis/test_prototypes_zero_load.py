"""Table 2 prototype comparison and zero-load latency calculators."""

import pytest

from repro.analysis.prototypes import PROTOTYPES, prototype_comparison
from repro.analysis.saturation import find_saturation, saturation_throughput
from repro.analysis.zero_load import zero_load_latency, zero_load_latency_config
from repro.core.presets import (
    baseline_network,
    proposed_network,
    textbook_network,
)


def chip(name):
    return next(c for c in PROTOTYPES if c.name == name)


class TestTable2:
    def test_four_chips_compared(self):
        names = {c.name for c in PROTOTYPES}
        assert names == {"Intel Teraflops", "Tilera TILE64", "SWIFT", "This work"}

    def test_teraflops_unicast_zero_load(self):
        # 5-stage pipeline x 6 average hops = 30 cycles (Table 2)
        assert chip("Intel Teraflops").zero_load("unicast") == 30

    def test_teraflops_broadcast_zero_load(self):
        # 57.5 flight + 62 serialisation = 119.5 ~ paper's 120.5
        assert chip("Intel Teraflops").zero_load("broadcast") == pytest.approx(
            119.5
        )

    def test_this_work_zero_load(self):
        work = chip("This work")
        assert work.zero_load("unicast") == pytest.approx(10 / 3)
        assert work.zero_load("broadcast") == 5.5

    def test_channel_loads(self):
        tf = chip("Intel Teraflops")
        assert tf.channel_load("unicast") == 64
        assert tf.channel_load("broadcast") == 4096
        work = chip("This work")
        assert work.channel_load("unicast") == 16
        assert work.channel_load("broadcast") == 16  # multicast support

    def test_bisection_bandwidths(self):
        assert chip("Intel Teraflops").bisection_bandwidth_gbps == 1560.0
        assert chip("This work").bisection_bandwidth_gbps == 256.0
        assert chip("SWIFT").bisection_bandwidth_gbps == pytest.approx(115.2)
        assert chip("Tilera TILE64").bisection_bandwidth_gbps == 960.0

    def test_delay_per_hop(self):
        assert chip("Intel Teraflops").delay_per_hop_ns == 1.0
        assert chip("This work").delay_per_hop_ns == 1.0

    def test_comparison_rows_carry_paper_values(self):
        rows = prototype_comparison()
        assert len(rows) == 4
        for row in rows:
            assert "paper" in row and "zero_load_unicast" in row["paper"]

    def test_multicast_chip_beats_all_on_broadcast_load(self):
        work = chip("This work")
        for other in PROTOTYPES:
            if other.name != "This work":
                assert work.channel_load("broadcast") < other.channel_load(
                    "broadcast"
                )


class TestZeroLoad:
    def test_serialization_penalty_without_multicast(self):
        with_mc = zero_load_latency(4, 1, "broadcast", multicast_support=True)
        without = zero_load_latency(4, 1, "broadcast", multicast_support=False)
        assert without - with_mc == 14  # k^2 - 2

    def test_config_variants(self):
        assert zero_load_latency_config(proposed_network(), "unicast") == (
            pytest.approx(10 / 3 + 2)
        )
        assert zero_load_latency_config(baseline_network(), "unicast") == (
            pytest.approx(10 + 2)
        )
        assert zero_load_latency_config(textbook_network(), "unicast") == (
            pytest.approx(40 / 3 + 2)
        )

    def test_multiflit_serialization(self):
        lat1 = zero_load_latency(4, 1, "unicast", serialization_flits=1)
        lat5 = zero_load_latency(4, 1, "unicast", serialization_flits=5)
        assert lat5 - lat1 == 4

    def test_unknown_traffic(self):
        with pytest.raises(ValueError):
            zero_load_latency(4, 1, "hotspot")


class FakePoint:
    def __init__(self, rate, latency, gbps):
        self.injection_rate = rate
        self.avg_latency = latency
        self.throughput_gbps = gbps


class TestSaturation:
    def curve(self):
        return [
            FakePoint(0.02, 10.0, 100),
            FakePoint(0.06, 12.0, 300),
            FakePoint(0.10, 20.0, 500),
            FakePoint(0.14, 60.0, 650),
            FakePoint(0.18, 400.0, 700),
        ]

    def test_finds_three_x_crossing(self):
        rate = find_saturation(self.curve())
        assert 0.10 < rate < 0.14  # crosses 30 between those points

    def test_interpolates_linearly(self):
        rate = find_saturation(self.curve())
        assert rate == pytest.approx(0.10 + 0.04 * (30 - 20) / (60 - 20))

    def test_explicit_zero_load_reference(self):
        rate = find_saturation(self.curve(), zero_load_latency=5.0)
        assert rate < 0.10

    def test_never_saturates(self):
        pts = [FakePoint(0.02, 10, 100), FakePoint(0.06, 11, 300)]
        assert find_saturation(pts) is None
        assert saturation_throughput(pts) == 300

    def test_saturation_throughput_interpolates(self):
        thr = saturation_throughput(self.curve())
        assert 500 < thr < 650

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            find_saturation([])

    def test_unsorted_input_handled(self):
        pts = list(reversed(self.curve()))
        assert find_saturation(pts) == find_saturation(self.curve())
