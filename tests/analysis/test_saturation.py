"""Saturation detection: interpolation, NaN windows and edge cases."""

import math
from dataclasses import dataclass

import pytest

from repro.analysis.saturation import find_saturation, saturation_throughput

NAN = float("nan")


@dataclass
class Point:
    injection_rate: float
    avg_latency: float
    throughput_gbps: float = 0.0


def curve(*pairs):
    return [Point(r, lat, thr) for r, lat, thr in pairs]


class TestFindSaturation:
    def test_interpolates_between_straddling_points(self):
        pts = curve((0.1, 10.0, 0), (0.2, 20.0, 0), (0.3, 40.0, 0))
        # threshold 3 * 10 = 30, crossed halfway between 0.2 and 0.3
        assert find_saturation(pts) == pytest.approx(0.25)

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            find_saturation([])

    def test_never_crossing_returns_none(self):
        pts = curve((0.1, 10.0, 0), (0.2, 12.0, 0), (0.3, 14.0, 0))
        assert find_saturation(pts) is None

    def test_first_point_over_threshold(self):
        pts = curve((0.1, 50.0, 0), (0.2, 60.0, 0))
        assert find_saturation(pts, zero_load_latency=10.0) == 0.1

    def test_nan_point_counts_as_saturated(self):
        # a fully saturated window completes zero messages and reports
        # NaN latency; NaN >= threshold is False, so the old scan
        # skipped exactly the most-saturated points
        pts = curve((0.1, 10.0, 0), (0.2, 12.0, 0), (0.3, NAN, 0))
        assert find_saturation(pts) == 0.3

    def test_nan_tail_does_not_hide_finite_crossing(self):
        pts = curve((0.1, 10.0, 0), (0.2, 20.0, 0), (0.3, 40.0, 0), (0.4, NAN, 0))
        assert find_saturation(pts) == pytest.approx(0.25)

    def test_all_nan_sweep_saturates_at_first_point(self):
        pts = curve((0.1, NAN, 0), (0.2, NAN, 0))
        assert find_saturation(pts) == 0.1

    def test_nan_zero_load_base(self):
        pts = curve((0.1, NAN, 0), (0.2, NAN, 0))
        assert find_saturation(pts, zero_load_latency=NAN) == 0.1

    def test_unsorted_input_is_sorted_first(self):
        pts = curve((0.3, 40.0, 0), (0.1, 10.0, 0), (0.2, 20.0, 0))
        assert find_saturation(pts) == pytest.approx(0.25)


class TestSaturationThroughput:
    def test_interpolates_throughput_at_crossing(self):
        pts = curve((0.1, 10.0, 100.0), (0.2, 20.0, 200.0), (0.3, 40.0, 300.0))
        # saturation at rate 0.25 -> halfway between 200 and 300 Gb/s
        assert saturation_throughput(pts) == pytest.approx(250.0)

    def test_never_crossing_falls_back_to_max(self):
        pts = curve((0.1, 10.0, 100.0), (0.2, 12.0, 220.0), (0.3, 14.0, 180.0))
        assert saturation_throughput(pts) == 220.0

    def test_nan_point_reports_its_own_throughput(self):
        # the NaN point marks saturation; delivered throughput there is
        # still a real measurement (flits ejected / cycles)
        pts = curve((0.1, 10.0, 100.0), (0.2, 12.0, 200.0), (0.3, NAN, 240.0))
        assert saturation_throughput(pts) == 240.0

    def test_all_nan_sweep_uses_first_point(self):
        pts = curve((0.1, NAN, 90.0), (0.2, NAN, 95.0))
        assert saturation_throughput(pts) == 90.0

    def test_result_is_finite_for_nan_windows(self):
        pts = curve((0.1, 10.0, 100.0), (0.2, NAN, 150.0))
        assert math.isfinite(saturation_throughput(pts))
