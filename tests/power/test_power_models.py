"""Power meters and estimator models on synthetic activity."""

import pytest

from repro.noc.config import NocConfig
from repro.noc.metrics import ActivityCounters
from repro.power.energy_model import CalibratedEnergyModel
from repro.power.meter import PowerBreakdown, PowerMeter
from repro.power.orion import OrionPowerModel
from repro.power.postlayout import PostLayoutPowerModel


def busy_activity(cycles=1000):
    """A plausible per-window activity vector for a loaded network."""
    return ActivityCounters(
        buffer_writes=4000,
        buffer_reads=4000,
        xbar_input_traversals=10_000,
        xbar_output_traversals=19_000,
        link_traversals=9_000,
        ejections=10_000,
        bypasses=6_000,
        msa1_grants=4_000,
        msa2_grants=10_000,
        la_sent=9_000,
    )


class TestPowerBreakdown:
    def test_total_is_sum(self):
        bd = PowerBreakdown(10, 20, 30, 40, 5)
        assert bd.total_mw == 105
        assert bd.dynamic_mw == 100
        assert bd.logic_and_buffers_mw == 50

    def test_reduction(self):
        a = PowerBreakdown(10, 20, 30, 40, 0)
        b = PowerBreakdown(5, 10, 15, 20, 0)
        assert b.reduction_vs(a) == pytest.approx(0.5)

    def test_as_dict_round_trip(self):
        bd = PowerBreakdown(1, 2, 3, 4, 5)
        d = bd.as_dict()
        assert d["total_mw"] == 15


class TestPowerMeter:
    def test_idle_network_burns_floor_only(self):
        meter = PowerMeter(low_swing=True)
        bd = meter.evaluate(ActivityCounters(), 1000)
        assert bd.datapath_mw == 0.0
        m = meter.model
        assert bd.clock_mw == pytest.approx(16 * m.clock_pj_per_cycle)
        assert bd.leakage_mw == pytest.approx(76.7)

    def test_low_swing_cuts_datapath_only(self):
        act = busy_activity()
        ls = PowerMeter(low_swing=True).evaluate(act, 1000)
        fs = PowerMeter(low_swing=False).evaluate(act, 1000)
        assert ls.datapath_mw < fs.datapath_mw
        assert ls.buffers_mw == fs.buffers_mw
        assert ls.logic_mw == fs.logic_mw
        assert ls.clock_mw == fs.clock_mw

    def test_power_scales_with_frequency(self):
        act = busy_activity()
        at1 = PowerMeter(frequency_ghz=1.0).evaluate(act, 1000)
        at2 = PowerMeter(frequency_ghz=2.0).evaluate(act, 1000)
        assert at2.dynamic_mw == pytest.approx(2 * at1.dynamic_mw)
        assert at2.leakage_mw == at1.leakage_mw

    def test_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            PowerMeter().evaluate(ActivityCounters(), 0)

    def test_floor_is_clock_plus_datapath(self):
        meter = PowerMeter(low_swing=False)
        act = busy_activity()
        bd = meter.evaluate(act, 1000)
        assert meter.theoretical_floor_mw(act, 1000) == pytest.approx(
            bd.clock_mw + bd.datapath_mw
        )

    def test_leakage_is_chip_anchor(self):
        model = CalibratedEnergyModel()
        assert 16 * model.leakage_mw_per_router == pytest.approx(76.7)

    def test_datapath_event_lookup(self):
        model = CalibratedEnergyModel()
        assert model.datapath_event_pj("link", True) == model.link_ls_pj
        assert model.datapath_event_pj("link", False) == model.link_fs_pj
        with pytest.raises(ValueError):
            model.datapath_event_pj("nonsense", True)

    def test_scaled_model(self):
        model = CalibratedEnergyModel()
        doubled = model.scaled(2.0)
        assert doubled.buffer_write_pj == pytest.approx(2 * model.buffer_write_pj)

    def test_low_swing_event_always_cheaper(self):
        model = CalibratedEnergyModel()
        for event in ("xbar_input", "xbar_output", "link", "ejection"):
            assert model.datapath_event_pj(event, True) < model.datapath_event_pj(
                event, False
            )


class TestOrion:
    def test_substantial_overestimate(self):
        """Section 4.4: ORION lands ~5x above silicon."""
        act = busy_activity()
        measured = PowerMeter(low_swing=False).evaluate(act, 1000)
        orion = OrionPowerModel(NocConfig(multicast=False, bypass=False)).evaluate(
            act, 1000
        )
        assert 3.5 < orion.total_mw / measured.total_mw < 7.0

    def test_component_energies_positive(self):
        model = OrionPowerModel(NocConfig())
        assert model.buffer_access_energy_pj() > 0
        assert model.xbar_traversal_energy_pj() > 0
        assert model.link_traversal_energy_pj() > model.xbar_traversal_energy_pj()
        assert model.arbitration_energy_pj() > 0

    def test_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            OrionPowerModel(NocConfig()).evaluate(ActivityCounters(), 0)

    def test_buffer_energy_grows_with_depth(self):
        from repro.noc.config import VCSpec
        from repro.noc.flit import MessageClass

        deep = NocConfig(
            vcs=(
                VCSpec(MessageClass.REQUEST, 8),
                VCSpec(MessageClass.RESPONSE, 8),
            )
        )
        shallow = NocConfig()
        assert (
            OrionPowerModel(deep).buffer_access_energy_pj()
            > OrionPowerModel(shallow).buffer_access_energy_pj()
        )


class TestPostLayout:
    def test_close_to_measured(self):
        """Section 4.4: post-layout lands within ~15% of silicon."""
        act = busy_activity()
        measured = PowerMeter(low_swing=True).evaluate(act, 1000)
        pl = PostLayoutPowerModel(low_swing=True).evaluate(act, 1000)
        assert 0.9 < pl.total_mw / measured.total_mw < 1.2

    def test_underestimates_buffers_overestimates_clock(self):
        act = busy_activity()
        measured = PowerMeter(low_swing=True).evaluate(act, 1000)
        pl = PostLayoutPowerModel(low_swing=True).evaluate(act, 1000)
        assert pl.buffers_mw < measured.buffers_mw
        assert pl.logic_mw < measured.logic_mw
        assert pl.clock_mw > measured.clock_mw
        assert pl.datapath_mw > measured.datapath_mw

    def test_simulation_cost_documented(self):
        assert PostLayoutPowerModel.SIMULATION_DAYS >= 1
