"""Sweep runner, table rendering and experiment drivers (fast settings)."""

import pytest

from repro import proposed_network
from repro.harness import experiments as exp
from repro.harness.sweep import default_rates, run_point, run_sweep
from repro.harness.tables import format_series, format_table
from repro.traffic.mix import BROADCAST_ONLY, MIXED_TRAFFIC, UNIFORM_UNICAST

FAST = dict(warmup=200, measure=1000, drain=1500)


class TestTables:
    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]], title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_nan_rendered_as_dash(self):
        out = format_table(["x"], [[float("nan")]])
        assert "-" in out.splitlines()[-1]

    def test_format_series_joins_on_x(self):
        out = format_series(
            {"p": [(1, 10.0), (2, 20.0)], "b": [(1, 30.0)]}, "rate", "lat"
        )
        assert "p lat" in out and "b lat" in out


class TestSweep:
    def test_run_point_returns_stats(self):
        stats = run_point(proposed_network(), MIXED_TRAFFIC, 0.03, **FAST)
        assert stats.injection_rate == 0.03
        assert stats.messages_measured > 0
        assert stats.avg_latency > 0

    def test_run_sweep_orders_points(self):
        pts = run_sweep(
            proposed_network(), MIXED_TRAFFIC, [0.02, 0.05], **FAST
        )
        assert [p.injection_rate for p in pts] == [0.02, 0.05]

    def test_default_rates_span_ceiling(self):
        rates = default_rates(BROADCAST_ONLY, 16, points=6)
        assert len(rates) == 6
        assert rates[-1] > BROADCAST_ONLY.saturation_injection_rate(16)
        assert all(0 < r <= 1 for r in rates)

    def test_default_rates_grid_is_even_from_near_zero(self):
        rates = default_rates(MIXED_TRAFFIC, 16, points=8, headroom=1.15)
        # top of the grid is headroom x the mix ceiling...
        ceiling = MIXED_TRAFFIC.saturation_injection_rate(16)
        assert rates[-1] == pytest.approx(1.15 * ceiling)
        # ...divided evenly so the first point sits near zero load
        assert rates[0] == pytest.approx(rates[-1] / 8)
        steps = [b - a for a, b in zip(rates, rates[1:])]
        assert all(s == pytest.approx(steps[0]) for s in steps)
        assert sorted(rates) == rates

    def test_default_rates_clamped_at_one(self):
        # uniform unicast has a ceiling of 1.0 flit/node/cycle, so any
        # headroom beyond it must clamp the grid top at the physical
        # one-flit-per-cycle injection limit
        assert UNIFORM_UNICAST.saturation_injection_rate(16) == 1.0
        rates = default_rates(UNIFORM_UNICAST, 16, points=5, headroom=4.0)
        assert rates[-1] == 1.0
        assert rates[0] == pytest.approx(0.2)

    def test_default_rates_honors_points(self):
        for points in (1, 3, 12):
            assert len(default_rates(BROADCAST_ONLY, 16, points=points)) == points


class TestExperimentDrivers:
    def test_table1_rows(self):
        rows = exp.table1_limits(ks=(2, 4))
        assert [r["k"] for r in rows] == [2, 4]
        assert rows[1]["broadcast_hops"] == 5.5

    def test_table2_rows(self):
        assert len(exp.table2_prototypes()) == 4

    def test_table3_report(self):
        report = exp.table3_critical_path()
        assert report.measured_fmax_ghz == pytest.approx(1.04, abs=0.02)

    def test_table4_area(self):
        assert exp.table4_area().crossbar_overhead == pytest.approx(3.1, abs=0.05)

    def test_fig7_rows(self):
        rows = exp.fig7_lowswing_energy()
        assert rows[0]["advantage"] == pytest.approx(3.2, rel=0.05)
        assert rows[0]["rsd_max_clock_ghz"] > rows[1]["rsd_max_clock_ghz"]

    def test_fig10_rows(self):
        rows = exp.fig10_reliability(swings_mv=(200, 300), runs=300)
        assert rows[0]["failure_analytic"] > rows[1]["failure_analytic"]
        assert rows[0]["energy_fj"] < rows[1]["energy_fj"]
        assert rows[1]["sigma_margin"] == pytest.approx(3.0)

    def test_fig11_rows_linear(self):
        rows = exp.fig11_multicast_power()
        powers = [r["power_uw"] for r in rows]
        diffs = [b - a for a, b in zip(powers, powers[1:])]
        assert all(d == pytest.approx(diffs[0]) for d in diffs)

    def test_fig12_keys(self):
        out = exp.fig12_eye_margin(runs=100)
        assert {"repeated", "direct", "energy_overhead"} <= set(out)

    def test_fig5_structure_fast(self):
        result = exp.fig5_mixed_traffic(rates=[0.03, 0.1], measure=800,
                                        warmup=200, drain=1000)
        assert len(result["proposed"]) == 2
        assert result["throughput_limit_gbps"] == 1024.0
        summary = exp.summarize_sweeps(result)
        assert 0 < summary["low_load_latency_reduction"] < 1

    def test_zero_load_model_check(self):
        assert exp.zero_load_model_check() == pytest.approx(10 / 3 + 2)
