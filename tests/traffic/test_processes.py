"""Temporal injection processes: units, serialization, statistics.

The statistical half drives long single-node traces through
:class:`~repro.traffic.generators.SyntheticTraffic` and checks the two
properties the subsystem promises:

* the **mean-rate identity** — the long-run empirical injection rate of
  a bursty process converges to the configured mean (and the analytic
  ``sum(pi * r)`` equals it exactly);
* the **burst geometry** — measured ON-run lengths of the on-off
  process follow the geometric distribution of the chain
  parameterisation (mean ``burst_length``, memoryless continuation).

Traces are seeded PRBS, so every number here is deterministic; the
tolerances absorb finite-trace variance, not randomness across runs.
"""

import statistics

import pytest

from repro.analysis.burstiness import (
    burstiness_timescale,
    dispersion_index,
    expected_onset_rate,
    mean_rate,
    peak_rate,
    rate_cv2,
    saturation_shift,
)
from repro.noc.config import NocConfig
from repro.traffic.generators import SyntheticTraffic
from repro.traffic.mix import MIXED_TRAFFIC, UNIFORM_UNICAST
from repro.traffic.processes import (
    BernoulliProcess,
    MMPProcess,
    OnOffProcess,
    make_process,
    process_from_dict,
    process_names,
)


def trace(process, rate, cycles=60_000, mix=UNIFORM_UNICAST, node=3, seed=5):
    """Empirical (flit_rate, ON-run lengths) of one node's generate()."""
    traffic = SyntheticTraffic(mix, rate, seed=seed, process=process)
    traffic.bind(NocConfig())
    flits = 0
    runs, current = [], 0
    for cycle in range(cycles):
        specs = traffic.generate(cycle, node)
        if specs:
            flits += sum(s.num_flits for s in specs)
            current += 1
        elif current:
            runs.append(current)
            current = 0
    if current:
        runs.append(current)
    return flits / cycles, runs


class TestRegistry:
    def test_names(self):
        assert process_names() == ["bernoulli", "mmp", "onoff"]

    def test_make_process(self):
        assert make_process("onoff", burst_length=4.0) == OnOffProcess(4.0)
        with pytest.raises(ValueError):
            make_process("poisson")

    @pytest.mark.parametrize(
        "process",
        [
            BernoulliProcess(),
            OnOffProcess(),
            OnOffProcess(burst_length=16.0, on_rate=0.5),
            MMPProcess(),
            MMPProcess(levels=(0.0, 1.0, 3.0), dwells=(20.0, 10.0, 5.0)),
        ],
    )
    def test_serialization_round_trip(self, process):
        clone = process_from_dict(process.to_dict())
        assert clone == process
        assert clone.to_dict() == process.to_dict()

    def test_not_a_process(self):
        with pytest.raises(ValueError):
            process_from_dict({"levels": [1, 2]})

    def test_int_parameters_normalise_to_float(self):
        # equal values must encode identically whatever the caller's
        # numeric type, or equal JobSpecs fork their cache keys
        assert OnOffProcess(8, 1) == OnOffProcess(8.0, 1.0)
        assert OnOffProcess(8).to_dict() == OnOffProcess(8.0).to_dict()
        assert MMPProcess(levels=(1, 2), dwells=(4, 4)) == MMPProcess(
            levels=(1.0, 2.0), dwells=(4.0, 4.0)
        )


class TestValidation:
    def test_onoff_parameter_bounds(self):
        with pytest.raises(ValueError):
            OnOffProcess(burst_length=0.5)
        with pytest.raises(ValueError):
            OnOffProcess(on_rate=0.0)
        with pytest.raises(ValueError):
            OnOffProcess(on_rate=1.5)

    def test_onoff_max_rate_keeps_the_off_gap_expressible(self):
        # duty <= L/(L+1): beyond it the OFF gap would be under a cycle
        p = OnOffProcess(burst_length=8.0)
        assert p.max_rate() == pytest.approx(8 / 9)
        p.validate(p.max_rate())
        with pytest.raises(ValueError):
            p.validate(0.95)

    def test_onoff_scaled_on_rate(self):
        p = OnOffProcess(burst_length=4.0, on_rate=0.5)
        assert p.max_rate() == pytest.approx(0.4)
        with pytest.raises(ValueError):
            p.validate(0.45)

    def test_mmp_parameter_bounds(self):
        with pytest.raises(ValueError):
            MMPProcess(levels=(1.0,), dwells=(4.0,))  # one state
        with pytest.raises(ValueError):
            MMPProcess(levels=(1.0, 2.0), dwells=(4.0,))  # length mismatch
        with pytest.raises(ValueError):
            MMPProcess(levels=(0.0, 0.0), dwells=(4.0, 4.0))  # all silent
        with pytest.raises(ValueError):
            MMPProcess(levels=(-1.0, 2.0), dwells=(4.0, 4.0))
        with pytest.raises(ValueError):
            MMPProcess(levels=(1.0, 2.0), dwells=(0.5, 4.0))  # sub-cycle dwell

    def test_mmp_max_rate_caps_the_peak_state(self):
        # default levels 0.5/2.0 with dwells 16/8: mean level 1, so the
        # 2x state reaches one flit/cycle at a mean rate of 0.5
        assert MMPProcess().max_rate() == pytest.approx(0.5)
        with pytest.raises(ValueError):
            MMPProcess().validate(0.6)


class TestMeanRateIdentity:
    """sum(pi * r) == rate, exactly, for every process and rate."""

    @pytest.mark.parametrize(
        "process",
        [
            BernoulliProcess(),
            OnOffProcess(),
            OnOffProcess(burst_length=32.0),
            OnOffProcess(burst_length=16.0, on_rate=0.5),
            MMPProcess(),
            MMPProcess(levels=(0.0, 1.0, 3.0), dwells=(20.0, 10.0, 5.0)),
        ],
    )
    def test_analytic_identity(self, process):
        for frac in (0.0, 0.1, 0.5, 1.0):
            rate = frac * process.max_rate()
            assert mean_rate(process, rate) == pytest.approx(rate, abs=1e-12)
            pi = process.stationary(rate)
            assert sum(pi) == pytest.approx(1.0, abs=1e-12)
            assert all(p >= 0 for p in pi)

    @pytest.mark.parametrize(
        "process,rate",
        [
            (OnOffProcess(burst_length=8.0), 0.2),
            (OnOffProcess(burst_length=20.0, on_rate=0.8), 0.3),
            (MMPProcess(), 0.2),
            (MMPProcess(levels=(0.0, 1.0, 3.0), dwells=(20.0, 10.0, 5.0)), 0.15),
        ],
    )
    def test_empirical_rate_converges_to_the_mean(self, process, rate):
        measured, _ = trace(process, rate)
        assert measured == pytest.approx(rate, abs=0.02)

    def test_empirical_rate_with_multiflit_mix(self):
        # the packet-probability scaling must account for mean flits
        # per message (2.0 for the mixed mix), like Bernoulli does
        measured, _ = trace(OnOffProcess(8.0), 0.2, mix=MIXED_TRAFFIC)
        assert measured == pytest.approx(0.2, abs=0.02)

    def test_zero_rate_is_silent(self):
        measured, runs = trace(OnOffProcess(8.0), 0.0, cycles=2_000)
        assert measured == 0.0 and not runs


class TestBurstGeometry:
    """ON-run lengths are geometric with mean burst_length."""

    def runs_at_full_on_rate(self, burst_length, rate=0.2):
        # on_rate=1.0 with a single-flit mix injects every ON cycle, so
        # consecutive-injection runs are exactly the chain's ON dwells
        _, runs = trace(OnOffProcess(burst_length=burst_length), rate)
        assert len(runs) > 400  # enough bursts for the moments below
        return runs

    @pytest.mark.parametrize("burst_length", [4.0, 8.0, 16.0])
    def test_mean_burst_length_matches(self, burst_length):
        runs = self.runs_at_full_on_rate(burst_length)
        assert statistics.mean(runs) == pytest.approx(burst_length, rel=0.12)

    def test_geometric_shape(self):
        # memorylessness: P(len == 1) = 1/L, and the continuation
        # probability beyond any cut is (1 - 1/L)
        runs = self.runs_at_full_on_rate(8.0)
        p_one = sum(1 for r in runs if r == 1) / len(runs)
        assert p_one == pytest.approx(1 / 8, abs=0.035)
        continue_past_2 = sum(1 for r in runs if r > 2) / sum(
            1 for r in runs if r >= 2
        )
        assert continue_past_2 == pytest.approx(7 / 8, abs=0.05)

    def test_longer_bursts_at_the_same_mean_have_longer_gaps(self):
        # same duty cycle => OFF gaps scale with the burst length
        short = self.runs_at_full_on_rate(4.0)
        long = self.runs_at_full_on_rate(16.0)
        assert statistics.mean(long) > 2.5 * statistics.mean(short)


class TestDrawStreamContract:
    def test_bernoulli_process_is_the_default_and_memoryless(self):
        assert BernoulliProcess().memoryless
        assert not OnOffProcess().memoryless
        assert not MMPProcess().memoryless

    def test_default_process_replays_the_historical_stream(self):
        # explicit BernoulliProcess and no process must generate the
        # identical message sequence (same draws, same destinations)
        outs = []
        for process in (None, BernoulliProcess()):
            t = SyntheticTraffic(MIXED_TRAFFIC, 0.3, seed=9, process=process)
            t.bind(NocConfig())
            outs.append(
                [t.generate(c, n) for c in range(300) for n in range(16)]
            )
        assert outs[0] == outs[1]

    def test_chain_streams_are_decorrelated_across_nodes(self):
        t = SyntheticTraffic(
            UNIFORM_UNICAST, 0.3, seed=9, process=OnOffProcess(8.0)
        )
        t.bind(NocConfig())
        per_node = [
            [bool(t.generate(c, n)) for c in range(400)] for n in range(4)
        ]
        assert len({tuple(p) for p in per_node}) == 4

    def test_identical_generators_synchronise_the_chains(self):
        t = SyntheticTraffic(
            UNIFORM_UNICAST,
            0.3,
            seed=9,
            identical_generators=True,
            process=OnOffProcess(8.0),
        )
        t.bind(NocConfig())
        for cycle in range(400):
            outs = [bool(t.generate(cycle, n)) for n in range(16)]
            assert len(set(outs)) == 1

    def test_rebind_resets_the_chains(self):
        t = SyntheticTraffic(
            UNIFORM_UNICAST, 0.3, seed=9, process=OnOffProcess(8.0)
        )
        t.bind(NocConfig())
        first = [t.generate(c, 0) for c in range(300)]
        t.bind(NocConfig())
        assert [t.generate(c, 0) for c in range(300)] == first


class TestBurstinessAnalysis:
    def test_bernoulli_has_no_dispersion(self):
        p = BernoulliProcess()
        assert rate_cv2(p, 0.3) == 0.0
        assert dispersion_index(p, 0.3) == 1.0

    def test_onoff_dispersion_grows_with_burst_length(self):
        indices = [
            dispersion_index(OnOffProcess(burst_length=length), 0.2)
            for length in (2.0, 8.0, 32.0)
        ]
        assert indices == sorted(indices)
        assert indices[0] > 1.0

    def test_onoff_closed_form(self):
        # at on_rate 1: cv2 = 1/R - 1 and I = 1 + 2 L (1 - R)^2
        p = OnOffProcess(burst_length=8.0)
        assert rate_cv2(p, 0.2) == pytest.approx(4.0)
        assert dispersion_index(p, 0.2) == pytest.approx(
            1 + 2 * 8.0 * (1 - 0.2) ** 2
        )

    def test_two_state_timescale_is_the_harmonic_dwell_mean(self):
        # 1/(alpha+beta): at rate 0.2 with L=8, alpha = beta*duty/(1-duty)
        p = OnOffProcess(burst_length=8.0)
        beta = 1 / 8
        alpha = beta * 0.2 / 0.8
        assert burstiness_timescale(p, 0.2) == pytest.approx(
            1 / (alpha + beta)
        )
        assert burstiness_timescale(BernoulliProcess(), 0.2) == 0.0

    @pytest.mark.parametrize(
        "fn",
        [
            mean_rate,
            peak_rate,
            rate_cv2,
            burstiness_timescale,
            dispersion_index,
        ],
    )
    def test_moments_reject_inexpressible_rates(self, fn):
        # beyond max_rate the chain description is meaningless (an
        # OFF-exit probability above one); the moments must fail with
        # the package's domain error, not degrade into garbage
        p = OnOffProcess(burst_length=8.0)
        with pytest.raises(ValueError):
            fn(p, 0.95)
        with pytest.raises(ValueError):
            fn(p, 1.0)  # the duty==1 division-by-zero corner
        with pytest.raises(ValueError):
            fn(p, -0.1)

    def test_peak_rate(self):
        assert peak_rate(OnOffProcess(on_rate=0.7), 0.2) == pytest.approx(0.7)
        assert peak_rate(MMPProcess(), 0.25) == pytest.approx(0.5)

    def test_expected_onset_shifts_earlier_for_bursty_processes(self):
        reference = expected_onset_rate(MIXED_TRAFFIC, 4)
        bursty = expected_onset_rate(
            MIXED_TRAFFIC, 4, process=OnOffProcess(8.0)
        )
        burstier = expected_onset_rate(
            MIXED_TRAFFIC, 4, process=OnOffProcess(32.0)
        )
        assert bursty < reference
        assert burstier < bursty

    def test_saturation_shift_is_one_for_the_default(self):
        assert saturation_shift(MIXED_TRAFFIC, 4) == pytest.approx(1.0)
        assert saturation_shift(
            MIXED_TRAFFIC, 4, process=BernoulliProcess()
        ) == pytest.approx(1.0)
        assert saturation_shift(
            MIXED_TRAFFIC, 4, process=OnOffProcess(8.0)
        ) < 1.0
