"""Spatial destination patterns: maps, draws, serialization, validation."""

import pytest

from repro.noc.config import NocConfig
from repro.noc.routing import coords, node_at
from repro.traffic.generators import BernoulliTraffic
from repro.traffic.mix import MIXED_TRAFFIC, UNIFORM_UNICAST
from repro.traffic.patterns import (
    HotspotPattern,
    TransposePattern,
    UniformPattern,
    make_pattern,
    pattern_from_dict,
    pattern_names,
)
from repro.traffic.prbs import PRBSGenerator

DETERMINISTIC = (
    "transpose",
    "bit_complement",
    "bit_reversal",
    "shuffle",
    "tornado",
    "neighbor",
)


class TestRegistry:
    def test_all_patterns_registered(self):
        assert set(pattern_names()) == set(DETERMINISTIC) | {
            "uniform",
            "hotspot",
        }

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            make_pattern("zipf")

    def test_round_trips(self):
        for name in pattern_names():
            pattern = make_pattern(name)
            assert pattern_from_dict(pattern.to_dict()) == pattern

    def test_hotspot_round_trip_preserves_parameters(self):
        pattern = HotspotPattern((3, 12), 0.8)
        data = pattern.to_dict()
        assert data == {"name": "hotspot", "hot_nodes": [3, 12], "fraction": 0.8}
        assert pattern_from_dict(data) == pattern

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValueError):
            pattern_from_dict({"no_name": True})
        with pytest.raises(ValueError):
            pattern_from_dict("transpose")

    def test_patterns_are_hashable_values(self):
        assert UniformPattern() == UniformPattern()
        assert UniformPattern() != TransposePattern()
        assert len({make_pattern(n) for n in pattern_names()}) == len(
            pattern_names()
        )


class TestDeterministicMaps:
    @pytest.mark.parametrize("name", DETERMINISTIC)
    def test_permutation_on_4x4(self, name):
        pattern = make_pattern(name)
        dests = [pattern.dest(src, 4) for src in range(16)]
        assert sorted(dests) == list(range(16))

    def test_transpose_swaps_coordinates(self):
        pattern = TransposePattern()
        for src in range(16):
            x, y = coords(src, 4)
            assert pattern.dest(src, 4) == node_at(y, x, 4)

    def test_bit_complement(self):
        pattern = make_pattern("bit_complement")
        assert pattern.dest(0, 4) == 15
        assert pattern.dest(5, 4) == 10

    def test_bit_reversal(self):
        pattern = make_pattern("bit_reversal")
        # 4 bits: 0b0001 -> 0b1000, 0b0110 -> 0b0110
        assert pattern.dest(1, 4) == 8
        assert pattern.dest(6, 4) == 6

    def test_shuffle_rotates_bits(self):
        pattern = make_pattern("shuffle")
        assert pattern.dest(0b0011, 4) == 0b0110
        assert pattern.dest(0b1000, 4) == 0b0001

    def test_tornado_half_span(self):
        pattern = make_pattern("tornado")
        for src in range(16):
            x, y = coords(src, 4)
            assert pattern.dest(src, 4) == node_at((x + 2) % 4, (y + 2) % 4, 4)

    def test_neighbor_is_next_in_row(self):
        pattern = make_pattern("neighbor")
        for src in range(16):
            x, y = coords(src, 4)
            assert pattern.dest(src, 4) == node_at((x + 1) % 4, y, 4)

    @pytest.mark.parametrize(
        "name", ("bit_complement", "bit_reversal", "shuffle")
    )
    def test_bit_patterns_need_power_of_two_nodes(self, name):
        pattern = make_pattern(name)
        with pytest.raises(ValueError):
            pattern.validate(3)  # 9 nodes
        pattern.validate(4)  # 16 nodes: fine

    def test_coordinate_patterns_accept_any_radix(self):
        for name in ("transpose", "tornado", "neighbor"):
            make_pattern(name).validate(3)


class TestHotspotValidation:
    def test_needs_hot_nodes(self):
        with pytest.raises(ValueError):
            HotspotPattern((), 0.5)

    def test_rejects_duplicates_and_negatives(self):
        with pytest.raises(ValueError):
            HotspotPattern((1, 1), 0.5)
        with pytest.raises(ValueError):
            HotspotPattern((-1,), 0.5)

    def test_fraction_range(self):
        with pytest.raises(ValueError):
            HotspotPattern((0,), 0.0)
        with pytest.raises(ValueError):
            HotspotPattern((0,), 1.5)
        HotspotPattern((0,), 1.0)

    def test_hot_nodes_must_fit_the_mesh(self):
        with pytest.raises(ValueError):
            HotspotPattern((16,), 0.5).validate(4)
        HotspotPattern((15,), 0.5).validate(4)


class TestUniformDrawCompatibility:
    def test_pick_matches_legacy_inline_draw(self):
        # the PRBS-draw compatibility contract: UniformPattern consumes
        # exactly the historical draw sequence
        pattern = UniformPattern()
        rng_a = PRBSGenerator(order=31, seed=11)
        rng_b = rng_a.clone()
        for src in (0, 3, 15, 7) * 200:
            picked = pattern.pick(rng_a, src, 4, 16)
            other = rng_b.next_below(15)
            legacy = other if other < src else other + 1
            assert picked == legacy
        assert rng_a._state == rng_b._state  # same number of draws

    def test_default_pattern_generates_identical_stream(self):
        cfg = NocConfig()
        default = BernoulliTraffic(MIXED_TRAFFIC, 0.2, seed=7)
        explicit = BernoulliTraffic(
            MIXED_TRAFFIC, 0.2, seed=7, pattern=UniformPattern()
        )
        default.bind(cfg)
        explicit.bind(cfg)
        for t in range(2000):
            for n in range(cfg.num_nodes):
                assert default.generate(t, n) == explicit.generate(t, n)


class TestGeneratorIntegration:
    def test_deterministic_pattern_destinations(self):
        cfg = NocConfig()
        pattern = TransposePattern()
        traffic = BernoulliTraffic(
            UNIFORM_UNICAST, 0.5, seed=3, pattern=pattern
        )
        traffic.bind(cfg)
        seen = 0
        for t in range(500):
            for n in range(16):
                for spec in traffic.generate(t, n):
                    assert spec.destinations == frozenset([pattern.dest(n, 4)])
                    seen += 1
        assert seen > 0

    def test_pattern_leaves_broadcasts_alone(self):
        cfg = NocConfig()
        traffic = BernoulliTraffic(
            MIXED_TRAFFIC, 0.3, seed=5, pattern=TransposePattern()
        )
        traffic.bind(cfg)
        broadcasts = 0
        for t in range(2000):
            for spec in traffic.generate(t, 2):
                if spec.is_multicast:
                    assert spec.destinations == frozenset(range(16))
                    broadcasts += 1
        assert broadcasts > 0

    def test_hotspot_concentrates_traffic(self):
        cfg = NocConfig()
        hot = (0, 5)
        traffic = BernoulliTraffic(
            UNIFORM_UNICAST, 0.8, seed=11, pattern=HotspotPattern(hot, 0.75)
        )
        traffic.bind(cfg)
        hits = total = 0
        for t in range(5000):
            for spec in traffic.generate(t, 3):
                total += 1
                hits += spec.destinations <= set(hot)
        assert hits / total == pytest.approx(0.75, abs=0.05)

    def test_hotspot_background_excludes_self(self):
        cfg = NocConfig()
        traffic = BernoulliTraffic(
            UNIFORM_UNICAST, 0.8, seed=4, pattern=HotspotPattern((0,), 0.3)
        )
        traffic.bind(cfg)
        for t in range(3000):
            for spec in traffic.generate(t, 6):
                # node 6 is not hot, so a draw of {6} could only come
                # from the (self-excluding) background path
                assert spec.destinations != frozenset([6])

    def test_bind_validates_pattern_against_mesh(self):
        traffic = BernoulliTraffic(
            UNIFORM_UNICAST, 0.2, pattern=make_pattern("bit_reversal")
        )
        with pytest.raises(ValueError):
            traffic.bind(NocConfig(k=3))
