"""PRBS generator correctness."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.traffic.prbs import PRBSGenerator, transition_density


class TestLFSR:
    @pytest.mark.parametrize("order", [7, 9, 11, 15])
    def test_maximal_length(self, order):
        gen = PRBSGenerator(order=order, seed=1)
        seen = set()
        for _ in range((1 << order) - 1):
            gen.next_bit()
            seen.add(gen._state)
        assert len(seen) == (1 << order) - 1
        assert 0 not in seen

    def test_balanced_over_period(self):
        gen = PRBSGenerator(order=15, seed=5)
        ones = sum(gen.next_bits((1 << 15) - 1))
        assert ones == 1 << 14  # maximal LFSR: 2^(n-1) ones per period

    def test_never_sticks_at_zero(self):
        for seed in (1, 2, 8, 1024):
            gen = PRBSGenerator(order=15, seed=seed)
            assert any(gen.next_bits(64))

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            PRBSGenerator(order=8)

    @pytest.mark.parametrize("seed", [0, 1 << 15])
    def test_invalid_seed(self, seed):
        with pytest.raises(ValueError):
            PRBSGenerator(order=15, seed=seed)

    def test_deterministic(self):
        a = PRBSGenerator(order=15, seed=3)
        b = PRBSGenerator(order=15, seed=3)
        assert a.next_bits(100) == b.next_bits(100)

    def test_different_seeds_decorrelate(self):
        a = PRBSGenerator(order=31, seed=3).next_bits(200)
        b = PRBSGenerator(order=31, seed=4).next_bits(200)
        assert a != b

    def test_clone_preserves_state(self):
        gen = PRBSGenerator(order=15, seed=7)
        gen.next_bits(13)
        clone = gen.clone()
        assert clone.next_bits(50) == gen.next_bits(50)

    def test_period_property(self):
        assert PRBSGenerator(order=7).period == 127


class TestDraws:
    def test_uniform_in_range(self):
        gen = PRBSGenerator(order=31, seed=11)
        vals = [gen.next_uniform() for _ in range(500)]
        assert all(0.0 <= v < 1.0 for v in vals)

    def test_uniform_mean_reasonable(self):
        gen = PRBSGenerator(order=31, seed=11)
        vals = [gen.next_uniform() for _ in range(5000)]
        assert 0.45 < sum(vals) / len(vals) < 0.55

    @given(st.integers(1, 100))
    @settings(max_examples=25)
    def test_next_below_in_range(self, n):
        gen = PRBSGenerator(order=23, seed=9)
        assert all(0 <= gen.next_below(n) < n for _ in range(30))

    def test_next_below_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PRBSGenerator(order=15).next_below(0)

    def test_next_word_width(self):
        gen = PRBSGenerator(order=15, seed=2)
        assert all(0 <= gen.next_word(8) < 256 for _ in range(50))

    @pytest.mark.parametrize("order,seed", [(31, 7), (31, 23), (23, 9), (15, 5)])
    def test_fast_word_path_bit_exact(self, order, seed):
        """The batched next_word must match the per-bit loop exactly.

        The injection hot path relies on the two being interchangeable:
        traffic traces (and therefore every simulation result) would
        silently change if the shortcut diverged by a single bit.
        """
        fast = PRBSGenerator(order=order, seed=seed)
        slow = PRBSGenerator(order=order, seed=seed)
        for bits in (1, 3, 8, 24):
            if bits > min(fast._taps):
                continue
            for _ in range(200):
                word = 0
                for _ in range(bits):
                    word = (word << 1) | slow.next_bit()
                assert fast.next_word(bits) == word
            assert fast._state == slow._state

    def test_wide_word_falls_back_to_loop(self):
        # wider than the youngest tap: must still agree with bits
        a = PRBSGenerator(order=7, seed=3)
        b = PRBSGenerator(order=7, seed=3)
        word = a.next_word(20)
        bits = b.next_bits(20)
        expect = 0
        for bit in bits:
            expect = (expect << 1) | bit
        assert word == expect


class TestTransitionDensity:
    def test_alternating_is_one(self):
        assert transition_density([0, 1, 0, 1, 0]) == 1.0

    def test_constant_is_zero(self):
        assert transition_density([1, 1, 1, 1]) == 0.0

    def test_prbs_near_half(self):
        bits = PRBSGenerator(order=15, seed=3).next_bits(4000)
        assert 0.42 < transition_density(bits) < 0.58

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            transition_density([1])
