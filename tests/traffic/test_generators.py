"""Traffic mixes and synthetic traffic sources."""

import json

import pytest

from repro.noc.config import NocConfig
from repro.noc.flit import MessageClass
from repro.traffic.generators import (
    BernoulliTraffic,
    SyntheticBurst,
    SyntheticTraffic,
)
from repro.traffic.mix import (
    BROADCAST_ONLY,
    MIXED_TRAFFIC,
    UNIFORM_UNICAST,
    TrafficComponent,
    TrafficMix,
)
from repro.traffic.spec import MessageSpec


class TestTrafficMix:
    def test_mixed_composition(self):
        weights = {c.name: c.weight for c in MIXED_TRAFFIC.components}
        assert weights == {
            "broadcast_request": 0.5,
            "unicast_request": 0.25,
            "unicast_response": 0.25,
        }

    def test_mixed_mean_flits(self):
        # 0.5*1 + 0.25*1 + 0.25*5 = 2 flits per message
        assert MIXED_TRAFFIC.mean_flits_per_message == 2.0

    def test_mixed_ejections_per_flit(self):
        # (0.5*16 + 0.25*1 + 0.25*5) / 2 = 4.75
        assert MIXED_TRAFFIC.mean_ejections_per_flit(16) == pytest.approx(4.75)

    def test_broadcast_only_saturation_rate(self):
        # ejection-limited: R = 1/k^2 (Table 1)
        assert BROADCAST_ONLY.saturation_injection_rate(16) == pytest.approx(
            1 / 16
        )

    def test_unicast_saturation_rate(self):
        assert UNIFORM_UNICAST.saturation_injection_rate(16) == 1.0

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            TrafficMix(
                "bad",
                (
                    TrafficComponent(
                        "a", 0.6, MessageClass.REQUEST, 1, broadcast=False
                    ),
                ),
            )

    def test_multiflit_broadcast_rejected(self):
        with pytest.raises(ValueError):
            TrafficComponent("bad", 1.0, MessageClass.REQUEST, 5, broadcast=True)

    def test_cumulative_weights_monotone(self):
        cum = [w for w, _ in MIXED_TRAFFIC.cumulative_weights()]
        assert cum == sorted(cum)
        assert cum[-1] == pytest.approx(1.0)


class TestBernoulliTraffic:
    def bound(self, rate, seed=1, identical=False, mix=MIXED_TRAFFIC):
        traffic = BernoulliTraffic(
            mix, rate, seed=seed, identical_generators=identical
        )
        traffic.bind(NocConfig())
        return traffic

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            BernoulliTraffic(MIXED_TRAFFIC, -0.1)
        with pytest.raises(ValueError):
            BernoulliTraffic(MIXED_TRAFFIC, 1.5)

    def test_use_before_bind_rejected(self):
        traffic = BernoulliTraffic(MIXED_TRAFFIC, 0.1)
        with pytest.raises(RuntimeError):
            traffic.generate(0, 0)

    def test_packet_rate(self):
        assert self.bound(0.1).packet_rate == pytest.approx(0.05)

    def test_empirical_injection_rate(self):
        traffic = self.bound(0.2, seed=5)
        flits = 0
        cycles = 4000
        for t in range(cycles):
            for spec in traffic.generate(t, 3):
                flits += spec.num_flits
        rate = flits / cycles
        assert 0.15 < rate < 0.25

    def test_mix_fractions_respected(self):
        traffic = self.bound(0.5, seed=9)
        kinds = {"broadcast": 0, "request": 0, "response": 0}
        for t in range(8000):
            for spec in traffic.generate(t, 0):
                if spec.is_multicast:
                    kinds["broadcast"] += 1
                elif spec.num_flits == 5:
                    kinds["response"] += 1
                else:
                    kinds["request"] += 1
        total = sum(kinds.values())
        assert kinds["broadcast"] / total == pytest.approx(0.5, abs=0.07)
        assert kinds["response"] / total == pytest.approx(0.25, abs=0.06)

    def test_unicast_destinations_exclude_self(self):
        traffic = self.bound(0.8, mix=UNIFORM_UNICAST, seed=4)
        for t in range(2000):
            for spec in traffic.generate(t, 6):
                assert spec.destinations != frozenset([6])

    def test_unicast_destinations_cover_mesh(self):
        traffic = self.bound(0.8, mix=UNIFORM_UNICAST, seed=4)
        seen = set()
        for t in range(4000):
            for spec in traffic.generate(t, 0):
                seen |= spec.destinations
        assert seen == set(range(1, 16))

    def test_broadcast_targets_all_nodes(self):
        traffic = self.bound(0.5, mix=BROADCAST_ONLY, seed=2)
        for t in range(100):
            for spec in traffic.generate(t, 5):
                assert spec.destinations == frozenset(range(16))

    def test_identical_generators_synchronise_nodes(self):
        traffic = self.bound(0.3, seed=3, identical=True)
        for t in range(500):
            outs = [bool(traffic.generate(t, n)) for n in range(16)]
            assert len(set(outs)) == 1  # all nodes decide identically

    def test_decorrelated_generators_differ(self):
        traffic = self.bound(0.3, seed=3)
        differing = 0
        for t in range(500):
            outs = [bool(traffic.generate(t, n)) for n in range(16)]
            if len(set(outs)) > 1:
                differing += 1
        assert differing > 0


class TestSyntheticTrafficAlias:
    def test_bernoulli_traffic_is_the_default_composition(self):
        # the historical name must stay importable and be exactly the
        # generic source with default process and pattern
        assert BernoulliTraffic is SyntheticTraffic
        traffic = BernoulliTraffic(MIXED_TRAFFIC, 0.1)
        assert traffic.process.name == "bernoulli"
        assert traffic.pattern.name == "uniform"

    def test_inexpressible_rate_rejected_at_construction(self):
        from repro.traffic.processes import OnOffProcess

        with pytest.raises(ValueError):
            SyntheticTraffic(
                UNIFORM_UNICAST, 0.95, process=OnOffProcess(burst_length=8.0)
            )


class TestSyntheticBurst:
    def test_use_before_bind_rejected(self):
        # the bind-before-generate contract: a scripted workload must
        # fail loudly when driven without network geometry
        burst = SyntheticBurst({})
        with pytest.raises(RuntimeError):
            burst.generate(0, 0)

    def test_bind_then_generate_recovers(self):
        spec = MessageSpec(frozenset([2]), MessageClass.REQUEST, 1)
        burst = SyntheticBurst({(0, 1): [spec]})
        with pytest.raises(RuntimeError):
            burst.generate(0, 1)
        burst.bind(NocConfig())
        assert burst.generate(0, 1) == [spec]

    def test_serialization_round_trip(self):
        schedule = {
            (3, 0): [
                MessageSpec(frozenset([1]), MessageClass.REQUEST, 1),
                MessageSpec(frozenset(range(16)), MessageClass.REQUEST, 1),
            ],
            (7, 5): [MessageSpec(frozenset([0]), MessageClass.RESPONSE, 5)],
        }
        burst = SyntheticBurst(schedule)
        clone = SyntheticBurst.from_dict(burst.to_dict())
        assert clone.schedule == burst.schedule
        assert clone.to_dict() == burst.to_dict()

    def test_dict_is_json_safe_and_ordered(self):
        spec = MessageSpec(frozenset([4, 2]), MessageClass.REQUEST, 2)
        burst = SyntheticBurst({(9, 1): [spec], (3, 2): [spec]})
        data = json.loads(json.dumps(burst.to_dict()))
        assert SyntheticBurst.from_dict(data).schedule == burst.schedule
        # canonical entry order (by cycle, node) and sorted destinations
        assert [e["cycle"] for e in data["schedule"]] == [3, 9]
        assert data["schedule"][0]["messages"][0]["destinations"] == [2, 4]

    def test_message_spec_round_trip(self):
        spec = MessageSpec(frozenset([3, 1]), MessageClass.RESPONSE, 5)
        assert MessageSpec.from_dict(spec.to_dict()) == spec

    def test_scripted_delivery(self):
        spec = MessageSpec(frozenset([1]), MessageClass.REQUEST, 1)
        burst = SyntheticBurst({(3, 0): [spec]})
        burst.bind(NocConfig())
        assert burst.generate(3, 0) == [spec]
        assert burst.generate(3, 1) == []
        assert burst.generate(4, 0) == []

    def test_message_spec_validation(self):
        with pytest.raises(ValueError):
            MessageSpec(frozenset(), MessageClass.REQUEST, 1)
        with pytest.raises(ValueError):
            MessageSpec(frozenset([1]), MessageClass.REQUEST, 0)
