"""Determinism regression: a JobSpec is a pure function of its fields.

The engine's cache and parallel backends are only sound because running
the same JobSpec anywhere, any number of times, yields byte-identical
WindowStats.  These tests pin that property down at the byte level.
"""

import json

from repro.core.presets import baseline_network, proposed_network
from repro.engine import Executor, JobSpec
from repro.traffic.mix import BROADCAST_ONLY, MIXED_TRAFFIC

FAST = dict(warmup=100, measure=300, drain=400)


def canonical_bytes(stats):
    return json.dumps(stats.to_dict(), sort_keys=True).encode()


def test_same_jobspec_twice_is_byte_identical():
    job = JobSpec(
        config=proposed_network(), mix=MIXED_TRAFFIC, rate=0.05, **FAST
    )
    assert canonical_bytes(job.run()) == canonical_bytes(job.run())


def test_serial_and_process_backends_are_byte_identical():
    jobs = [
        JobSpec(
            config=proposed_network(),
            mix=MIXED_TRAFFIC,
            rate=0.03,
            name="proposed",
            **FAST,
        ),
        JobSpec(
            config=baseline_network(),
            mix=BROADCAST_ONLY,
            rate=0.02,
            name="baseline",
            identical_generators=True,
            **FAST,
        ),
    ]
    serial = Executor(backend="serial").run(jobs)
    pooled = Executor(backend="process", workers=2).run(jobs)
    for s, p in zip(serial, pooled):
        assert canonical_bytes(s) == canonical_bytes(p)
