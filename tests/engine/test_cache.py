"""ResultCache: persistence, corruption tolerance, stats and clearing."""

import dataclasses
import json
import math
import threading

import pytest

from repro.core.presets import proposed_network
from repro.engine import CACHE_VERSION, JobSpec, ResultCache
from repro.traffic.mix import MIXED_TRAFFIC

FAST = dict(warmup=100, measure=300, drain=400)


def make_job(**overrides):
    base = dict(
        config=proposed_network(), mix=MIXED_TRAFFIC, rate=0.03, **FAST
    )
    base.update(overrides)
    return JobSpec(**base)


def test_miss_on_empty_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    assert cache.get(make_job()) is None
    assert cache.stats()["entries"] == 0
    assert cache.clear() == 0


def test_put_then_get_round_trips(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    job = make_job()
    stats = job.run()
    cache.put(job, stats)
    assert cache.get(job) == stats
    # a different job does not alias the entry
    assert cache.get(make_job(rate=0.05)) is None


def test_corrupt_entry_is_a_miss_and_quarantined(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    job = make_job()
    cache.put(job, job.run())
    cache.path_for(job).write_text("{ not json")
    assert cache.get(job) is None
    # the bad bytes survive for diagnosis instead of being overwritten
    corrupt = cache.path_for(job).with_suffix(".corrupt")
    assert corrupt.read_text() == "{ not json"
    assert not cache.path_for(job).exists()
    assert cache.stats()["quarantined"] == 1
    # and put() repairs it
    stats = job.run()
    cache.put(job, stats)
    assert cache.get(job) == stats


def test_truncated_entry_is_quarantined(tmp_path):
    # simulate a partially written / torn entry (e.g. a full disk)
    cache = ResultCache(tmp_path / "cache")
    job = make_job()
    cache.put(job, job.run())
    text = cache.path_for(job).read_text()
    cache.path_for(job).write_text(text[: len(text) // 2])
    assert cache.get(job) is None
    assert cache.path_for(job).with_suffix(".corrupt").exists()


def test_malformed_stats_are_quarantined(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    job = make_job()
    cache.put(job, job.run())
    entry = json.loads(cache.path_for(job).read_text())
    entry["stats"] = {"bogus": True}
    cache.path_for(job).write_text(json.dumps(entry))
    assert cache.get(job) is None
    assert cache.stats()["quarantined"] == 1


def test_version_mismatch_is_a_plain_miss(tmp_path):
    # a future-format entry is valid JSON from another era, not damage:
    # it must not be quarantined (a downgrade would destroy it)
    cache = ResultCache(tmp_path / "cache")
    job = make_job()
    cache.put(job, job.run())
    entry = json.loads(cache.path_for(job).read_text())
    entry["version"] = CACHE_VERSION + 1
    cache.path_for(job).write_text(json.dumps(entry))
    assert cache.get(job) is None
    assert cache.stats()["quarantined"] == 0
    assert cache.path_for(job).exists()


def test_job_mismatch_is_a_miss(tmp_path):
    # paranoia against hash collisions / hand-edited entries
    cache = ResultCache(tmp_path / "cache")
    job = make_job()
    cache.put(job, job.run())
    entry = json.loads(cache.path_for(job).read_text())
    entry["job"]["rate"] = 0.99
    cache.path_for(job).write_text(json.dumps(entry))
    assert cache.get(job) is None


def test_clear_sweeps_orphaned_tmp_files(tmp_path):
    # a SIGKILL between write and rename leaves a *.tmp behind; clear()
    # must sweep it up even though it is not a cache entry
    cache = ResultCache(tmp_path / "cache")
    job = make_job()
    cache.put(job, job.run())
    orphan = cache.root / "interrupted123.tmp"
    orphan.write_text("partial")
    assert cache.stats()["entries"] == 1
    assert cache.clear() == 1
    assert not orphan.exists()
    assert list(cache.root.iterdir()) == []


def test_nan_latency_serializes_as_strict_json(tmp_path):
    # a fully saturated window has avg_latency = NaN; json.dump would
    # happily emit a bare NaN token, which is not standard JSON
    cache = ResultCache(tmp_path / "cache")
    job = make_job()
    stats = dataclasses.replace(job.run(), avg_latency=float("nan"))
    cache.put(job, stats)
    text = cache.path_for(job).read_text()
    assert "NaN" not in text
    # strict parsers (which reject the NaN/Infinity extension) accept it

    def reject(token):
        raise AssertionError(f"non-strict JSON token {token!r}")

    entry = json.loads(text, parse_constant=reject)
    assert entry["stats"]["avg_latency"] is None
    restored = cache.get(job)
    assert math.isnan(restored.avg_latency)
    assert restored.messages_measured == stats.messages_measured


def test_stats_and_clear(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    jobs = [make_job(rate=r) for r in (0.02, 0.04)]
    for job in jobs:
        cache.put(job, job.run())
    info = cache.stats()
    assert info["entries"] == 2
    assert info["bytes"] > 0
    assert cache.clear() == 2
    assert cache.stats()["entries"] == 0
    assert all(cache.get(j) is None for j in jobs)


def test_concurrent_flushes_do_not_lose_counts(tmp_path):
    """Regression: ``flush_counters()`` did an unlocked read-modify-write
    of ``counters.meta``, so two executors sharing a cache root (exactly
    what the sweep service's worker pool does) lost each other's counts.
    ``flock`` locks are per open file description, so two threads in one
    process exercise the same interleaving as two processes would.
    """
    root = tmp_path / "cache"
    flushes, workers = 150, 3
    errors = []

    def churn():
        try:
            cache = ResultCache(root)
            for _ in range(flushes):
                cache.hits += 1
                cache.misses += 2
                cache.flush_counters()
        except Exception as exc:  # surfaced after join; threads may not fail a test
            errors.append(exc)

    threads = [threading.Thread(target=churn) for _ in range(workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    totals = ResultCache(root).lifetime_counters()
    assert totals == {
        "hits": flushes * workers,
        "misses": 2 * flushes * workers,
        "puts": 0,
    }


def test_stats_tolerates_entries_vanishing_mid_scan(tmp_path, monkeypatch):
    """Regression: ``stats()`` called ``p.stat()`` on globbed entries, so
    a concurrent ``clear()``/quarantine from another process (or a
    service worker) that unlinked one between the glob and the stat made
    the whole scan raise ``FileNotFoundError``.
    """
    cache = ResultCache(tmp_path / "cache")
    jobs = [make_job(rate=r) for r in (0.02, 0.04)]
    for job in jobs:
        cache.put(job, job.run())
    victim = cache.path_for(jobs[0])
    survivor_bytes = cache.path_for(jobs[1]).stat().st_size
    real_entries = ResultCache._entries

    def glob_then_lose(self):
        paths = real_entries(self)
        victim.unlink(missing_ok=True)  # another process clears mid-scan
        return paths

    monkeypatch.setattr(ResultCache, "_entries", glob_then_lose)
    info = cache.stats()  # must not raise
    assert info["entries"] == 2  # the glob snapshot saw both
    assert info["bytes"] == survivor_bytes  # the vanished entry counts 0


def test_clear_sweeps_the_counter_lock_file(tmp_path):
    pytest.importorskip("fcntl")  # no lock file on non-POSIX platforms
    cache = ResultCache(tmp_path / "cache")
    cache.hits += 1
    cache.flush_counters()
    assert (cache.root / "counters.lock").exists()
    cache.clear()
    assert list(cache.root.iterdir()) == []


def test_clear_sweeps_quarantined_entries(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    job = make_job()
    cache.put(job, job.run())
    cache.path_for(job).write_text("garbage")
    assert cache.get(job) is None  # quarantines
    assert cache.stats()["quarantined"] == 1
    assert cache.clear() == 0  # no live entries left
    assert cache.stats()["quarantined"] == 0
    assert list(cache.root.iterdir()) == []
