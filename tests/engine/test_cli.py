"""The ``python -m repro`` command line, exercised in-process."""

import pytest

from repro.engine.cli import main

FAST_WINDOW = [
    "--warmup", "100", "--measure", "300", "--drain", "400",
]


def run_cli(capsys, *argv):
    rc = main(list(argv))
    assert rc == 0
    return capsys.readouterr().out


def test_sweep_prints_tables_and_counters(tmp_path, capsys):
    out = run_cli(
        capsys,
        "sweep",
        "--config", "proposed",
        "--mix", "mixed",
        "--rates", "0.02,0.05",
        *FAST_WINDOW,
        "--cache-dir", str(tmp_path / "cache"),
    )
    assert "latency (cyc)" in out
    assert "Gb/s" in out
    assert "executed=2" in out and "cache_hits=0" in out


def test_sweep_rerun_hits_cache(tmp_path, capsys):
    argv = [
        "sweep", "--rates", "0.02", *FAST_WINDOW,
        "--cache-dir", str(tmp_path / "cache"),
    ]
    run_cli(capsys, *argv)
    out = run_cli(capsys, *argv)
    assert "executed=0" in out and "cache_hits=1" in out


def test_sweep_no_cache_leaves_no_files(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    run_cli(
        capsys,
        "sweep", "--rates", "0.02", *FAST_WINDOW,
        "--cache-dir", str(cache_dir), "--no-cache",
    )
    assert not cache_dir.exists()


def test_sweep_auto_grid_uses_points(tmp_path, capsys):
    out = run_cli(
        capsys,
        "sweep", "--mix", "broadcast_only", "--points", "2",
        "--warmup", "50", "--measure", "150", "--drain", "200",
        "--cache-dir", str(tmp_path / "cache"),
    )
    assert "executed=2" in out


def test_figure_fig5_process_backend(tmp_path, capsys):
    out = run_cli(
        capsys,
        "figure", "fig5",
        "--rates", "0.02,0.05",
        *FAST_WINDOW,
        "--backend", "process", "--workers", "2",
        "--cache-dir", str(tmp_path / "cache"),
    )
    assert "fig5" in out
    assert "low_load_latency_reduction" in out
    assert "backend=process" in out and "executed=4" in out


def test_figure_table1_prints_rows(capsys):
    out = run_cli(capsys, "figure", "table1")
    assert "broadcast_hops" in out
    assert capsys.readouterr().err == ""


def test_figure_warns_when_engine_flags_ignored(capsys):
    assert main(["figure", "table1", "--backend", "process"]) == 0
    err = capsys.readouterr().err
    assert "ignored for table1" in err


def test_sweep_rejects_nonpositive_points(capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "--points", "0"])
    assert "must be at least 1" in capsys.readouterr().err


def test_cache_stats_and_clear(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    run_cli(
        capsys,
        "sweep", "--rates", "0.02", *FAST_WINDOW, "--cache-dir", cache_dir,
    )
    out = run_cli(capsys, "cache", "stats", "--cache-dir", cache_dir)
    assert "1 cached result(s)" in out
    out = run_cli(capsys, "cache", "clear", "--cache-dir", cache_dir)
    assert "removed 1" in out
    out = run_cli(capsys, "cache", "stats", "--cache-dir", cache_dir)
    assert "0 cached result(s)" in out


def test_bad_rates_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "--rates", "fast"])
    capsys.readouterr()


def test_domain_errors_exit_cleanly(capsys):
    # out-of-range rate and zero workers are domain errors, not crashes
    assert main(["sweep", "--rates", "1.5", "--no-cache"]) == 2
    err = capsys.readouterr().err
    assert "repro: error:" in err and "injection rate" in err
    assert (
        main(
            ["sweep", "--rates", "0.02", "--backend", "process",
             "--workers", "0", "--no-cache"]
        )
        == 2
    )
    assert "worker count" in capsys.readouterr().err
