"""The ``python -m repro`` command line, exercised in-process."""

import json

import pytest

from repro.engine.cli import main

FAST_WINDOW = [
    "--warmup", "100", "--measure", "300", "--drain", "400",
]

FAST_POINT = [
    "--rate", "0.05", *FAST_WINDOW,
]


def run_cli(capsys, *argv):
    rc = main(list(argv))
    assert rc == 0
    return capsys.readouterr()


def test_sweep_prints_tables_and_counters(tmp_path, capsys):
    captured = run_cli(
        capsys,
        "sweep",
        "--config", "proposed",
        "--mix", "mixed",
        "--rates", "0.02,0.05",
        *FAST_WINDOW,
        "--cache-dir", str(tmp_path / "cache"),
    )
    assert "latency (cyc)" in captured.out
    assert "Gb/s" in captured.out
    # diagnostics go to stderr, keeping stdout parseable
    assert "executed=2" in captured.err and "cache_hits=0" in captured.err


def test_sweep_rerun_hits_cache(tmp_path, capsys):
    argv = [
        "sweep", "--rates", "0.02", *FAST_WINDOW,
        "--cache-dir", str(tmp_path / "cache"),
    ]
    run_cli(capsys, *argv)
    err = run_cli(capsys, *argv).err
    assert "executed=0" in err and "cache_hits=1" in err


def test_sweep_no_cache_leaves_no_files(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    run_cli(
        capsys,
        "sweep", "--rates", "0.02", *FAST_WINDOW,
        "--cache-dir", str(cache_dir), "--no-cache",
    )
    assert not cache_dir.exists()


def test_sweep_auto_grid_uses_points(tmp_path, capsys):
    captured = run_cli(
        capsys,
        "sweep", "--mix", "broadcast_only", "--points", "2",
        "--warmup", "50", "--measure", "150", "--drain", "200",
        "--cache-dir", str(tmp_path / "cache"),
    )
    assert "executed=2" in captured.err


def test_quiet_silences_engine_summary(tmp_path, capsys):
    captured = run_cli(
        capsys,
        "-q",
        "sweep", "--rates", "0.02", *FAST_WINDOW,
        "--cache-dir", str(tmp_path / "cache"),
    )
    assert "latency (cyc)" in captured.out  # data output is untouched
    assert "executed=" not in captured.err


def test_verbosity_flag_works_after_the_subcommand(tmp_path, capsys):
    captured = run_cli(
        capsys,
        "sweep", "--rates", "0.02", *FAST_WINDOW,
        "--cache-dir", str(tmp_path / "cache"), "-v",
    )
    assert "last batch" in captured.err  # DEBUG detail


def test_figure_fig5_process_executor(tmp_path, capsys):
    captured = run_cli(
        capsys,
        "figure", "fig5",
        "--rates", "0.02,0.05",
        *FAST_WINDOW,
        "--executor", "process", "--workers", "2",
        "--cache-dir", str(tmp_path / "cache"),
    )
    assert "fig5" in captured.out
    assert "low_load_latency_reduction" in captured.out
    assert "executor=process" in captured.err and "executed=4" in captured.err


def test_figure_table1_prints_rows(capsys):
    captured = run_cli(capsys, "figure", "table1")
    assert "broadcast_hops" in captured.out
    assert captured.err == ""


def test_figure_warns_when_engine_flags_ignored(capsys):
    assert main(["figure", "table1", "--executor", "process"]) == 0
    err = capsys.readouterr().err
    assert "ignored for table1" in err


def test_sweep_rejects_nonpositive_points(capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "--points", "0"])
    assert "must be at least 1" in capsys.readouterr().err


def test_cache_stats_and_clear(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    run_cli(
        capsys,
        "sweep", "--rates", "0.02", *FAST_WINDOW, "--cache-dir", cache_dir,
    )
    out = run_cli(capsys, "cache", "stats", "--cache-dir", cache_dir).out
    assert "1 cached result(s)" in out
    assert "lifetime counters: 0 hit(s), 1 miss(es), 1 put(s)" in out
    out = run_cli(capsys, "cache", "clear", "--cache-dir", cache_dir).out
    assert "removed 1" in out
    out = run_cli(capsys, "cache", "stats", "--cache-dir", cache_dir).out
    assert "0 cached result(s)" in out
    assert "0 hit(s), 0 miss(es), 0 put(s)" in out


def test_sweep_telemetry_writes_sidecars(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    run_cli(
        capsys,
        "sweep", "--rates", "0.02", *FAST_WINDOW,
        "--cache-dir", cache_dir, "--telemetry",
    )
    out = run_cli(capsys, "cache", "stats", "--cache-dir", cache_dir).out
    assert "1 telemetry sidecar(s)" in out


def test_trace_exports_valid_chrome_trace(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    events_path = tmp_path / "events.jsonl"
    captured = run_cli(
        capsys,
        "trace", *FAST_POINT,
        "--out", str(trace_path), "--events", str(events_path),
    )
    assert "stop_reason=completed" in captured.out
    assert "link utilization" in captured.out
    data = json.loads(trace_path.read_text())
    assert data["traceEvents"]
    records = [
        json.loads(line) for line in events_path.read_text().splitlines()
    ]
    assert records and all("kind" in r for r in records)


def test_stats_prints_heatmap_and_hottest_links(capsys):
    captured = run_cli(
        capsys,
        "stats", *FAST_POINT, "--pattern", "transpose", "--top", "3",
    )
    assert "link utilization" in captured.out
    assert "hottest links" in captured.out
    assert "stop_reason=completed" in captured.out


def test_bad_rates_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "--rates", "fast"])
    capsys.readouterr()


def test_domain_errors_exit_cleanly(capsys):
    # out-of-range rate and zero workers are domain errors, not crashes
    assert main(["sweep", "--rates", "1.5", "--no-cache"]) == 2
    err = capsys.readouterr().err
    assert "repro: error:" in err and "injection rate" in err
    assert (
        main(
            ["sweep", "--rates", "0.02", "--executor", "process",
             "--workers", "0", "--no-cache"]
        )
        == 2
    )
    assert "worker count" in capsys.readouterr().err


def test_serve_parser_wiring():
    # the serve subcommand parses its engine axes without needing (or
    # importing) flask; actually running the server is exercised by
    # tests/service/test_service.py through the app factory
    from repro.engine.cli import build_parser, cmd_serve

    args = build_parser().parse_args(
        ["serve", "--port", "9090", "--workers", "3",
         "--executor", "process", "--exec-workers", "2",
         "--backend", "array", "--cache-dir", "somewhere"]
    )
    assert args.func is cmd_serve
    assert args.host == "127.0.0.1"
    assert args.port == 9090
    assert args.workers == 3
    assert args.executor == "process"
    assert args.exec_workers == 2
    assert args.backend == "array"
    assert args.cache_dir == "somewhere"


def test_serve_rejects_bad_worker_counts(capsys):
    with pytest.raises(SystemExit):
        main(["serve", "--workers", "0"])
    capsys.readouterr()
