"""Cache-key compatibility across the pluggable-axis PRs.

The engine's contract is that adding a workload axis must not move any
*default* job's content address: the new field is omitted from the
canonical encoding at its default, so every pre-existing
``.repro_cache/`` entry keeps hashing to the same file.  These keys
were captured by running ``JobSpec.cache_key`` at the commit *before*
the injection-process PR (which itself preserved the pre-pattern and
pre-routing keys); any refactor that silently grows the default
encoding — a new always-present field, a changed sort order, a float
formatting change — breaks them and invalidates every user's on-disk
cache.
"""

import json

import pytest

from repro.core.presets import baseline_network, proposed_network
from repro.engine.jobspec import JobSpec
from repro.noc.routing import make_routing
from repro.traffic.mix import BROADCAST_ONLY, MIXED_TRAFFIC
from repro.traffic.patterns import make_pattern
from repro.traffic.processes import BernoulliProcess, OnOffProcess

#: (job factory, sha256 of the canonical JSON) captured pre-PR.
PINNED = {
    "golden_fig5_default": (
        lambda: JobSpec(
            config=proposed_network(),
            mix=MIXED_TRAFFIC,
            rate=0.11,
            seed=7,
            warmup=300,
            measure=1500,
            drain=1500,
            name="golden",
        ),
        "8359ee25040e8095c732424c3bee742036c63de396f75c3910133fbcb1e7ce3a",
    ),
    "baseline_broadcast_defaults": (
        lambda: JobSpec(
            config=baseline_network(),
            mix=BROADCAST_ONLY,
            rate=0.02,
            name="baseline",
        ),
        "e141b4d29b9c6a21766ab290240dc0c260f1e7e9dc9ea4a92aef18470add196f",
    ),
    "non_default_pattern": (
        lambda: JobSpec(
            config=proposed_network(),
            mix=MIXED_TRAFFIC,
            rate=0.08,
            pattern=make_pattern("transpose"),
        ),
        "fc9c22347bae973de89e8d19aba9934cb0aae10b2718d379b271980c6965e0e1",
    ),
    "non_default_routing": (
        lambda: JobSpec(
            config=proposed_network(routing=make_routing("o1turn")),
            mix=MIXED_TRAFFIC,
            rate=0.08,
        ),
        "f17a6755431f536cdc7edcda9dcd95f473f68efc25549a7bba6ab151b1f27648",
    ),
}


class TestPinnedKeys:
    @pytest.mark.parametrize("name", sorted(PINNED))
    def test_pre_process_cache_keys_are_unchanged(self, name):
        factory, key = PINNED[name]
        assert factory().cache_key == key

    @pytest.mark.parametrize("name", sorted(PINNED))
    def test_default_encodings_have_no_injection_field(self, name):
        factory, _ = PINNED[name]
        data = json.loads(factory().canonical_json())
        assert "injection" not in data

    @pytest.mark.parametrize("name", sorted(PINNED))
    def test_default_encodings_have_no_faults_field(self, name):
        # fault-free jobs (faults=None) must omit the key entirely, so
        # every pre-fault cache entry keeps its content address
        factory, _ = PINNED[name]
        data = json.loads(factory().canonical_json())
        assert "faults" not in data


class TestDefaultNormalisation:
    def test_explicit_bernoulli_hashes_like_the_default(self):
        factory, key = PINNED["golden_fig5_default"]
        default = factory()
        explicit = JobSpec(
            config=default.config,
            mix=default.mix,
            rate=default.rate,
            seed=default.seed,
            warmup=default.warmup,
            measure=default.measure,
            drain=default.drain,
            name=default.name,
            injection=BernoulliProcess(),
        )
        assert explicit == default
        assert explicit.cache_key == key

    def test_bursty_jobs_get_fresh_content_addresses(self):
        factory, key = PINNED["golden_fig5_default"]
        default = factory()
        keys = {key}
        for process in (
            OnOffProcess(),
            OnOffProcess(burst_length=16.0),
            OnOffProcess(burst_length=8.0, on_rate=0.5),
        ):
            bursty = JobSpec(
                config=default.config,
                mix=default.mix,
                rate=default.rate,
                seed=default.seed,
                warmup=default.warmup,
                measure=default.measure,
                drain=default.drain,
                name=default.name,
                injection=process,
            )
            data = json.loads(bursty.canonical_json())
            assert data["injection"]["name"] == "onoff"
            keys.add(bursty.cache_key)
        assert len(keys) == 4  # every parameterisation is its own entry

    def test_round_trip_preserves_bursty_keys(self):
        job = JobSpec(
            config=proposed_network(),
            mix=MIXED_TRAFFIC,
            rate=0.08,
            injection=OnOffProcess(burst_length=12.0),
        )
        clone = JobSpec.from_dict(json.loads(job.canonical_json()))
        assert clone == job
        assert clone.cache_key == job.cache_key

    def test_fault_jobs_get_fresh_content_addresses(self):
        from repro.noc.faults import BitErrorFaults, RandomFaults

        factory, key = PINNED["golden_fig5_default"]
        default = factory()
        keys = {key}
        for faults in (
            BitErrorFaults(rate=1e-3),
            BitErrorFaults(rate=1e-2),
            RandomFaults(count=4),
        ):
            faulty = JobSpec(
                config=default.config,
                mix=default.mix,
                rate=default.rate,
                seed=default.seed,
                warmup=default.warmup,
                measure=default.measure,
                drain=default.drain,
                name=default.name,
                faults=faults,
            )
            data = json.loads(faulty.canonical_json())
            assert data["faults"]["name"] == faults.name
            keys.add(faulty.cache_key)
        assert len(keys) == 4

    def test_round_trip_preserves_fault_keys(self):
        from repro.noc.faults import LinkFaults

        job = JobSpec(
            config=proposed_network(),
            mix=MIXED_TRAFFIC,
            rate=0.08,
            faults=LinkFaults(links=((1, 2, 500),), routers=((5, 900),)),
        )
        clone = JobSpec.from_dict(json.loads(job.canonical_json()))
        assert clone == job
        assert clone.cache_key == job.cache_key


class TestBackendIsNotAnIdentityAxis:
    """The simulation backend is an *execution* detail (DESIGN.md §9):
    equal jobs produce byte-identical stats on every backend that
    accepts them, so the content address must never see it — not even
    as an omitted-when-default key."""

    @pytest.mark.parametrize("name", sorted(PINNED))
    def test_default_encodings_have_no_backend_field(self, name):
        factory, _ = PINNED[name]
        data = json.loads(factory().canonical_json())
        assert "backend" not in data

    def test_array_backend_shares_the_pinned_content_address(self):
        from repro.traffic.mix import UNIFORM_UNICAST

        base = dict(
            config=proposed_network(), mix=UNIFORM_UNICAST, rate=0.08
        )
        obj = JobSpec(**base)
        arr = JobSpec(**base, backend="array")
        assert arr.cache_key == obj.cache_key
        assert "backend" not in json.loads(arr.canonical_json())
        # but the worker payload does carry it (omitted-when-default),
        # and deserializing the payload restores the selection
        assert "backend" not in obj.to_payload()
        assert arr.to_payload()["backend"] == "array"
        assert JobSpec.from_dict(arr.to_payload()).backend == "array"

    def test_object_cached_result_hits_for_an_array_job(self, tmp_path):
        from repro.engine.cache import ResultCache
        from repro.engine.executor import Executor
        from repro.traffic.mix import UNIFORM_UNICAST

        base = dict(
            config=proposed_network(),
            mix=UNIFORM_UNICAST,
            rate=0.1,
            warmup=50,
            measure=150,
            drain=200,
        )
        cache = ResultCache(tmp_path / "cache")
        ex = Executor(cache=cache)
        stats = ex.run_one(JobSpec(**base))  # object backend, cached
        assert ex.executed == 1
        again = ex.run_one(JobSpec(**base, backend="array"))
        assert ex.executed == 1  # cache hit: no second simulation
        assert ex.cache_hits == 1
        assert again.to_dict() == stats.to_dict()

    def test_both_backends_produce_one_cache_entry(self, tmp_path):
        # run the same point fresh on each backend against separate
        # caches: byte-identical results under one content address
        from repro.engine.cache import ResultCache
        from repro.engine.executor import Executor
        from repro.traffic.mix import UNIFORM_UNICAST

        base = dict(
            config=proposed_network(),
            mix=UNIFORM_UNICAST,
            rate=0.1,
            warmup=50,
            measure=150,
            drain=200,
        )
        results = {}
        for backend in ("object", "array"):
            cache = ResultCache(tmp_path / backend)
            Executor(cache=cache).run_one(JobSpec(**base, backend=backend))
            entries = sorted(
                p for p in (tmp_path / backend).iterdir()
                if p.suffix == ".json"
            )
            assert len(entries) == 1
            results[backend] = (entries[0].name, entries[0].read_bytes())
        assert results["object"] == results["array"]

    def test_unknown_backend_in_deserialized_payload_names_choices(self):
        from repro.traffic.mix import UNIFORM_UNICAST

        payload = JobSpec(
            config=proposed_network(), mix=UNIFORM_UNICAST, rate=0.1
        ).to_payload()
        payload["backend"] = "fpga"
        with pytest.raises(ValueError, match=r"fpga.*array.*object"):
            JobSpec.from_dict(payload)

    def test_unknown_backend_job_fails_structurally_not_with_traceback(self):
        # a sick payload surfaces as a JobFailure naming the job's
        # content address, and the rest of the batch stands
        from repro.engine.executor import Executor
        from repro.traffic.mix import UNIFORM_UNICAST

        good = JobSpec(
            config=proposed_network(), mix=UNIFORM_UNICAST, rate=0.1,
            warmup=50, measure=150, drain=200,
        )
        bad = object.__new__(JobSpec)
        object.__setattr__(bad, "__dict__", dict(good.__dict__))
        object.__setattr__(bad, "backend", "fpga")  # skips validation
        results = Executor().run([bad, good])
        assert results[0].stop_reason == "failed"
        assert results[1].stop_reason == "completed"
        failure = Executor().backend.run([bad])[0]
        assert bad.cache_key[:12] in failure.error
        assert "fpga" in failure.error


class TestBatchingIsNotAnIdentityAxis:
    """A batched multi-seed run is an *execution* detail like the
    backend: it fans in to N ordinary per-seed cache entries whose
    content addresses — and bytes — are identical to N single-seed
    runs.  JobSpec has no seeds/batch field at all, so no encoding can
    ever grow one."""

    def _replicas(self, n=3):
        from dataclasses import replace
        from repro.traffic.mix import UNIFORM_UNICAST

        base = JobSpec(
            config=proposed_network(),
            mix=UNIFORM_UNICAST,
            rate=0.1,
            warmup=50,
            measure=150,
            drain=200,
            backend="array",
        )
        return [replace(base, seed=7 + 100_003 * i) for i in range(n)]

    def test_batched_run_fans_into_per_seed_cache_entries(self, tmp_path):
        from repro.engine.cache import ResultCache
        from repro.engine.executor import Executor

        jobs = self._replicas()
        cache = ResultCache(tmp_path / "cache")
        ex = Executor(cache=cache)
        batched = ex.run(jobs)
        assert ex.executed == len(jobs)
        # one ordinary entry per seed, each hit by a later single run
        for job, stats in zip(jobs, batched):
            assert cache.get(job).to_dict() == stats.to_dict()
        again = Executor(cache=cache).run(jobs)
        assert [s.to_dict() for s in again] == [
            s.to_dict() for s in batched
        ]

    def test_batched_results_are_byte_identical_to_single_runs(self):
        jobs = self._replicas()
        from repro.engine.executor import Executor

        batched = Executor().run(jobs)
        singles = [job.run() for job in jobs]
        assert [json.dumps(s.to_dict(), sort_keys=True) for s in batched] \
            == [json.dumps(s.to_dict(), sort_keys=True) for s in singles]

    def test_run_batch_matches_per_seed_run(self):
        from dataclasses import replace

        jobs = self._replicas(2)
        lanes = jobs[0].run_batch([j.seed for j in jobs])
        for job, lane in zip(jobs, lanes):
            assert lane.to_dict() == replace(job, seed=job.seed).run().to_dict()
