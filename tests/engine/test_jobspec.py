"""JobSpec identity: hashing, serialization round-trips, cache keys."""

import json

import pytest

from repro.core.presets import baseline_network, proposed_network
from repro.engine import JobSpec
from repro.noc.config import NocConfig
from repro.noc.metrics import WindowStats
from repro.traffic.mix import BROADCAST_ONLY, MIXED_TRAFFIC, TrafficMix
from repro.traffic.processes import OnOffProcess

FAST = dict(warmup=100, measure=300, drain=400)


def make_job(**overrides):
    base = dict(
        config=proposed_network(),
        mix=MIXED_TRAFFIC,
        rate=0.03,
        name="proposed",
        **FAST,
    )
    base.update(overrides)
    return JobSpec(**base)


class TestValueSemantics:
    def test_hashable_and_equal(self):
        assert make_job() == make_job()
        assert hash(make_job()) == hash(make_job())
        assert len({make_job(), make_job(rate=0.05)}) == 2

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            make_job(rate=1.5)
        with pytest.raises(ValueError):
            make_job(rate=-0.1)

    def test_rejects_negative_cycles(self):
        with pytest.raises(ValueError):
            make_job(measure=-1)


class TestSerialization:
    def test_round_trip_preserves_identity(self):
        job = make_job()
        clone = JobSpec.from_dict(job.to_dict())
        assert clone == job
        assert clone.cache_key == job.cache_key

    def test_dict_is_json_safe(self):
        job = make_job()
        assert json.loads(json.dumps(job.to_dict())) == job.to_dict()

    def test_config_round_trip(self):
        for cfg in (proposed_network(), baseline_network(k=8, flit_bits=128)):
            assert NocConfig.from_dict(cfg.to_dict()) == cfg

    def test_mix_round_trip(self):
        for mix in (MIXED_TRAFFIC, BROADCAST_ONLY):
            assert TrafficMix.from_dict(mix.to_dict()) == mix

    def test_window_stats_round_trip(self):
        stats = make_job().run()
        clone = WindowStats.from_dict(stats.to_dict())
        assert clone == stats
        assert json.dumps(clone.to_dict(), sort_keys=True) == json.dumps(
            stats.to_dict(), sort_keys=True
        )


class TestCacheKey:
    def test_key_is_stable_across_instances(self):
        assert make_job().cache_key == make_job().cache_key

    def test_key_depends_on_every_field(self):
        reference = make_job()
        variants = [
            make_job(config=baseline_network()),
            make_job(mix=BROADCAST_ONLY),
            make_job(rate=0.05),
            make_job(seed=11),
            make_job(warmup=FAST["warmup"] + 1),
            make_job(measure=FAST["measure"] + 1),
            make_job(drain=FAST["drain"] + 1),
            make_job(identical_generators=True),
            make_job(name="other"),
            make_job(injection=OnOffProcess()),
            make_job(injection=OnOffProcess(burst_length=16.0)),
        ]
        keys = {reference.cache_key} | {v.cache_key for v in variants}
        assert len(keys) == len(variants) + 1
