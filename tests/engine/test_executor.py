"""Executor: backend equivalence, robustness, cache counters, sweeps."""

import math
import os
import time

import pytest

from repro.core.presets import proposed_network
from repro.engine import Executor, JobFailure, JobSpec, ResultCache, make_backend
from repro.engine.executor import ProcessPoolBackend, SerialBackend
from repro.harness import experiments as exp
from repro.harness.sweep import run_sweep, run_sweep_batch
from repro.traffic.mix import MIXED_TRAFFIC

FAST = dict(warmup=100, measure=300, drain=400)


def make_jobs(rates):
    return [
        JobSpec(
            config=proposed_network(),
            mix=MIXED_TRAFFIC,
            rate=r,
            name="proposed",
            **FAST,
        )
        for r in rates
    ]


class TestBackends:
    def test_make_backend_resolves_names(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("process", workers=2), ProcessPoolBackend)
        with pytest.raises(ValueError):
            make_backend("gpu")
        with pytest.raises(ValueError):
            ProcessPoolBackend(workers=0)

    def test_workers_rejected_on_serial_backend(self):
        # a worker count with the serial backend would be silently
        # ignored; refuse it instead
        with pytest.raises(ValueError):
            Executor(backend="serial", workers=4)

    def test_short_backend_result_is_an_error(self):
        class DroppyBackend:
            name = "droppy"

            def run(self, jobs):
                return [jobs[0].run()]  # silently drops the rest

        ex = Executor(backend=DroppyBackend())
        with pytest.raises(RuntimeError, match="1 results for 2 jobs"):
            ex.run(make_jobs([0.02, 0.05]))

    def test_process_pool_matches_serial(self):
        jobs = make_jobs([0.02, 0.05])
        serial = Executor(backend="serial").run(jobs)
        pooled = Executor(backend="process", workers=2).run(jobs)
        assert [p.to_dict() for p in pooled] == [s.to_dict() for s in serial]

    def test_single_job_short_circuits_pool(self):
        (stats,) = Executor(backend="process", workers=2).run(make_jobs([0.02]))
        assert stats.injection_rate == 0.02


# worker functions for the robustness tests; must be module-level so
# the pool can import them in its workers


def _picky(payload):
    if payload == 2:
        raise ValueError("two is right out")
    return payload * 10


def _fail_once(flag_path):
    if os.path.exists(flag_path):
        return "recovered"
    open(flag_path, "w").close()
    raise RuntimeError("first attempt fails")


def _hang(_payload):
    time.sleep(60)


def _die(_payload):
    os._exit(1)


def _nap(seconds):
    time.sleep(seconds)
    return seconds


def make_bad_backend_job():
    """A JobSpec whose backend name resolves nowhere — the shape of a
    sick deserialized payload (construction bypasses validation the way
    drift across a process boundary would)."""
    good = make_jobs([0.02])[0]
    bad = object.__new__(JobSpec)
    object.__setattr__(bad, "__dict__", dict(good.__dict__))
    object.__setattr__(bad, "backend", "fpga")
    return bad


class _FailingBackend:
    """Stub backend whose every job comes back as a JobFailure."""

    name = "stub"
    retried = 1

    def run(self, jobs):
        return [JobFailure(error="kaboom", attempts=2) for _ in jobs]


class TestRobustness:
    def test_worker_exception_fails_that_job_alone(self):
        backend = ProcessPoolBackend(workers=2, retries=1)
        outcomes, attempts = backend._map(_picky, [1, 2, 3])
        assert outcomes[0] == ("ok", 10)
        assert outcomes[2] == ("ok", 30)
        kind, message = outcomes[1]
        assert kind == "err" and "ValueError" in message
        assert attempts == [1, 2, 1]  # only the sick payload retried
        assert backend.retried == 1

    def test_transient_failure_recovers_on_retry(self, tmp_path):
        backend = ProcessPoolBackend(workers=1, retries=1)
        flag = str(tmp_path / "failed-once")
        outcomes, attempts = backend._map(_fail_once, [flag])
        assert outcomes == [("ok", "recovered")]
        assert attempts == [2]
        assert backend.retried == 1

    def test_hung_worker_times_out(self):
        backend = ProcessPoolBackend(workers=1, timeout=0.5, retries=0)
        outcomes, attempts = backend._map(_hang, [None])
        kind, message = outcomes[0]
        assert kind == "err" and "timed out" in message
        assert attempts == [1]

    def test_crashed_worker_is_contained(self):
        # a worker killed mid-job never resolves its handle; the
        # timeout path catches it and terminate() reaps the pool
        backend = ProcessPoolBackend(workers=1, timeout=1.0, retries=0)
        outcomes, _attempts = backend._map(_die, [None])
        assert outcomes[0][0] == "err"

    def test_run_surfaces_failures_as_jobfailure(self):
        # timeout far below any real job: the run itself is healthy,
        # the budget is exhausted — same code path as a hang
        backend = ProcessPoolBackend(workers=1, timeout=0.001, retries=0)
        (result,) = backend.run(make_jobs([0.02]))
        assert isinstance(result, JobFailure)
        assert result.attempts == 1

    def test_executor_converts_failures_to_failed_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        ex = Executor(backend=_FailingBackend(), cache=cache)
        (stats,) = ex.run(make_jobs([0.02]))
        assert stats.stop_reason == "failed"
        assert stats.injection_rate == 0.02
        assert math.isnan(stats.avg_latency)
        assert math.isnan(stats.delivered_fraction)
        # structured record in the batch summary, nothing cached
        assert ex.last_batch["failures"] == [
            {"job": "proposed", "rate": 0.02, "error": "kaboom", "attempts": 2}
        ]
        assert ex.last_batch["retried"] == 1
        assert cache.stats()["entries"] == 0

    def test_run_profiled_contains_unknown_backend_like_run(self):
        """Regression: ``run_profiled()`` lacked the unknown-backend
        guard that ``run()`` has, so a sick payload crashed a
        telemetry-enabled sweep that a plain sweep survived."""
        bad = make_bad_backend_job()
        backend = SerialBackend()
        (plain,) = backend.run([bad])
        ((profiled, telemetry),) = backend.run_profiled([bad])
        assert isinstance(plain, JobFailure)
        assert isinstance(profiled, JobFailure)
        assert profiled.error == plain.error
        assert "fpga" in profiled.error
        assert bad.cache_key[:12] in profiled.error
        assert telemetry == {"failure": profiled.error, "attempts": 1}

    def test_telemetry_executor_survives_unknown_backend(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        ex = Executor(telemetry=True, cache=cache)
        (stats,) = ex.run([make_bad_backend_job()])
        assert stats.stop_reason == "failed"
        assert len(ex.last_batch["failures"]) == 1
        assert cache.stats()["entries"] == 0  # nothing cached

    def test_backend_knobs_validated(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(timeout=0)
        with pytest.raises(ValueError):
            ProcessPoolBackend(retries=-1)
        backend = make_backend("process", timeout=30.0, retries=2)
        assert backend.timeout == 30.0 and backend.retries == 2


class TestDispatchDeadlines:
    """The process pool charges each job's wall-clock budget from its
    own dispatch into a free worker slot, never from a shared
    sequential ``get``."""

    def test_healthy_jobs_behind_a_slow_blocker_are_not_timed_out(self):
        """Regression: sequential ``handle.get(self.timeout)`` charged a
        queued job's budget while an over-budget blocker still held the
        only worker, so healthy jobs (0.2s each, 1s budget) came back as
        false timeouts."""
        backend = ProcessPoolBackend(workers=1, timeout=1.0, retries=0)
        outcomes, attempts = backend._map(_nap, [2.2, 0.2, 0.2])
        kind, message = outcomes[0]
        assert kind == "err" and "timed out" in message
        assert outcomes[1] == ("ok", 0.2)
        assert outcomes[2] == ("ok", 0.2)
        assert attempts == [1, 1, 1]

    def test_under_budget_jobs_pass_when_their_sum_exceeds_the_budget(self):
        # three jobs of 0.45s against a 1s per-job budget: the batch
        # takes ~1.35s on one worker, and none of that is any single
        # job's problem (guards against charging from batch submission)
        backend = ProcessPoolBackend(workers=1, timeout=1.0, retries=0)
        outcomes, _attempts = backend._map(_nap, [0.45, 0.45, 0.45])
        assert outcomes == [("ok", 0.45)] * 3

    def test_starved_jobs_lead_the_retry_round(self):
        # a genuinely hung blocker starves the queue past its grace;
        # the starved job must recover in the fresh retry pool, ahead
        # of the blocker that hung it
        backend = ProcessPoolBackend(workers=1, timeout=0.5, retries=1)
        outcomes, attempts = backend._map(_nap, [60, 0.2])
        assert outcomes[0][0] == "err"
        assert outcomes[1] == ("ok", 0.2)
        assert attempts == [2, 2]


class TestCaching:
    def test_counters_track_hits_and_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = make_jobs([0.02, 0.05])
        ex = Executor(cache=cache)
        first = ex.run(jobs)
        assert (ex.executed, ex.cache_hits, ex.cache_misses) == (2, 0, 2)
        second = ex.run(jobs)
        assert (ex.executed, ex.cache_hits, ex.cache_misses) == (2, 2, 2)
        assert second == first

    def test_partial_hits_preserve_order(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        Executor(cache=cache).run(make_jobs([0.05]))
        ex = Executor(cache=cache)
        results = ex.run(make_jobs([0.02, 0.05, 0.08]))
        assert ex.cache_hits == 1 and ex.executed == 2
        assert [r.injection_rate for r in results] == [0.02, 0.05, 0.08]

    def test_uncached_executor_always_runs(self):
        ex = Executor()
        ex.run(make_jobs([0.02]))
        ex.run(make_jobs([0.02]))
        assert ex.executed == 2 and ex.cache_hits == 0


class TestSweepIntegration:
    def test_run_sweep_default_matches_explicit_serial(self):
        cfg = proposed_network()
        rates = [0.02, 0.05]
        default = run_sweep(cfg, MIXED_TRAFFIC, rates, name="proposed", **FAST)
        explicit = run_sweep(
            cfg,
            MIXED_TRAFFIC,
            rates,
            name="proposed",
            executor=Executor(backend="serial"),
            **FAST,
        )
        assert [d.to_dict() for d in default] == [e.to_dict() for e in explicit]

    def test_run_sweep_batch_matches_individual_sweeps(self):
        from repro.core.presets import baseline_network

        rates = [0.02, 0.05]
        configs = {"proposed": proposed_network(), "baseline": baseline_network()}
        ex = Executor()
        batched = run_sweep_batch(configs, MIXED_TRAFFIC, rates, executor=ex, **FAST)
        assert ex.executed == 4  # one batch, all four points
        for name, cfg in configs.items():
            single = run_sweep(cfg, MIXED_TRAFFIC, rates, name=name, **FAST)
            assert [b.to_dict() for b in batched[name]] == [
                s.to_dict() for s in single
            ]

    def test_fig5_cached_rerun_performs_zero_simulations(self, tmp_path):
        # Acceptance criterion: a cached re-run of the Fig. 5 sweep
        # performs zero new simulations.
        cache = ResultCache(tmp_path / "cache")
        kwargs = dict(rates=[0.02, 0.05], warmup=100, measure=400, drain=500)
        cold = Executor(cache=cache)
        first = exp.fig5_mixed_traffic(executor=cold, **kwargs)
        assert cold.executed == 4  # 2 rates x (proposed + baseline)
        warm = Executor(cache=cache)
        second = exp.fig5_mixed_traffic(executor=warm, **kwargs)
        assert warm.executed == 0
        assert warm.cache_hits == 4
        for series in ("proposed", "baseline"):
            assert [p.to_dict() for p in second[series]] == [
                p.to_dict() for p in first[series]
            ]

    def test_fig5_process_backend_matches_serial(self):
        kwargs = dict(rates=[0.02, 0.05], warmup=100, measure=400, drain=500)
        serial = exp.fig5_mixed_traffic(**kwargs)
        pooled = exp.fig5_mixed_traffic(
            executor=Executor(backend="process", workers=2), **kwargs
        )
        for series in ("proposed", "baseline"):
            assert [p.to_dict() for p in pooled[series]] == [
                p.to_dict() for p in serial[series]
            ]
