"""Executor: backend equivalence, cache counters, sweep integration."""

import pytest

from repro.core.presets import proposed_network
from repro.engine import Executor, JobSpec, ResultCache, make_backend
from repro.engine.executor import ProcessPoolBackend, SerialBackend
from repro.harness import experiments as exp
from repro.harness.sweep import run_sweep, run_sweep_batch
from repro.traffic.mix import MIXED_TRAFFIC

FAST = dict(warmup=100, measure=300, drain=400)


def make_jobs(rates):
    return [
        JobSpec(
            config=proposed_network(),
            mix=MIXED_TRAFFIC,
            rate=r,
            name="proposed",
            **FAST,
        )
        for r in rates
    ]


class TestBackends:
    def test_make_backend_resolves_names(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("process", workers=2), ProcessPoolBackend)
        with pytest.raises(ValueError):
            make_backend("gpu")
        with pytest.raises(ValueError):
            ProcessPoolBackend(workers=0)

    def test_workers_rejected_on_serial_backend(self):
        # a worker count with the serial backend would be silently
        # ignored; refuse it instead
        with pytest.raises(ValueError):
            Executor(backend="serial", workers=4)

    def test_short_backend_result_is_an_error(self):
        class DroppyBackend:
            name = "droppy"

            def run(self, jobs):
                return [jobs[0].run()]  # silently drops the rest

        ex = Executor(backend=DroppyBackend())
        with pytest.raises(RuntimeError, match="1 results for 2 jobs"):
            ex.run(make_jobs([0.02, 0.05]))

    def test_process_pool_matches_serial(self):
        jobs = make_jobs([0.02, 0.05])
        serial = Executor(backend="serial").run(jobs)
        pooled = Executor(backend="process", workers=2).run(jobs)
        assert [p.to_dict() for p in pooled] == [s.to_dict() for s in serial]

    def test_single_job_short_circuits_pool(self):
        (stats,) = Executor(backend="process", workers=2).run(make_jobs([0.02]))
        assert stats.injection_rate == 0.02


class TestCaching:
    def test_counters_track_hits_and_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = make_jobs([0.02, 0.05])
        ex = Executor(cache=cache)
        first = ex.run(jobs)
        assert (ex.executed, ex.cache_hits, ex.cache_misses) == (2, 0, 2)
        second = ex.run(jobs)
        assert (ex.executed, ex.cache_hits, ex.cache_misses) == (2, 2, 2)
        assert second == first

    def test_partial_hits_preserve_order(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        Executor(cache=cache).run(make_jobs([0.05]))
        ex = Executor(cache=cache)
        results = ex.run(make_jobs([0.02, 0.05, 0.08]))
        assert ex.cache_hits == 1 and ex.executed == 2
        assert [r.injection_rate for r in results] == [0.02, 0.05, 0.08]

    def test_uncached_executor_always_runs(self):
        ex = Executor()
        ex.run(make_jobs([0.02]))
        ex.run(make_jobs([0.02]))
        assert ex.executed == 2 and ex.cache_hits == 0


class TestSweepIntegration:
    def test_run_sweep_default_matches_explicit_serial(self):
        cfg = proposed_network()
        rates = [0.02, 0.05]
        default = run_sweep(cfg, MIXED_TRAFFIC, rates, name="proposed", **FAST)
        explicit = run_sweep(
            cfg,
            MIXED_TRAFFIC,
            rates,
            name="proposed",
            executor=Executor(backend="serial"),
            **FAST,
        )
        assert [d.to_dict() for d in default] == [e.to_dict() for e in explicit]

    def test_run_sweep_batch_matches_individual_sweeps(self):
        from repro.core.presets import baseline_network

        rates = [0.02, 0.05]
        configs = {"proposed": proposed_network(), "baseline": baseline_network()}
        ex = Executor()
        batched = run_sweep_batch(configs, MIXED_TRAFFIC, rates, executor=ex, **FAST)
        assert ex.executed == 4  # one batch, all four points
        for name, cfg in configs.items():
            single = run_sweep(cfg, MIXED_TRAFFIC, rates, name=name, **FAST)
            assert [b.to_dict() for b in batched[name]] == [
                s.to_dict() for s in single
            ]

    def test_fig5_cached_rerun_performs_zero_simulations(self, tmp_path):
        # Acceptance criterion: a cached re-run of the Fig. 5 sweep
        # performs zero new simulations.
        cache = ResultCache(tmp_path / "cache")
        kwargs = dict(rates=[0.02, 0.05], warmup=100, measure=400, drain=500)
        cold = Executor(cache=cache)
        first = exp.fig5_mixed_traffic(executor=cold, **kwargs)
        assert cold.executed == 4  # 2 rates x (proposed + baseline)
        warm = Executor(cache=cache)
        second = exp.fig5_mixed_traffic(executor=warm, **kwargs)
        assert warm.executed == 0
        assert warm.cache_hits == 4
        for series in ("proposed", "baseline"):
            assert [p.to_dict() for p in second[series]] == [
                p.to_dict() for p in first[series]
            ]

    def test_fig5_process_backend_matches_serial(self):
        kwargs = dict(rates=[0.02, 0.05], warmup=100, measure=400, drain=500)
        serial = exp.fig5_mixed_traffic(**kwargs)
        pooled = exp.fig5_mixed_traffic(
            executor=Executor(backend="process", workers=2), **kwargs
        )
        for series in ("proposed", "baseline"):
            assert [p.to_dict() for p in pooled[series]] == [
                p.to_dict() for p in serial[series]
            ]
