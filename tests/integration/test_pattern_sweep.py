"""Spatial-pattern sweeps, end to end.

Covers the acceptance criteria of the pattern subsystem:

* the ``uniform`` default is byte-identical to the pre-pattern
  ``BernoulliTraffic`` (golden WindowStats captured on the fig5 4x4
  config before the refactor);
* adversarial permutations (transpose, tornado) saturate measurably
  below uniform on a 4x4 mesh, in the order the channel-load analysis
  of :mod:`repro.analysis.pattern_limits` predicts;
* every pattern runs end to end through ``python -m repro sweep
  --pattern ...``.
"""

import pytest

from repro.analysis.pattern_limits import pattern_saturation_rate
from repro.analysis.saturation import find_saturation
from repro.core.presets import proposed_network
from repro.engine import cli
from repro.engine.jobspec import JobSpec
from repro.traffic.mix import MIXED_TRAFFIC, UNIFORM_UNICAST
from repro.traffic.patterns import UniformPattern, make_pattern

#: WindowStats of the pre-pattern BernoulliTraffic on the fig5 4x4
#: proposed config (seed 7, warmup 300, measure 1500, drain 1500),
#: captured at the commit before the pattern refactor.  The uniform
#: path must keep consuming the identical PRBS draw sequence.
GOLDEN_FIG5_MIXED_011 = {
    "avg_latency": 13.303519061583577,
    "avg_latency_by_kind": {
        "broadcast": 13.034722222222221,
        "unicast_request": 6.186588921282799,
        "unicast_response": 22.056478405315616,
    },
    "bypass_fraction": 0.7833885350318471,
    "config_name": "golden",
    "cycles": 1500,
    "delivered_fraction": 1.0,
    "dropped_flits": 0,
    "incomplete_messages": 0,
    "injection_rate": 0.11,
    "messages_measured": 1364,
    "received_flits": 13744,
    "retransmissions": 0,
    "stop_reason": "completed",
    "throughput_flits_per_cycle": 9.162666666666667,
    "throughput_gbps": 586.4106666666667,
}


def golden_job(pattern=None):
    return JobSpec(
        config=proposed_network(),
        mix=MIXED_TRAFFIC,
        rate=0.11,
        seed=7,
        warmup=300,
        measure=1500,
        drain=1500,
        name="golden",
        pattern=pattern,
    )


class TestUniformByteIdentity:
    def test_default_pattern_reproduces_pre_pattern_stats(self):
        assert golden_job().run().to_dict() == GOLDEN_FIG5_MIXED_011

    def test_explicit_uniform_is_the_same_job(self):
        default = golden_job()
        explicit = golden_job(pattern=UniformPattern())
        assert explicit == default
        assert explicit.cache_key == default.cache_key
        assert explicit.run().to_dict() == GOLDEN_FIG5_MIXED_011


class TestAdversarialPatternsSaturateEarlier:
    RATES = (0.08, 0.24, 0.32, 0.40)

    def sweep(self, pattern):
        cfg = proposed_network()
        return [
            JobSpec(
                config=cfg,
                mix=UNIFORM_UNICAST,
                rate=rate,
                seed=7,
                warmup=200,
                measure=1000,
                drain=1000,
                pattern=pattern,
            ).run()
            for rate in self.RATES
        ]

    def test_transpose_and_tornado_saturate_below_uniform(self):
        uniform_sat = find_saturation(self.sweep(None))
        transpose_sat = find_saturation(self.sweep(make_pattern("transpose")))
        tornado_sat = find_saturation(self.sweep(make_pattern("tornado")))
        # uniform is ejection/bisection-limited at R = 1 on a 4x4 mesh
        # (Table 1) and stays flat across this grid...
        assert uniform_sat is None
        # ...while the permutations hit their channel-load walls inside it
        assert transpose_sat is not None
        assert tornado_sat is not None
        assert transpose_sat < self.RATES[-1]
        assert tornado_sat < self.RATES[-1]
        # transpose (k-1 overlapping flows) is worse than tornado (k/2)
        assert transpose_sat < tornado_sat
        # and the measured wall is near the analytic channel-load bound
        analytic = pattern_saturation_rate(
            UNIFORM_UNICAST, 4, make_pattern("transpose")
        )
        assert transpose_sat == pytest.approx(analytic, rel=0.25)

    def test_analysis_predicts_the_measured_ordering(self):
        bounds = {
            name: pattern_saturation_rate(UNIFORM_UNICAST, 4, make_pattern(name))
            for name in ("transpose", "tornado")
        }
        assert bounds["transpose"] == pytest.approx(1 / 3)
        assert bounds["tornado"] == pytest.approx(1 / 2)
        uniform = pattern_saturation_rate(UNIFORM_UNICAST, 4)
        assert bounds["transpose"] < bounds["tornado"] < uniform == 1.0


class TestFig13IgnoresPattern:
    def test_broadcast_only_figure_is_pattern_invariant(self):
        from repro.harness.experiments import fig13_broadcast_traffic

        fast = dict(rates=[0.01], warmup=50, measure=200, drain=200)
        plain = fig13_broadcast_traffic(**fast)
        patterned = fig13_broadcast_traffic(
            **fast, pattern=make_pattern("transpose")
        )
        # a pattern cannot touch a broadcast-only mix: same sims, same
        # cache keys, byte-identical results
        assert patterned["proposed"] == plain["proposed"]
        assert patterned["baseline"] == plain["baseline"]


class TestCliPatternSweeps:
    FAST = (
        "--rates",
        "0.05",
        "--warmup",
        "50",
        "--measure",
        "200",
        "--drain",
        "200",
        "--no-cache",
    )

    @pytest.mark.parametrize(
        "name",
        (
            "transpose",
            "tornado",
            "neighbor",
            "bit_complement",
            "bit_reversal",
            "shuffle",
        ),
    )
    def test_deterministic_patterns_run_end_to_end(self, name, capsys):
        rc = cli.main(
            [
                "sweep",
                "--config",
                "proposed",
                "--mix",
                "uniform_unicast",
                "--pattern",
                name,
                *self.FAST,
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert name in captured.out
        assert "executed=1" in captured.err

    def test_hotspot_runs_end_to_end(self, capsys):
        rc = cli.main(
            [
                "sweep",
                "--config",
                "proposed",
                "--mix",
                "uniform_unicast",
                "--pattern",
                "hotspot",
                "--hotspot",
                "0,5",
                "--hotspot-fraction",
                "0.6",
                *self.FAST,
            ]
        )
        assert rc == 0
        assert "hotspot" in capsys.readouterr().out

    def test_hotspot_nodes_required(self, capsys):
        rc = cli.main(
            ["sweep", "--pattern", "hotspot", *self.FAST]
        )
        assert rc == 2
        assert "--hotspot" in capsys.readouterr().err

    def test_hotspot_flag_needs_hotspot_pattern(self, capsys):
        rc = cli.main(
            ["sweep", "--pattern", "transpose", "--hotspot", "0", *self.FAST]
        )
        assert rc == 2

    def test_hotspot_fraction_needs_hotspot_pattern(self, capsys):
        rc = cli.main(
            [
                "sweep",
                "--pattern",
                "transpose",
                "--hotspot-fraction",
                "0.9",
                *self.FAST,
            ]
        )
        assert rc == 2

    def test_pattern_grid_uses_pattern_aware_ceiling(self, capsys):
        # no explicit rates: the auto grid must bracket the transpose
        # ceiling (1/3), not the uniform one (1.0)
        rc = cli.main(
            [
                "sweep",
                "--config",
                "proposed",
                "--mix",
                "uniform_unicast",
                "--pattern",
                "transpose",
                "--points",
                "2",
                "--warmup",
                "50",
                "--measure",
                "100",
                "--drain",
                "100",
                "--no-cache",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        top = 1 / 3 * 1.15  # ceiling * default headroom
        assert f"{top:.4g}"[:5] in out or f"{top:.2f}" in out