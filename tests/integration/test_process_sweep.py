"""Temporal injection-process sweeps, end to end.

Covers the acceptance criteria of the injection-process subsystem:

* the ``bernoulli`` default is byte-identical to the pre-process
  ``BernoulliTraffic`` (the golden fig5 WindowStats of
  ``test_pattern_sweep``) and hashes to the same cache keys;
* on-off traffic at *matched mean load* saturates at or below the
  Bernoulli saturation point on a 4x4 uniform mesh under both ``xy``
  and ``o1turn`` routing, with longer bursts saturating no later than
  shorter ones — the ordering
  :func:`repro.analysis.burstiness.saturation_shift` predicts;
* every process runs end to end through ``python -m repro sweep
  --injection ...``.

The measured comparison shares one zero-load latency base across the
processes of a routing algorithm: burstiness inflates even the
lowest-rate point's latency, so letting each sweep self-reference
would move the 3x criterion along with the workload and hide exactly
the shift being asserted.
"""

import pytest

from repro.analysis.burstiness import saturation_shift
from repro.analysis.saturation import find_saturation
from repro.core.presets import proposed_network
from repro.engine import cli
from repro.engine.jobspec import JobSpec
from repro.noc.routing import make_routing
from repro.traffic.mix import UNIFORM_UNICAST
from repro.traffic.processes import OnOffProcess


class TestBernoulliByteIdentity:
    def test_default_process_reproduces_the_golden_stats(self):
        from tests.integration.test_pattern_sweep import (
            GOLDEN_FIG5_MIXED_011,
            golden_job,
        )

        assert golden_job().run().to_dict() == GOLDEN_FIG5_MIXED_011


class TestOnOffSaturatesEarlier:
    """The headline physics: same mean load, earlier saturation."""

    RATES = (0.2, 0.35, 0.5, 0.65, 0.8)
    WINDOW = dict(seed=7, warmup=200, measure=800, drain=800)
    BURSTS = (8.0, 16.0)

    def sweep(self, routing, process):
        cfg = (
            proposed_network()
            if routing is None
            else proposed_network(routing=make_routing(routing))
        )
        return [
            JobSpec(
                config=cfg,
                mix=UNIFORM_UNICAST,
                rate=rate,
                injection=process,
                **self.WINDOW,
            ).run()
            for rate in self.RATES
        ]

    @pytest.mark.parametrize("routing", [None, "o1turn"])
    def test_matched_mean_load_saturates_at_or_below_bernoulli(self, routing):
        bernoulli = self.sweep(routing, None)
        base = bernoulli[0].avg_latency
        bern_sat = find_saturation(bernoulli, zero_load_latency=base)
        assert bern_sat is not None
        sats = []
        for burst_length in self.BURSTS:
            points = self.sweep(routing, OnOffProcess(burst_length))
            sat = find_saturation(points, zero_load_latency=base)
            assert sat is not None, f"onoff L={burst_length} never saturated"
            assert sat <= bern_sat * 1.01, (
                f"onoff L={burst_length} under {routing or 'xy'} saturated "
                f"at {sat:.3f}, above bernoulli's {bern_sat:.3f}"
            )
            sats.append(sat)
        # longer bursts are no kinder: L=16 saturates at or below L=8
        assert sats[1] <= sats[0] * 1.01
        # and the analytic shift predicts the same ordering
        shifts = [
            saturation_shift(
                UNIFORM_UNICAST, 4, routing=routing,
                process=OnOffProcess(length),
            )
            for length in self.BURSTS
        ]
        assert shifts[1] < shifts[0] < 1.0


class TestCliInjectionSweeps:
    FAST = (
        "--rates",
        "0.05",
        "--warmup",
        "50",
        "--measure",
        "200",
        "--drain",
        "200",
        "--no-cache",
    )

    def test_onoff_runs_end_to_end(self, capsys):
        rc = cli.main(
            [
                "sweep",
                "--config",
                "proposed",
                "--mix",
                "uniform_unicast",
                "--injection",
                "onoff",
                "--burst-length",
                "8",
                *self.FAST,
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "onoff" in captured.out
        assert "executed=1" in captured.err

    def test_mmp_runs_end_to_end(self, capsys):
        rc = cli.main(
            [
                "sweep",
                "--config",
                "proposed",
                "--mix",
                "mixed",
                "--injection",
                "mmp",
                "--mmp-levels",
                "0.5,2",
                "--mmp-dwells",
                "16,8",
                *self.FAST,
            ]
        )
        assert rc == 0
        assert "mmp" in capsys.readouterr().out

    def test_bursty_broadcasts_run_end_to_end(self, capsys):
        # fig13's mix is broadcast-only; unlike --pattern/--routing the
        # temporal process genuinely applies to it
        rc = cli.main(
            [
                "sweep",
                "--config",
                "proposed",
                "--mix",
                "broadcast_only",
                "--injection",
                "onoff",
                *self.FAST,
            ]
        )
        assert rc == 0

    def test_burst_flags_need_onoff(self, capsys):
        rc = cli.main(["sweep", "--burst-length", "8", *self.FAST])
        assert rc == 2
        assert "--burst-length" in capsys.readouterr().err

    def test_mmp_flags_need_mmp(self, capsys):
        rc = cli.main(
            [
                "sweep",
                "--injection",
                "onoff",
                "--mmp-levels",
                "1,2",
                *self.FAST,
            ]
        )
        assert rc == 2
        assert "--mmp-levels" in capsys.readouterr().err

    def test_unknown_process_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli.main(["sweep", "--injection", "poisson", *self.FAST])
        assert exc.value.code == 2
        assert "--injection" in capsys.readouterr().err

    def test_inexpressible_rate_is_a_clean_cli_error(self, capsys):
        # onoff L=8 caps the mean at 8/9; an explicit rate beyond it
        # must fail in domain validation, not as a traceback
        rc = cli.main(
            [
                "sweep",
                "--mix",
                "uniform_unicast",
                "--injection",
                "onoff",
                "--rates",
                "0.95",
                "--warmup",
                "50",
                "--measure",
                "100",
                "--drain",
                "100",
                "--no-cache",
            ]
        )
        assert rc == 2
        assert "onoff" in capsys.readouterr().err

    def test_auto_grid_clamps_to_the_expressible_range(self, capsys):
        # uniform unicast's wall is 1.0; with headroom the bernoulli
        # grid tops at 1.0, but onoff L=4 can only express 0.8 —
        # the auto grid must clamp there instead of crashing
        rc = cli.main(
            [
                "sweep",
                "--config",
                "proposed",
                "--mix",
                "uniform_unicast",
                "--injection",
                "onoff",
                "--burst-length",
                "4",
                "--points",
                "2",
                "--warmup",
                "50",
                "--measure",
                "100",
                "--drain",
                "100",
                "--no-cache",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "0.8" in out and "1.0 " not in out

    def test_fig13_inexpressible_process_is_a_clean_cli_error(self, capsys):
        # an on-rate below every default fig13 rate would filter the
        # grid empty; that must surface as a domain error, not an
        # IndexError from a vacuous sweep
        rc = cli.main(
            [
                "figure",
                "fig13",
                "--injection",
                "onoff",
                "--on-rate",
                "0.005",
                "--no-cache",
            ]
        )
        assert rc == 2
        assert "onoff" in capsys.readouterr().err

    def test_figure_fig5_accepts_injection(self, capsys):
        rc = cli.main(
            [
                "figure",
                "fig5",
                "--injection",
                "onoff",
                "--burst-length",
                "8",
                "--rates",
                "0.02",
                "--warmup",
                "50",
                "--measure",
                "200",
                "--drain",
                "200",
                "--no-cache",
            ]
        )
        assert rc == 0
        assert "fig5" in capsys.readouterr().out
