"""The simulator and analysis generalise beyond the chip's k=4."""

import pytest

from repro import Simulator, proposed_network, baseline_network
from repro.analysis.limits import MeshLimits
from repro.noc.flit import MessageClass
from repro.noc.routing import xy_distance
from repro.traffic import BernoulliTraffic, MessageSpec, SyntheticBurst
from repro.traffic.mix import UNIFORM_UNICAST


class TestSmallMesh:
    def test_k2_unicast_latency(self):
        cfg = proposed_network(k=2)
        spec = MessageSpec(frozenset([3]), MessageClass.REQUEST, 1)
        sim = Simulator(cfg, SyntheticBurst({(2, 0): [spec]}))
        sim.run(40)
        assert sim.network.messages[0].latency == xy_distance(0, 3, 2) + 2

    def test_k2_broadcast(self):
        cfg = proposed_network(k=2)
        spec = MessageSpec(frozenset(range(4)), MessageClass.REQUEST, 1)
        sim = Simulator(cfg, SyntheticBurst({(2, 1): [spec]}))
        sim.run(60)
        assert sim.network.messages[0].complete
        assert sim.network.total_router_activity().ejections == 4


class TestLargeMesh:
    def test_k8_broadcast_delivery(self):
        cfg = proposed_network(k=8)
        spec = MessageSpec(frozenset(range(64)), MessageClass.REQUEST, 1)
        sim = Simulator(cfg, SyntheticBurst({(2, 0): [spec]}))
        sim.run(150)
        msg = sim.network.messages[0]
        assert msg.complete
        # corner source: furthest corner is 14 hops away
        assert msg.latency == 14 + 2
        # spanning tree: exactly k^2 - 1 links, k^2 ejections
        activity = sim.network.total_router_activity()
        assert activity.link_traversals == 63
        assert activity.ejections == 64

    def test_k8_uniform_traffic_runs(self):
        cfg = proposed_network(k=8)
        sim = Simulator(cfg, BernoulliTraffic(UNIFORM_UNICAST, 0.05, seed=3))
        stats = sim.run_experiment(warmup=200, measure=800, drain=1500)
        assert stats.messages_measured > 0
        # zero-load-ish latency tracks the k=8 limit
        assert stats.avg_latency < 3 * MeshLimits(8).latency_limit("unicast")

    def test_k8_bisection_binds(self):
        """For k > 4 the unicast limit moves to the bisection links."""
        lim = MeshLimits(8)
        assert lim.max_injection_rate("unicast") == 0.5
        base = baseline_network(k=8)
        assert base.num_nodes == 64


class TestFrequencyScaling:
    def test_throughput_scales_with_clock(self):
        cfg = proposed_network(frequency_ghz=2.0)
        sim = Simulator(cfg, BernoulliTraffic(UNIFORM_UNICAST, 0.1, seed=2))
        stats = sim.run_experiment(warmup=200, measure=800, drain=800)
        cfg1 = proposed_network()
        sim1 = Simulator(cfg1, BernoulliTraffic(UNIFORM_UNICAST, 0.1, seed=2))
        stats1 = sim1.run_experiment(warmup=200, measure=800, drain=800)
        # identical cycle behaviour, Gb/s doubles with the clock
        assert stats.received_flits == stats1.received_flits
        assert stats.throughput_gbps == pytest.approx(
            2 * stats1.throughput_gbps
        )
