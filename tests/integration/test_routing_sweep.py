"""Routing-algorithm sweeps, end to end.

Covers the acceptance criteria of the routing subsystem:

* conservation — every injected message ejects exactly once at its
  destination (no drops, no duplicates) for every algorithm x pattern
  combination on 4x4 and 8x8 meshes;
* gating — activity-gated and ungated stepping stay byte-identical
  under every algorithm;
* byte-compatibility — the XY default reproduces the pre-routing
  golden WindowStats and cache keys;
* the headline physics — with VC provisioning that does not bind
  (:func:`repro.noc.config.routed_vc_config`), O1TURN saturates
  transpose far above XY's 1/3 wall, and the measured saturation
  ordering matches the per-algorithm bounds of
  :mod:`repro.analysis.pattern_limits` (which invert XY's ordering:
  o1turn-transpose 2/3 > o1turn-tornado 1/2, vs xy 1/3 < 1/2);
* every algorithm runs end to end through ``python -m repro sweep
  --routing ...``.
"""

import json

import pytest

from repro.analysis.pattern_limits import pattern_saturation_rate
from repro.analysis.saturation import find_saturation
from repro.core.presets import proposed_network
from repro.engine import cli
from repro.engine.jobspec import JobSpec
from repro.noc.config import routed_vc_config
from repro.noc.routing import make_routing
from repro.noc.simulator import Simulator
from repro.traffic.generators import BernoulliTraffic
from repro.traffic.mix import UNIFORM_UNICAST
from repro.traffic.patterns import HotspotPattern, make_pattern

ALGORITHMS = ("xy", "yx", "o1turn", "valiant")


def pattern_for(name, k):
    if name == "uniform":
        return None
    if name == "hotspot":
        return HotspotPattern((0, k + 1), 0.5)
    return make_pattern(name)


class TestConservation:
    """Inject under load, drain fully, account for every flit."""

    @pytest.mark.parametrize("k", (4, 8))
    @pytest.mark.parametrize(
        "pattern", ("uniform", "transpose", "tornado", "hotspot")
    )
    @pytest.mark.parametrize("routing", ALGORITHMS)
    def test_every_message_ejects_exactly_once(self, routing, pattern, k):
        cfg = proposed_network(k=k, routing=make_routing(routing))
        traffic = BernoulliTraffic(
            UNIFORM_UNICAST, 0.15, seed=7, pattern=pattern_for(pattern, k)
        )
        sim = Simulator(cfg, traffic)
        sim.run(150)
        net = sim.network
        for nic in net.nics:
            nic.source = None
        for _ in range(4000):
            if net.quiescent():
                break
            sim.step()
        assert net.idle(), f"{routing}/{pattern} {k}x{k} failed to drain"
        messages = net.messages
        assert messages, "no traffic was generated"
        assert all(m.complete for m in messages)
        # UNIFORM_UNICAST is single-flit unicast: one ejection per
        # message, so any duplicate or drop breaks this equality
        ejected = sum(s.ejected_flits for s in net.nic_stats)
        assert ejected == len(messages)


class TestGatingIdentity:
    FAST = dict(warmup=100, measure=300, drain=400)

    @pytest.mark.parametrize("routing", ALGORITHMS)
    def test_gated_matches_reference(self, routing):
        results = []
        for gated in (True, False):
            traffic = BernoulliTraffic(
                UNIFORM_UNICAST, 0.2, seed=7, pattern=make_pattern("transpose")
            )
            cfg = proposed_network(routing=make_routing(routing))
            sim = Simulator(cfg, traffic, gated=gated)
            results.append(
                json.dumps(sim.run_experiment(**self.FAST).to_dict(),
                           sort_keys=True)
            )
        assert results[0] == results[1]


class TestXYByteCompatibility:
    def test_explicit_xy_config_matches_the_golden_run(self):
        from tests.integration.test_pattern_sweep import (
            GOLDEN_FIG5_MIXED_011,
            golden_job,
        )

        default = golden_job()
        explicit = JobSpec(
            config=proposed_network(routing=make_routing("xy")),
            mix=default.mix,
            rate=default.rate,
            seed=default.seed,
            warmup=default.warmup,
            measure=default.measure,
            drain=default.drain,
            name=default.name,
        )
        assert explicit == default
        assert explicit.cache_key == default.cache_key
        assert explicit.run().to_dict() == GOLDEN_FIG5_MIXED_011


class TestO1TurnLiftsThePatternWalls:
    """The integration claim: with non-binding VC provisioning, O1TURN
    saturates transpose above the XY wall, in the order the
    per-algorithm bounds predict."""

    RATES = (0.30, 0.45, 0.60, 0.75)
    WINDOW = dict(seed=7, warmup=200, measure=800, drain=800)

    def sweep(self, routing, pattern):
        cfg = proposed_network(
            vcs=routed_vc_config(), routing=make_routing(routing)
        )
        return [
            JobSpec(
                config=cfg,
                mix=UNIFORM_UNICAST,
                rate=rate,
                pattern=make_pattern(pattern),
                **self.WINDOW,
            ).run()
            for rate in self.RATES
        ]

    def test_measured_walls_follow_the_per_algorithm_bounds(self):
        sat = {
            (routing, pattern): find_saturation(self.sweep(routing, pattern))
            for routing in ("xy", "o1turn")
            for pattern in ("transpose", "tornado")
        }
        bound = {
            (routing, pattern): pattern_saturation_rate(
                UNIFORM_UNICAST, 4, make_pattern(pattern), routing
            )
            for routing in ("xy", "o1turn")
            for pattern in ("transpose", "tornado")
        }
        # the analytic picture: o1turn halves transpose's channel load
        # (disjoint XY/YX hot links) but cannot move tornado's (they
        # coincide), inverting the XY ordering
        assert bound[("xy", "transpose")] == pytest.approx(1 / 3)
        assert bound[("o1turn", "transpose")] == pytest.approx(2 / 3)
        assert bound[("xy", "tornado")] == bound[("o1turn", "tornado")] == (
            pytest.approx(1 / 2)
        )
        # measured: o1turn saturates transpose far above the XY wall...
        assert sat[("xy", "transpose")] == pytest.approx(1 / 3, rel=0.2)
        assert sat[("o1turn", "transpose")] > 1.5 * sat[("xy", "transpose")]
        assert sat[("o1turn", "transpose")] == pytest.approx(2 / 3, rel=0.25)
        # ...leaves tornado at its shared wall...
        assert sat[("o1turn", "tornado")] == pytest.approx(
            sat[("xy", "tornado")], rel=0.2
        )
        # ...and the measured orderings match the analytic ones, which
        # invert between the algorithms
        assert sat[("xy", "transpose")] < sat[("xy", "tornado")]
        assert sat[("o1turn", "tornado")] < sat[("o1turn", "transpose")]

    def test_valiant_is_pattern_independent(self):
        # both adversarial permutations share Valiant's 2x-uniform
        # bound; at a rate above XY's transpose wall both still deliver
        bound_t = pattern_saturation_rate(
            UNIFORM_UNICAST, 4, make_pattern("transpose"), "valiant"
        )
        bound_n = pattern_saturation_rate(
            UNIFORM_UNICAST, 4, make_pattern("tornado"), "valiant"
        )
        assert bound_t == bound_n == pytest.approx(1 / 2)
        lat = {}
        for pattern in ("transpose", "tornado"):
            stats = JobSpec(
                config=proposed_network(
                    vcs=routed_vc_config(), routing=make_routing("valiant")
                ),
                mix=UNIFORM_UNICAST,
                rate=0.3,
                pattern=make_pattern(pattern),
                seed=7,
                warmup=200,
                measure=600,
                drain=1200,
            ).run()
            lat[pattern] = stats.avg_latency
        assert lat["transpose"] == pytest.approx(lat["tornado"], rel=0.25)


class TestCliRoutingSweeps:
    FAST = (
        "--rates",
        "0.05",
        "--warmup",
        "50",
        "--measure",
        "200",
        "--drain",
        "200",
        "--no-cache",
    )

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_algorithms_run_end_to_end(self, name, capsys):
        rc = cli.main(
            [
                "sweep",
                "--config",
                "proposed",
                "--mix",
                "uniform_unicast",
                "--pattern",
                "transpose",
                "--routing",
                name,
                *self.FAST,
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert name in captured.out
        assert "executed=1" in captured.err

    def test_unknown_routing_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli.main(["sweep", "--routing", "zigzag", *self.FAST])
        assert exc.value.code == 2
        assert "--routing" in capsys.readouterr().err

    def test_yx_with_multicast_mix_is_a_clean_cli_error(self, capsys):
        rc = cli.main(
            ["sweep", "--config", "proposed", "--mix", "mixed",
             "--routing", "yx", *self.FAST]
        )
        assert rc == 2
        assert "multicast" in capsys.readouterr().err

    def test_auto_grid_uses_the_routing_aware_ceiling(self, capsys):
        # o1turn doubles the transpose ceiling: the grid top must be
        # 2/3 * headroom, not the XY 1/3 * headroom
        rc = cli.main(
            [
                "sweep",
                "--config",
                "proposed",
                "--mix",
                "uniform_unicast",
                "--pattern",
                "transpose",
                "--routing",
                "o1turn",
                "--points",
                "2",
                "--warmup",
                "50",
                "--measure",
                "100",
                "--drain",
                "100",
                "--no-cache",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        top = 2 / 3 * 1.15
        assert f"{top:.3f}" in out  # 0.767, not the XY 0.383 top

    def test_figure_fig5_accepts_routing(self, capsys):
        rc = cli.main(
            [
                "figure",
                "fig5",
                "--routing",
                "o1turn",
                "--rates",
                "0.02",
                "--warmup",
                "50",
                "--measure",
                "200",
                "--drain",
                "200",
                "--no-cache",
            ]
        )
        assert rc == 0
        assert "fig5" in capsys.readouterr().out
