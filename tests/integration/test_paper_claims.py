"""End-to-end checks of the paper's headline claims (scaled down).

Each test runs the actual simulator and asserts the *direction and
rough magnitude* of a published result.  Cycle counts are reduced from
the paper's 10^4 to keep the suite fast; the benchmarks regenerate the
full-fidelity numbers.
"""

import pytest

from repro import Simulator, baseline_network, proposed_network
from repro.analysis.limits import MeshLimits
from repro.harness.sweep import run_point
from repro.noc.metrics import aggregate
from repro.power.meter import PowerMeter
from repro.traffic import BernoulliTraffic
from repro.traffic.mix import BROADCAST_ONLY, MIXED_TRAFFIC

FAST = dict(warmup=300, measure=1500, drain=2000)


class TestLatencyClaims:
    def test_proposed_halves_mixed_latency(self):
        """Section 4.1: 48.7% latency reduction on mixed traffic."""
        prop = run_point(proposed_network(), MIXED_TRAFFIC, 0.03, **FAST)
        base = run_point(baseline_network(), MIXED_TRAFFIC, 0.03, **FAST)
        reduction = 1 - prop.avg_latency / base.avg_latency
        assert reduction > 0.45

    def test_broadcast_latency_reduction_larger(self):
        """Section 4.1 / App. D: broadcast-only benefits even more."""
        prop_m = run_point(proposed_network(), MIXED_TRAFFIC, 0.03, **FAST)
        base_m = run_point(baseline_network(), MIXED_TRAFFIC, 0.03, **FAST)
        prop_b = run_point(proposed_network(), BROADCAST_ONLY, 0.02, **FAST)
        base_b = run_point(baseline_network(), BROADCAST_ONLY, 0.02, **FAST)
        red_mixed = 1 - prop_m.avg_latency / base_m.avg_latency
        red_bcast = 1 - prop_b.avg_latency / base_b.avg_latency
        assert red_bcast > red_mixed

    def test_low_load_latency_near_theoretical_limit(self):
        """Low-load gap to the limit stays small (paper: 6.3 cycles on
        the chip with the PRBS artifact, ~0.3 in ideal RTL; ours lands
        between because multicast bypass is all-or-nothing)."""
        stats = run_point(proposed_network(), BROADCAST_ONLY, 0.005, **FAST)
        limit = MeshLimits(4).latency_limit("broadcast")
        assert 0 < stats.avg_latency - limit < 3.0

    def test_identical_prbs_artifact_adds_contention(self):
        """Section 4.1: shared PRBS generators inflate low-load latency."""
        clean = run_point(proposed_network(), MIXED_TRAFFIC, 0.03, **FAST)
        chip = run_point(
            proposed_network(),
            MIXED_TRAFFIC,
            0.03,
            identical_generators=True,
            **FAST,
        )
        assert chip.avg_latency > clean.avg_latency + 1.0
        assert chip.bypass_fraction < clean.bypass_fraction


class TestThroughputClaims:
    def test_proposed_approaches_broadcast_limit(self):
        """Section 4.1: 91% of the broadcast throughput limit (we run
        without the chip's PRBS artifact, so expect >= 85%)."""
        stats = run_point(
            proposed_network(), BROADCAST_ONLY, 0.068, warmup=500,
            measure=2500, drain=1000
        )
        assert stats.throughput_gbps > 0.85 * 1024

    def test_baseline_saturates_far_below_limit(self):
        stats = run_point(
            baseline_network(), BROADCAST_ONLY, 0.068, warmup=500,
            measure=2500, drain=1000
        )
        assert stats.throughput_gbps < 0.65 * 1024

    def test_throughput_ratio_near_2x(self):
        """Section 4.1: 2.1-2.2x saturation throughput improvement."""
        prop = run_point(
            proposed_network(), BROADCAST_ONLY, 0.068, warmup=500,
            measure=2000, drain=500
        )
        base = run_point(
            baseline_network(), BROADCAST_ONLY, 0.068, warmup=500,
            measure=2000, drain=500
        )
        assert 1.5 < prop.throughput_gbps / base.throughput_gbps < 2.6

    def test_bypass_fraction_degrades_gracefully_with_load(self):
        low = run_point(proposed_network(), MIXED_TRAFFIC, 0.02, **FAST)
        high = run_point(proposed_network(), MIXED_TRAFFIC, 0.15, **FAST)
        assert low.bypass_fraction > 0.9
        assert 0.3 < high.bypass_fraction < low.bypass_fraction


class TestEnergyClaims:
    def _activity(self, cfg, rate=653 / 64 / 256):
        sim = Simulator(cfg, BernoulliTraffic(BROADCAST_ONLY, rate, seed=7))
        sim.run(500)
        start = aggregate(sim.network.router_stats).snapshot()
        sim.run(2000)
        return aggregate(sim.network.router_stats) - start

    def test_total_power_reduction_38pct(self):
        base = PowerMeter(low_swing=False).evaluate(
            self._activity(baseline_network()), 2000
        )
        prop = PowerMeter(low_swing=True).evaluate(
            self._activity(proposed_network()), 2000
        )
        assert prop.reduction_vs(base) == pytest.approx(0.382, abs=0.05)

    def test_broadcast_energy_shared_on_tree(self):
        """One broadcast costs ~15 links on the tree vs ~40 as unicasts."""
        base_act = self._activity(baseline_network(), rate=0.01)
        prop_act = self._activity(proposed_network(), rate=0.01)
        per_ej_base = base_act.link_traversals / base_act.ejections
        per_ej_prop = prop_act.link_traversals / prop_act.ejections
        assert per_ej_prop < 0.5 * per_ej_base

    def test_leakage_fraction_near_measured(self):
        """76.7mW leakage is ~18-30% of network power at 653Gb/s."""
        prop = PowerMeter(low_swing=True).evaluate(
            self._activity(proposed_network()), 2000
        )
        assert 0.15 < prop.leakage_mw / prop.total_mw < 0.35
