"""Structured run outcomes: WindowStats.stop_reason.

A run that ends abnormally used to bury the cause in a RuntimeError;
now ``run_experiment`` reports it structurally (``completed`` /
``max-cycles`` / ``watchdog``) while the bare ``run`` entry point still
raises, so interactive callers keep the loud failure.
"""

import json

import pytest

import repro.noc.simulator as simulator_module
from repro import Simulator, proposed_network
from repro.noc.flit import MessageClass
from repro.noc.metrics import WindowStats
from repro.noc.simulator import SimulationStalled
from repro.traffic import MessageSpec, SyntheticBurst, SyntheticTraffic
from repro.traffic.mix import MIXED_TRAFFIC

FAST = dict(warmup=100, measure=300, drain=400)


def _stalled_simulator():
    """A mesh holding work it can never finish: a message is submitted
    but every NIC's free-VC queue is emptied, so nothing ever injects
    and the network stays busy without a single ejection."""
    spec = MessageSpec(frozenset([15]), MessageClass.REQUEST, 1)
    sim = Simulator(proposed_network(), SyntheticBurst({(5, 0): [spec]}))
    for nic in sim.network.nics:
        for key in nic.tracker._free:
            nic.tracker._free[key].clear()
    return sim


class TestStopReason:
    def test_normal_run_reports_completed(self):
        traffic = SyntheticTraffic(MIXED_TRAFFIC, 0.03, seed=7)
        stats = Simulator(proposed_network(), traffic).run_experiment(**FAST)
        assert stats.stop_reason == "completed"

    def test_saturated_drain_reports_max_cycles(self):
        # far beyond saturation with a one-cycle drain cap: the window
        # closes with messages still in flight
        traffic = SyntheticTraffic(MIXED_TRAFFIC, 0.30, seed=7)
        sim = Simulator(proposed_network(), traffic)
        stats = sim.run_experiment(warmup=100, measure=300, drain=1)
        assert stats.stop_reason == "max-cycles"
        assert stats.incomplete_messages > 0

    def test_watchdog_stall_is_absorbed_into_stop_reason(self, monkeypatch):
        monkeypatch.setattr(simulator_module, "WATCHDOG_CYCLES", 50)
        stats = _stalled_simulator().run_experiment(
            warmup=0, measure=600, drain=100
        )
        assert stats.stop_reason == "watchdog"

    def test_bare_run_still_raises(self, monkeypatch):
        monkeypatch.setattr(simulator_module, "WATCHDOG_CYCLES", 50)
        with pytest.raises(SimulationStalled) as exc:
            _stalled_simulator().run(600)
        assert "no progress" in str(exc.value)
        assert exc.value.cycle > 0


class TestRoundTrip:
    def test_stop_reason_survives_to_dict_from_dict(self):
        traffic = SyntheticTraffic(MIXED_TRAFFIC, 0.30, seed=7)
        sim = Simulator(proposed_network(), traffic)
        stats = sim.run_experiment(warmup=100, measure=300, drain=1)
        clone = WindowStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert clone.stop_reason == "max-cycles"
        assert clone == stats

    def test_legacy_dict_without_stop_reason_defaults_to_completed(self):
        traffic = SyntheticTraffic(MIXED_TRAFFIC, 0.03, seed=7)
        stats = Simulator(proposed_network(), traffic).run_experiment(**FAST)
        legacy = stats.to_dict()
        del legacy["stop_reason"]  # entry written before this field
        assert WindowStats.from_dict(legacy).stop_reason == "completed"
