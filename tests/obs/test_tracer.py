"""Ring-buffer semantics of the event tracer."""

import pytest

from repro.obs.tracer import EVENT_KINDS, EXTRA_FIELD, Tracer


class TestRing:
    def test_records_in_order_below_capacity(self):
        tracer = Tracer(capacity=16)
        for cycle in range(10):
            tracer.record(cycle, "inject", node=cycle % 4)
        assert len(tracer) == 10
        assert tracer.recorded == 10
        assert tracer.dropped == 0
        assert [e[0] for e in tracer.events] == list(range(10))

    def test_wraparound_drops_oldest_first(self):
        tracer = Tracer(capacity=8)
        for cycle in range(20):
            tracer.record(cycle, "link", node=0, extra=1)
        assert len(tracer) == 8
        assert tracer.recorded == 20
        assert tracer.dropped == 12
        # the ring keeps the *most recent* window
        assert [e[0] for e in tracer.events] == list(range(12, 20))

    def test_capacity_one_keeps_only_the_last_event(self):
        tracer = Tracer(capacity=1)
        tracer.record(1, "wake", 3)
        tracer.record(2, "sleep", 3)
        assert list(tracer.events) == [(2, "sleep", 3, None, None, None, None)]
        assert tracer.dropped == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestBookkeeping:
    def test_counts_reflect_buffered_events_only(self):
        tracer = Tracer(capacity=4)
        for cycle in range(6):
            tracer.record(cycle, "inject", 0)
        tracer.record(6, "eject", 0)
        counts = tracer.counts()
        assert counts["inject"] == 3  # three of six survived the ring
        assert counts["eject"] == 1
        assert sum(counts.values()) == len(tracer) == 4

    def test_clear_resets_everything(self):
        tracer = Tracer(capacity=4)
        tracer.record(0, "wake", 1)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.recorded == 0
        assert tracer.dropped == 0

    def test_every_kind_has_a_documented_extra(self):
        assert set(EXTRA_FIELD) == set(EVENT_KINDS)
