"""Run telemetry: profiled execution, cache counters and sidecars.

Telemetry is bookkeeping *about* runs, never part of them: profiled
results must be byte-identical to plain ones, sidecars must never
collide with cache entries, and counters must survive across cache
instances via ``counters.meta``.
"""

import json

from repro.core.presets import proposed_network
from repro.engine import JobSpec, ResultCache
from repro.engine.executor import Executor, SerialBackend
from repro.obs.profiler import PHASES, PhaseProfiler
from repro.traffic.mix import MIXED_TRAFFIC

FAST = dict(warmup=100, measure=300, drain=400)


def make_job(**overrides):
    base = dict(
        config=proposed_network(), mix=MIXED_TRAFFIC, rate=0.03, **FAST
    )
    base.update(overrides)
    return JobSpec(**base)


def canonical(stats):
    return json.dumps(stats.to_dict(), sort_keys=True)


class TestProfiledExecution:
    def test_run_profiled_is_byte_identical_to_run(self):
        job = make_job()
        plain = job.run()
        profiled, telemetry = job.run_profiled()
        assert canonical(profiled) == canonical(plain)
        assert telemetry["stop_reason"] == "completed"
        profile = telemetry["profile"]
        assert profile["cycles"] > 0
        assert profile["cycles_per_second"] > 0
        assert set(profile["phase_seconds"]) == set(PHASES)

    def test_backend_run_profiled_matches_run(self):
        backend = SerialBackend()
        jobs = [make_job(), make_job(rate=0.05)]
        plain = backend.run(jobs)
        pairs = backend.run_profiled(jobs)
        assert [canonical(s) for s, _t in pairs] == [
            canonical(s) for s in plain
        ]

    def test_executor_telemetry_writes_sidecars(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = make_job()
        executor = Executor(cache=cache, telemetry=True)
        [stats] = executor.run([job])
        assert canonical(stats) == canonical(job.run())
        telemetry = cache.get_telemetry(job)
        assert telemetry is not None
        assert telemetry["profile"]["cycles"] > 0
        assert "worker_seconds" in telemetry.get("worker", {
            "worker_seconds": 0.0  # serial backend profiles in-process
        })
        # the sidecar is invisible to the entry glob and to get()
        assert cache.stats()["entries"] == 1
        assert cache.stats()["telemetry_sidecars"] == 1
        assert canonical(cache.get(job)) == canonical(stats)

    def test_cached_result_skips_telemetry_rerun(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = make_job()
        Executor(cache=cache).run([job])  # plain first run, no sidecar
        assert cache.get_telemetry(job) is None
        executor = Executor(cache=cache, telemetry=True)
        executor.run([job])
        assert executor.executed == 0  # hit; no fresh telemetry either
        assert cache.get_telemetry(job) is None

    def test_last_batch_summary(self, tmp_path):
        executor = Executor(cache=ResultCache(tmp_path / "cache"))
        executor.run([make_job()])
        batch = executor.last_batch
        assert batch["jobs"] == 1 and batch["executed"] == 1
        assert batch["backend"] == "serial"
        assert batch["wall_seconds"] > 0


class TestCacheCounters:
    def test_session_counters_track_activity(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = make_job()
        cache.get(job)
        cache.put(job, job.run())
        cache.get(job)
        assert cache.counters() == {"hits": 1, "misses": 1, "puts": 1}

    def test_flush_persists_and_is_idempotent(self, tmp_path):
        root = tmp_path / "cache"
        cache = ResultCache(root)
        job = make_job()
        cache.get(job)
        cache.put(job, job.run())
        totals = cache.flush_counters()
        assert totals == {"hits": 0, "misses": 1, "puts": 1}
        assert cache.flush_counters() == totals  # nothing new to fold
        # a fresh instance sees the persisted totals plus its own
        other = ResultCache(root)
        other.get(job)
        assert other.lifetime_counters() == {"hits": 1, "misses": 1, "puts": 1}

    def test_counters_file_never_aliases_an_entry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = make_job()
        cache.put(job, job.run())
        cache.flush_counters()
        assert cache.stats()["entries"] == 1  # counters.meta not counted

    def test_clear_removes_sidecars_and_counters(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = make_job()
        cache.put(job, job.run())
        cache.put_telemetry(job, {"profile": {}})
        cache.flush_counters()
        assert cache.clear() == 1
        assert list(cache.root.iterdir()) == []
        assert cache.lifetime_counters() == {
            "hits": 0, "misses": 0, "puts": 0,
        }


class TestPhaseProfiler:
    def test_report_shares_sum_to_one(self):
        prof = PhaseProfiler()
        for _ in range(3):
            prof.begin_cycle()
            for phase in PHASES:
                prof.mark(phase)
            prof.end_cycle()
        report = prof.report(events=30)
        assert report["cycles"] == 3
        assert report["events_per_cycle"] == 10
        assert abs(sum(report["phase_share"].values()) - 1.0) < 1e-9

    def test_empty_profiler_reports_zeros(self):
        report = PhaseProfiler().report()
        assert report["cycles"] == 0
        assert report["cycles_per_second"] == 0
