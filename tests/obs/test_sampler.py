"""Time-series congestion metrics: capture, analysis and display."""

import math

import pytest

from repro import Simulator, proposed_network
from repro.analysis.pattern_limits import channel_load_map
from repro.obs import Observer
from repro.traffic import SyntheticTraffic
from repro.traffic.mix import UNIFORM_UNICAST
from repro.traffic.patterns import make_pattern


def _observed_run(pattern=None, rate=0.05, interval=32, measure=2000):
    traffic = SyntheticTraffic(
        UNIFORM_UNICAST, rate, seed=7,
        pattern=make_pattern(pattern) if pattern else None,
    )
    sim = Simulator(proposed_network(), traffic)
    obs = Observer(trace=False, sample=interval).attach(sim)
    sim.run_experiment(warmup=200, measure=measure, drain=500)
    obs.detach()
    return sim, obs.sampler


class TestCapture:
    def test_columns_are_numpy_with_consistent_shapes(self):
        sim, sampler = _observed_run(measure=640)
        cols = sampler.columns()
        n = sampler.samples
        assert n > 0
        assert cols["cycle"].shape == (n,)
        assert cols["link_flits"].shape == (n, len(sampler.links))
        assert cols["occupancy"].shape == (n, sim.cfg.num_nodes)
        assert cols["backlog"].shape == (n, sim.cfg.num_nodes)
        # gated run: the active-set column is known (finite) throughout
        assert all(math.isfinite(v) for v in cols["active_mean"])

    def test_ungated_run_has_nan_active_column(self):
        traffic = SyntheticTraffic(UNIFORM_UNICAST, 0.05, seed=7)
        sim = Simulator(proposed_network(), traffic, gated=False)
        obs = Observer(trace=False, sample=32).attach(sim)
        sim.run(320)
        obs.detach()
        cols = obs.sampler.columns()
        assert all(math.isnan(v) for v in cols["active_mean"])

    def test_summary_has_congestion_figures(self):
        _sim, sampler = _observed_run(measure=640)
        summary = sampler.summary()
        assert summary["samples"] == sampler.samples
        assert 0.0 < summary["max_link_utilization"] <= 1.0
        assert summary["ejected_flits"] > 0


class TestAnalyticAgreement:
    """Measured heatmaps line up with analysis.pattern_limits.

    The sampler keys links ``((x, y), (nx, ny))`` exactly like
    ``channel_load_map``, so for a deterministic pattern under XY the
    busiest *measured* links must be the links the closed-form load map
    predicts — the acceptance check of the observability layer.
    """

    def test_link_keys_match_channel_load_map_keys(self):
        _sim, sampler = _observed_run(pattern="transpose", measure=640)
        k = proposed_network().k
        predicted = set(channel_load_map(make_pattern("transpose"), k))
        assert predicted <= set(sampler.links)

    def test_transpose_hottest_links_match_prediction(self):
        sim, sampler = _observed_run(pattern="transpose")
        loads = channel_load_map(make_pattern("transpose"), sim.cfg.k)
        peak = max(loads.values())
        predicted_hot = {link for link, c in loads.items() if c == peak}
        measured = sampler.hottest_links(len(predicted_hot))
        assert {(src, dst) for _u, src, dst in measured} == predicted_hot

    def test_unused_links_measure_zero(self):
        sim, sampler = _observed_run(pattern="transpose")
        loads = channel_load_map(make_pattern("transpose"), sim.cfg.k)
        util = sampler.link_utilization()
        for link, u in util.items():
            if loads.get(link, 0) == 0:
                assert u == 0.0, f"link {link} off every transpose route"


class TestDisplay:
    def test_heatmap_text_renders_all_directions(self):
        sim, sampler = _observed_run(measure=640)
        text = sampler.heatmap_text(sim.cfg.k)
        for direction in ("east:", "west:", "north:", "south:"):
            assert direction in text
        # boundary cells (no outgoing link) render as ".."
        assert ".." in text
        # one row per y per direction
        assert text.count("y=0") == 4

    def test_heatmap_figure_is_gated_on_matplotlib(self, tmp_path):
        sim, sampler = _observed_run(measure=320)
        path = tmp_path / "heat.png"
        try:
            import matplotlib  # noqa: F401
        except ImportError:
            with pytest.raises(RuntimeError, match="matplotlib"):
                sampler.heatmap_figure(sim.cfg.k, path)
        else:
            sampler.heatmap_figure(sim.cfg.k, path)
            assert path.stat().st_size > 0

    def test_interval_must_be_positive(self):
        from repro.obs.sampler import MetricsSampler

        with pytest.raises(ValueError):
            MetricsSampler(interval=0)
