"""The observability contract: observation never changes the physics.

An observed run — tracing, sampling and profiling all on — must produce
WindowStats *and* per-router ActivityCounters byte-identical to a bare
run of the same job, across injection processes, routing algorithms and
both cycle-loop modes (gated and the ungated reference).  These tests
are the teeth of DESIGN.md §7.
"""

import json

import pytest

from repro import Simulator, proposed_network
from repro.noc.metrics import aggregate
from repro.noc.routing import make_routing
from repro.obs import Observer
from repro.traffic import SyntheticTraffic
from repro.traffic.mix import MIXED_TRAFFIC, UNIFORM_UNICAST
from repro.traffic.processes import make_process

FAST = dict(warmup=100, measure=300, drain=400)


def canonical(stats):
    return json.dumps(stats.to_dict(), sort_keys=True)


def _simulator(process_name="bernoulli", routing_name="xy", gated=True,
               mix=UNIFORM_UNICAST, rate=0.08):
    config = proposed_network()
    if routing_name != "xy":
        config = config.with_(routing=make_routing(routing_name))
    process = None if process_name == "bernoulli" else make_process(process_name)
    traffic = SyntheticTraffic(mix, rate, seed=7, process=process)
    return Simulator(config, traffic, gated=gated)


def _run(observe, **kwargs):
    sim = _simulator(**kwargs)
    obs = None
    if observe:
        obs = Observer(trace=True, sample=16, profile=True).attach(sim)
    stats = sim.run_experiment(**FAST)
    counters = aggregate(sim.network.router_stats).as_dict()
    if obs is not None:
        obs.detach()
    return stats, counters, obs


class TestObservedEqualsBare:
    @pytest.mark.parametrize("routing_name", ["xy", "o1turn"])
    @pytest.mark.parametrize("process_name", ["bernoulli", "onoff"])
    def test_gated(self, process_name, routing_name):
        kwargs = dict(process_name=process_name, routing_name=routing_name)
        bare, bare_counters, _ = _run(False, **kwargs)
        seen, seen_counters, obs = _run(True, **kwargs)
        assert canonical(seen) == canonical(bare)
        assert seen_counters == bare_counters
        assert obs.tracer.recorded > 0  # the probes really fired

    def test_ungated_reference_loop(self):
        bare, bare_counters, _ = _run(False, gated=False)
        seen, seen_counters, obs = _run(True, gated=False)
        assert canonical(seen) == canonical(bare)
        assert seen_counters == bare_counters
        # the ungated loop has no active set, hence no wake/sleep events
        counts = obs.tracer.counts()
        assert counts["wake"] == 0 and counts["sleep"] == 0

    def test_gated_matches_ungated_while_both_observed(self):
        gated, _, _ = _run(True, gated=True)
        ungated, _, _ = _run(True, gated=False)
        assert canonical(gated) == canonical(ungated)

    def test_multicast_mix_with_tracing(self):
        bare, bare_counters, _ = _run(False, mix=MIXED_TRAFFIC, rate=0.06)
        seen, seen_counters, _ = _run(True, mix=MIXED_TRAFFIC, rate=0.06)
        assert canonical(seen) == canonical(bare)
        assert seen_counters == bare_counters


class TestAttachDetach:
    def test_detach_restores_every_probe_slot(self):
        sim = _simulator()
        obs = Observer(trace=True, sample=16, profile=True).attach(sim)
        obs.detach()
        net = sim.network
        assert sim.obs is None
        assert all(r.probe is None for r in net.routers)
        assert all(nic.probe is None for nic in net.nics)
        assert all(
            vc.probe is None
            for r in net.routers for ip in r.in_ports for vc in ip.vcs
        )
        assert all(ch.probe is None for _key, ch in net.flit_links())

    def test_double_attach_rejected(self):
        sim = _simulator()
        obs = Observer(trace=True).attach(sim)
        with pytest.raises(RuntimeError):
            Observer(trace=True).attach(sim)
        with pytest.raises(RuntimeError):
            obs.attach(_simulator())
        obs.detach()
        Observer(trace=True).attach(sim)  # reattachable after detach

    def test_observer_with_nothing_enabled_rejected(self):
        with pytest.raises(ValueError):
            Observer(trace=False, sample=None, profile=False)

    def test_tiny_ring_drops_oldest_but_stats_unchanged(self):
        bare, _, _ = _run(False)
        sim = _simulator()
        obs = Observer(trace=True, capacity=64).attach(sim)
        stats = sim.run_experiment(**FAST)
        obs.detach()
        assert canonical(stats) == canonical(bare)
        assert obs.tracer.dropped > 0
        assert len(obs.tracer) == 64
