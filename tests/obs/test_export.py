"""Golden serializations of the JSONL and Chrome trace exporters.

The event fixtures are hand-written records in the tracer's tuple
layout; the expected outputs are pinned byte for byte so an exporter
change that would break downstream consumers (``chrome://tracing``,
Perfetto, ``jq`` pipelines over the JSONL) fails loudly here.
"""

import json

from repro.obs.export import (
    chrome_trace,
    event_dicts,
    write_chrome_trace,
    write_jsonl,
)

#: One flit's life on a 2x2 mesh: injected at NIC 0, routed and granted
#: at router 0, traversed the link to router 1, ejected at NIC 1 — plus
#: a component-level wake with no flit identity.
EVENTS = [
    (5, "inject", 0, 7, 0, 1, None),
    (6, "route", 0, 7, 0, 1, (2,)),
    (6, "sa_grant", 0, 7, 0, 1, "bypass"),
    (7, "link", 0, 7, 0, 1, 1),
    (8, "eject", 1, 7, 0, 1, None),
    (6, "wake", 1, None, None, None, None),
]

GOLDEN_JSONL = [
    '{"cycle": 5, "extra": null, "kind": "inject", "node": 0, "pid": 7, '
    '"seq": 0, "vc": 1}',
    '{"cycle": 6, "extra": [2], "kind": "route", "node": 0, "pid": 7, '
    '"seq": 0, "vc": 1}',
    '{"cycle": 6, "extra": "bypass", "kind": "sa_grant", "node": 0, '
    '"pid": 7, "seq": 0, "vc": 1}',
    '{"cycle": 7, "extra": 1, "kind": "link", "node": 0, "pid": 7, '
    '"seq": 0, "vc": 1}',
    '{"cycle": 8, "extra": null, "kind": "eject", "node": 1, "pid": 7, '
    '"seq": 0, "vc": 1}',
    '{"cycle": 6, "extra": null, "kind": "wake", "node": 1, "pid": null, '
    '"seq": null, "vc": null}',
]


class TestJsonl:
    def test_event_dicts_keep_order_and_listify_tuples(self):
        dicts = event_dicts(EVENTS)
        assert [d["kind"] for d in dicts] == [e[1] for e in EVENTS]
        assert dicts[1]["extra"] == [2]

    def test_golden_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        assert write_jsonl(EVENTS, path) == len(EVENTS)
        assert path.read_text().splitlines() == GOLDEN_JSONL


class TestChromeTrace:
    def test_golden_structure(self):
        trace = chrome_trace(EVENTS, k=2)
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        # four tracks: router 0, router 1 (wake), NIC 0, NIC 1
        meta = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == {
            "router 0 (0,0)",
            "router 1 (1,0)",
            "nic 0 (0,0)",
            "nic 1 (1,0)",
        }
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == len(EVENTS)
        assert all(e["dur"] == 1 for e in slices)

    def test_nic_tracks_are_offset_from_router_tracks(self):
        events = chrome_trace(EVENTS, k=2)["traceEvents"]
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        assert by_name["inject p7.0"]["pid"] == 1000  # NIC 0
        assert by_name["eject p7.0"]["pid"] == 1001   # NIC 1
        assert by_name["route p7.0"]["pid"] == 0      # router 0
        assert by_name["wake"]["pid"] == 1            # router 1, tid 0
        assert by_name["wake"]["tid"] == 0

    def test_extras_use_kind_specific_arg_names(self):
        events = chrome_trace(EVENTS, k=2)["traceEvents"]
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        assert by_name["route p7.0"]["args"] == {"ports": [2], "vc": 1}
        assert by_name["sa_grant p7.0"]["args"] == {"path": "bypass", "vc": 1}
        assert by_name["link p7.0"]["args"] == {"dst": 1, "vc": 1}

    def test_written_file_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(EVENTS, 2, path)
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == count
