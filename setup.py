"""Packaging for the DAC'12 mesh-NoC reproduction.

All metadata lives here (there is intentionally no pyproject.toml: the
execution environment has no network access and no `wheel` package, so
PEP-517 editable installs fail with `invalid command 'bdist_wheel'`).
This shim lets `pip install -e . --no-build-isolation --no-use-pep517`
(and plain `python setup.py develop`) work offline, and registers the
`repro` console script; without installing, the same CLI is available
as `PYTHONPATH=src python -m repro`.
"""

import os
import re

from setuptools import find_packages, setup


def read_version():
    init = os.path.join(os.path.dirname(__file__), "src", "repro", "__init__.py")
    with open(init) as fh:
        return re.search(r'__version__ = "([^"]+)"', fh.read()).group(1)


setup(
    name="repro-noc-dac12",
    version=read_version(),
    description=(
        "Reproduction of Park et al., 'Approaching the Theoretical Limits "
        "of a Mesh NoC with a 16-Node Chip Prototype in 45nm SOI' (DAC 2012)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    # numpy is a real runtime dependency: circuits/eye.py and
    # circuits/sense_amp.py import it at module top level, and the
    # array simulation backend (repro.noc.array_backend) is built on
    # it.  It was previously undeclared and only present via
    # transitive installs — see the packaging note in README.md.
    install_requires=["numpy"],
    extras_require={
        # the HTTP sweep service (repro.service, `repro serve`); the
        # engine and CLI below it are fully usable without it
        "service": ["flask"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.engine.cli:main",
        ],
    },
)
