"""Logical-effort gate delay model (Sutherland/Sproull/Harris).

The delay of a gate is ``tau * (p + g * h)``: ``tau`` is the process
time unit (about a fifth of an FO4 delay), ``p`` the parasitic delay,
``g`` the logical effort and ``h`` the electrical effort (fanout).
Chains of gates model the router's allocation logic; the critical-path
analysis of Table 3 is built from these primitives.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Gate:
    """One standard cell characterised by logical effort."""

    name: str
    logical_effort: float
    parasitic: float

    def delay(self, fanout, tau_ps):
        """Absolute delay in ps at electrical effort ``fanout``."""
        if fanout <= 0:
            raise ValueError("fanout must be positive")
        return tau_ps * (self.parasitic + self.logical_effort * fanout)


#: canonical logical-effort values (inputs sized for equal drive)
STD_GATES = {
    "INV": Gate("INV", 1.0, 1.0),
    "NAND2": Gate("NAND2", 4 / 3, 2.0),
    "NAND3": Gate("NAND3", 5 / 3, 3.0),
    "NAND4": Gate("NAND4", 2.0, 4.0),
    "NOR2": Gate("NOR2", 5 / 3, 2.0),
    "NOR4": Gate("NOR4", 3.0, 4.0),
    "AOI22": Gate("AOI22", 2.0, 4.0),
    "MUX2": Gate("MUX2", 2.0, 4.0),
    "MUX4": Gate("MUX4", 2.5, 6.0),
    "XOR2": Gate("XOR2", 4.0, 4.0),
    "DFF_CQ": Gate("DFF_CQ", 1.0, 4.0),  # clock-to-q as a pseudo gate
}


class GateChain:
    """A named sequence of (gate, fanout) stages."""

    def __init__(self, name, stages, tau_ps):
        if not stages:
            raise ValueError("a chain needs at least one stage")
        self.name = name
        self.stages = tuple(stages)
        self.tau_ps = tau_ps

    def delay_ps(self):
        return sum(g.delay(h, self.tau_ps) for g, h in self.stages)

    def stage_delays(self):
        return [(g.name, g.delay(h, self.tau_ps)) for g, h in self.stages]

    def extended(self, name, extra_stages):
        """A new chain with stages appended (e.g. the lookahead mux)."""
        return GateChain(name, self.stages + tuple(extra_stages), self.tau_ps)

    def __len__(self):
        return len(self.stages)
