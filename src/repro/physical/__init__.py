"""Physical-design models: gate delays, critical paths and area."""

from repro.physical.area import AreaModel
from repro.physical.critical_path import CriticalPathAnalysis, CriticalPathReport
from repro.physical.gates import Gate, GateChain, STD_GATES

__all__ = [
    "AreaModel",
    "CriticalPathAnalysis",
    "CriticalPathReport",
    "Gate",
    "GateChain",
    "STD_GATES",
]
