"""Area model: full-swing vs low-swing crossbars and routers (Table 4).

The low-swing crossbar pays a 3.1x area premium over the synthesised
full-swing crossbar: the RSDs are differential (two wires plus
shielding per bit instead of one single-ended wire), each crosspoint
carries a 4-PMOS stacked driver plus a delay cell, and noise-coupling
constraints force a sparse, carefully shielded layout.  At the router
level the premium dilutes to 1.4x because buffers and allocation logic
dominate, and it would shrink further against a full tile with core
and cache.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AreaModel:
    """Component areas in um^2 for the 5x5 64-bit router at 45nm."""

    ports: int = 5
    flit_bits: int = 64
    buffers_per_port: int = 10
    # --- full-swing crossbar: one mux cell per crosspoint bit ---
    fs_mux_cell_um2: float = 16.775
    # --- low-swing crossbar: RSD + sense amp + delay cell ---
    rsd_cell_um2: float = 43.0
    sense_amp_um2: float = 30.0
    delay_cell_um2: float = 15.0
    # --- rest of the router ---
    buffer_latch_um2: float = 48.0  # per bit of input buffering
    baseline_logic_um2: float = 46_790.0  # allocators, VC state, pipeline
    #: lookahead pipeline, multicast mSA-II extensions, LVDD grid
    proposed_logic_overhead_um2: float = 35_010.0
    #: of which attributable to virtual bypassing alone (the paper's
    #: "negligible area overhead (5% only)" claim)
    bypass_logic_um2: float = 11_360.0

    # ------------------------------------------------------- crossbars

    @property
    def crosspoints(self):
        return self.ports * self.ports * self.flit_bits

    @property
    def full_swing_crossbar_um2(self):
        return self.crosspoints * self.fs_mux_cell_um2

    @property
    def low_swing_crossbar_um2(self):
        rsds = self.crosspoints * self.rsd_cell_um2
        # one sense amp and one delay cell per output bit
        per_output_bit = self.ports * self.flit_bits
        return rsds + per_output_bit * (self.sense_amp_um2 + self.delay_cell_um2)

    @property
    def crossbar_overhead(self):
        return self.low_swing_crossbar_um2 / self.full_swing_crossbar_um2

    # --------------------------------------------------------- routers

    @property
    def buffer_array_um2(self):
        bits = self.ports * self.buffers_per_port * self.flit_bits
        return bits * self.buffer_latch_um2

    @property
    def full_swing_router_um2(self):
        return (
            self.buffer_array_um2
            + self.baseline_logic_um2
            + self.full_swing_crossbar_um2
        )

    @property
    def low_swing_router_um2(self):
        return (
            self.buffer_array_um2
            + self.baseline_logic_um2
            + self.proposed_logic_overhead_um2
            + self.low_swing_crossbar_um2
        )

    @property
    def router_overhead(self):
        return self.low_swing_router_um2 / self.full_swing_router_um2

    @property
    def bypass_overhead_fraction(self):
        """Area cost of virtual bypassing alone (~5% of the router)."""
        return self.bypass_logic_um2 / self.full_swing_router_um2

    def tile_overhead(self, core_cache_um2=2_000_000.0):
        """Premium relative to a whole tile (core + cache + router)."""
        fs = core_cache_um2 + self.full_swing_router_um2
        ls = core_cache_um2 + self.low_swing_router_um2
        return ls / fs
