"""Critical-path analysis of the router (Table 3, Section 4.2).

The critical path of both the baseline and the proposed router runs
through the second pipeline stage, where mSA-II is performed.  The
proposed router lengthens it with the incoming-lookahead priority mux
in front of the matrix arbiter — the measured cost of folding the
pipeline into a single cycle: +8% pre-layout, +21% post-layout (the
lookahead wires land from the neighbouring router, adding wire RC that
layout cannot hide), and silicon at 961 ps (1.04 GHz) once clock
contamination, supply noise and temperature are added on top of the
post-layout estimate.

The gate chain below is evaluated with logical effort at a synthesis
time unit of tau = 3.5 ps (about FO4/5 at 45nm); the wire components
use the Elmore model of :mod:`repro.circuits.wire`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.wire import Wire
from repro.physical.gates import STD_GATES, GateChain

TAU_PS = 3.5

#: mSA-II stage of the baseline router: outport-request registers
#: through the matrix arbiter to the crossbar select and VC-allocation
#: state setup.  (gate, electrical effort) per stage.
_BASELINE_STAGES = [
    (STD_GATES["DFF_CQ"], 3),  # S2 request register clock-to-q
    (STD_GATES["INV"], 4),  # request buffer
    (STD_GATES["NAND3"], 3),  # request valid qualification (credit, VC)
    (STD_GATES["NOR4"], 2),  # per-output request gather
    (STD_GATES["INV"], 5),
    (STD_GATES["AOI22"], 3),  # matrix arbiter: priority row term
    (STD_GATES["NAND4"], 2),  # arbiter: beats-all-requesters reduction
    (STD_GATES["INV"], 4),
    (STD_GATES["AOI22"], 4),  # arbiter: grant qualification
    (STD_GATES["NAND2"], 4),  # grant consolidation
    (STD_GATES["INV"], 6),  # grant driver
    (STD_GATES["MUX4"], 4),  # crossbar select decode
    (STD_GATES["INV"], 5),
    (STD_GATES["NAND2"], 3),  # free-VC queue pop enable
    (STD_GATES["XOR2"], 3),  # priority matrix next-state
    (STD_GATES["INV"], 8),  # state distribution driver
    (STD_GATES["MUX2"], 5),  # pipeline register input mux
    (STD_GATES["NAND2"], 2),  # setup-time equivalent
]

#: Extra logic of the proposed router: the incoming lookahead enters
#: mSA-II with priority, via a mux ahead of the arbiter request inputs.
_LOOKAHEAD_STAGES = [
    (STD_GATES["MUX2"], 3),  # lookahead vs buffered-request priority mux
    (STD_GATES["INV"], 2),  # lookahead valid buffer
]

#: Equivalent control-wire lengths dominating post-layout slack (mm).
BASELINE_WIRE_MM = 0.74
BYPASSED_WIRE_MM = 1.15  # includes the inter-router lookahead landing
WIRE_DRIVER_RES = 700.0

#: Silicon-vs-post-layout margin: contaminated clock, supply-voltage
#: fluctuation and temperature (Section 4.2 lists these as the reasons
#: measured fmax trails the post-layout estimate).
SILICON_MARGIN = 1.206


@dataclass(frozen=True)
class CriticalPathReport:
    """Table 3 rows, in ps."""

    pre_layout_baseline_ps: float
    pre_layout_bypassed_ps: float
    post_layout_baseline_ps: float
    post_layout_bypassed_ps: float
    measured_bypassed_ps: float

    @property
    def pre_layout_overhead(self):
        return self.pre_layout_bypassed_ps / self.pre_layout_baseline_ps

    @property
    def post_layout_overhead(self):
        return self.post_layout_bypassed_ps / self.post_layout_baseline_ps

    @property
    def measured_fmax_ghz(self):
        return 1000.0 / self.measured_bypassed_ps


class CriticalPathAnalysis:
    """Builds and evaluates the mSA-II stage critical paths."""

    def __init__(self, tau_ps=TAU_PS):
        self.baseline_chain = GateChain(
            "msa2_baseline", _BASELINE_STAGES, tau_ps
        )
        self.bypassed_chain = self.baseline_chain.extended(
            "msa2_bypassed", _LOOKAHEAD_STAGES
        )

    def _wire_delay_ps(self, length_mm):
        return Wire(length_mm).elmore_delay_ps(WIRE_DRIVER_RES)

    def report(self):
        pre_base = self.baseline_chain.delay_ps()
        pre_byp = self.bypassed_chain.delay_ps()
        post_base = pre_base + self._wire_delay_ps(BASELINE_WIRE_MM)
        post_byp = pre_byp + self._wire_delay_ps(BYPASSED_WIRE_MM)
        return CriticalPathReport(
            pre_layout_baseline_ps=pre_base,
            pre_layout_bypassed_ps=pre_byp,
            post_layout_baseline_ps=post_base,
            post_layout_bypassed_ps=post_byp,
            measured_bypassed_ps=post_byp * SILICON_MARGIN,
        )

    def masked_by_core(self, core_frequency_ghz=1.0):
        """Whether a core at the given clock hides the router overhead.

        Section 4.2's point: when cores (not routers) set the clock —
        e.g. the Intel 48-core chip runs 1 GHz cores against 2 GHz
        routers — the 21% bypass timing overhead costs nothing.
        """
        return self.report().measured_fmax_ghz >= core_frequency_ghz
