"""The paper's contribution: the proposed router and its design points.

The microarchitectural mechanisms live in the simulator substrate
(:mod:`repro.noc`); this package names and configures the design points
the paper evaluates and re-exports the bypassing primitives.
"""

from repro.core.presets import (
    baseline_network,
    proposed_network,
    strawman_network,
    textbook_network,
)
from repro.noc.lookahead import Lookahead

__all__ = [
    "Lookahead",
    "baseline_network",
    "proposed_network",
    "strawman_network",
    "textbook_network",
]
