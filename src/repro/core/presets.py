"""Named design points of the paper, as :class:`~repro.noc.NocConfig`.

* ``textbook_network`` — the Fig. 1 baseline with separate ST and LT
  stages (4 cycles/hop), used for the Table 2 style analyses.
* ``baseline_network`` — the paper's *measured* baseline (Section 4.1):
  identical buffering, single-cycle ST+LT, no multicast, no bypassing;
  broadcasts become k^2 source-NIC unicasts.
* ``strawman_network`` — the Section 3.1 strawman: router-level
  multicast, 3-cycle pipeline, no bypassing (Fig. 6 config C).
* ``proposed_network`` — the fabricated design: multicast plus
  lookahead virtual bypassing, single-cycle per hop (Fig. 6 config D).
"""

from __future__ import annotations

from repro.noc.config import NocConfig


def textbook_network(k=4, **overrides):
    defaults = dict(k=k, multicast=False, bypass=False, separate_st_lt=True)
    defaults.update(overrides)
    return NocConfig(**defaults)


def baseline_network(k=4, **overrides):
    defaults = dict(k=k, multicast=False, bypass=False, separate_st_lt=False)
    defaults.update(overrides)
    return NocConfig(**defaults)


def strawman_network(k=4, **overrides):
    defaults = dict(k=k, multicast=True, bypass=False, separate_st_lt=False)
    defaults.update(overrides)
    return NocConfig(**defaults)


def proposed_network(k=4, **overrides):
    defaults = dict(k=k, multicast=True, bypass=True, separate_st_lt=False)
    defaults.update(overrides)
    return NocConfig(**defaults)
