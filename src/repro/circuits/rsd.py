"""Tri-state reduced-swing driver (RSD) — Fig. 4's datapath circuit.

The 4-PMOS-stacked tri-state RSD drives the crossbar vertical wires and
links with a ~300 mV differential swing from a dedicated low supply
(LVDD).  Compared with generating a reduced swing by simply lowering
the supply, the stacked design keeps a high current drive (low linear
drive resistance) at small Vds, which is what allows single-cycle
ST+LT at multi-GHz rates.  The tri-state output lets one driver per
crosspoint energise only the selected vertical wire(s), giving the
energy-proportional multicast of Fig. 11.

Model calibration (see DESIGN.md): the defaults reproduce the measured
5.4 GHz (1mm) and 2.6 GHz (2mm) single-cycle rates and the up-to-3.2x
energy advantage over an equivalent full-swing repeated wire at the
300 mV design point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.repeater import FullSwingRepeatedLink
from repro.circuits.technology import TECH_45NM_SOI
from repro.circuits.wire import Wire


@dataclass(frozen=True)
class TriStateRSD:
    """A tri-state RSD driving a differential wire of ``length_mm``."""

    length_mm: float
    swing_v: float = 0.3
    tech: object = TECH_45NM_SOI
    drive_res: float = 700.0  # ohms, the stacked-PMOS linear resistance
    clk_overhead_ps: float = 30.0  # clk-to-q plus setup of the latches
    enable_energy_fj: float = 23.0  # enable distribution + delay cell

    def __post_init__(self):
        if not (0 < self.swing_v < self.tech.lvdd):
            raise ValueError(
                f"swing must lie inside (0, LVDD={self.tech.lvdd}V)"
            )
        if self.length_mm <= 0:
            raise ValueError("length must be positive")

    @property
    def wire(self):
        return Wire(self.length_mm, self.tech, differential=True)

    # ------------------------------------------------------------ delay

    def develop_time_ps(self):
        """Time for each leg to move swing/2 toward the LVDD rail.

        An exponential RC settle toward LVDD reaches a per-leg
        excursion of Vs/2 after tau * ln(LVDD / (LVDD - Vs/2)); tau is
        the Elmore time constant of driver plus distributed wire.
        """
        leg_cap = self.wire.capacitance / 2  # per leg
        tau_ps = (
            self.drive_res * leg_cap + self.wire.resistance * leg_cap / 2
        ) * 1e-3
        factor = math.log(self.tech.lvdd / (self.tech.lvdd - self.swing_v / 2))
        return factor * tau_ps

    def traversal_delay_ps(self):
        """ST+LT delay: swing development plus sense amplification."""
        return self.develop_time_ps() + self.tech.sense_amp_delay_ps

    def max_clock_ghz(self):
        """Highest clock at which this hop completes in a single cycle."""
        period_ps = self.traversal_delay_ps() + self.clk_overhead_ps
        return 1000.0 / period_ps

    # ----------------------------------------------------------- energy

    def energy_per_bit_fj(self, alpha=0.5):
        """Dynamic energy per transmitted bit.

        Charge C*Vs drawn from the LVDD rail, the sense amplifier
        evaluation, and the enable/delay-cell distribution.
        """
        wire_e = self.wire.low_swing_energy_fj(self.swing_v, alpha)
        return wire_e + self.tech.sense_amp_energy_fj + self.enable_energy_fj

    def energy_advantage(self, alpha=0.5):
        """Energy ratio of the equivalent full-swing repeated wire (Fig. 7)."""
        full = FullSwingRepeatedLink(self.length_mm, self.tech)
        return full.energy_per_bit_fj(alpha) / self.energy_per_bit_fj(alpha)

    def with_swing(self, swing_v):
        """Same driver at a different design swing (Fig. 10 sweeps)."""
        return TriStateRSD(
            length_mm=self.length_mm,
            swing_v=swing_v,
            tech=self.tech,
            drive_res=self.drive_res,
            clk_overhead_ps=self.clk_overhead_ps,
            enable_energy_fj=self.enable_energy_fj,
        )
