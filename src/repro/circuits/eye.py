"""Eye-margin model: repeated vs directly-transmitted low-swing links
(Appendix C, Fig. 12).

For a 2mm link traversal the designer can either insert an RSD
repeater at 1mm (two fast segments, an extra cycle, extra charge) or
drive the full 2mm directly.  The vertical eye opening at the sampling
instant of an RC-limited differential wire with bit time T is

    eye(T) = Vs * (1 - 2 * exp(-T / tau))

(the worst-case single-bit ISI pattern), and wire resistance variation
moves tau.  Repeating halves the segment RC (tau drops ~4x per
segment), widening the eye at the cost of one pipeline cycle and ~28%
more energy — the exact trade-off the paper reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.circuits.rsd import TriStateRSD
from repro.circuits.technology import TECH_45NM_SOI


@dataclass(frozen=True)
class LinkConfig:
    """One way of covering a total span with RSD-driven segments."""

    name: str
    total_mm: float
    segments: int
    swing_v: float = 0.3
    tech: object = TECH_45NM_SOI

    def __post_init__(self):
        if self.segments < 1:
            raise ValueError("need at least one segment")

    @property
    def segment_rsd(self):
        return TriStateRSD(
            self.total_mm / self.segments, swing_v=self.swing_v, tech=self.tech
        )

    def tau_ps(self, wire_res_scale=1.0):
        """Swing development time of one segment, with R variation.

        Uses the calibrated RSD develop time, scaled by the Elmore
        sensitivity to the varied wire resistance.
        """
        rsd = self.segment_rsd
        leg_cap = rsd.wire.capacitance / 2
        nominal = rsd.drive_res * leg_cap + rsd.wire.resistance * leg_cap / 2
        varied = (
            rsd.drive_res * leg_cap
            + rsd.wire.resistance * wire_res_scale * leg_cap / 2
        )
        return rsd.develop_time_ps() * varied / nominal

    def cycles(self):
        """Pipeline cycles consumed (one per repeated segment)."""
        return self.segments

    def energy_per_bit_fj(self, alpha=0.5):
        """Each segment re-drives its own wire charge."""
        return self.segments * self.segment_rsd.energy_per_bit_fj(alpha)


def eye_margin(config, bit_time_ps, wire_res_scale=1.0):
    """Vertical eye opening (volts) at the receiver of ``config``.

    ``tau`` is the time the segment needs to develop the design swing;
    the worst-case ISI pattern halves the opening when the bit time
    only just reaches it: eye = Vs * (1 - 2^(1 - T/tau)), clamped at
    [0, Vs].  A bit time of one tau gives a closed eye, two taus gives
    half the swing, and the eye approaches the full swing as the bit
    slows.
    """
    tau = config.tau_ps(wire_res_scale)
    eye = config.swing_v * (1.0 - 2.0 ** (1.0 - bit_time_ps / tau))
    return min(max(0.0, eye), config.swing_v)


def repeated_vs_direct(
    total_mm=2.0,
    data_rate_gbps=2.5,
    res_variation_sigma=0.15,
    runs=1000,
    seed=0,
):
    """The Fig. 12 experiment: 1mm-repeated vs 2mm-repeaterless RSDs.

    Sweeps wire-resistance variation via Monte-Carlo and reports the
    mean/worst vertical eye plus cycle and energy cost of each choice.
    """
    bit_time_ps = 1000.0 / data_rate_gbps
    repeated = LinkConfig("repeated", total_mm, segments=2)
    direct = LinkConfig("direct", total_mm, segments=1)
    rng = np.random.default_rng(seed)
    scales = rng.normal(1.0, res_variation_sigma, size=runs)
    scales = np.clip(scales, 0.5, 1.5)
    out = {}
    for cfg in (repeated, direct):
        eyes = np.array([eye_margin(cfg, bit_time_ps, s) for s in scales])
        out[cfg.name] = {
            "mean_eye_mv": float(eyes.mean() * 1000),
            "worst_eye_mv": float(eyes.min() * 1000),
            "cycles": cfg.cycles(),
            "energy_fj": cfg.energy_per_bit_fj(),
        }
    out["energy_overhead"] = (
        out["repeated"]["energy_fj"] / out["direct"]["energy_fj"] - 1.0
    )
    return out
