"""Crossbar datapath circuits: the low-swing RSD matrix and its
full-swing reference (Sections 3.4 and 4.3, Figs. 4 and 11).

The low-swing crossbar places a tri-state RSD at every crosspoint of
the 5x5 matrix.  An input drives its full-swing *horizontal* wire; only
the crosspoints selected by mSA-II turn on and energise their
*vertical* wire and the attached link — so a multicast costs one
horizontal charge plus one vertical-plus-link charge per granted output
port, the linear power-vs-fanout behaviour measured in Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.rsd import TriStateRSD
from repro.circuits.technology import TECH_45NM_SOI
from repro.circuits.wire import Wire


@dataclass(frozen=True)
class LowSwingCrossbar:
    """A ``ports x ports`` 1-bit-slice RSD crossbar with output links."""

    ports: int = 5
    bits: int = 64
    link_mm: float = 1.0
    swing_v: float = 0.3
    tech: object = TECH_45NM_SOI
    #: physical extent of the crossbar matrix per side, mm
    span_mm: float = 0.1

    def __post_init__(self):
        if self.ports < 2:
            raise ValueError("crossbar needs at least two ports")

    @property
    def rsd(self):
        """The crosspoint driver including vertical wire plus link."""
        return TriStateRSD(
            self.span_mm + self.link_mm, swing_v=self.swing_v, tech=self.tech
        )

    @property
    def horizontal_wire(self):
        return Wire(self.span_mm, self.tech)

    def input_energy_fj(self, alpha=0.5):
        """Full-swing charge of one horizontal (input) wire, per bit-slice."""
        return self.horizontal_wire.full_swing_energy_fj(alpha)

    def traversal_energy_fj(self, fanout=1, alpha=0.5):
        """Energy of one 1-bit traversal replicated to ``fanout`` outputs."""
        if not (1 <= fanout <= self.ports):
            raise ValueError(f"fanout must be in [1, {self.ports}]")
        return self.input_energy_fj(alpha) + fanout * self.rsd.energy_per_bit_fj(
            alpha
        )

    def flit_energy_fj(self, fanout=1, alpha=0.5):
        """Energy of a full flit traversal (all bit slices)."""
        return self.bits * self.traversal_energy_fj(fanout, alpha)

    def dynamic_power_uw(self, data_rate_gbps, fanout=1, alpha=0.5):
        """1-bit-slice dynamic power at ``data_rate_gbps`` (Fig. 11)."""
        return self.traversal_energy_fj(fanout, alpha) * data_rate_gbps

    def max_clock_ghz(self):
        """Single-cycle ST+LT ceiling (5.4 GHz measured with 1mm links)."""
        return self.rsd.max_clock_ghz()


@dataclass(frozen=True)
class FullSwingCrossbar:
    """Synthesised single-ended full-swing crossbar (the baseline)."""

    ports: int = 5
    bits: int = 64
    link_mm: float = 1.0
    tech: object = TECH_45NM_SOI
    span_mm: float = 0.2  # denser: single-ended, standard-cell mux tree

    @property
    def _wire(self):
        # input wire + output wire + link, all full swing
        return Wire(2 * self.span_mm + self.link_mm, self.tech)

    def traversal_energy_fj(self, fanout=1, alpha=0.5):
        """Per bit-slice; replication drives each branch full-swing.

        The mux-tree crossbar also charges internal select/mux
        capacitance, folded into a 20% overhead factor.
        """
        if not (1 <= fanout <= self.ports):
            raise ValueError(f"fanout must be in [1, {self.ports}]")
        return 1.2 * fanout * self._wire.full_swing_energy_fj(alpha)

    def flit_energy_fj(self, fanout=1, alpha=0.5):
        return self.bits * self.traversal_energy_fj(fanout, alpha)
