"""Sense-amplifier offset and low-swing reliability (Section 4.3, Fig. 10).

The dominant noise source of the low-swing datapath is the input
offset of the receiving sense amplifier, caused by process variation
and modelled as a zero-mean Gaussian.  A link bit fails when the
offset exceeds half the differential swing, so the per-link failure
probability is Q(Vs / (2*sigma)) — the trade-off the paper explores
with 1000-run Monte-Carlo SPICE: smaller swings save energy linearly
but degrade reliability super-exponentially.  The chip's 300 mV swing
sits at the 3-sigma point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.circuits.technology import TECH_45NM_SOI


def q_function(x):
    """Gaussian tail probability Q(x) = P(N(0,1) > x)."""
    return 0.5 * math.erfc(x / math.sqrt(2.0))


@dataclass(frozen=True)
class SenseAmplifier:
    """A strobed differential sense amplifier with Gaussian offset."""

    tech: object = TECH_45NM_SOI
    offset_sigma_mv: float | None = None

    @property
    def sigma_mv(self):
        if self.offset_sigma_mv is not None:
            return self.offset_sigma_mv
        return self.tech.sense_offset_sigma_mv

    def failure_probability(self, swing_mv):
        """Analytic P(|offset| mis-resolves a Vs differential input).

        Two-sided: a fabricated link fails when the offset magnitude
        exceeds half the swing in either polarity, so
        P = 2 * Q(Vs / (2 * sigma)).
        """
        if swing_mv <= 0:
            raise ValueError("swing must be positive")
        return 2.0 * q_function(swing_mv / (2.0 * self.sigma_mv))

    def sigma_margin(self, swing_mv):
        """How many offset sigmas the swing provides (3 at 300mV)."""
        return swing_mv / (2.0 * self.sigma_mv)

    def monte_carlo_failures(self, swing_mv, runs=1000, seed=0):
        """Monte-Carlo estimate of the failure probability (Fig. 10).

        Samples ``runs`` process instances (the paper uses 1000 SPICE
        runs) and counts instances whose offset defeats the swing.
        """
        rng = np.random.default_rng(seed)
        offsets = rng.normal(0.0, self.sigma_mv, size=runs)
        failures = int(np.sum(np.abs(offsets) > swing_mv / 2.0))
        return failures / runs

    def min_swing_for_sigma(self, n_sigma):
        """Smallest swing giving an ``n_sigma`` margin (design rule)."""
        if n_sigma <= 0:
            raise ValueError("sigma margin must be positive")
        return 2.0 * n_sigma * self.sigma_mv
