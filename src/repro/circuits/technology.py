"""45nm SOI technology parameters.

Nominal process constants used by all circuit models.  These are
representative textbook values for a 45nm SOI metal-3/metal-4 class
interconnect stack and standard-cell library (Rabaey, and the ITRS
45nm node), with the operating point taken from the paper: 1.1 V
nominal supply, a separate low-voltage supply for the reduced-swing
drivers, and a 300 mV differential swing chosen for 3-sigma
reliability.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """Process constants; all lengths in um, caps in fF, times in ps."""

    name: str
    vdd: float  # nominal supply (V)
    lvdd: float  # low-swing driver supply (V)
    nominal_swing_mv: float  # chip's chosen differential swing
    wire_res_per_um: float  # ohm/um for the 0.15um signal wires
    wire_cap_per_um: float  # fF/um including shield coupling
    unit_gate_cap: float  # fF, input cap of a unit inverter
    unit_gate_res: float  # ohm, drive resistance of a unit inverter
    fo4_ps: float  # FO4 inverter delay
    sense_amp_energy_fj: float  # per evaluation
    sense_amp_delay_ps: float  # strobe-to-output
    sense_offset_sigma_mv: float  # process-variation offset
    leakage_per_router_mw: float  # chip: 76.7mW / 16 routers at 1.1V

    @property
    def nominal_swing(self):
        return self.nominal_swing_mv / 1000.0

    def wire_rc(self, length_mm):
        """Total (R ohms, C fF) of a wire of the standard geometry."""
        length_um = length_mm * 1000.0
        return (
            self.wire_res_per_um * length_um,
            self.wire_cap_per_um * length_um,
        )


#: The paper's process corner.  ``leakage_per_router_mw`` matches the
#: measured 76.7 mW of chip leakage spread over 16 routers; the wire
#: constants reproduce the measured 5.4 GHz (1mm) / 2.6 GHz (2mm)
#: single-cycle ST+LT rates and the 3.2x RSD energy advantage.
TECH_45NM_SOI = Technology(
    name="45nm SOI",
    vdd=1.1,
    lvdd=0.4,
    nominal_swing_mv=300.0,
    wire_res_per_um=1.0,
    wire_cap_per_um=0.20,
    unit_gate_cap=0.9,
    unit_gate_res=9_000.0,
    fo4_ps=17.0,
    sense_amp_energy_fj=8.0,
    sense_amp_delay_ps=45.0,
    sense_offset_sigma_mv=50.0,
    leakage_per_router_mw=76.7 / 16,
)
