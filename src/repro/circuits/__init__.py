"""Circuit-level models of the chip's datapath (Sections 3.4, 4.3, App. C)."""

from repro.circuits.crossbar import FullSwingCrossbar, LowSwingCrossbar
from repro.circuits.eye import eye_margin, repeated_vs_direct
from repro.circuits.repeater import FullSwingRepeatedLink
from repro.circuits.rsd import TriStateRSD
from repro.circuits.sense_amp import SenseAmplifier
from repro.circuits.technology import Technology, TECH_45NM_SOI
from repro.circuits.wire import Wire

__all__ = [
    "FullSwingCrossbar",
    "FullSwingRepeatedLink",
    "LowSwingCrossbar",
    "SenseAmplifier",
    "TECH_45NM_SOI",
    "Technology",
    "TriStateRSD",
    "Wire",
    "eye_margin",
    "repeated_vs_direct",
]
