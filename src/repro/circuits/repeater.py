"""Full-swing repeated link: the conventional datapath the RSD replaces.

Long full-swing on-chip wires are broken into repeater segments to keep
delay linear in length.  The model inserts optimally spaced inverters
(Bakoglu-style sizing against the technology's unit gate) and charges
segment plus repeater capacitance through the full supply — the
reference against which Fig. 7 reports the RSD's up-to-3.2x energy
advantage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.technology import TECH_45NM_SOI
from repro.circuits.wire import Wire


@dataclass(frozen=True)
class FullSwingRepeatedLink:
    """A repeated single-ended full-swing wire of ``length_mm``."""

    length_mm: float
    tech: object = TECH_45NM_SOI
    #: repeater sizing relative to a unit inverter
    repeater_size: float = 25.0

    def __post_init__(self):
        if self.length_mm <= 0:
            raise ValueError("link length must be positive")

    @property
    def optimal_segment_mm(self):
        """Bakoglu optimal repeater spacing: sqrt(2 R_d C_d / (R_w C_w))."""
        r_d = self.tech.unit_gate_res / self.repeater_size
        c_d = self.tech.unit_gate_cap * self.repeater_size
        r_w = self.tech.wire_res_per_um
        c_w = self.tech.wire_cap_per_um
        seg_um = math.sqrt(2 * r_d * c_d / (r_w * c_w))
        return seg_um / 1000.0

    @property
    def num_repeaters(self):
        return max(1, round(self.length_mm / self.optimal_segment_mm))

    @property
    def segment(self):
        return Wire(self.length_mm / self.num_repeaters, self.tech)

    @property
    def repeater_cap_ff(self):
        return self.tech.unit_gate_cap * self.repeater_size

    def delay_ps(self):
        """End-to-end delay: repeater chain of Elmore segment delays."""
        r_drv = self.tech.unit_gate_res / self.repeater_size
        seg = self.segment
        per_segment = seg.elmore_delay_ps(r_drv, load_cap_ff=self.repeater_cap_ff)
        return self.num_repeaters * per_segment

    def energy_per_bit_fj(self, alpha=0.5):
        """Dynamic energy: full-swing wire plus repeater self-capacitance."""
        wire_e = Wire(self.length_mm, self.tech).full_swing_energy_fj(alpha)
        vdd = self.tech.vdd
        repeater_e = alpha * self.num_repeaters * self.repeater_cap_ff * vdd * vdd
        return wire_e + repeater_e

    def max_data_rate_gbps(self):
        """One bit per delay plus a latch overhead of one FO4."""
        period_ps = self.delay_ps() + self.tech.fo4_ps
        return 1000.0 / period_ps
