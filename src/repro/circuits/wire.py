"""Distributed-RC wire model with Elmore delay.

The chip's 64-bit links are 0.15um-wide, 0.30um-spaced, fully shielded
differential pairs (Section 3.4).  This module models a single signal
wire of that geometry: lumped R and C scale linearly with length and
the Elmore delay of a driver-wire-load chain is

    t = 0.69 * (R_drv * (C_wire + C_load) + R_wire * (C_wire/2 + C_load))

which captures the crucial quadratic growth of the wire-dominated term
with length — the reason a 2mm repeaterless hop runs at roughly half
the clock rate of a 1mm hop rather than a quarter (driver resistance
dominates at these lengths).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.technology import TECH_45NM_SOI


@dataclass(frozen=True)
class Wire:
    """One signal wire of the chip's standard link geometry."""

    length_mm: float
    tech: object = TECH_45NM_SOI
    differential: bool = False

    def __post_init__(self):
        if self.length_mm <= 0:
            raise ValueError("wire length must be positive")

    @property
    def resistance(self):
        """Total series resistance, ohms."""
        return self.tech.wire_res_per_um * self.length_mm * 1000.0

    @property
    def capacitance(self):
        """Total capacitance, fF (per leg; doubled when differential)."""
        c = self.tech.wire_cap_per_um * self.length_mm * 1000.0
        return 2 * c if self.differential else c

    def elmore_delay_ps(self, driver_res, load_cap_ff=0.0):
        """0.69-weighted Elmore delay through driver, wire and load."""
        r_w = self.resistance
        c_w = self.capacitance
        tau = driver_res * (c_w + load_cap_ff) + r_w * (c_w / 2 + load_cap_ff)
        return 0.69 * tau * 1e-3  # ohm*fF = 1e-15 s = 1e-3 ps

    def full_swing_energy_fj(self, alpha=0.5, load_cap_ff=0.0):
        """Dynamic CV^2 energy of a full-swing transition, weighted by
        switching activity ``alpha`` (0.5 for random data)."""
        vdd = self.tech.vdd
        return alpha * (self.capacitance + load_cap_ff) * vdd * vdd

    def low_swing_energy_fj(self, swing_v, alpha=0.5, load_cap_ff=0.0):
        """Dynamic energy when charged to ``swing_v`` from the LVDD rail.

        Charge drawn from the low supply is C*Vs, each coulomb costing
        LVDD joules: E = C * Vs * LVDD — linear rather than quadratic
        in the swing, the root of the low-swing advantage.
        """
        if swing_v <= 0:
            raise ValueError("swing must be positive")
        c = self.capacitance + load_cap_ff
        return alpha * c * swing_v * self.tech.lvdd
