"""The pluggable simulation-backend registry (DESIGN.md §9).

A *simulation backend* is an implementation of the ``Simulator``
surface — ``attach_traffic`` / ``run`` / ``run_experiment`` /
``activity`` plus the ``network`` stats facade — that produces
byte-identical :class:`~repro.noc.metrics.WindowStats` for any
workload it supports.  Two backends ship:

* ``object`` — the activity-gated object-per-flit cycle loop of
  :class:`repro.noc.simulator.Simulator`.  The default, the oracle,
  and the only backend that supports every workload axis.
* ``array`` — the struct-of-arrays numpy kernel of
  :mod:`repro.noc.array_backend`, which executes each DESIGN.md §1
  phase as a vectorized pass over all routers at once — and, given
  ``seeds=[...]``, over all replica lanes at once (one batched kernel
  pass simulates N independent seeds).  It supports a documented
  subset of the workload space (unicast and XY-tree multicast mixes on
  xy/yx/o1turn/valiant routing, any pattern and injection process) and
  *rejects* everything else — ``separate_st_lt``, faults, probes —
  with a clear error rather than silently diverging.

The registry is name → lazy loader, so importing :mod:`repro.noc`
never pays for numpy unless the array backend is actually selected.
Backend choice is an *execution* detail, never an identity axis: a
:class:`~repro.engine.jobspec.JobSpec`'s canonical encoding (and hence
its cache key) is backend-free, because equal jobs produce equal bytes
on every backend that accepts them.
"""

from __future__ import annotations

_REGISTRY = {}


def register_backend(name, loader):
    """Register ``loader`` (a zero-arg callable returning the backend's
    simulator factory) under ``name``."""
    _REGISTRY[name] = loader


def backend_names():
    """Registered backend names, sorted (for argparse ``choices=``)."""
    return tuple(sorted(_REGISTRY))


def resolve_backend(name):
    """The simulator factory registered under ``name``.

    Raises a :class:`ValueError` naming the available backends for an
    unknown name, so a typo in ``--backend`` or a deserialized JobSpec
    surfaces as a diagnostic instead of a KeyError.
    """
    try:
        loader = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown simulation backend {name!r}; "
            f"choose from: {', '.join(backend_names())}"
        ) from None
    return loader()


def _load_object():
    from repro.noc.simulator import Simulator

    return Simulator


def _load_array():
    from repro.noc.array_backend import ArraySimulator

    return ArraySimulator


register_backend("object", _load_object)
register_backend("array", _load_array)
