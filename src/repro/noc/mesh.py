"""Mesh assembly: routers, NICs and the channels wiring them together.

Channel delays implement the timing contract of DESIGN.md: flit links
are one cycle (two with the textbook split ST/LT pipeline), lookahead
wires are one cycle, and credit wires are two cycles (one cycle of wire
plus one cycle of credit processing at the upstream node), which yields
the paper's 3-cycle buffer/VC turnaround for the bypassed pipeline.

The mesh is also the bookkeeper of the activity-gated cycle loop
(DESIGN.md §3).  It maintains explicit wake schedules so that
:meth:`repro.noc.simulator.Simulator.step` touches only components that
can actually do something this cycle:

* every channel is wired with a ``wake`` callback that schedules its
  sink (router or NIC) for the payload's exact arrival cycle;
* routers re-arm themselves through
  :meth:`~repro.noc.router.Router.has_local_work` while they hold
  buffered/latched flits, scheduled ``st_ops``, lookahead latches or S2
  registers (the simulator performs the re-arm after each cycle);
* NICs stay in the live set while they have a traffic source attached
  or injection backlog (:meth:`wake_nic_step` is invoked by source
  attachment and by :meth:`~repro.noc.nic.Nic.submit`).

Skipping a component that none of the wake conditions cover is exact:
all phase methods are no-ops for such a component, so gated and ungated
stepping produce byte-identical traces.
"""

from __future__ import annotations

import itertools

from repro.noc.channel import Channel, MultiChannel
from repro.noc.metrics import ActivityCounters, aggregate
from repro.noc.nic import Nic
from repro.noc.ports import EAST, LOCAL, NORTH, OPPOSITE, SOUTH, WEST
from repro.noc.router import Router
from repro.noc.routing import RouteState, coords, node_at

CREDIT_DELAY = 2
LOOKAHEAD_DELAY = 1


def _insert_wake(wakes, cycle, node):
    """Add ``node`` to the ``cycle`` entry of a wake schedule."""
    pending = wakes.get(cycle)
    if pending is None:
        wakes[cycle] = {node}
    else:
        pending.add(node)


class MeshNetwork:
    """A k x k mesh of routers, each with an attached NIC."""

    def __init__(self, config):
        self.cfg = config
        if config.bypass and config.separate_st_lt:
            raise ValueError(
                "virtual bypassing requires the single-cycle ST+LT datapath"
            )
        self.router_stats = [ActivityCounters() for _ in range(config.num_nodes)]
        self.nic_stats = [ActivityCounters() for _ in range(config.num_nodes)]
        self.messages = []
        #: per-simulation message/packet id counters, shared by all the
        #: NICs of this network so ids are network-unique yet every
        #: fresh network numbers from 0 (process-global counters would
        #: leak state across back-to-back simulations in one worker)
        self.message_ids = itertools.count()
        self.packet_ids = itertools.count()
        #: cycles stepped so far; the single network-level cycle counter
        #: that replaces per-component ``stats.cycles`` ticking (folded
        #: back into the aggregates by :meth:`total_router_activity`).
        self.cycles = 0
        #: monotonic network-wide ejection count (O(1) watchdog probe).
        self.ejections = 0
        # wake schedules: absolute cycle -> set of component indices
        # that will receive a channel delivery in that cycle
        self._router_wakes = {}
        self._nic_rx_wakes = {}
        # NICs that must run their injection step() each cycle
        self._live_nics = set(range(config.num_nodes))
        self._live_order = None  # cached sorted view of _live_nics
        #: per-network routing runtime: one shared route memo (dropped
        #: with the network) plus the per-node header-draw streams;
        #: reseeded from the traffic seed by ``Simulator.attach_traffic``
        self.route_state = RouteState(config.routing, config.k)
        self.routers = [
            Router(config, n, self.router_stats[n], self.route_state)
            for n in range(config.num_nodes)
        ]
        self.nics = [
            Nic(config, n, self.nic_stats[n], self.messages)
            for n in range(config.num_nodes)
        ]
        for component in (*self.routers, *self.nics):
            component.network = self
        self._channels = []
        self._wire_local_ports()
        self._wire_mesh_links()

    def _channel(self, cls, delay, name, wake):
        channel = cls(delay, name, wake=wake)
        self._channels.append(channel)
        return channel

    # ------------------------------------------------------------------
    # wake scheduling (the active sets of the gated cycle loop)
    # ------------------------------------------------------------------

    @staticmethod
    def _waker(wakes, node):
        """A channel wake callback scheduling ``node`` in ``wakes``."""

        def wake(cycle, _node=node, _wakes=wakes):
            _insert_wake(_wakes, cycle, _node)

        return wake

    def _router_waker(self, node):
        """A channel wake callback targeting router ``node``."""
        return self._waker(self._router_wakes, node)

    def _nic_waker(self, node):
        """A channel wake callback targeting NIC ``node`` (its rx side)."""
        return self._waker(self._nic_rx_wakes, node)

    def schedule_router_wake(self, node, cycle):
        """Ensure router ``node`` runs at ``cycle`` (delivery or re-arm)."""
        _insert_wake(self._router_wakes, cycle, node)

    def pop_router_wakes(self, cycle):
        """Consume and return the router active set for ``cycle``."""
        return self._router_wakes.pop(cycle, None)

    def pop_nic_rx_wakes(self, cycle):
        """Consume and return the NIC receive set for ``cycle``."""
        return self._nic_rx_wakes.pop(cycle, None)

    def seed_routing(self, seed):
        """Reseed the routing header streams (no-op for ``None``)."""
        if seed is not None:
            self.route_state.reseed(seed)

    def wake_nic_step(self, node):
        """Mark NIC ``node`` live: it has a source or injection backlog."""
        if node not in self._live_nics:
            self._live_nics.add(node)
            self._live_order = None

    def retire_nic_step(self, node):
        """Drop NIC ``node`` from the live set (no source, no backlog)."""
        self._live_nics.discard(node)
        self._live_order = None

    def live_nics(self):
        """The NICs whose step() must run this cycle, in index order."""
        order = self._live_order
        if order is None:
            order = self._live_order = tuple(sorted(self._live_nics))
        return order

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def _wire_local_ports(self):
        link_delay = self.cfg.link_delay
        for node, (router, nic) in enumerate(zip(self.routers, self.nics)):
            to_router = self._router_waker(node)
            to_nic = self._nic_waker(node)

            inject = self._channel(Channel, 1, f"nic{node}->r{node}", to_router)
            nic.link_out = inject
            router.in_ports[LOCAL].link_in = inject

            inj_credit = self._channel(
                MultiChannel, CREDIT_DELAY, f"r{node}->nic{node}.credit", to_nic
            )
            router.in_ports[LOCAL].credit_out = inj_credit
            nic.credit_in = inj_credit

            la = self._channel(
                Channel, LOOKAHEAD_DELAY, f"nic{node}->r{node}.la", to_router
            )
            nic.la_out = la
            router.in_ports[LOCAL].la_in = la

            eject = self._channel(
                Channel, link_delay, f"r{node}->nic{node}", to_nic
            )
            router.out_ports[LOCAL].link_out = eject
            nic.link_in = eject

            ej_credit = self._channel(
                MultiChannel, CREDIT_DELAY, f"nic{node}->r{node}.credit", to_router
            )
            nic.credit_out = ej_credit
            router.out_ports[LOCAL].credit_in = ej_credit

    def _wire_mesh_links(self):
        k = self.cfg.k
        link_delay = self.cfg.link_delay
        for node in range(self.cfg.num_nodes):
            x, y = coords(node, k)
            to_src = self._router_waker(node)
            for port, (nx, ny) in (
                (NORTH, (x, y + 1)),
                (EAST, (x + 1, y)),
                (SOUTH, (x, y - 1)),
                (WEST, (x - 1, y)),
            ):
                if not (0 <= nx < k and 0 <= ny < k):
                    continue
                neighbour = node_at(nx, ny, k)
                src = self.routers[node]
                dst = self.routers[neighbour]
                back_port = OPPOSITE[port]
                to_dst = self._router_waker(neighbour)

                link = self._channel(
                    Channel, link_delay, f"r{node}->r{neighbour}", to_dst
                )
                src.out_ports[port].link_out = link
                dst.in_ports[back_port].link_in = link

                credit = self._channel(
                    MultiChannel,
                    CREDIT_DELAY,
                    f"r{neighbour}->r{node}.credit",
                    to_src,
                )
                dst.in_ports[back_port].credit_out = credit
                src.out_ports[port].credit_in = credit

                la = self._channel(
                    Channel, LOOKAHEAD_DELAY, f"r{node}->r{neighbour}.la", to_dst
                )
                src.out_ports[port].la_out = la
                dst.in_ports[back_port].la_in = la

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def flit_links(self):
        """The directed router-to-router flit links, in a deterministic
        order, as ``(((x, y), (nx, ny)), channel)`` pairs.

        The coordinate-pair keys match the channel-load maps of
        :mod:`repro.analysis.pattern_limits`, so a measured link-flit
        count is directly comparable with the analytic prediction for
        the same link.  Local injection/ejection links are excluded —
        they are observed at the NIC (inject/eject events) instead.
        """
        k = self.cfg.k
        links = []
        for node in range(self.cfg.num_nodes):
            x, y = coords(node, k)
            for port, (nx, ny) in (
                (NORTH, (x, y + 1)),
                (EAST, (x + 1, y)),
                (SOUTH, (x, y - 1)),
                (WEST, (x - 1, y)),
            ):
                if not (0 <= nx < k and 0 <= ny < k):
                    continue
                channel = self.routers[node].out_ports[port].link_out
                links.append((((x, y), (nx, ny)), channel))
        return links

    def occupancy(self):
        return sum(r.occupancy() for r in self.routers)

    def idle(self):
        """Nothing buffered, latched, scheduled, queued or in flight.

        This is the exhaustive O(network) scan; the gated cycle loop
        uses the equivalent O(active) :meth:`quiescent` instead.
        """
        return (
            all(r.idle() for r in self.routers)
            and all(nic.idle() for nic in self.nics)
            and all(ch.in_flight == 0 for ch in self._channels)
        )

    def quiescent(self):
        """O(active) equivalent of :meth:`idle` under gated stepping.

        Sound because of the wake invariants: every in-flight payload
        has a wake entry at its arrival cycle, every router with local
        work is re-armed for the next cycle, and every NIC with backlog
        is in the live set.  Hence empty schedules plus idle live NICs
        imply the exhaustive scan would also report idle.
        """
        if self._router_wakes or self._nic_rx_wakes:
            return False
        nics = self.nics
        return all(nics[i].idle() for i in self._live_nics)

    def total_router_activity(self):
        """Aggregate router counters with elapsed cycles folded in."""
        agg = aggregate(self.router_stats)
        agg.cycles += self.cycles * len(self.router_stats)
        return agg

    def total_nic_activity(self):
        """Aggregate NIC counters with elapsed cycles folded in."""
        agg = aggregate(self.nic_stats)
        agg.cycles += self.cycles * len(self.nic_stats)
        return agg
