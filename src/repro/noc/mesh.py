"""Mesh assembly: routers, NICs and the channels wiring them together.

Channel delays implement the timing contract of DESIGN.md: flit links
are one cycle (two with the textbook split ST/LT pipeline), lookahead
wires are one cycle, and credit wires are two cycles (one cycle of wire
plus one cycle of credit processing at the upstream node), which yields
the paper's 3-cycle buffer/VC turnaround for the bypassed pipeline.
"""

from __future__ import annotations

from repro.noc.channel import Channel, MultiChannel
from repro.noc.metrics import ActivityCounters
from repro.noc.nic import Nic
from repro.noc.ports import EAST, LOCAL, NORTH, OPPOSITE, SOUTH, WEST
from repro.noc.router import Router
from repro.noc.routing import coords, node_at

CREDIT_DELAY = 2
LOOKAHEAD_DELAY = 1


class MeshNetwork:
    """A k x k mesh of routers, each with an attached NIC."""

    def __init__(self, config):
        self.cfg = config
        if config.bypass and config.separate_st_lt:
            raise ValueError(
                "virtual bypassing requires the single-cycle ST+LT datapath"
            )
        self.router_stats = [ActivityCounters() for _ in range(config.num_nodes)]
        self.nic_stats = [ActivityCounters() for _ in range(config.num_nodes)]
        self.messages = []
        self.routers = [
            Router(config, n, self.router_stats[n]) for n in range(config.num_nodes)
        ]
        self.nics = [
            Nic(config, n, self.nic_stats[n], self.messages)
            for n in range(config.num_nodes)
        ]
        self._channels = []
        self._wire_local_ports()
        self._wire_mesh_links()

    def _channel(self, cls, delay, name):
        channel = cls(delay, name)
        self._channels.append(channel)
        return channel

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def _wire_local_ports(self):
        link_delay = self.cfg.link_delay
        for node, (router, nic) in enumerate(zip(self.routers, self.nics)):
            inject = self._channel(Channel, 1, f"nic{node}->r{node}")
            nic.link_out = inject
            router.in_ports[LOCAL].link_in = inject

            inj_credit = self._channel(
                MultiChannel, CREDIT_DELAY, f"r{node}->nic{node}.credit"
            )
            router.in_ports[LOCAL].credit_out = inj_credit
            nic.credit_in = inj_credit

            la = self._channel(Channel, LOOKAHEAD_DELAY, f"nic{node}->r{node}.la")
            nic.la_out = la
            router.in_ports[LOCAL].la_in = la

            eject = self._channel(Channel, link_delay, f"r{node}->nic{node}")
            router.out_ports[LOCAL].link_out = eject
            nic.link_in = eject

            ej_credit = self._channel(
                MultiChannel, CREDIT_DELAY, f"nic{node}->r{node}.credit"
            )
            nic.credit_out = ej_credit
            router.out_ports[LOCAL].credit_in = ej_credit

    def _wire_mesh_links(self):
        k = self.cfg.k
        link_delay = self.cfg.link_delay
        for node in range(self.cfg.num_nodes):
            x, y = coords(node, k)
            for port, (nx, ny) in (
                (NORTH, (x, y + 1)),
                (EAST, (x + 1, y)),
                (SOUTH, (x, y - 1)),
                (WEST, (x - 1, y)),
            ):
                if not (0 <= nx < k and 0 <= ny < k):
                    continue
                neighbour = node_at(nx, ny, k)
                src = self.routers[node]
                dst = self.routers[neighbour]
                back_port = OPPOSITE[port]

                link = self._channel(Channel, link_delay, f"r{node}->r{neighbour}")
                src.out_ports[port].link_out = link
                dst.in_ports[back_port].link_in = link

                credit = self._channel(
                    MultiChannel, CREDIT_DELAY, f"r{neighbour}->r{node}.credit"
                )
                dst.in_ports[back_port].credit_out = credit
                src.out_ports[port].credit_in = credit

                la = self._channel(
                    Channel, LOOKAHEAD_DELAY, f"r{node}->r{neighbour}.la"
                )
                src.out_ports[port].la_out = la
                dst.in_ports[back_port].la_in = la

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def occupancy(self):
        return sum(r.occupancy() for r in self.routers)

    def idle(self):
        """Nothing buffered, latched, scheduled, queued or in flight."""
        return (
            all(r.idle() for r in self.routers)
            and all(nic.idle() for nic in self.nics)
            and all(ch.in_flight == 0 for ch in self._channels)
        )

    def total_router_activity(self):
        from repro.noc.metrics import aggregate

        return aggregate(self.router_stats)

    def total_nic_activity(self):
        from repro.noc.metrics import aggregate

        return aggregate(self.nic_stats)
