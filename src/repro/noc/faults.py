"""Fault injection and the recovery stack.

The paper's Fig. 10 reduces link reliability to a circuit-level
quantity: the probability that a low-swing repeater's sense amplifier
misreads a bit, a Q-function of the swing voltage over the amplifier's
offset spread.  The cycle-accurate model, however, treated every flit
delivery as infallible.  This module closes that loop with a
serializable *fault model* strategy layer mirroring the
patterns/routing/injection idiom:

* **soft faults** — per-flit bit-error corruption drawn from private
  salted PRBS streams, one stream per directed link, with the per-link
  error probability either set directly (:class:`BitErrorFaults`) or
  derived from the Fig. 10 swing → P(fail) model
  (:class:`SwingFaults`);
* **hard faults** — links or routers dying at scheduled cycles
  (:class:`LinkFaults`) or via a deterministic permutation draw
  (:class:`RandomFaults`; fault sets are *nested* across counts, so
  delivered throughput degrades monotonically in the count).

On top sits the recovery stack (the fault-tolerant routing treatment
of Dally & Towles):

* **detection** — a corrupted flit carries an error-detect flag
  (``Flit.corrupt``) and is discarded at the receiving input VC;
  flow-control conservation is preserved by emulating the credits the
  discarded flit would have returned.  A flit that already won a
  bypass pre-allocation at its arrival cycle must not vanish (the
  crossbar traversal is committed), so it is *poison-forwarded*
  instead: it travels its remaining route with the flag set, cleaning
  up downstream VC allocations hop by hop, and is discarded at the
  ejection gate.
* **retransmission** — damage to a packet's tail arms a NACK (or a
  plain timeout when ``nack=False``) for each still-pending
  destination; firing consumes one unit of the per-message retry
  budget and schedules a re-injection after bounded exponential
  backoff.  The retransmitted packet is a fresh unicast drawn through
  the normal injection path, so it is itself subject to faults.
* **rerouting** — hard faults install a :class:`FaultRouteState` that
  replaces the configured routing algorithm with up*/down* routing on
  a BFS spanning tree of the live topology.  Tree routing in a single
  VC partition is deadlock free (every dependency is up→up, up→down
  or down→down — acyclic), and route tables are *epoch-stamped*: a
  packet keeps the epoch drawn at injection for wormhole consistency,
  and a rebuild appends a new epoch rather than mutating tables under
  in-flight packets.
* **graceful degradation** — a destination cut off by the faults is
  reported structurally: its flits are gated at injection, the
  message is marked failed, and the run ends with
  ``stop_reason="partitioned"`` plus a ``delivered_fraction`` below
  one instead of a watchdog hang.

``faults=None`` follows the zero-overhead-off contract of DESIGN.md
§7: the plain step functions carry no fault hooks at all — the
simulator wraps its stepper only while a fault engine is attached —
and a fault model with nothing to do (zero error rate, no deaths)
touches no simulation state, so its runs stay byte-identical to bare
ones.  The fault event ordering within the phase loop is specified in
DESIGN.md §8.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, fields

from repro.noc.flit import Packet
from repro.noc.ports import EAST, LOCAL, NORTH, SOUTH, WEST
from repro.noc.routing import coords, node_at, xy_distance
from repro.noc.vc import CreditMsg

#: Salt decorrelating the per-link fault streams (and the hard-fault
#: permutation draw) from the traffic, routing and injection-chain
#: stream families.
_FAULT_STREAM_SALT = 0x9E3779B9

#: Stream-offset lane of the hard-fault permutation draw, far outside
#: the per-link offsets (link indices are < 4·k·(k-1)).
_HARD_DRAW_OFFSET = 10**6

#: Routing-header sentinel of a packet whose source or destination is
#: outside the live partition; such flits are gated at injection.
UNREACHABLE = -1


def _fault_rng(seed, offset):
    """A private PRBS-31 stream of the fault family."""
    # lazy import: keeps repro.noc importable without triggering the
    # repro.traffic package (mirrors repro.noc.routing._stream_seed)
    from repro.traffic.prbs import PRBSGenerator, salted_stream_seed

    return PRBSGenerator(
        order=31, seed=salted_stream_seed(seed, _FAULT_STREAM_SALT, offset)
    )


# ------------------------------------------------------------- registry

#: name -> fault model class; populated by :func:`_register`.
_REGISTRY = {}


def _register(cls):
    _REGISTRY[cls.name] = cls
    return cls


def fault_names():
    """The registered fault model names, sorted (CLI choices)."""
    return sorted(_REGISTRY)


def make_fault(name, **kwargs):
    """Instantiate a registered fault model by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown fault model {name!r}; choose from {fault_names()}"
        ) from None
    return cls(**kwargs)


def fault_from_dict(data):
    """Invert ``FaultModel.to_dict`` for any registered model."""
    try:
        name = data["name"]
    except (TypeError, KeyError):
        raise ValueError(f"not a serialized fault model: {data!r}") from None
    kwargs = {k: v for k, v in data.items() if k != "name"}
    # JSON round-trips tuples as lists; restore the hashable forms
    if "links" in kwargs:
        kwargs["links"] = tuple(
            tuple(int(x) for x in entry) for entry in kwargs["links"]
        )
    if "routers" in kwargs:
        kwargs["routers"] = tuple(
            tuple(int(x) for x in entry) for entry in kwargs["routers"]
        )
    return make_fault(name, **kwargs)


# ---------------------------------------------------------- fault models


@dataclass(frozen=True)
class FaultModel:
    """A serializable fault scenario plus its recovery parameters.

    Subclasses are stateless values (like the routing algorithms); all
    runtime state lives in the :class:`FaultState` a simulator builds
    from the model and its traffic seed.  The common fields tune the
    recovery stack:

    ``retry_timeout``
        Source-side timeout in cycles when ``nack`` is off.
    ``retry_budget``
        Retransmission attempts per *message* before it is declared
        failed.
    ``backoff_base`` / ``backoff_cap``
        Exponential backoff: retry *n* waits
        ``min(backoff_base << n, backoff_cap)`` cycles.
    ``nack`` / ``nack_delay``
        With ``nack`` on (the default), damage detected at a node
        notifies the source after ``nack_delay`` plus the XY hop
        distance back to it; off, the source discovers the loss only
        by ``retry_timeout``.
    """

    retry_timeout: int = 64
    retry_budget: int = 4
    backoff_base: int = 8
    backoff_cap: int = 512
    nack: bool = True
    nack_delay: int = 4

    #: registry key; also the ``--faults`` CLI spelling
    name = None

    def validate(self, config):
        """Raise ValueError if the model cannot run on ``config``."""
        if self.retry_timeout < 1:
            raise ValueError("retry_timeout must be at least one cycle")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be non-negative")
        if self.backoff_base < 1 or self.backoff_cap < self.backoff_base:
            raise ValueError("need 1 <= backoff_base <= backoff_cap")
        if self.nack_delay < 0:
            raise ValueError("nack_delay must be non-negative")

    def error_rate(self, config):
        """Per-flit, per-link corruption probability in [0, 1]."""
        return 0.0

    def hard_schedule(self, config, seed):
        """The scheduled deaths: ``(link_deaths, router_deaths)``.

        ``link_deaths`` is a tuple of ``(a, b, cycle)`` undirected
        neighbour pairs, ``router_deaths`` a tuple of
        ``(node, cycle)``.  Deaths are bidirectional: a dead link
        drops flits in both directions (up*/down* tree routing needs
        both directions of every live edge).
        """
        return (), ()

    @property
    def is_hard(self):
        """Whether the model kills topology (installs rerouting)."""
        return False

    def to_dict(self):
        """A JSON-safe representation :func:`fault_from_dict` inverts."""
        data = {"name": self.name}
        for f in fields(self):
            data[f.name] = getattr(self, f.name)
        return data


@_register
@dataclass(frozen=True)
class BitErrorFaults(FaultModel):
    """Uniform per-flit corruption probability on every mesh link."""

    name = "biterror"

    rate: float = 1e-3

    def validate(self, config):
        super().validate(config)
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("bit-error rate must be a probability")

    def error_rate(self, config):
        return self.rate


@_register
@dataclass(frozen=True)
class SwingFaults(FaultModel):
    """Per-flit error probability derived from the Fig. 10 model.

    The per-*bit* failure probability is the sense amplifier's
    ``2·Q(swing / 2σ)`` at ``swing_mv`` (``sigma_mv`` overrides the
    technology's offset spread); a flit is corrupted when any of its
    ``config.flit_bits`` bits misreads, i.e. with probability
    ``1 - (1 - p_bit)**flit_bits``.
    """

    name = "swing"

    swing_mv: float = 240.0
    sigma_mv: float | None = None

    def validate(self, config):
        super().validate(config)
        if self.swing_mv <= 0:
            raise ValueError("swing must be positive")
        if self.sigma_mv is not None and self.sigma_mv <= 0:
            raise ValueError("offset sigma must be positive")

    def error_rate(self, config):
        # lazy import: the circuit models are an independent subpackage
        from repro.circuits.sense_amp import SenseAmplifier

        amp = SenseAmplifier(offset_sigma_mv=self.sigma_mv)
        p_bit = amp.failure_probability(self.swing_mv)
        return 1.0 - (1.0 - p_bit) ** config.flit_bits


@_register
@dataclass(frozen=True)
class LinkFaults(FaultModel):
    """Explicitly scheduled link/router deaths, plus an optional
    uniform soft-error rate on the surviving links.

    ``links`` holds ``(a, b, cycle)`` neighbour pairs, ``routers``
    ``(node, cycle)`` entries; a router death kills every incident
    link and discards anything later ejected at the node.
    """

    name = "links"

    links: tuple = ()
    routers: tuple = ()
    rate: float = 0.0

    def validate(self, config):
        super().validate(config)
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("bit-error rate must be a probability")
        n = config.num_nodes
        for entry in self.links:
            if len(entry) != 3:
                raise ValueError(f"link death {entry!r} is not (a, b, cycle)")
            a, b, _cycle = entry
            if not (0 <= a < n and 0 <= b < n):
                raise ValueError(f"link death {entry!r} outside the mesh")
            if xy_distance(a, b, config.k) != 1:
                raise ValueError(f"link death {entry!r} is not a mesh link")
        for entry in self.routers:
            if len(entry) != 2:
                raise ValueError(f"router death {entry!r} is not (node, cycle)")
            node, _cycle = entry
            if not 0 <= node < n:
                raise ValueError(f"router death {entry!r} outside the mesh")
        if len(self.routers) >= n:
            raise ValueError("cannot kill every router")

    def error_rate(self, config):
        return self.rate

    def hard_schedule(self, config, seed):
        return self.links, self.routers

    @property
    def is_hard(self):
        return bool(self.links or self.routers)


def _undirected_edges(k):
    """The mesh's undirected links in deterministic node-major order."""
    edges = []
    for node in range(k * k):
        x, y = coords(node, k)
        if x + 1 < k:
            edges.append((node, node + 1))
        if y + 1 < k:
            edges.append((node, node + k))
    return edges


@_register
@dataclass(frozen=True)
class RandomFaults(FaultModel):
    """``count`` links dying at cycle ``at``, drawn deterministically.

    One Fisher–Yates permutation of the undirected links is drawn from
    a private PRBS stream (seeded from the traffic seed, independent
    of ``count``) and the first ``count`` entries die.  Fault sets are
    therefore *nested* across counts for a fixed seed, which is what
    makes the reliability exhibit's delivered-throughput curve
    monotone in the count.  An optional soft-error ``rate`` applies to
    the surviving links.
    """

    name = "random"

    count: int = 1
    at: int = 0
    rate: float = 0.0

    def validate(self, config):
        super().validate(config)
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("bit-error rate must be a probability")
        limit = 2 * config.k * (config.k - 1)
        if not 0 <= self.count <= limit:
            raise ValueError(
                f"count must be within the mesh's {limit} undirected links"
            )
        if self.at < 0:
            raise ValueError("death cycle must be non-negative")

    def error_rate(self, config):
        return self.rate

    def hard_schedule(self, config, seed):
        if self.count == 0:
            return (), ()
        edges = _undirected_edges(config.k)
        rng = _fault_rng(seed, _HARD_DRAW_OFFSET)
        for i in range(len(edges) - 1, 0, -1):
            j = rng.next_below(i + 1)
            edges[i], edges[j] = edges[j], edges[i]
        return tuple((a, b, self.at) for a, b in edges[: self.count]), ()

    @property
    def is_hard(self):
        return self.count > 0


# -------------------------------------------------- fault-aware routing


def _port_toward(u, v, k):
    """The output port of ``u`` facing its mesh neighbour ``v``."""
    ux, uy = coords(u, k)
    vx, vy = coords(v, k)
    if vx == ux + 1 and vy == uy:
        return EAST
    if vx == ux - 1 and vy == uy:
        return WEST
    if vy == uy + 1 and vx == ux:
        return NORTH
    if vy == uy - 1 and vx == ux:
        return SOUTH
    raise ValueError(f"{u} and {v} are not mesh neighbours")


def _build_tree_table(k, dead_nodes, dead_edges):
    """Next-hop table of up*/down* routing on a BFS spanning tree.

    Returns ``(table, reachable)``: ``table[u][v]`` is the output port
    of ``u`` toward ``v`` (``None`` off the tree), ``reachable`` the
    frozenset of nodes in the root's live component.  The root is the
    lowest-numbered live node; neighbours are explored in NESW order,
    so the tree — and every route — is deterministic.
    """
    n = k * k

    def neighbours(u):
        x, y = coords(u, k)
        out = []
        for nx, ny in ((x, y + 1), (x + 1, y), (x, y - 1), (x - 1, y)):
            if not (0 <= nx < k and 0 <= ny < k):
                continue
            v = node_at(nx, ny, k)
            if v in dead_nodes or frozenset((u, v)) in dead_edges:
                continue
            out.append(v)
        return out

    table = [[None] * n for _ in range(n)]
    live = [u for u in range(n) if u not in dead_nodes]
    if not live:
        return table, frozenset()
    root = live[0]
    # BFS spanning tree of the root's component
    tree_adj = {root: []}
    frontier = [root]
    while frontier:
        nxt = []
        for u in frontier:
            for v in neighbours(u):
                if v in tree_adj:
                    continue
                tree_adj[v] = [u]
                tree_adj[u].append(v)
                nxt.append(v)
        frontier = nxt
    reachable = frozenset(tree_adj)
    # per destination: BFS over tree edges yields each node's next hop
    for dest in reachable:
        towards = {dest: None}
        frontier = [dest]
        while frontier:
            nxt = []
            for u in frontier:
                for v in tree_adj[u]:
                    if v in towards:
                        continue
                    towards[v] = u
                    nxt.append(v)
            frontier = nxt
        row = table
        for u, via in towards.items():
            if via is not None:
                row[u][dest] = _port_toward(u, via, k)
    return table, reachable


class _TreeRoutingShim:
    """Quacks like a ``RoutingAlgorithm`` value for introspection sites
    (the NIC's multicast check, logging); never serialized."""

    name = "fault-tree"
    phases = 1
    advancing = False
    uses_rng = False
    supports_multicast = False


class FaultRouteState:
    """Drop-in for :class:`~repro.noc.routing.RouteState` under hard
    faults: epoch-stamped up*/down* spanning-tree routing.

    A packet's header is the *epoch index* of the route table it was
    injected under (or :data:`UNREACHABLE`).  Rebuilding after a death
    appends a new epoch and leaves old tables intact, so in-flight
    packets keep wormhole-consistent routes; a packet whose old-epoch
    route crosses a newly dead link is simply dropped there and
    recovered by retransmission under the current epoch.

    Deadlock freedom: all traffic runs in VC partition 0 and every
    route is a tree path, whose channel dependencies (up toward the
    root, then down) are acyclic.
    """

    __slots__ = (
        "algorithm",
        "k",
        "num_nodes",
        "advancing",
        "epoch",
        "hits",
        "misses",
        "_epochs",
        "_memo",
    )

    def __init__(self, k):
        self.algorithm = _TreeRoutingShim()
        self.k = k
        self.num_nodes = k * k
        self.advancing = False
        self.epoch = -1
        self.hits = 0
        self.misses = 0
        self._epochs = []
        self._memo = {}

    def rebuild(self, dead_nodes, dead_edges):
        """Append a route-table epoch for the current live topology."""
        self._epochs.append(
            _build_tree_table(self.k, frozenset(dead_nodes), frozenset(dead_edges))
        )
        self.epoch = len(self._epochs) - 1

    def reseed(self, seed):
        """Tree routes draw no randomness; nothing to reseed."""

    def packet_header(self, src, destinations):
        """(epoch, phase 0), or the :data:`UNREACHABLE` sentinel."""
        if len(destinations) > 1:
            raise RuntimeError(
                "fault-aware tree routing cannot carry multicast packets"
            )
        (dest,) = destinations
        _table, reachable = self._epochs[self.epoch]
        if src not in reachable or dest not in reachable:
            return UNREACHABLE, 0
        return self.epoch, 0

    def advance(self, node, destinations, header):
        return header, 0

    def route(self, node, destinations, header):
        key = (node, destinations, header)
        out = self._memo.get(key)
        if out is not None:
            self.hits += 1
            return out
        if header is None or header < 0:
            raise RuntimeError(
                f"routing a packet with fault header {header!r} at {node}"
            )
        (dest,) = destinations
        if dest == node:
            out = {LOCAL: destinations}
        else:
            port = self._epochs[header][0][node][dest]
            if port is None:
                raise RuntimeError(
                    f"no epoch-{header} tree route from {node} to {dest}"
                )
            out = {port: destinations}
        self._memo[key] = out
        self.misses += 1
        return out

    def cache_info(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._memo),
            "capacity": None,
        }


# --------------------------------------------------------- fault runtime


class FaultState:
    """The per-simulation fault engine built from a :class:`FaultModel`.

    ``pre_cycle(t)`` runs before the phase loop of cycle ``t`` (the
    simulator wraps its stepper while an engine is attached) and
    operates purely on channel queues — payloads whose arrival cycle
    is ``t`` but which no component has received yet — so the routers
    and NICs themselves carry no fault hooks at all.  See DESIGN.md §8
    for the ordering and invariants.
    """

    def __init__(self, model, sim, seed):
        self.model = model
        self.sim = sim
        self.net = sim.network
        self.cfg = sim.cfg
        self.k = self.cfg.k
        self.seed = 1 if seed is None else seed
        model.validate(self.cfg)
        k = self.k
        # directed router-to-router links, in flit_links() order
        self.links = [
            (node_at(*src, k), node_at(*dst, k), channel)
            for (src, dst), channel in self.net.flit_links()
        ]
        self._link_index = {
            (a, b): i for i, (a, b, _ch) in enumerate(self.links)
        }
        # the receiving router's input port of each link (credit
        # emulation for discarded flits, bypass-reservation checks)
        self._sink_ports = []
        for _a, b, channel in self.links:
            router = self.net.routers[b]
            self._sink_ports.append(
                next(ip for ip in router.in_ports if ip.link_in is channel)
            )
        base_rate = float(model.error_rate(self.cfg))
        self.rates = [base_rate] * len(self.links)
        self._rngs = [None] * len(self.links)
        self._hot_links = ()
        self._rescan_hot()
        #: (link, pid) -> squash mode for packets with dropped flits:
        #: "all" (head lost: nothing downstream may see the packet),
        #: "tail" (body lost: drop the rest, poison-forward the tail),
        #: "fwd" (poison-forwarded head: pass the rest untouched).
        self._squash = {}
        #: node -> pids whose poisoned head was discarded at ejection
        self._poisoned = {}
        self._dead_nodes = set()
        self._dead_edges = set()
        self._gate_ejects = False
        # recovery schedules: (cycle, tiebreak, message, dest, pid)
        self._ctr = itertools.count()
        self._retry_heap = []
        self._reinject_heap = []
        self._retries = {}
        self.dropped_flits = 0
        self.corrupted_flits = 0
        self.retransmissions = 0
        self.failed_messages = 0
        self.partitioned = False
        link_deaths, router_deaths = model.hard_schedule(self.cfg, self.seed)
        deaths = [
            (int(c), "link", (int(a), int(b))) for a, b, c in link_deaths
        ]
        deaths += [(int(c), "router", int(node)) for node, c in router_deaths]
        deaths.sort(key=lambda entry: entry[0])
        self._deaths = deaths
        self._death_idx = 0
        self.hard = bool(deaths)
        self.route_state = None
        if self.hard:
            frs = FaultRouteState(k)
            frs.rebuild(self._dead_nodes, self._dead_edges)  # pristine epoch 0
            self.route_state = frs
            self.net.route_state = frs
            for router in self.net.routers:
                router.route_state = frs

    # ------------------------------------------------------------ cycle

    def pre_cycle(self, t):
        """Fault phase of cycle ``t`` (before all component phases)."""
        if self._death_idx < len(self._deaths) and self._deaths[self._death_idx][0] <= t:
            self._apply_deaths(t)
        if self.hard:
            self._gate_injections(t)
        if self._hot_links:
            self._corrupt_links(t)
        if self._gate_ejects or self._dead_nodes:
            self._gate_ejections(t)
        if self._retry_heap or self._reinject_heap:
            self._service_recovery(t)

    # ----------------------------------------------------- hard faults

    def _rescan_hot(self):
        self._hot_links = tuple(
            i for i, rate in enumerate(self.rates) if rate > 0.0
        )

    def _kill_edge(self, a, b, t):
        edge = frozenset((a, b))
        if edge in self._dead_edges:
            return False
        self._dead_edges.add(edge)
        for pair in ((a, b), (b, a)):
            idx = self._link_index.get(pair)
            if idx is not None:
                self.rates[idx] = 1.0
        self._trace_fault(t, a, f"link-dead:{a}-{b}")
        return True

    def _apply_deaths(self, t):
        changed = False
        deaths = self._deaths
        while self._death_idx < len(deaths) and deaths[self._death_idx][0] <= t:
            _cycle, kind, payload = deaths[self._death_idx]
            self._death_idx += 1
            if kind == "router":
                node = payload
                if node in self._dead_nodes:
                    continue
                self._dead_nodes.add(node)
                self._gate_ejects = True
                x, y = coords(node, self.k)
                for nx, ny in ((x, y + 1), (x + 1, y), (x, y - 1), (x - 1, y)):
                    if 0 <= nx < self.k and 0 <= ny < self.k:
                        self._kill_edge(node, node_at(nx, ny, self.k), t)
                self._trace_fault(t, node, "router-dead")
                changed = True
            else:
                a, b = payload
                changed = self._kill_edge(a, b, t) or changed
        if changed:
            self._rescan_hot()
            self.route_state.rebuild(self._dead_nodes, self._dead_edges)

    def _gate_injections(self, t):
        """Absorb flits (and lookaheads) born with unreachable routes.

        The NIC admits every message; a packet whose source or
        destination is outside the live partition carries the
        :data:`UNREACHABLE` header and is consumed here, at the
        injection channel, with its credits emulated so the NIC's VC
        bookkeeping stays conservative.  Its lookahead is consumed one
        cycle earlier, so the router can never have made a bypass
        reservation for a gated flit.
        """
        for node, router in enumerate(self.net.routers):
            ip = router.in_ports[LOCAL]
            queue = ip.link_in._queue
            if queue and queue[0][0] == t:
                flit = queue[0][1]
                if flit.rheader == UNREACHABLE:
                    queue.popleft()
                    ip.credit_out.send(t, CreditMsg(flit.vc, flit.is_tail))
                    self.dropped_flits += 1
                    self._trace_drop(t, node, flit, "unreachable")
                    if flit.is_tail:
                        self.partitioned = True
                        self._fail(flit.packet.message)
            la_in = ip.la_in
            if la_in is not None:
                la_queue = la_in._queue
                if (
                    la_queue
                    and la_queue[0][0] == t
                    and la_queue[0][1].rheader == UNREACHABLE
                ):
                    la_queue.popleft()

    # ----------------------------------------------------- soft faults

    def _rng(self, i):
        rng = self._rngs[i]
        if rng is None:
            rng = self._rngs[i] = _fault_rng(self.seed, i)
        return rng

    def _drop(self, i, flit, t, reason):
        """Discard the arriving flit of link ``i``, emulating the
        credits the receiving router would eventually have returned."""
        a, b, channel = self.links[i]
        channel._queue.popleft()
        self._sink_ports[i].credit_out.send(
            t, CreditMsg(flit.vc, flit.is_tail)
        )
        self.dropped_flits += 1
        self._trace_drop(t, b, flit, reason)

    def _poison(self, flit):
        """Mark a committed flit corrupt; it travels on for cleanup and
        is discarded (with recovery) at the ejection gate."""
        flit.corrupt = True
        self._gate_ejects = True

    def _corrupt_links(self, t):
        """Per-link arrival gate: draw corruption, enforce squash modes.

        A packet must stay *well formed* downstream of any loss —
        this is what the squash modes guarantee:

        * losing the head makes the rest of the packet undeliverable
          (no downstream VC was ever allocated), so every following
          flit is dropped too (``"all"``);
        * losing a body must not lose the tail: the tail releases the
          packet's VC allocations at every downstream hop, so it is
          poison-forwarded instead (``"tail"``);
        * a flit holding a bypass reservation at its arrival cycle has
          already been granted the crossbar — it cannot vanish without
          desynchronising the router, so it is poison-forwarded and
          the rest of the packet passes untouched (``"fwd"``).
        """
        squash = self._squash
        for i in self._hot_links:
            channel = self.links[i][2]
            queue = channel._queue
            if not queue or queue[0][0] != t:
                continue
            flit = queue[0][1]
            key = (i, flit.pid)
            mode = squash.get(key)
            if mode == "fwd":
                # trailing a poisoned head: forward untouched; the
                # ejection gate discards the packet and recovers
                if flit.is_tail:
                    del squash[key]
                continue
            if mode is None:
                if flit.corrupt:
                    # poisoned upstream; its head passed this link, so
                    # downstream VC state is consistent — forward for
                    # cleanup (under "all"/"tail" the squash dominates:
                    # a corrupt flit is dropped like any other trailer,
                    # else it would strand in a headless downstream VC)
                    continue
                rate = self.rates[i]
                if rate < 1.0:
                    if self._rng(i).next_uniform() >= rate:
                        continue
                    self.corrupted_flits += 1
                    reason = "corrupt"
                else:
                    reason = "dead-link"
                op = self._sink_ports[i].st_ops.get(t)
                if op is not None and op.kind == "bypass":
                    self._poison(flit)
                    if not flit.is_tail:
                        squash[key] = "fwd"
                    continue
                if flit.is_tail and not flit.is_head:
                    # body flits may already sit downstream: the tail
                    # must arrive to free their VC allocations
                    self._poison(flit)
                    continue
                self._drop(i, flit, t, reason)
                if flit.is_tail:  # single-flit packet: recover now
                    self._recover(flit, self.links[i][1], t)
                else:
                    squash[key] = "all" if flit.is_head else "tail"
                continue
            # an earlier flit of this packet was lost on this link
            op = self._sink_ports[i].st_ops.get(t)
            if op is not None and op.kind == "bypass":
                # unreachable for "all" (the head never allocated
                # downstream, so no lookahead can pass the resource
                # check) but kept as a defensive poison-forward
                self._poison(flit)
                if flit.is_tail:
                    squash.pop(key, None)
                continue
            if mode == "tail" and flit.is_tail:
                self._poison(flit)
                del squash[key]
                continue
            self._drop(i, flit, t, "squash")
            if flit.is_tail:
                del squash[key]
                self._recover(flit, self.links[i][1], t)

    def _gate_ejections(self, t):
        """Discard poisoned (or dead-node) arrivals at the input VC of
        the NIC, scheduling recovery when a packet's tail is judged."""
        dead = self._dead_nodes
        for node, nic in enumerate(self.net.nics):
            queue = nic.link_in._queue
            if not queue or queue[0][0] != t:
                continue
            flit = queue[0][1]
            pids = self._poisoned.get(node)
            poisoned = pids is not None and flit.pid in pids
            if not (flit.corrupt or poisoned or node in dead):
                continue
            queue.popleft()
            nic.credit_out.send(t, CreditMsg(flit.vc, flit.is_tail))
            self.dropped_flits += 1
            self._trace_drop(
                t, node, flit, "dead-node" if node in dead else "eject"
            )
            if flit.is_tail:
                if poisoned:
                    pids.discard(flit.pid)
                self._recover(flit, node, t)
            elif flit.corrupt:
                # the packet's data is damaged: every later flit of it
                # arriving here must be discarded too, tail included
                if pids is None:
                    pids = self._poisoned[node] = set()
                pids.add(flit.pid)

    # -------------------------------------------------------- recovery

    def _recover(self, flit, detect_node, t):
        """Arm NACK/timeout retransmission for a destroyed tail.

        Recovery is armed only at damage time — never speculatively —
        so a fault-free packet leaves no recovery state behind (the
        zero-overhead-off contract) and no duplicate packets exist.
        """
        message = flit.packet.message
        if message.failed or message.complete:
            return
        model = self.model
        for dest in sorted(flit.destinations):
            if (dest, flit.pid) not in message._pending:
                continue
            if model.nack:
                delay = model.nack_delay + xy_distance(
                    detect_node, message.src, self.k
                )
            else:
                delay = model.retry_timeout
            heapq.heappush(
                self._retry_heap,
                (t + delay, next(self._ctr), message, dest, flit.pid),
            )

    def _service_recovery(self, t):
        retry = self._retry_heap
        while retry and retry[0][0] <= t:
            _cycle, _n, message, dest, pid = heapq.heappop(retry)
            self._attempt_retry(message, dest, pid, t)
        reinject = self._reinject_heap
        while reinject and reinject[0][0] <= t:
            _cycle, _n, message, dest, pid = heapq.heappop(reinject)
            self._do_reinject(message, dest, pid, t)

    def _attempt_retry(self, message, dest, pid, t):
        if message.failed or (dest, pid) not in message._pending:
            return
        attempts = self._retries.get(message.mid, 0)
        if attempts >= self.model.retry_budget:
            self._fail(message)
            return
        self._retries[message.mid] = attempts + 1
        backoff = min(self.model.backoff_base << attempts, self.model.backoff_cap)
        heapq.heappush(
            self._reinject_heap,
            (t + backoff, next(self._ctr), message, dest, pid),
        )

    def _do_reinject(self, message, dest, pid, t):
        """Re-enqueue a fresh unicast packet for one damaged pair."""
        if message.failed or (dest, pid) not in message._pending:
            return
        destinations = frozenset((dest,))
        route_state = self.net.route_state
        rheader, rphase = route_state.packet_header(message.src, destinations)
        if self.hard and rheader == UNREACHABLE:
            self.partitioned = True
            self._fail(message)
            return
        message._pending.discard((dest, pid))
        packet = Packet(
            pid=next(self.net.packet_ids),
            message=message,
            src=message.src,
            destinations=destinations,
            mclass=message.mclass,
            num_flits=message.flits_per_packet,
            rheader=rheader,
            rphase=rphase,
        )
        message.register_packet(packet)
        nic = self.net.nics[message.src]
        queue = nic.queues[message.mclass]
        for flit in packet.make_flits():
            queue.append(flit)
        self.net.wake_nic_step(message.src)
        self.retransmissions += 1
        obs = self.sim.obs
        if obs is not None:
            obs.on_retransmit(t, message.src, packet.pid, message.mid)

    def _fail(self, message):
        if not message.failed:
            message.failed = True
            self.failed_messages += 1

    # --------------------------------------------------- introspection

    def busy(self):
        """Whether recovery work is pending (keeps the drain running)."""
        return self._prune(self._retry_heap) or self._prune(self._reinject_heap)

    @staticmethod
    def _prune(heap):
        while heap:
            _cycle, _n, message, dest, pid = heap[0]
            if message.failed or (dest, pid) not in message._pending:
                heapq.heappop(heap)
                continue
            return True
        return False

    def counters(self):
        """The fault/recovery counters as a plain dict."""
        return {
            "dropped_flits": self.dropped_flits,
            "corrupted_flits": self.corrupted_flits,
            "retransmissions": self.retransmissions,
            "failed_messages": self.failed_messages,
        }

    # --------------------------------------------------------- tracing

    def _trace_drop(self, t, node, flit, reason):
        obs = self.sim.obs
        if obs is not None:
            obs.on_drop(t, node, flit, reason)

    def _trace_fault(self, t, node, detail):
        obs = self.sim.obs
        if obs is not None:
            obs.on_fault(t, node, detail)
