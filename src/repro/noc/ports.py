"""Router port numbering shared across the simulator.

Every router has five I/O ports: the local NIC port plus the four mesh
directions.  The numbering is part of the arbitration order (matrix and
round-robin arbiters index their request vectors by port id), so it is
kept in one place.
"""

LOCAL = 0
NORTH = 1
EAST = 2
SOUTH = 3
WEST = 4

NUM_PORTS = 5

PORT_NAMES = ("LOCAL", "NORTH", "EAST", "SOUTH", "WEST")

#: Opposite direction of each mesh port; the local port has no opposite.
OPPOSITE = {NORTH: SOUTH, SOUTH: NORTH, EAST: WEST, WEST: EAST}


def port_name(port):
    """Human-readable name of a port id (for tracing and errors)."""
    return PORT_NAMES[port]
