"""Virtual-channel state: input buffers and downstream credit trackers.

Flow control follows the chip: credit-based, with a free-VC queue per
message class at every output port (the VA step of pipeline stage 1).
An :class:`OutputVCTracker` lives at each output port (and inside each
NIC, which acts as the upstream of its router's local input port) and
mirrors the state of the downstream input port's VCs: which packet owns
each VC and how many buffer slots remain.  A VC returns to the free
queue when the *tail* flit departs the downstream buffer, which — with
the one-cycle bypassed pipeline, one cycle of credit wire and one cycle
of credit processing — gives the paper's 3-cycle buffer turnaround.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CreditMsg:
    """A credit/free-VC signal returned upstream when a flit departs.

    ``tail`` marks the departure of a packet's tail flit, which frees
    the VC itself (not just one buffer slot).
    """

    vc: int
    tail: bool


class InputVC:
    """One virtual channel of a router input port."""

    __slots__ = ("index", "spec", "buffer", "probe")

    def __init__(self, index, spec):
        self.index = index
        self.spec = spec
        self.buffer = deque()
        #: observability hook (DESIGN.md §7): an attached observer's
        #: per-router VC probe (``buf_write``/``buf_read`` methods).
        #: ``None`` by default — one identity test per buffer access.
        self.probe = None

    @property
    def mclass(self):
        return self.spec.mclass

    @property
    def depth(self):
        return self.spec.depth

    @property
    def occupancy(self):
        return len(self.buffer)

    def write(self, flit):
        if len(self.buffer) >= self.depth:
            raise RuntimeError(
                f"buffer overflow on VC {self.index}: credit accounting broken"
            )
        flit.stage = None
        flit.granted_ports = set()
        self.buffer.append(flit)
        if self.probe is not None:
            self.probe.buf_write(self, flit)

    def oldest_unrequested(self):
        """The flit that would bid in mSA-I, if any.

        Only the oldest flit that has not yet been promoted may bid,
        and only when no flit of this VC currently holds the S2 slot
        (each VC has a single outport-request register).
        """
        for flit in self.buffer:
            if flit.stage is None:
                return flit
            if flit.stage == "S2":
                return None
        return None

    def s2_flit(self):
        for flit in self.buffer:
            if flit.stage == "S2":
                return flit
        return None

    def pop(self, flit):
        if not self.buffer or self.buffer[0] is not flit:
            raise RuntimeError("out-of-order buffer pop: pipeline logic broken")
        out = self.buffer.popleft()
        if self.probe is not None:
            self.probe.buf_read(self, flit)
        return out


class OutputVCTracker:
    """Upstream mirror of a downstream input port's VC state.

    Free-VC queues are keyed by ``(message class, routing phase)``:
    VC-partitioned routing algorithms (O1TURN's XY/YX split, Valiant's
    two phases — see DESIGN.md §5) allocate head flits only from their
    phase's partition, which is what keeps each partition's channel
    dependency graph acyclic.  ``phases`` maps VC index to partition;
    the default (all zeros, single-partition XY/YX) reproduces the
    historical per-class queues exactly.
    """

    def __init__(self, vc_specs, phases=None):
        self.specs = tuple(vc_specs)
        self.phases = (
            tuple(phases) if phases is not None else (0,) * len(self.specs)
        )
        if len(self.phases) != len(self.specs):
            raise ValueError("one partition phase per VC is required")
        self.owner = [None] * len(self.specs)
        self.credits = [spec.depth for spec in self.specs]
        self._free = {}
        for i, spec in enumerate(self.specs):
            key = (spec.mclass, self.phases[i])
            queue = self._free.get(key)
            if queue is None:
                self._free[key] = deque((i,))
            else:
                queue.append(i)
        self._owner_vc = {}

    def peek_free(self, mclass, phase=0):
        """The VC the free queue would hand out next, or ``None``."""
        queue = self._free.get((mclass, phase))
        if not queue:
            return None
        return queue[0]

    def alloc_head(self, mclass, pid, phase=0):
        """Allocate a free VC of ``(mclass, phase)`` to packet ``pid``;
        consume a slot."""
        queue = self._free.get((mclass, phase))
        if not queue:
            return None
        vc = queue.popleft()
        if self.owner[vc] is not None:
            raise RuntimeError(f"free queue handed out an owned VC {vc}")
        self.owner[vc] = pid
        self._owner_vc[pid] = vc
        self.credits[vc] -= 1
        return vc

    def body_vc(self, pid):
        """The VC owned by packet ``pid`` iff it has a credit, else ``None``."""
        vc = self._owner_vc.get(pid)
        if vc is None or self.credits[vc] <= 0:
            return None
        return vc

    def consume_body(self, pid):
        """Spend one credit of the packet's VC for a body/tail flit."""
        vc = self.body_vc(pid)
        if vc is None:
            raise RuntimeError(f"no sendable VC for packet {pid}")
        self.credits[vc] -= 1
        return vc

    def credit_return(self, msg: CreditMsg):
        """Process a returned credit (possibly freeing the VC)."""
        vc = msg.vc
        self.credits[vc] += 1
        if self.credits[vc] > self.specs[vc].depth:
            raise RuntimeError(f"credit overflow on VC {vc}")
        if msg.tail:
            pid = self.owner[vc]
            if pid is None:
                raise RuntimeError(f"tail credit for unowned VC {vc}")
            if self.credits[vc] != self.specs[vc].depth:
                raise RuntimeError(
                    f"VC {vc} freed with {self.credits[vc]} credits outstanding"
                )
            self.owner[vc] = None
            del self._owner_vc[pid]
            self._free[(self.specs[vc].mclass, self.phases[vc])].append(vc)

    def all_free(self):
        """Whether every VC is unowned with full credits (for drain checks)."""
        return all(owner is None for owner in self.owner) and all(
            self.credits[i] == spec.depth for i, spec in enumerate(self.specs)
        )
