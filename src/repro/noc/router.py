"""The five-port virtual-channel router.

One class implements every design point of the paper through the
feature flags of :class:`repro.noc.config.NocConfig`:

* flags off — the *baseline* router: 3-stage pipeline (BW | NRC+VA+SA |
  single-cycle ST+LT), no multicast, no bypassing.  With
  ``separate_st_lt`` it becomes the textbook 4-stage router of Fig. 1.
* ``multicast`` — the *strawman* router (Section 3.1): mSA-I requests
  are port vectors, mSA-II can grant several output ports at once and
  the crossbar replicates flits along the XY tree.
* ``multicast + bypass`` — the *proposed* router: lookaheads
  pre-allocate the crossbar one cycle ahead, collapsing the pipeline to
  a single ST+LT cycle per hop for flits that win pre-allocation.

Pipeline contract (see DESIGN.md): in a given cycle the router executes,
in order, ``receive`` (link/credit/lookahead arrivals), ``st_stage``
(traversals scheduled last cycle), ``msa2_stage`` (lookahead pass with
priority, then buffered pass; winners schedule next cycle's ST and send
their own lookaheads downstream), and ``msa1_stage`` (per-input-port
round-robin promoting one VC into the port's outport-request register).
"""

from __future__ import annotations

from repro.noc.arbiters import MatrixArbiter, RoundRobinArbiter
from repro.noc.lookahead import Lookahead, STOp
from repro.noc.ports import LOCAL, NUM_PORTS, port_name
from repro.noc.routing import RouteState
from repro.noc.vc import CreditMsg, InputVC, OutputVCTracker


class InputPort:
    """Buffers, lookahead latch and ST schedule of one input port."""

    def __init__(self, config, port):
        self.port = port
        self.vcs = [InputVC(i, spec) for i, spec in enumerate(config.vcs)]
        self.link_in = None
        self.credit_out = None
        self.la_in = None
        #: VC currently holding this port's single outport-request register.
        self.s2_vc = None
        #: lookahead delivered this cycle (at most one per port per cycle)
        self.la_now = None
        #: cycle -> STOp; at most one crossbar traversal per port per cycle
        self.st_ops = {}
        #: pipeline latch holding an in-flight flit that won pre-allocation
        self.latch = None

    @property
    def connected(self):
        return self.link_in is not None

    def occupancy(self):
        return sum(vc.occupancy for vc in self.vcs)


class OutputPort:
    """Credit tracker, matrix arbiter and outgoing wires of one port."""

    def __init__(self, config, port):
        self.port = port
        self.tracker = OutputVCTracker(config.vcs, config.vc_phases)
        self.arbiter = MatrixArbiter(NUM_PORTS)
        self.link_out = None
        self.credit_in = None
        self.la_out = None

    @property
    def connected(self):
        return self.link_out is not None


class Router:
    """One node of the mesh: 5 input ports, 5 output ports, a crossbar."""

    def __init__(self, config, node, stats, route_state=None):
        self.cfg = config
        self.node = node
        self.stats = stats
        #: the owning network's shared routing runtime (memo + header
        #: streams); a standalone router gets a private instance
        self.route_state = (
            route_state
            if route_state is not None
            else RouteState(config.routing, config.k)
        )
        self.in_ports = [InputPort(config, p) for p in range(NUM_PORTS)]
        self.out_ports = [OutputPort(config, p) for p in range(NUM_PORTS)]
        self.msa1 = [RoundRobinArbiter(config.num_vcs) for _ in range(NUM_PORTS)]
        #: owning :class:`~repro.noc.mesh.MeshNetwork` (``None`` standalone);
        #: carries the network-wide monotonic ejection counter.
        self.network = None
        #: observability hook (DESIGN.md §7): an attached observer
        #: (``on_route``/``on_vc_alloc``/``on_sa_grant`` methods).
        #: ``None`` by default — probe sites cost one identity test.
        self.probe = None
        # mSA-II scratch containers, reused across cycles so the hot
        # allocation path performs no per-call dict/set construction
        self._candidates = {}
        self._requests = {}
        self._winners = {}
        self._used_out = set()

    # ------------------------------------------------------------------
    # cycle phases
    # ------------------------------------------------------------------

    def receive(self, cycle):
        """Drain link, credit and lookahead arrivals for this cycle."""
        rs = self.route_state
        lookup = rs.route
        advancing = rs.advancing
        node = self.node
        for ip in self.in_ports:
            if not ip.connected:
                continue
            for flit in ip.link_in.receive(cycle):
                # the routing header advances (Valiant consumes its
                # intermediate node here) before the route is derived,
                # so route and VC phase always reflect the new state
                if advancing:
                    flit.rheader, flit.phase = rs.advance(
                        node, flit.destinations, flit.rheader
                    )
                flit.route = lookup(node, flit.destinations, flit.rheader)
                if self.probe is not None:
                    self.probe.on_route(cycle, node, flit)
                op = ip.st_ops.get(cycle)
                if op is not None and op.kind == "bypass":
                    if ip.latch is not None:
                        raise RuntimeError(
                            f"router {self.node} port {port_name(ip.port)}: "
                            "bypass latch collision"
                        )
                    ip.latch = flit
                else:
                    ip.vcs[flit.vc].write(flit)
                    self.stats.buffer_writes += 1
            ip.la_now = None
            if ip.la_in is not None:
                lookaheads = ip.la_in.receive(cycle)
                if lookaheads:
                    ip.la_now = lookaheads[-1]
                    self.stats.la_received += len(lookaheads)
        for op_ in self.out_ports:
            if op_.credit_in is None:
                continue
            for msg in op_.credit_in.receive(cycle):
                op_.tracker.credit_return(msg)

    def st_stage(self, cycle):
        """Execute the crossbar/link traversals scheduled for this cycle."""
        for ip in self.in_ports:
            op = ip.st_ops.pop(cycle, None)
            if op is None:
                continue
            if op.kind == "bypass":
                flit = ip.latch
                if flit is None:
                    raise RuntimeError(
                        f"router {self.node}: bypass reservation at "
                        f"{port_name(ip.port)} but no flit arrived"
                    )
                ip.latch = None
                self.stats.bypasses += 1
                ip.credit_out.send(cycle, CreditMsg(flit.vc, flit.is_tail))
                self.stats.credits_sent += 1
            else:
                flit = op.flit
                if op.pop:
                    ip.vcs[op.vc].pop(flit)
                    self.stats.buffer_reads += 1
                    ip.credit_out.send(cycle, CreditMsg(flit.vc, flit.is_tail))
                    self.stats.credits_sent += 1
            self.stats.xbar_input_traversals += 1
            self.stats.xbar_output_traversals += len(op.grants)
            bypassed = op.kind == "bypass"
            for port, (out_vc, subset) in op.grants.items():
                copy = flit.fork(subset)
                copy.vc = out_vc
                copy.hops = flit.hops + 1
                copy.bypassed_hops = flit.bypassed_hops + (1 if bypassed else 0)
                self.out_ports[port].link_out.send(cycle, copy)
                if port == LOCAL:
                    self.stats.ejections += 1
                    if self.network is not None:
                        self.network.ejections += 1
                else:
                    self.stats.link_traversals += 1

    def msa2_stage(self, cycle):
        """Second allocation stage: lookahead pass, then buffered pass."""
        used_out = self._used_out
        used_out.clear()
        if self.cfg.bypass:
            self._lookahead_pass(cycle, used_out)
        self._buffered_pass(cycle, used_out)

    def msa1_stage(self, cycle):
        """First allocation stage: one winner VC per input port."""
        for ip in self.in_ports:
            if not ip.connected or ip.s2_vc is not None:
                continue
            eligible = None
            for vc in ip.vcs:
                if vc.buffer and vc.oldest_unrequested() is not None:
                    if eligible is None:
                        eligible = [vc.index]
                    else:
                        eligible.append(vc.index)
            if eligible is None:
                continue
            winner = self.msa1[ip.port].grant(eligible)
            ip.vcs[winner].oldest_unrequested().stage = "S2"
            ip.s2_vc = winner
            self.stats.msa1_grants += 1

    # ------------------------------------------------------------------
    # allocation internals
    # ------------------------------------------------------------------

    def _la_eligible(self, ip, la, cycle):
        """Whether a lookahead may attempt bypass at this input port.

        Bypass must preserve flit order within a VC: if any older flit
        of the same VC is still buffered here, the in-flight flit must
        be buffered too.  The crossbar input must also be free next
        cycle (a partially served multicast may still own it).
        """
        if ip.vcs[la.vc].occupancy > 0:
            return False
        if (cycle + 1) in ip.st_ops:
            return False
        return ip.latch is None

    def _port_resources_ok(self, port, mclass, pid, is_head, phase):
        """VA/credit check folded into mSA-II (see DESIGN.md)."""
        out = self.out_ports[port]
        if not out.connected:
            raise RuntimeError(
                f"router {self.node}: route through unconnected port "
                f"{port_name(port)}"
            )
        tracker = out.tracker
        if is_head:
            return tracker.peek_free(mclass, phase) is not None
        return tracker.body_vc(pid) is not None

    def _allocate(self, cycle, port, la_or_flit, phase):
        """Allocate the downstream VC for one granted output branch."""
        tracker = self.out_ports[port].tracker
        if la_or_flit.is_head:
            out_vc = tracker.alloc_head(la_or_flit.mclass, la_or_flit.pid, phase)
        else:
            out_vc = tracker.consume_body(la_or_flit.pid)
        if out_vc is None:
            raise RuntimeError("allocation after a passing resource check failed")
        if self.probe is not None:
            self.probe.on_vc_alloc(cycle, self.node, port, out_vc, la_or_flit)
        return out_vc

    def _forward_lookahead(self, cycle, port, out_vc, subset, source,
                           rheader, phase):
        """NRC + lookahead generation for a granted non-local branch."""
        if port == LOCAL or not self.cfg.bypass:
            return
        self.out_ports[port].la_out.send(
            cycle,
            Lookahead(
                vc=out_vc,
                mclass=source.mclass,
                pid=source.pid,
                seq=source.seq,
                is_head=source.is_head,
                is_tail=source.is_tail,
                destinations=subset,
                rheader=rheader,
                phase=phase,
            ),
        )
        self.stats.la_sent += 1

    def _lookahead_pass(self, cycle, used_out):
        """Arbitrate lookaheads; adds output ports consumed by winners
        to ``used_out``."""
        candidates = self._candidates
        candidates.clear()
        requests = self._requests
        requests.clear()
        rs = self.route_state
        advancing = rs.advancing
        for ip in self.in_ports:
            la = ip.la_now
            if la is None or not self._la_eligible(ip, la, cycle):
                continue
            # mirror the header advance the flit itself will perform on
            # arrival, so the pre-allocated route matches it exactly
            if advancing:
                rheader, phase = rs.advance(self.node, la.destinations, la.rheader)
            else:
                rheader, phase = la.rheader, la.phase
            route = rs.route(self.node, la.destinations, rheader)
            if not all(
                self._port_resources_ok(p, la.mclass, la.pid, la.is_head, phase)
                for p in route
            ):
                continue
            candidates[ip.port] = (la, route, rheader, phase)
            for p in route:
                reqs = requests.get(p)
                if reqs is None:
                    requests[p] = [ip.port]
                else:
                    reqs.append(ip.port)
        if not candidates:
            return
        winners = self._winners
        winners.clear()
        for p, reqs in requests.items():
            winners[p] = self.out_ports[p].arbiter.grant(reqs)
        for in_port, (la, route, rheader, phase) in candidates.items():
            # multicast bypass is all-or-nothing: a flit cannot both
            # traverse and be buffered, so any lost branch buffers it
            if not all(winners[p] == in_port for p in route):
                continue
            grants = {}
            for port, subset in route.items():
                out_vc = self._allocate(cycle, port, la, phase)
                grants[port] = (out_vc, subset)
                used_out.add(port)
                self._forward_lookahead(
                    cycle, port, out_vc, subset, la, rheader, phase
                )
            ip = self.in_ports[in_port]
            ip.st_ops[cycle + 1] = STOp(
                kind="bypass", in_port=in_port, vc=la.vc, flit=None, grants=grants
            )
            self.stats.msa2_grants += 1
            if self.probe is not None:
                self.probe.on_sa_grant(cycle, self.node, la, "bypass")

    def _buffered_pass(self, cycle, used_out):
        """mSA-II among the buffered flits holding S2 registers."""
        candidates = self._candidates
        candidates.clear()
        requests = self._requests
        requests.clear()
        for ip in self.in_ports:
            if self.cfg.bypass and ip.la_now is not None:
                continue  # the port's mSA-II mux selected the lookahead
            if ip.s2_vc is None or (cycle + 1) in ip.st_ops:
                continue
            flit = ip.vcs[ip.s2_vc].s2_flit()
            if flit is None:
                raise RuntimeError(
                    f"router {self.node}: S2 register points at VC "
                    f"{ip.s2_vc} with no S2 flit"
                )
            askable = {
                p: s
                for p, s in flit.route.items()
                if p not in flit.granted_ports
                and p not in used_out
                and self._port_resources_ok(
                    p, flit.mclass, flit.pid, flit.is_head, flit.phase
                )
            }
            if not askable:
                # Nothing this flit needs is available this cycle.  Release
                # the port's outport-request register so mSA-I can pick a
                # different VC next cycle — hardware re-arbitrates every
                # cycle, and letting a credit-blocked flit squat on the S2
                # register would head-of-line block the whole input port.
                flit.stage = None
                ip.s2_vc = None
                continue
            candidates[ip.port] = (flit, askable)
            for p in askable:
                reqs = requests.get(p)
                if reqs is None:
                    requests[p] = [ip.port]
                else:
                    reqs.append(ip.port)
        if not candidates:
            return
        winners = self._winners
        winners.clear()
        for p, reqs in requests.items():
            winners[p] = self.out_ports[p].arbiter.grant(reqs)
        for in_port, (flit, askable) in candidates.items():
            grants = {}
            for port, subset in askable.items():
                if winners.get(port) != in_port:
                    continue
                out_vc = self._allocate(cycle, port, flit, flit.phase)
                grants[port] = (out_vc, subset)
                flit.granted_ports.add(port)
                self._forward_lookahead(
                    cycle, port, out_vc, subset, flit, flit.rheader, flit.phase
                )
            if not grants:
                continue
            ip = self.in_ports[in_port]
            fully = flit.granted_ports >= set(flit.route)
            if fully:
                flit.stage = "GRANTED"
                ip.s2_vc = None
            ip.st_ops[cycle + 1] = STOp(
                kind="buffer",
                in_port=in_port,
                vc=flit.vc,
                flit=flit,
                grants=grants,
                pop=fully,
            )
            self.stats.msa2_grants += 1
            if self.probe is not None:
                self.probe.on_sa_grant(cycle, self.node, flit, "buffer")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def occupancy(self):
        """Total buffered flits (drain/deadlock checks)."""
        return sum(ip.occupancy() for ip in self.in_ports)

    def idle(self):
        """No buffered flits, pending traversals or latched flits."""
        return all(
            ip.occupancy() == 0 and not ip.st_ops and ip.latch is None
            for ip in self.in_ports
        )

    def has_local_work(self):
        """Whether any phase of the *next* cycle can do something here.

        This is the self-re-arm predicate of the gated cycle loop (see
        DESIGN.md §3): a router stays in the active set while it holds
        buffered or latched flits, scheduled traversals, a lookahead
        latch that ``receive`` must clear, or an S2 register.  External
        events (channel deliveries) wake it independently.
        """
        for ip in self.in_ports:
            if (
                ip.st_ops
                or ip.latch is not None
                or ip.la_now is not None
                or ip.s2_vc is not None
            ):
                return True
            for vc in ip.vcs:
                if vc.buffer:
                    return True
        return False
