"""Activity counters and measurement-window statistics.

Per-router and per-NIC :class:`ActivityCounters` record every
energy-relevant event (buffer accesses, crossbar and link traversals,
arbitrations, lookaheads, clock cycles); the power models in
:mod:`repro.power` convert them into watts.  :class:`WindowStats`
summarises a measurement window into the quantities the paper plots:
average packet latency (per traffic type) and received throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(slots=True)
class ActivityCounters:
    """Event counts for one router or NIC.

    ``cycles`` is no longer ticked per component per cycle: the
    simulator keeps one network-level cycle counter and
    :meth:`~repro.noc.mesh.MeshNetwork.total_router_activity` /
    :meth:`~repro.noc.mesh.MeshNetwork.total_nic_activity` fold it into
    the aggregate at snapshot time (as ``elapsed * num_components``,
    matching the historical per-component ticking).
    """

    buffer_writes: int = 0
    buffer_reads: int = 0
    xbar_input_traversals: int = 0
    xbar_output_traversals: int = 0
    link_traversals: int = 0
    ejections: int = 0
    bypasses: int = 0
    msa1_grants: int = 0
    msa2_grants: int = 0
    la_sent: int = 0
    la_received: int = 0
    credits_sent: int = 0
    injections: int = 0
    ejected_flits: int = 0
    messages_submitted: int = 0
    cycles: int = 0

    def snapshot(self):
        return ActivityCounters(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    def __sub__(self, other):
        return ActivityCounters(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __add__(self, other):
        return ActivityCounters(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def as_dict(self):
        return {f.name: getattr(self, f.name) for f in fields(self)}


def aggregate(counters):
    """Sum a collection of counters into one."""
    total = ActivityCounters()
    for c in counters:
        total = total + c
    return total


@dataclass
class WindowStats:
    """What one simulated operating point yields (one point of Fig. 5/13)."""

    config_name: str
    injection_rate: float  # offered load, flits/node/cycle
    cycles: int
    messages_measured: int
    avg_latency: float
    avg_latency_by_kind: dict
    received_flits: int
    throughput_flits_per_cycle: float
    throughput_gbps: float
    bypass_fraction: float
    incomplete_messages: int
    #: why the experiment ended: ``completed`` (normal), ``watchdog``
    #: (the no-progress watchdog tripped mid-run), ``max-cycles``
    #: (the drain cap expired with work still in flight),
    #: ``partitioned`` (hard faults cut off a destination) or
    #: ``failed`` (the execution backend gave up on the job — a
    #: crashed or hung worker; see :class:`repro.engine.JobFailure`)
    stop_reason: str = "completed"
    #: fraction of window messages that completed (NaN with no
    #: messages); below one only under faults or saturation
    delivered_fraction: float = float("nan")
    #: flits discarded by the fault engine during the window
    dropped_flits: int = 0
    #: packets re-injected by the recovery stack during the window
    retransmissions: int = 0

    @property
    def saturated_heuristic(self):
        """Crude congestion indicator: work left over at window end."""
        return self.incomplete_messages > self.messages_measured

    def to_dict(self):
        """A JSON-safe representation that :meth:`from_dict` inverts.

        Lets :mod:`repro.engine` persist results in its on-disk cache
        and return them from worker processes.
        """
        return {
            "config_name": self.config_name,
            "injection_rate": self.injection_rate,
            "cycles": self.cycles,
            "messages_measured": self.messages_measured,
            "avg_latency": self.avg_latency,
            "avg_latency_by_kind": dict(self.avg_latency_by_kind),
            "received_flits": self.received_flits,
            "throughput_flits_per_cycle": self.throughput_flits_per_cycle,
            "throughput_gbps": self.throughput_gbps,
            "bypass_fraction": self.bypass_fraction,
            "incomplete_messages": self.incomplete_messages,
            "stop_reason": self.stop_reason,
            "delivered_fraction": self.delivered_fraction,
            "dropped_flits": self.dropped_flits,
            "retransmissions": self.retransmissions,
        }

    @classmethod
    def from_dict(cls, data):
        # ``stop_reason`` and the reliability fields postdate the
        # on-disk cache format; entries written before they exist are
        # fault-free runs by construction, so the dataclass defaults
        # apply — except ``delivered_fraction``, which is recomputable
        # from the completed/incomplete split such entries do carry.
        defaulted = {
            "stop_reason": "completed",
            "delivered_fraction": None,
            "dropped_flits": 0,
            "retransmissions": 0,
        }
        kwargs = {
            f.name: data.get(f.name, defaulted[f.name])
            if f.name in defaulted
            else data[f.name]
            for f in fields(cls)
        }
        if "delivered_fraction" not in data:
            total = data["messages_measured"] + data["incomplete_messages"]
            kwargs["delivered_fraction"] = (
                data["messages_measured"] / total if total else None
            )
        # the result cache stores non-finite floats as null (strict
        # JSON has no NaN token); restore them on the way back in
        for name in (
            "injection_rate",
            "avg_latency",
            "throughput_flits_per_cycle",
            "throughput_gbps",
            "bypass_fraction",
            "delivered_fraction",
        ):
            if kwargs[name] is None:
                kwargs[name] = float("nan")
        return cls(**kwargs)


def message_kind(message):
    """Classify a message for per-kind latency reporting."""
    if message.is_multicast:
        return "broadcast"
    if message.flits_per_packet > 1:
        return "unicast_response"
    return "unicast_request"


def summarize_window(
    config,
    name,
    injection_rate,
    cycles,
    messages,
    ejected_flits,
    bypasses,
    xbar_inputs,
    stop_reason="completed",
    dropped_flits=0,
    retransmissions=0,
):
    """Build :class:`WindowStats` from raw window data."""
    completed = [m for m in messages if m.complete]
    by_kind = {}
    for m in completed:
        by_kind.setdefault(message_kind(m), []).append(m.latency)
    avg_by_kind = {k: sum(v) / len(v) for k, v in by_kind.items()}
    avg = (
        sum(m.latency for m in completed) / len(completed) if completed else float("nan")
    )
    thr = ejected_flits / cycles if cycles else 0.0
    return WindowStats(
        config_name=name,
        injection_rate=injection_rate,
        cycles=cycles,
        messages_measured=len(completed),
        avg_latency=avg,
        avg_latency_by_kind=avg_by_kind,
        received_flits=ejected_flits,
        throughput_flits_per_cycle=thr,
        throughput_gbps=thr * config.flit_bits * config.frequency_ghz,
        bypass_fraction=(bypasses / xbar_inputs) if xbar_inputs else 0.0,
        incomplete_messages=len(messages) - len(completed),
        stop_reason=stop_reason,
        delivered_fraction=(
            len(completed) / len(messages) if messages else float("nan")
        ),
        dropped_flits=dropped_flits,
        retransmissions=retransmissions,
    )
