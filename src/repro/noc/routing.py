"""Dimension-ordered routing for unicasts and multicast trees.

The chip routes unicasts with deterministic XY routing and multicasts
along a dimension-ordered XY tree (Section 3.3): a multicast flit first
travels along the X dimension, and forks copies into the Y dimension
(and to the local NIC) as it passes the column of each destination.
Because every branch obeys XY ordering, the tree is deadlock free and
the route of a flit is a pure function of its current router and its
remaining destination set — no extra header state is needed.
"""

from __future__ import annotations

from functools import lru_cache

from repro.noc.ports import EAST, LOCAL, NORTH, SOUTH, WEST

#: Bound on the route memo.  Routes are pure functions of
#: ``(router, destinations, k)`` and the working set of any sweep is
#: tiny (k**2 routers x the destination subsets that actually occur),
#: so this is a capacity limit, not a tuning knob.
_ROUTE_CACHE_SIZE = 1 << 16


def coords(node, k):
    """(x, y) coordinates of ``node`` in a k x k mesh (row-major ids)."""
    return node % k, node // k

def node_at(x, y, k):
    """Node id at coordinates (x, y)."""
    if not (0 <= x < k and 0 <= y < k):
        raise ValueError(f"({x}, {y}) outside a {k}x{k} mesh")
    return y * k + x


def xy_distance(src, dst, k):
    """Manhattan hop count between two nodes."""
    sx, sy = coords(src, k)
    dx, dy = coords(dst, k)
    return abs(sx - dx) + abs(sy - dy)


def route_xy_tree(router, destinations, k):
    """Partition ``destinations`` over the output ports of ``router``.

    Returns a dict ``{port: frozenset(dest subset)}``.  For a unicast
    (singleton set) this degenerates to classic XY routing.  The
    partition implements the XY tree: destinations in other columns
    continue along X; destinations in this column fork into Y; a
    destination at this router ejects to the NIC.

    The result is memoized (the route is a pure function of the
    arguments, and the hot loop recomputes it per flit per hop and per
    lookahead) and therefore shared: callers must treat it as
    immutable.
    """
    return _route_xy_tree(router, frozenset(destinations), k)


@lru_cache(maxsize=_ROUTE_CACHE_SIZE)
def _route_xy_tree(router, destinations, k):
    # raising inside the cached function keeps the diagnostic on the
    # hot paths that call this directly (lru_cache never caches raises)
    if not destinations:
        raise ValueError("routing an empty destination set")
    x, y = coords(router, k)
    west, east, north, south, local = [], [], [], [], []
    for dest in destinations:
        dx, dy = coords(dest, k)
        if dx < x:
            west.append(dest)
        elif dx > x:
            east.append(dest)
        elif dy > y:
            north.append(dest)
        elif dy < y:
            south.append(dest)
        else:
            local.append(dest)
    out = {}
    if local:
        out[LOCAL] = frozenset(local)
    if north:
        out[NORTH] = frozenset(north)
    if east:
        out[EAST] = frozenset(east)
    if south:
        out[SOUTH] = frozenset(south)
    if west:
        out[WEST] = frozenset(west)
    return out


def next_router(router, port, k):
    """Neighbour reached by leaving ``router`` through mesh port ``port``."""
    x, y = coords(router, k)
    if port == NORTH:
        y += 1
    elif port == SOUTH:
        y -= 1
    elif port == EAST:
        x += 1
    elif port == WEST:
        x -= 1
    else:
        raise ValueError(f"port {port} does not lead to a neighbouring router")
    return node_at(x, y, k)


def tree_hop_counts(src, destinations, k):
    """Link traversals of the XY tree from ``src`` covering ``destinations``.

    Returns the number of router-to-router crossbar/link traversals the
    tree uses (ejection and injection links excluded).  Used by the
    analytical energy model and tested against the simulator's count.
    """
    links = 0
    frontier = [(src, frozenset(destinations))]
    while frontier:
        router, dests = frontier.pop()
        for port, subset in route_xy_tree(router, dests, k).items():
            if port == LOCAL:
                continue
            links += 1
            frontier.append((next_router(router, port, k), subset))
    return links
