"""Routing: mesh geometry, the XY multicast tree, and the pluggable
unicast routing algorithms.

The chip routes everything with deterministic dimension-ordered XY
(Section 3.3); this module generalises the *unicast* routing decision
into a strategy layer mirroring :mod:`repro.traffic.patterns`:

* ``xy`` / ``yx`` — dimension-ordered deterministic routing (no header
  state, one VC partition);
* ``o1turn`` — each packet draws XY or YX order at injection with equal
  probability, provably halving the worst-case permutation channel
  load; the chosen order travels in the packet header and selects one
  of two disjoint VC partitions (XY packets and the XY multicast trees
  in partition 0, YX packets in partition 1), so each partition's
  channel-dependency graph stays acyclic;
* ``valiant`` — each packet draws a uniform-random intermediate node
  ``w`` at injection and routes XY to ``w`` (phase 0), then XY to the
  destination (phase 1).  The header holds ``w`` until the packet
  reaches it, where the router rewrites it to the terminal phase; the
  two phases use disjoint VC partitions and the phase-0 -> phase-1
  dependency is acyclic, so the network is deadlock free.

Multicast trees stay XY-only in this PR: a multi-destination packet
always carries the empty header and routes along the XY tree (a
multicast flit first travels along the X dimension and forks copies
into the Y dimension as it passes the column of each destination).
Because every branch obeys XY ordering, the tree is deadlock free and
shares VC partition 0 with XY-ordered unicasts; ``yx`` — whose single
partition would mix YX turns with the XY tree — therefore rejects
router-level multicast traffic at bind (see DESIGN.md §5).

Route purity contract: for every algorithm the output-port partition is
a pure function of ``(router, destinations, header)``; all per-packet
randomness is consumed once, at injection, into the header.  That is
what lets :class:`RouteState` memoize routes per network instance (the
memo dies with the simulation instead of pinning frozensets
process-wide) and what keeps lookahead pre-allocation and the flit's
own route computation bit-identical.

Algorithms are frozen dataclasses registered by name and serialize
through ``to_dict`` / :func:`routing_from_dict`, which is how
:class:`~repro.noc.config.NocConfig` hashes them into engine cache keys
and ships them across process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.ports import EAST, LOCAL, NORTH, SOUTH, WEST

#: Bound on a :class:`RouteState` memo.  Routes are pure functions of
#: ``(router, destinations, header)`` and the working set of any sweep
#: is small (k**2 routers x the destination subsets and headers that
#: actually occur), so this is a capacity limit, not a tuning knob;
#: a full memo is dropped wholesale and simply recomputes.
_ROUTE_CACHE_SIZE = 1 << 16

#: Default seed of the per-node routing PRBS streams of a standalone
#: network; :meth:`repro.noc.simulator.Simulator.attach_traffic`
#: reseeds them from the traffic seed so a JobSpec stays a pure value.
DEFAULT_ROUTING_SEED = 1

#: Salt decorrelating the routing streams from the traffic streams
#: (which seed ``seed + node``): without it, a routing stream would
#: replay some node's injection stream verbatim.
_ROUTING_STREAM_SALT = 0x517CC1B7


def _stream_seed(base, node):
    """A PRBS-31 register state for node's routing stream: non-zero,
    inside the register, and disjoint from the traffic seeds."""
    # lazy import: repro.traffic.patterns imports this module, so a
    # module-level import of the repro.traffic package would be a cycle
    from repro.traffic.prbs import salted_stream_seed

    return salted_stream_seed(base, _ROUTING_STREAM_SALT, node)


# ---------------------------------------------------------------- geometry


def coords(node, k):
    """(x, y) coordinates of ``node`` in a k x k mesh (row-major ids)."""
    return node % k, node // k

def node_at(x, y, k):
    """Node id at coordinates (x, y)."""
    if not (0 <= x < k and 0 <= y < k):
        raise ValueError(f"({x}, {y}) outside a {k}x{k} mesh")
    return y * k + x


def xy_distance(src, dst, k):
    """Manhattan hop count between two nodes."""
    sx, sy = coords(src, k)
    dx, dy = coords(dst, k)
    return abs(sx - dx) + abs(sy - dy)


def next_router(router, port, k):
    """Neighbour reached by leaving ``router`` through mesh port ``port``."""
    x, y = coords(router, k)
    if port == NORTH:
        y += 1
    elif port == SOUTH:
        y -= 1
    elif port == EAST:
        x += 1
    elif port == WEST:
        x -= 1
    else:
        raise ValueError(f"port {port} does not lead to a neighbouring router")
    return node_at(x, y, k)


# ------------------------------------------------------- route partitions


def _xy_partition(router, destinations, k):
    """Partition ``destinations`` over the output ports: XY ordering.

    Destinations in other columns continue along X; destinations in
    this column fork into Y; a destination at this router ejects to the
    NIC.  For a unicast (singleton set) this degenerates to classic XY
    routing; for larger sets it is the paper's XY multicast tree.
    """
    if not destinations:
        raise ValueError("routing an empty destination set")
    x, y = coords(router, k)
    west, east, north, south, local = [], [], [], [], []
    for dest in destinations:
        dx, dy = coords(dest, k)
        if dx < x:
            west.append(dest)
        elif dx > x:
            east.append(dest)
        elif dy > y:
            north.append(dest)
        elif dy < y:
            south.append(dest)
        else:
            local.append(dest)
    out = {}
    if local:
        out[LOCAL] = frozenset(local)
    if north:
        out[NORTH] = frozenset(north)
    if east:
        out[EAST] = frozenset(east)
    if south:
        out[SOUTH] = frozenset(south)
    if west:
        out[WEST] = frozenset(west)
    return out


def _yx_partition(router, destinations, k):
    """The YX mirror of :func:`_xy_partition`: Y first, then X."""
    if not destinations:
        raise ValueError("routing an empty destination set")
    x, y = coords(router, k)
    west, east, north, south, local = [], [], [], [], []
    for dest in destinations:
        dx, dy = coords(dest, k)
        if dy > y:
            north.append(dest)
        elif dy < y:
            south.append(dest)
        elif dx > x:
            east.append(dest)
        elif dx < x:
            west.append(dest)
        else:
            local.append(dest)
    out = {}
    if local:
        out[LOCAL] = frozenset(local)
    if north:
        out[NORTH] = frozenset(north)
    if east:
        out[EAST] = frozenset(east)
    if south:
        out[SOUTH] = frozenset(south)
    if west:
        out[WEST] = frozenset(west)
    return out


def route_xy_tree(router, destinations, k):
    """The XY(-tree) output-port partition of ``destinations``.

    Pure and uncached: the simulator hot path goes through the
    per-network :class:`RouteState` memo instead; this helper serves
    the analytical models and tests, which call it cold.
    """
    return _xy_partition(router, frozenset(destinations), k)


def tree_hop_counts(src, destinations, k):
    """Link traversals of the XY tree from ``src`` covering ``destinations``.

    Returns the number of router-to-router crossbar/link traversals the
    tree uses (ejection and injection links excluded).  Used by the
    analytical energy model and tested against the simulator's count.
    """
    links = 0
    frontier = [(src, frozenset(destinations))]
    while frontier:
        router, dests = frontier.pop()
        for port, subset in route_xy_tree(router, dests, k).items():
            if port == LOCAL:
                continue
            links += 1
            frontier.append((next_router(router, port, k), subset))
    return links


# ------------------------------------------------------------- algorithms

#: name -> algorithm class; populated by :func:`_register`.
_REGISTRY = {}


def _register(cls):
    _REGISTRY[cls.name] = cls
    return cls


def routing_names():
    """The registered algorithm names, sorted (CLI choices)."""
    return sorted(_REGISTRY)


def make_routing(name, **kwargs):
    """Instantiate a registered routing algorithm by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown routing algorithm {name!r}; "
            f"choose from {routing_names()}"
        ) from None
    return cls(**kwargs)


def routing_from_dict(data):
    """Invert ``to_dict`` for any registered algorithm."""
    try:
        name = data["name"]
    except (TypeError, KeyError):
        raise ValueError(f"not a serialized routing algorithm: {data!r}") from None
    kwargs = {k: v for k, v in data.items() if k != "name"}
    return make_routing(name, **kwargs)


@dataclass(frozen=True)
class RoutingAlgorithm:
    """A serializable unicast routing strategy.

    Subclasses are stateless values; all per-packet state lives in the
    *header* drawn once at injection (:meth:`packet_header`) and
    carried by every flit and lookahead of the packet.  ``None`` is the
    empty header (XY ordering, phase 0) and is what multicast packets
    always carry.
    """

    #: registry key; also the ``--routing`` CLI spelling
    name = None
    #: disjoint VC partitions required for deadlock freedom
    phases = 1
    #: True when :meth:`advance` may rewrite the header en route
    advancing = False
    #: True when :meth:`packet_header` consumes PRBS draws
    uses_rng = False
    #: whether unicasts may share the network with XY multicast trees
    supports_multicast = True

    def validate(self, config):
        """Raise ValueError if ``config`` cannot host this algorithm.

        A two-phase algorithm needs at least one VC per (message class,
        phase) pair at every port, or its second phase could never
        allocate a VC anywhere.
        """
        if self.phases <= 1:
            return
        counts = {}
        for spec in config.vcs:
            counts[spec.mclass] = counts.get(spec.mclass, 0) + 1
        short = sorted(mc.name for mc, n in counts.items() if n < self.phases)
        if short:
            raise ValueError(
                f"{self.name} routing partitions each message class into "
                f"{self.phases} disjoint VC sets, but class(es) "
                f"{', '.join(short)} have fewer than {self.phases} VCs"
            )

    def vc_partition(self, config):
        """Phase id of each VC index: position within its class, mod
        :attr:`phases` (the identity partition for one-phase routing)."""
        if self.phases <= 1:
            return (0,) * len(config.vcs)
        seen = {}
        partition = []
        for spec in config.vcs:
            i = seen.get(spec.mclass, 0)
            seen[spec.mclass] = i + 1
            partition.append(i % self.phases)
        return tuple(partition)

    def packet_header(self, src, destinations, rng, num_nodes):
        """Draw the per-packet header at injection: (header, phase).

        ``rng`` is the source node's routing PRBS stream; it is only
        provided (and only consumed) when :attr:`uses_rng` is set and
        the packet is a unicast — multicast packets always take the
        empty header and the XY tree.
        """
        return None, 0

    def advance(self, node, destinations, header):
        """Header rewrite on arrival at ``node``: (header, phase).

        Only meaningful when :attr:`advancing` is set (Valiant consumes
        its intermediate-node field); the default is the identity.
        """
        return header, self.phase_of(header)

    def phase_of(self, header):
        """The VC partition a packet with ``header`` allocates from."""
        return 0

    def compute_route(self, node, destinations, header, k):
        """The output-port partition: pure in (node, destinations, header)."""
        raise NotImplementedError

    def to_dict(self):
        """A JSON-safe representation that :func:`routing_from_dict` inverts."""
        return {"name": self.name}


@_register
@dataclass(frozen=True)
class XYRouting(RoutingAlgorithm):
    """Dimension-ordered XY — the paper's router, and the default."""

    name = "xy"

    def compute_route(self, node, destinations, header, k):
        return _xy_partition(node, destinations, k)


@_register
@dataclass(frozen=True)
class YXRouting(RoutingAlgorithm):
    """Dimension-ordered YX: Y first, then X.

    The mirror image of XY — identical worst cases, but on transposed
    patterns, which is exactly what makes it O1TURN's second half.
    Its single VC partition would mix YX turns with the XY multicast
    tree, so router-level multicast traffic is rejected at bind.
    """

    name = "yx"
    supports_multicast = False

    def compute_route(self, node, destinations, header, k):
        if len(destinations) > 1:
            return _xy_partition(node, destinations, k)
        return _yx_partition(node, destinations, k)


@_register
@dataclass(frozen=True)
class O1TurnRouting(RoutingAlgorithm):
    """O1TURN: each packet draws XY or YX order with equal probability.

    Seo et al.'s orthogonal one-turn routing provably halves the
    worst-case permutation channel load of either dimension order while
    staying oblivious and minimal.  The drawn order is the header (0 =
    XY, 1 = YX) and doubles as the VC partition, so the XY sub-network
    (which also carries the XY multicast trees) and the YX sub-network
    each keep an acyclic channel-dependency graph.
    """

    name = "o1turn"
    phases = 2
    uses_rng = True

    def packet_header(self, src, destinations, rng, num_nodes):
        if len(destinations) > 1:
            return None, 0
        order = rng.next_bit()
        return order, order

    def phase_of(self, header):
        return 0 if header is None else header

    def compute_route(self, node, destinations, header, k):
        if header == 1:
            return _yx_partition(node, destinations, k)
        return _xy_partition(node, destinations, k)


@_register
@dataclass(frozen=True)
class ValiantRouting(RoutingAlgorithm):
    """Valiant randomized routing: XY to a random ``w``, then XY on.

    Trades minimality (average path length doubles) for pattern
    independence: any admissible permutation looks like two uniform
    random phases, so no adversarial pattern can load a channel beyond
    twice the uniform average.  The header is the intermediate node
    while phase 0 is in progress and ``-1`` afterwards; the router at
    ``w`` performs the rewrite on arrival (:meth:`advance`), which is
    the only header mutation in the system.  Phase 0 and phase 1 use
    disjoint VC partitions; both are XY-ordered, so each partition is
    deadlock free and the 0 -> 1 dependency is acyclic.
    """

    name = "valiant"
    phases = 2
    advancing = True
    uses_rng = True

    def packet_header(self, src, destinations, rng, num_nodes):
        if len(destinations) > 1:
            return None, 0
        w = rng.next_below(num_nodes)
        if w == src:
            # phase 0 would be empty; the packet is born terminal
            return -1, 1
        return w, 0

    def phase_of(self, header):
        return 0 if header is None or header >= 0 else 1

    def advance(self, node, destinations, header):
        if header is not None and header >= 0 and node == header:
            return -1, 1
        return header, self.phase_of(header)

    def compute_route(self, node, destinations, header, k):
        if len(destinations) > 1:
            return _xy_partition(node, destinations, k)
        if header is not None and header >= 0:
            # phase 0 steers toward the intermediate node but must keep
            # the true destination as the flit payload: forks copy the
            # route subset into the downstream flit's destination set
            (port,) = _xy_partition(node, frozenset((header,)), k)
            return {port: destinations}
        return _xy_partition(node, destinations, k)


# ------------------------------------------------------------ route state


class RouteState:
    """Per-network routing runtime: memoized routes plus header draws.

    One instance is shared by every router and NIC of a
    :class:`~repro.noc.mesh.MeshNetwork`, so the route memo lives and
    dies with the simulation instead of pinning frozensets process-wide
    across sweeps (the pre-PR-4 module-global ``lru_cache`` did).  The
    hot-path lookup stays O(1): one dict probe keyed by
    ``(node, destinations, header)``.

    ``hits`` / ``misses`` are the cache-stats hook the benchmark reads
    (:meth:`cache_info`).
    """

    __slots__ = (
        "algorithm",
        "k",
        "num_nodes",
        "advancing",
        "capacity",
        "hits",
        "misses",
        "_memo",
        "_rngs",
        "_seed",
        "_compute",
    )

    def __init__(self, algorithm, k, seed=DEFAULT_ROUTING_SEED,
                 capacity=_ROUTE_CACHE_SIZE):
        self.algorithm = algorithm
        self.k = k
        self.num_nodes = k * k
        self.advancing = algorithm.advancing
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._memo = {}
        self._rngs = {}
        self._seed = seed
        self._compute = algorithm.compute_route

    def reseed(self, seed):
        """Reset the routing streams for a new traffic seed.

        Routes are pure, so the memo survives; only the per-node header
        rngs restart.  Called by ``Simulator.attach_traffic`` so a
        JobSpec's result is a pure function of its fields.
        """
        if seed != self._seed:
            self._seed = seed
            self._rngs.clear()

    def _rng(self, node):
        rng = self._rngs.get(node)
        if rng is None:
            from repro.traffic.prbs import PRBSGenerator

            rng = PRBSGenerator(order=31, seed=_stream_seed(self._seed, node))
            self._rngs[node] = rng
        return rng

    def packet_header(self, src, destinations):
        """Draw the routing header for one packet injected at ``src``."""
        alg = self.algorithm
        if not alg.uses_rng or len(destinations) > 1:
            return alg.packet_header(src, destinations, None, self.num_nodes)
        return alg.packet_header(src, destinations, self._rng(src), self.num_nodes)

    def advance(self, node, destinations, header):
        """Header rewrite on arrival at ``node`` (Valiant's phase flip)."""
        return self.algorithm.advance(node, destinations, header)

    def route(self, node, destinations, header):
        """The memoized output-port partition; callers must treat the
        result as immutable (it is shared across flits and lookaheads)."""
        key = (node, destinations, header)
        memo = self._memo
        out = memo.get(key)
        if out is None:
            out = self._compute(node, destinations, header, self.k)
            if len(memo) >= self.capacity:
                memo.clear()
            memo[key] = out
            self.misses += 1
            return out
        self.hits += 1
        return out

    def cache_info(self):
        """Memo statistics (the benchmark's cache-stats hook)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._memo),
            "capacity": self.capacity,
        }
