"""Network configuration.

A single :class:`NocConfig` describes every microarchitectural variant
evaluated in the paper; the presets in :mod:`repro.core.presets` map the
paper's named designs (baseline / strawman / proposed) onto it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.noc.flit import MessageClass
from repro.noc.routing import XYRouting, routing_from_dict


@dataclass(frozen=True)
class VCSpec:
    """One virtual channel of an input port: its class and buffer depth."""

    mclass: MessageClass
    depth: int

    def __post_init__(self):
        if self.depth < 1:
            raise ValueError("VC depth must be at least one flit")

    def to_dict(self):
        """A JSON-safe representation (see :meth:`from_dict`)."""
        return {"mclass": self.mclass.name, "depth": self.depth}

    @classmethod
    def from_dict(cls, data):
        return cls(mclass=MessageClass[data["mclass"]], depth=int(data["depth"]))


def proposed_vc_config():
    """The fabricated chip's VC provisioning (Section 3.3).

    Four 1-flit-deep request VCs (sized for the 3-cycle buffer
    turnaround of the bypassed pipeline) and two 3-flit-deep response
    VCs for the 5-flit cache-line packets: 6 VCs, 10 buffers per port.
    """
    return (
        VCSpec(MessageClass.REQUEST, 1),
        VCSpec(MessageClass.REQUEST, 1),
        VCSpec(MessageClass.REQUEST, 1),
        VCSpec(MessageClass.REQUEST, 1),
        VCSpec(MessageClass.RESPONSE, 3),
        VCSpec(MessageClass.RESPONSE, 3),
    )


def routed_vc_config():
    """VC provisioning for two-phase routing studies (DESIGN.md §5).

    Eight 1-flit request VCs and two 3-flit response VCs: each VC
    partition of a two-phase algorithm (O1TURN, Valiant) then holds the
    chip's original four request VCs and one response VC, so the
    partition's per-link bandwidth is not the binding constraint and
    the algorithm can express its channel-load bound.  With the chip's
    stock six VCs, a partition gets two 1-deep request VCs whose
    ~4-cycle allocate-to-free turnaround caps each phase near 0.5
    flits/link/cycle — which is why O1TURN on the stock config saturates
    transpose at the same 1/3 wall as XY despite halving the channel
    load.  (The O1TURN paper likewise doubles VCs relative to
    dimension-ordered routing.)
    """
    return (
        VCSpec(MessageClass.REQUEST, 1),
        VCSpec(MessageClass.REQUEST, 1),
        VCSpec(MessageClass.REQUEST, 1),
        VCSpec(MessageClass.REQUEST, 1),
        VCSpec(MessageClass.REQUEST, 1),
        VCSpec(MessageClass.REQUEST, 1),
        VCSpec(MessageClass.REQUEST, 1),
        VCSpec(MessageClass.REQUEST, 1),
        VCSpec(MessageClass.RESPONSE, 3),
        VCSpec(MessageClass.RESPONSE, 3),
    )


@dataclass(frozen=True)
class NocConfig:
    """Parameters of one simulated network.

    Attributes
    ----------
    k:
        Mesh radix (the chip is k=4).
    vcs:
        Per-input-port VC provisioning, identical at every port.
    flit_bits:
        Flit width; 64 bits on the chip.
    multicast:
        Router-level multicast/broadcast support (XY-tree replication
        in the crossbar plus multi-port mSA-II grants).  When off, the
        NIC expands a broadcast into ``k**2`` unicast packets.
    bypass:
        Lookahead-based virtual bypassing.  When on, a lookahead is
        sent one cycle ahead of each flit and pre-allocates the next
        router's crossbar, giving a single-cycle ST+LT hop.
    separate_st_lt:
        Textbook 4-stage pipeline with distinct switch-traversal and
        link-traversal stages (Fig. 1).  The paper's measured baseline
        is the *aggressive* variant with combined single-cycle ST+LT,
        which is the default here.
    frequency_ghz:
        Clock frequency used to convert cycles and flits into seconds
        and Gb/s (the chip runs at 1 GHz).
    routing:
        Unicast routing algorithm (a serializable
        :class:`~repro.noc.routing.RoutingAlgorithm` value; ``None``
        normalises to the paper's dimension-ordered XY).  Two-phase
        algorithms (O1TURN, Valiant) partition each message class's
        VCs into disjoint sets for deadlock avoidance, which is
        validated here at construction; multicast trees are XY-only
        regardless of the algorithm (DESIGN.md §5).
    """

    k: int = 4
    vcs: tuple = field(default_factory=proposed_vc_config)
    flit_bits: int = 64
    multicast: bool = True
    bypass: bool = True
    separate_st_lt: bool = False
    frequency_ghz: float = 1.0
    routing: object = field(default_factory=XYRouting)

    def __post_init__(self):
        if self.routing is None:
            object.__setattr__(self, "routing", XYRouting())
        if self.k < 2:
            raise ValueError("mesh radix must be at least 2")
        if not self.vcs:
            raise ValueError("at least one VC per port is required")
        if self.flit_bits < 1:
            raise ValueError("flit width must be positive")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if self.bypass and self.separate_st_lt:
            raise ValueError(
                "virtual bypassing requires the single-cycle ST+LT datapath"
            )
        for mc in MessageClass:
            if not any(spec.mclass == mc for spec in self.vcs):
                raise ValueError(f"no VC provisioned for message class {mc.name}")
        self.routing.validate(self)

    @property
    def num_nodes(self):
        return self.k * self.k

    @property
    def num_vcs(self):
        return len(self.vcs)

    @property
    def buffers_per_port(self):
        return sum(spec.depth for spec in self.vcs)

    def vcs_of_class(self, mclass):
        """VC indices belonging to a message class."""
        return tuple(i for i, spec in enumerate(self.vcs) if spec.mclass == mclass)

    @property
    def vc_phases(self):
        """Routing-partition phase of each VC index (see DESIGN.md §5)."""
        return self.routing.vc_partition(self)

    @property
    def link_delay(self):
        """Flit-link delay in cycles (2 when ST and LT are split stages)."""
        return 2 if self.separate_st_lt else 1

    @property
    def ejection_bandwidth_gbps(self):
        """Aggregate NIC ejection capacity: the throughput ceiling."""
        return self.num_nodes * self.flit_bits * self.frequency_ghz

    def with_(self, **changes):
        """A modified copy (convenience wrapper over dataclasses.replace)."""
        return replace(self, **changes)

    def to_dict(self):
        """A JSON-safe representation that :meth:`from_dict` inverts.

        Used by :mod:`repro.engine` to hash configurations into cache
        keys and to ship them across process boundaries.  The
        ``routing`` key is omitted for the XY default so that
        pre-routing cache keys (and on-disk ``.repro_cache/`` entries)
        stay valid byte for byte.
        """
        data = {
            "k": self.k,
            "vcs": [spec.to_dict() for spec in self.vcs],
            "flit_bits": self.flit_bits,
            "multicast": self.multicast,
            "bypass": self.bypass,
            "separate_st_lt": self.separate_st_lt,
            "frequency_ghz": self.frequency_ghz,
        }
        if self.routing != XYRouting():
            data["routing"] = self.routing.to_dict()
        return data

    @classmethod
    def from_dict(cls, data):
        routing = data.get("routing")
        return cls(
            k=int(data["k"]),
            vcs=tuple(VCSpec.from_dict(v) for v in data["vcs"]),
            flit_bits=int(data["flit_bits"]),
            multicast=bool(data["multicast"]),
            bypass=bool(data["bypass"]),
            separate_st_lt=bool(data["separate_st_lt"]),
            frequency_ghz=float(data["frequency_ghz"]),
            routing=routing_from_dict(routing) if routing is not None else None,
        )
