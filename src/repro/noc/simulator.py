"""The synchronous cycle loop and measurement harness.

Every cycle executes the same fixed phase order (arrivals, scheduled
crossbar traversals, mSA-II, mSA-I — see DESIGN.md); because all
cross-component state moves through fixed-delay channels, this order is
an implementation detail and the simulation is fully deterministic for
a given traffic seed.

:meth:`Simulator.run_experiment` implements the methodology of
Section 4.1: a scan-chain-like warm-up that is excluded from
statistics, a measurement window in steady state, and a bounded drain
phase so in-flight packets can complete.
"""

from __future__ import annotations

from repro.noc.mesh import MeshNetwork
from repro.noc.metrics import aggregate, summarize_window

#: Cycles without a single ejection (while work is pending) that we
#: interpret as a hang; XY routing with conservative VC allocation is
#: deadlock free, so this trips only on a simulator bug.
WATCHDOG_CYCLES = 10_000


class Simulator:
    """Drives a :class:`MeshNetwork` cycle by cycle."""

    def __init__(self, config, traffic=None, name=""):
        self.cfg = config
        self.name = name or ("proposed" if config.bypass else "baseline")
        self.network = MeshNetwork(config)
        self.cycle = 0
        self._last_progress = 0
        self._watchdog_start = 0
        if traffic is not None:
            self.attach_traffic(traffic)

    def attach_traffic(self, traffic):
        """Install a traffic source on every NIC."""
        traffic.bind(self.cfg)
        for nic in self.network.nics:
            nic.source = traffic

    # ------------------------------------------------------------------
    # cycle loop
    # ------------------------------------------------------------------

    def step(self):
        """Advance the whole network by one clock cycle."""
        t = self.cycle
        net = self.network
        for router in net.routers:
            router.receive(t)
        for nic in net.nics:
            nic.receive(t)
        for nic in net.nics:
            nic.step(t)
        for router in net.routers:
            router.st_stage(t)
        for router in net.routers:
            router.msa2_stage(t)
        for router in net.routers:
            router.msa1_stage(t)
        for stats in net.router_stats:
            stats.cycles += 1
        for stats in net.nic_stats:
            stats.cycles += 1
        self._check_watchdog()
        self.cycle += 1

    def run(self, cycles):
        for _ in range(cycles):
            self.step()

    def _check_watchdog(self):
        net = self.network
        ejections = sum(s.ejections for s in net.router_stats)
        if ejections != self._last_progress or net.idle():
            self._last_progress = ejections
            self._watchdog_start = self.cycle
            return
        if self.cycle - self._watchdog_start > WATCHDOG_CYCLES:
            raise RuntimeError(
                f"network made no progress for {WATCHDOG_CYCLES} cycles at "
                f"cycle {self.cycle}: likely a flow-control bug"
            )

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------

    def run_experiment(self, warmup=1_000, measure=10_000, drain=5_000):
        """Warm up, measure, drain; return :class:`WindowStats`.

        Latency statistics cover messages *created* inside the
        measurement window; throughput counts flits ejected inside it.
        The drain phase (with traffic switched off) lets in-flight
        messages finish so low-load latency is unbiased; at saturation
        the drain cap keeps runtime bounded and unfinished messages are
        reported as ``incomplete_messages``.
        """
        net = self.network
        self.run(warmup)
        start_msgs = len(net.messages)
        start_activity = aggregate(net.router_stats).snapshot()
        start_nic = aggregate(net.nic_stats).snapshot()
        self.run(measure)
        end_nic = aggregate(net.nic_stats)
        window_msgs = net.messages[start_msgs : len(net.messages)]
        # stop generating traffic, then drain
        sources = [nic.source for nic in net.nics]
        for nic in net.nics:
            nic.source = None
        drained = 0
        while drained < drain and not net.idle():
            self.step()
            drained += 1
        for nic, source in zip(net.nics, sources):
            nic.source = source
        end_activity = aggregate(net.router_stats)
        delta = end_activity - start_activity
        ejected = end_nic.ejected_flits - start_nic.ejected_flits
        rate = getattr(sources[0], "injection_rate", float("nan"))
        return summarize_window(
            self.cfg,
            self.name,
            rate,
            measure,
            window_msgs,
            ejected,
            delta.bypasses,
            delta.xbar_input_traversals,
        )

    def activity(self):
        """Aggregate router activity since construction (for power models)."""
        return self.network.total_router_activity()
