"""The synchronous cycle loop and measurement harness.

Every cycle executes the same fixed phase order (arrivals, scheduled
crossbar traversals, mSA-II, mSA-I — see DESIGN.md); because all
cross-component state moves through fixed-delay channels, this order is
an implementation detail and the simulation is fully deterministic for
a given traffic seed.

The default loop is *activity gated* (DESIGN.md §3): each phase runs
only over the components that can do something this cycle — routers
woken by a channel delivery or re-armed while they hold local work,
NICs with pending deliveries, and NICs with a source or backlog.
Skipping a component outside those sets is exact (all its phase methods
would be no-ops), so gated and ungated stepping are byte-identical;
``Simulator(..., gated=False)`` keeps the exhaustive reference loop as
the oracle for that claim.

:meth:`Simulator.run_experiment` implements the methodology of
Section 4.1: a scan-chain-like warm-up that is excluded from
statistics, a measurement window in steady state, and a bounded drain
phase so in-flight packets can complete.
"""

from __future__ import annotations

from repro.noc.mesh import MeshNetwork
from repro.noc.metrics import aggregate, summarize_window

#: Cycles without a single ejection (while work is pending) that we
#: interpret as a hang; every routing algorithm keeps its VC
#: partitions' channel-dependency graphs acyclic (DESIGN.md §5), so
#: with conservative VC allocation this trips only on a simulator bug.
WATCHDOG_CYCLES = 10_000


class SimulationStalled(RuntimeError):
    """The watchdog found a busy network making no progress.

    :meth:`Simulator.run_experiment` converts this into the
    ``stop_reason="watchdog"`` field of its :class:`WindowStats` so
    sweeps report the cause structurally; a bare :meth:`Simulator.run`
    still propagates it (a stall outside the measurement harness is a
    bug the caller must see).
    """

    def __init__(self, cycle, window=WATCHDOG_CYCLES):
        super().__init__(
            f"network made no progress for {window} cycles at "
            f"cycle {cycle}: likely a flow-control bug"
        )
        self.cycle = cycle


class Simulator:
    """Drives a :class:`MeshNetwork` cycle by cycle.

    ``Simulator(...)`` is also the front door of the backend layer
    (DESIGN.md §9): ``backend="object"`` (the default) builds this
    object-per-flit loop, while any other registered name dispatches
    to that backend's simulator factory — e.g. ``backend="array"``
    returns a :class:`repro.noc.array_backend.ArraySimulator` with the
    same constructor and measurement surface.
    """

    def __new__(cls, config=None, traffic=None, name="", gated=True,
                backend="object", seeds=None):
        if cls is Simulator and backend != "object":
            from repro.noc.backend import resolve_backend

            factory = resolve_backend(backend)
            # the factory's product is not a Simulator subclass, so
            # Python skips Simulator.__init__ on the returned instance
            return factory(config, traffic=traffic, name=name, gated=gated,
                           seeds=seeds)
        return super().__new__(cls)

    #: registry name of this backend (DESIGN.md §9)
    backend = "object"

    def __init__(self, config, traffic=None, name="", gated=True,
                 backend="object", seeds=None):
        if seeds is not None:
            raise ValueError(
                "multi-seed batching (seeds=[...]) requires "
                "backend='array'; the object loop runs one replica per "
                "Simulator"
            )
        self.cfg = config
        self.name = name or ("proposed" if config.bypass else "baseline")
        self.network = MeshNetwork(config)
        self.cycle = 0
        self.gated = gated
        self._last_progress = 0
        self._watchdog_start = 0
        self._watchdog_armed = False
        #: attached :class:`repro.obs.observer.Observer` (``None`` when
        #: unobserved).  The plain step functions carry no observer
        #: hooks at all; :meth:`_stepper` swaps in the observed
        #: variants while this is set, so an unobserved run pays
        #: nothing for the observability layer (DESIGN.md §7).
        self.obs = None
        #: attached :class:`repro.noc.faults.FaultState` (``None`` when
        #: fault free).  Like the observer, the plain step functions
        #: carry no fault hooks; :meth:`_stepper` wraps the chosen step
        #: variant with the fault engine's pre-cycle phase only while
        #: this is set, so a fault-free run pays nothing (DESIGN.md §8).
        self.faults = None
        #: gating effectiveness counters (diagnostics and tests):
        #: router-phase executions and NIC step/receive executions.
        self.router_cycles_executed = 0
        self.nic_steps_executed = 0
        self.nic_receives_executed = 0
        if traffic is not None:
            self.attach_traffic(traffic)

    def attach_traffic(self, traffic):
        """Install a traffic source on every NIC.

        Also binds the routing side of the workload: the network's
        header-draw streams are reseeded from the traffic seed (so a
        JobSpec's result is a pure function of its fields) and a
        multicast-bearing mix is rejected up front when the configured
        routing algorithm cannot share the network with the XY
        multicast trees (the ``yx`` restriction of DESIGN.md §5).
        """
        routing = self.cfg.routing
        mix = getattr(traffic, "mix", None)
        if (
            mix is not None
            and self.cfg.multicast
            and not routing.supports_multicast
            and any(c.broadcast for c in mix.components)
        ):
            raise ValueError(
                f"{routing.name} routing cannot carry router-level "
                f"multicast traffic (multicast trees are XY-only); use "
                f"xy routing or a multicast=False config"
            )
        if (
            mix is not None
            and self.cfg.multicast
            and self.faults is not None
            and self.faults.hard
            and any(c.broadcast for c in mix.components)
        ):
            raise ValueError(
                "hard fault models replace routing with spanning-tree "
                "rerouting, which cannot carry router-level multicast "
                "traffic; use a unicast mix or a soft fault model"
            )
        self.network.seed_routing(getattr(traffic, "seed", None))
        traffic.bind(self.cfg)
        for nic in self.network.nics:
            nic.source = traffic

    def attach_faults(self, model, seed=None):
        """Install a fault engine built from ``model`` (DESIGN.md §8).

        Must happen before the first cycle: a hard model swaps the
        network's routing runtime for fault-aware spanning-tree
        rerouting, which packets already in flight would not survive.
        ``seed`` (normally the traffic seed) keys the private PRBS
        fault streams so a JobSpec's result stays a pure function of
        its fields.
        """
        if self.faults is not None:
            raise RuntimeError("simulator already has a fault model attached")
        if self.cycle != 0:
            raise RuntimeError("faults must be attached before the first cycle")
        from repro.noc.faults import FaultState

        self.faults = FaultState(model, self, seed)
        return self.faults

    # ------------------------------------------------------------------
    # cycle loop
    # ------------------------------------------------------------------

    def step(self):
        """Advance the whole network by one clock cycle."""
        self._stepper()()

    def _stepper(self):
        """The bound step function for the current mode.

        Observed variants exist as separate functions (rather than
        ``if self.obs`` branches inside the plain ones) so an
        unobserved run executes exactly the pre-observability hot
        loop; the byte-identity tests in ``tests/obs`` guard the
        variants against drifting apart.
        """
        if self.obs is None:
            step = self._step_gated if self.gated else self._step_reference
        else:
            step = (
                self._step_gated_observed
                if self.gated
                else self._step_reference_observed
            )
        faults = self.faults
        if faults is None:
            return step

        def fault_step(step=step, faults=faults, sim=self):
            faults.pre_cycle(sim.cycle)
            step()

        return fault_step

    def _step_gated(self):
        """Activity-gated step: iterate only the active sets.

        The phase order is exactly that of :meth:`_step_reference`; the
        active sets are iterated in component-index order so even the
        (semantically irrelevant) intra-phase order matches.
        """
        t = self.cycle
        net = self.network
        routers = net.routers
        nics = net.nics

        woken = net.pop_router_wakes(t)
        active = sorted(woken) if woken else ()
        for i in active:
            routers[i].receive(t)
        rx = net.pop_nic_rx_wakes(t)
        if rx:
            self.nic_receives_executed += len(rx)
            for i in sorted(rx):
                nics[i].receive(t)
        live = net.live_nics()
        if live:
            self.nic_steps_executed += len(live)
            for i in live:
                nic = nics[i]
                nic.step(t)
                if nic.source is None and nic.backlog() == 0:
                    net.retire_nic_step(i)
        for i in active:
            routers[i].st_stage(t)
        for i in active:
            routers[i].msa2_stage(t)
        for i in active:
            routers[i].msa1_stage(t)
        if active:
            self.router_cycles_executed += len(active)
            for i in active:
                if routers[i].has_local_work():
                    net.schedule_router_wake(i, t + 1)
        net.cycles += 1
        self._check_watchdog(net.quiescent)
        self.cycle += 1

    def _step_reference(self):
        """The ungated reference loop: every component, every cycle.

        Kept as the oracle for the gating refactor — the determinism
        tests assert that gated runs are byte-identical to this loop.
        """
        t = self.cycle
        net = self.network
        # drop this cycle's wake entries so the schedules cannot grow
        # without bound; the reference loop visits everything anyway
        net.pop_router_wakes(t)
        net.pop_nic_rx_wakes(t)
        for router in net.routers:
            router.receive(t)
        for nic in net.nics:
            nic.receive(t)
        for nic in net.nics:
            nic.step(t)
        for router in net.routers:
            router.st_stage(t)
        for router in net.routers:
            router.msa2_stage(t)
        for router in net.routers:
            router.msa1_stage(t)
        net.cycles += 1
        self._check_watchdog(net.idle)
        self.cycle += 1

    def _step_gated_observed(self):
        """:meth:`_step_gated` with observer hooks (DESIGN.md §7).

        Identical phase structure and identical simulation side
        effects; the only additions are the begin/end cycle hooks and
        the optional phase-profiler marks.  The observed byte-identity
        tests assert this function never diverges from the plain one.
        """
        obs = self.obs
        prof = obs.profiler
        t = self.cycle
        obs.begin_cycle(t)
        net = self.network
        routers = net.routers
        nics = net.nics

        woken = net.pop_router_wakes(t)
        active = sorted(woken) if woken else ()
        for i in active:
            routers[i].receive(t)
        rx = net.pop_nic_rx_wakes(t)
        if rx:
            self.nic_receives_executed += len(rx)
            for i in sorted(rx):
                nics[i].receive(t)
        if prof is not None:
            prof.mark("receive")
        live = net.live_nics()
        if live:
            self.nic_steps_executed += len(live)
            for i in live:
                nic = nics[i]
                nic.step(t)
                if nic.source is None and nic.backlog() == 0:
                    net.retire_nic_step(i)
        if prof is not None:
            prof.mark("nic")
        for i in active:
            routers[i].st_stage(t)
        if prof is not None:
            prof.mark("st")
        for i in active:
            routers[i].msa2_stage(t)
        if prof is not None:
            prof.mark("msa2")
        for i in active:
            routers[i].msa1_stage(t)
        if active:
            self.router_cycles_executed += len(active)
            for i in active:
                if routers[i].has_local_work():
                    net.schedule_router_wake(i, t + 1)
        if prof is not None:
            prof.mark("msa1")
        net.cycles += 1
        self._check_watchdog(net.quiescent)
        obs.end_cycle(t, active)
        self.cycle += 1

    def _step_reference_observed(self):
        """:meth:`_step_reference` with observer hooks.

        The reference loop has no active set, so the end-cycle hook
        receives ``None`` (no wake/sleep events, ``nan`` active-set
        samples).
        """
        obs = self.obs
        prof = obs.profiler
        t = self.cycle
        obs.begin_cycle(t)
        net = self.network
        net.pop_router_wakes(t)
        net.pop_nic_rx_wakes(t)
        for router in net.routers:
            router.receive(t)
        for nic in net.nics:
            nic.receive(t)
        if prof is not None:
            prof.mark("receive")
        for nic in net.nics:
            nic.step(t)
        if prof is not None:
            prof.mark("nic")
        for router in net.routers:
            router.st_stage(t)
        if prof is not None:
            prof.mark("st")
        for router in net.routers:
            router.msa2_stage(t)
        if prof is not None:
            prof.mark("msa2")
        for router in net.routers:
            router.msa1_stage(t)
        if prof is not None:
            prof.mark("msa1")
        net.cycles += 1
        self._check_watchdog(net.idle)
        obs.end_cycle(t, None)
        self.cycle += 1

    def run(self, cycles):
        step = self._stepper()
        for _ in range(cycles):
            step()

    def _check_watchdog(self, quiet):
        """O(1) per cycle: compare the monotonic network ejection count.

        ``quiet`` (the mode's idle predicate) is only consulted on the
        slow path, once per WATCHDOG_CYCLES window, to distinguish a
        legitimately quiescent network from a hung one.  Because that
        probe is sparse, traffic injected *late* in a quiet window can
        look busy at the very first probe that sees it; a busy network
        therefore gets one full grace window (the *armed* state) and
        the run only aborts if it is still busy without a single
        ejection a whole window later — impossible for a healthy mesh,
        whose in-flight work ejects within its diameter in cycles.
        """
        net = self.network
        if net.ejections != self._last_progress:
            self._last_progress = net.ejections
            self._watchdog_start = self.cycle
            self._watchdog_armed = False
        elif self.cycle - self._watchdog_start > WATCHDOG_CYCLES:
            if quiet():
                self._watchdog_armed = False
            elif self._watchdog_armed:
                raise SimulationStalled(self.cycle, WATCHDOG_CYCLES)
            else:
                self._watchdog_armed = True
            self._watchdog_start = self.cycle

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------

    def run_experiment(self, warmup=1_000, measure=10_000, drain=5_000):
        """Warm up, measure, drain; return :class:`WindowStats`.

        Latency statistics cover messages *created* inside the
        measurement window; throughput counts flits ejected inside it.
        The drain phase (with traffic switched off) lets in-flight
        messages finish so low-load latency is unbiased; at saturation
        the drain cap keeps runtime bounded and unfinished messages are
        reported as ``incomplete_messages``.

        Why the run ended is reported structurally in
        ``WindowStats.stop_reason``: ``completed`` normally,
        ``max-cycles`` when the drain cap expired with work in flight,
        and ``watchdog`` when the no-progress watchdog tripped (the
        :class:`SimulationStalled` is absorbed here — the numbers of a
        stalled run are still useful for diagnosing *where* it stuck).
        """
        net = self.network
        faults = self.faults
        stop_reason = "completed"
        try:
            self.run(warmup)
        except SimulationStalled:
            stop_reason = "watchdog"
        start_msgs = len(net.messages)
        start_activity = aggregate(net.router_stats).snapshot()
        start_nic = aggregate(net.nic_stats).snapshot()
        if faults is not None:
            start_dropped = faults.dropped_flits
            start_retx = faults.retransmissions
        if stop_reason == "completed":
            try:
                self.run(measure)
            except SimulationStalled:
                stop_reason = "watchdog"
        end_nic = aggregate(net.nic_stats)
        window_dropped = window_retx = 0
        if faults is not None:
            # mirror the NIC-counter timing: window deltas are taken
            # right after the measurement window, before the drain
            window_dropped = faults.dropped_flits - start_dropped
            window_retx = faults.retransmissions - start_retx
        window_msgs = net.messages[start_msgs : len(net.messages)]
        # stop generating traffic, then drain
        sources = [nic.source for nic in net.nics]
        for nic in net.nics:
            nic.source = None
        quiet = net.quiescent if self.gated else net.idle
        if faults is not None:
            base_quiet = quiet

            def quiet(base_quiet=base_quiet, faults=faults):
                # pending NACKs/backoffs keep the drain alive even
                # while the network itself is momentarily idle
                return base_quiet() and not faults.busy()

        step = self._stepper()
        drained = 0
        if stop_reason == "completed":
            try:
                while drained < drain and not quiet():
                    step()
                    drained += 1
            except SimulationStalled:
                stop_reason = "watchdog"
            else:
                if drained >= drain and not quiet():
                    stop_reason = "max-cycles"
        for nic, source in zip(net.nics, sources):
            nic.source = source
        if (
            faults is not None
            and faults.partitioned
            and stop_reason in ("completed", "max-cycles")
        ):
            stop_reason = "partitioned"
        end_activity = aggregate(net.router_stats)
        delta = end_activity - start_activity
        ejected = end_nic.ejected_flits - start_nic.ejected_flits
        rate = getattr(sources[0], "injection_rate", float("nan"))
        return summarize_window(
            self.cfg,
            self.name,
            rate,
            measure,
            window_msgs,
            ejected,
            delta.bypasses,
            delta.xbar_input_traversals,
            stop_reason=stop_reason,
            dropped_flits=window_dropped,
            retransmissions=window_retx,
        )

    def activity(self):
        """Aggregate router activity since construction (for power models)."""
        return self.network.total_router_activity()
