"""Lookahead signals for virtual bypassing (Section 3.2).

A router that grants a flit its output port(s) in mSA-II immediately
forwards a small lookahead signal (15 bits in silicon) to the next
router, one cycle ahead of the flit itself.  The lookahead enters the
next router's mSA-II with priority over buffered flits; if it wins all
the output ports the flit will need *and* the required downstream VC
and credit are available, the crossbar is pre-allocated and the flit
skips buffering and the first two pipeline stages, achieving a
single-cycle ST+LT hop at any load.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.flit import MessageClass


@dataclass(frozen=True, slots=True)
class Lookahead:
    """The information encoded in the 15-bit lookahead signal.

    ``vc`` is the input VC the in-flight flit was allocated at the
    receiving router; ``destinations`` is the branch's destination
    subset, from which the receiving router recomputes both its own
    output-port request vector and the route for the lookahead it may
    forward onward.
    """

    vc: int
    mclass: MessageClass
    pid: int
    seq: int
    is_head: bool
    is_tail: bool
    destinations: frozenset
    #: routing header of the in-flight flit (the receiving router
    #: re-applies any header advance before recomputing the route, so
    #: lookahead and flit always agree) and the VC partition the flit
    #: occupies at the receiving router.
    rheader: object = None
    phase: int = 0


@dataclass(slots=True)
class STOp:
    """A crossbar traversal scheduled for a specific upcoming cycle.

    ``grants`` maps each granted output port to the allocated
    downstream VC and the destination subset carried by that branch.
    ``pop`` marks the flit's final traversal at this router (the buffer
    slot is released and a credit returned upstream); partial multicast
    grants schedule traversals with ``pop=False`` and retry the
    remaining branches.  Bypass operations take their flit from the
    input latch rather than the buffer.
    """

    kind: str  # "buffer" | "bypass"
    in_port: int
    vc: int
    flit: object | None
    grants: dict = field(default_factory=dict)
    pop: bool = False
