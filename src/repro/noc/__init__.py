"""Cycle-accurate mesh NoC simulation substrate.

This subpackage implements the hardware substrate of the DAC 2012 chip:
flits and packets, virtual-channel input buffers, credit-based flow
control with free-VC queues, separable two-stage switch allocation
(round-robin mSA-I, matrix-arbiter mSA-II), XY / XY-tree routing,
delay-one channels, network interface controllers and the synchronous
cycle loop.  The paper's contribution (lookahead virtual bypassing and
router-level multicast) plugs into this substrate and is surfaced
through :mod:`repro.core`.
"""

from repro.noc.config import NocConfig, VCSpec, proposed_vc_config
from repro.noc.flit import Flit, Message, MessageClass, Packet
from repro.noc.mesh import MeshNetwork
from repro.noc.ports import LOCAL, NORTH, EAST, SOUTH, WEST, PORT_NAMES
from repro.noc.routing import (
    O1TurnRouting,
    RoutingAlgorithm,
    ValiantRouting,
    XYRouting,
    YXRouting,
    make_routing,
    routing_from_dict,
    routing_names,
)
from repro.noc.simulator import Simulator

__all__ = [
    "Flit",
    "LOCAL",
    "EAST",
    "MeshNetwork",
    "Message",
    "MessageClass",
    "NORTH",
    "NocConfig",
    "O1TurnRouting",
    "PORT_NAMES",
    "Packet",
    "RoutingAlgorithm",
    "SOUTH",
    "Simulator",
    "VCSpec",
    "ValiantRouting",
    "WEST",
    "XYRouting",
    "YXRouting",
    "make_routing",
    "routing_from_dict",
    "routing_names",
    "proposed_vc_config",
]
