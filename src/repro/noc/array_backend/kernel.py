"""The struct-of-arrays cycle kernel (DESIGN.md §9).

Layout
------
Routers are flattened: with ``R = k*k`` routers per replica and ``P =
5`` ports, input port ``p`` of router ``r`` is flat index ``n = r*P +
p`` and the matching output port is the same flat index on the output
side.  A leading **batch axis** turns one kernel pass into ``B``
independent replica simulations (same config, different traffic
seeds): lane ``b`` owns global nodes ``[b*R, (b+1)*R)`` and global
ports ``[b*R*P, (b+1)*R*P)``, so every per-port array is simply ``B``
times longer and every vectorized phase sweeps all replicas at once.
Links and credit returns never cross a lane boundary (the static
``DST_IN``/``CRED_TARGET`` tables are built per lane and offset), so
lane ``b`` of a batched run is bit-for-bit the single-seed simulation
of its seed.  Credit trackers are unified: tracker ``m < B*R*P`` is
router output port ``m`` and tracker ``B*R*P + g`` is the NIC of
global node ``g``.

Channels collapse into receiver-indexed registers.  Flit, lookahead,
injection and ejection wires have delay one and at most one payload
per wire per cycle, and within a cycle every read of such a wire
(phase ``receive``) precedes every write (``st``/``msa2``/NIC step),
so a single slot per receiver is exact.  Credit wires have delay two
and at most one credit per wire per cycle, so a two-slot ping-pong
indexed by ``arrival_cycle % 2`` is exact for the same reason.

Valiant routing
---------------
A packet carries a second header word: ``p_w[pid]`` is the random
intermediate router (``-1`` once consumed, or when the draw landed on
the source and the packet was born in phase 1).  The packed flit word
grows an ``_ADV`` bit — the vectorized mirror of the object loop's
``RouteState.advance``: every flit arrival at its waypoint router
sets the bit *before* the route is derived, the lookahead pass
mirrors the advance one cycle ahead so the pre-allocated route and VC
phase match the flit exactly, and downstream VC allocation draws from
the ``(class, phase)`` partition selected by the advanced bit.

Multicast
---------
Broadcast mixes compile to XY multicast trees: ``MC_PORTS[src, r]``
is the output-port bitmask of the tree rooted at ``src`` as it passes
router ``r`` (precomputed from the same ``_xy_partition`` the object
router calls per flit).  mSA-II request vectors become a ``(candidate,
port)`` boolean matrix — the matrix arbiter generalises unchanged —
and the crossbar forks a winning flit to every granted branch as a
masked scatter over the port axis.  A partially granted multicast
keeps its buffer slot and re-asks for the remaining branches
(``mc_granted`` bitmask per input VC), traversing the crossbar once
per grant round exactly like the object router's repeated ``STOp``\\ s;
lookahead bypass stays all-or-nothing.

Performance notes
-----------------
At small radix the cost of a numpy pass is dominated by per-op
dispatch, not element count, so the kernel is written to minimise op
*count*: flit identity travels as one packed word (``pid << 3 |
adv | tail | head``), emptiness checks are plain Python integers
maintained at the mutation sites instead of array scans, activity
counters are per-port arrays bumped with unique-index fancy adds
(every event set touches each port at most once per cycle — a pinned
pipeline invariant) and folded to per-router view lazily, and the NIC
front end (injection draws, VC allocation, class round-robin) runs as
vectorized passes over numpy ring queues.  Batching multiplies the
work per pass without adding passes — which is the whole point: ``B``
replicas cost roughly one replica's dispatch overhead.

Draw-stream contract
--------------------
PRBS-31 streams live in int64 state arrays and are advanced with the
same two-shift/xor ``next_word(24)`` batch step as
:class:`repro.traffic.prbs.PRBSGenerator`, under masks that replicate
the object backend's *conditional* draws exactly: a zero-rate chain
state consumes no main-stream word, a ``leave == 0`` state consumes
no chain word, deterministic patterns consume no destination word,
broadcast packets consume no destination and no routing word, o1turn
consumes one routing-stream bit and valiant one routing-stream word
per *unicast* packet header.  Initial states are produced by the
tested scalar constructors (seed diffusion, the stationary-
distribution chain draw), then lifted into the arrays — so the very
first draw already matches the oracle.

Everything observable — WindowStats, per-router and per-NIC
ActivityCounters, stop reasons, watchdog behaviour — is byte-identical
to ``backend="object"`` for every workload this kernel accepts; the
equivalence suite pins that claim across the injection x routing x
pattern matrix, including batch-lane extraction.
"""

from __future__ import annotations

import numpy as np

from repro.noc.metrics import ActivityCounters, summarize_window
from repro.noc.ports import EAST, LOCAL, NORTH, NUM_PORTS, OPPOSITE, SOUTH, WEST
from repro.noc.routing import (
    _ROUTING_STREAM_SALT,
    _xy_partition,
    coords,
    next_router,
    node_at,
)
from repro.noc.simulator import WATCHDOG_CYCLES, SimulationStalled
from repro.traffic.prbs import PRBSGenerator, salted_stream_seed

P = NUM_PORTS
_MASK31 = (1 << 31) - 1
#: packed flit word: ``pid << 3 | flags`` with HEAD/TAIL/ADV flag bits
_HEAD = 1
_TAIL = 2
_ADV = 4  # valiant header advanced past its intermediate waypoint
#: buf_stage encoding (mirrors Flit.stage None / "S2" / "GRANTED")
_ST_NONE, _ST_S2, _ST_GRANTED = 0, 1, 2

#: routing algorithms the kernel can compile
_SUPPORTED_ROUTING = ("o1turn", "valiant", "xy", "yx")


def _unsupported(what):
    return ValueError(
        f"backend=\"array\" does not support {what}; "
        f"use backend=\"object\" (see the support matrix in "
        f"repro/noc/array_backend/__init__.py and DESIGN.md §9)"
    )


def _word24(state):
    """Vectorized ``PRBSGenerator.next_word(24)`` on an int64 array."""
    word = ((state >> 7) ^ (state >> 4)) & 0xFFFFFF
    return word, ((state << 24) | word) & _MASK31


class _MsgView:
    """Lightweight stand-in for :class:`repro.noc.flit.Message` with
    exactly the surface :func:`summarize_window` consumes."""

    __slots__ = (
        "creation_cycle", "completion_cycle", "flits_per_packet",
        "is_multicast",
    )

    def __init__(self, creation, completion, flits, mcast=False):
        self.creation_cycle = creation
        self.completion_cycle = None if completion < 0 else completion
        self.flits_per_packet = flits
        self.is_multicast = mcast

    @property
    def complete(self):
        return self.completion_cycle is not None

    @property
    def latency(self):
        return self.completion_cycle - self.creation_cycle


class _ArrayNetwork:
    """Stats facade matching the ``Simulator.network`` surface.

    For a batched simulator this is a *per-lane* view; plain
    ``sim.network`` is lane 0 and ``sim.lane_network(b)`` the rest.
    """

    def __init__(self, sim, lane=0):
        self._sim = sim
        self._lane = lane

    @property
    def cfg(self):
        return self._sim.cfg

    @property
    def cycles(self):
        return self._sim._net_cycles

    @property
    def ejections(self):
        sim = self._sim
        if sim.B > 1:
            return int(sim._lane_ej_counts()[self._lane])
        return sim._net_ejections

    @property
    def router_stats(self):
        return self._sim._router_counters(self._lane)

    @property
    def nic_stats(self):
        return self._sim._nic_counters(self._lane)

    @property
    def messages(self):
        sim = self._sim
        return sim._message_views(0, sim._lane_count(self._lane),
                                  lane=self._lane)

    def total_router_activity(self):
        agg = ActivityCounters()
        for c in self.router_stats:
            agg = agg + c
        agg.cycles += self.cycles * self._sim.R
        return agg

    def total_nic_activity(self):
        agg = ActivityCounters()
        for c in self.nic_stats:
            agg = agg + c
        agg.cycles += self.cycles * self._sim.R
        return agg


class ArraySimulator:
    """Struct-of-arrays drop-in for :class:`repro.noc.simulator.Simulator`.

    Construct it directly or via ``Simulator(..., backend="array")``.
    The constructor surface, :meth:`run`, :meth:`run_experiment`,
    :meth:`activity` and the ``network`` stats facade match the object
    backend; unsupported workload axes raise ``ValueError`` at attach
    or construction time instead of silently diverging.

    ``seeds=[s0, s1, ...]`` builds a *batched* simulator: ``B``
    replicas of the same configuration, each driven by its own traffic
    seed, advanced in lockstep by one vectorized pass per phase per
    cycle.  :meth:`run_experiment_batch` returns one ``WindowStats``
    per seed, each byte-identical to a single-seed run of that seed.
    """

    backend = "array"

    def __init__(self, config, traffic=None, name="", gated=True,
                 seeds=None):
        if config.separate_st_lt:
            raise _unsupported("the split ST/LT pipeline (separate_st_lt)")
        if config.routing.name not in _SUPPORTED_ROUTING:
            raise _unsupported(f"{config.routing.name!r} routing")
        if seeds is not None:
            seeds = tuple(int(s) for s in seeds)
            if not seeds:
                raise ValueError("seeds must name at least one replica seed")
        self.seeds = seeds
        self.B = 1 if seeds is None else len(seeds)
        self.cfg = config
        self.name = name or ("proposed" if config.bypass else "baseline")
        self.gated = gated
        self.cycle = 0
        self.obs = None
        self.faults = None
        self._bypass = config.bypass
        self._mc = False
        self._o1turn = False
        self._valiant = False
        self._last_progress = 0
        self._watchdog_start = 0
        self._watchdog_armed = False
        self._build_static()
        self._build_state()
        self.network = _ArrayNetwork(self, 0)
        self._traffic = None
        self._sources_on = False
        if traffic is not None:
            self.attach_traffic(traffic)

    def lane_network(self, lane):
        """The ``network`` stats facade of one replica lane."""
        if not 0 <= lane < self.B:
            raise IndexError(f"lane {lane} out of range (batch size {self.B})")
        return _ArrayNetwork(self, lane)

    # ------------------------------------------------------------------
    # compilation: geometry, routing and VC tables
    # ------------------------------------------------------------------

    def _build_static(self):
        cfg = self.cfg
        k = cfg.k
        B = self.B
        R = self.R = k * k
        N1 = self.N1 = R * P  # ports per replica lane
        N = self.N = B * N1  # global ports, lane-major
        RT = self.RT = B * R  # global nodes
        self.T = N + RT  # trackers: router out ports, then NICs
        V = self.V = cfg.num_vcs
        self.D = max(spec.depth for spec in cfg.vcs)

        # link topology per lane: downstream input port of each output
        # port, the tracker each input port returns credits to (local
        # indices; NIC trackers encoded as N1 + r until the lift)
        dst1 = np.full(N1, -1, dtype=np.int64)
        ct1 = np.full(N1, -1, dtype=np.int64)
        for r in range(R):
            x, y = coords(r, k)
            ct1[r * P + LOCAL] = N1 + r  # NIC tracker
            for port, (nx, ny) in (
                (NORTH, (x, y + 1)),
                (EAST, (x + 1, y)),
                (SOUTH, (x, y - 1)),
                (WEST, (x - 1, y)),
            ):
                if not (0 <= nx < k and 0 <= ny < k):
                    continue
                nb = node_at(nx, ny, k)
                dst1[r * P + port] = nb * P + OPPOSITE[port]
                ct1[r * P + port] = nb * P + OPPOSITE[port]
        # lift into the lane-major global index space: lanes never
        # share a wire, so each lane gets the same tables offset by its
        # base port (mesh) or base node (NIC trackers)
        lanes = np.arange(B, dtype=np.int64)[:, None]
        self.DST_IN = np.where(
            dst1 >= 0, lanes * N1 + dst1, -1
        ).reshape(-1)
        self.CRED_TARGET = np.where(
            ct1 >= N1,
            N + lanes * R + (ct1 - N1),
            np.where(ct1 >= 0, lanes * N1 + ct1, -1),
        ).reshape(-1)

        # unicast route tables: output port by (dimension order, router,
        # destination); 0 = XY, 1 = YX — o1turn headers index into this,
        # valiant routes XY toward the waypoint then the destination
        route = np.empty((2, R, R), dtype=np.int64)
        for r in range(R):
            x, y = coords(r, k)
            for d in range(R):
                dx, dy = coords(d, k)
                if dx < x:
                    xy = WEST
                elif dx > x:
                    xy = EAST
                elif dy > y:
                    xy = NORTH
                elif dy < y:
                    xy = SOUTH
                else:
                    xy = LOCAL
                if dy > y:
                    yx = NORTH
                elif dy < y:
                    yx = SOUTH
                elif dx > x:
                    yx = EAST
                elif dx < x:
                    yx = WEST
                else:
                    yx = LOCAL
                route[0, r, d] = xy
                route[1, r, d] = yx
        self.ROUTE = route

        # VC free-queue groups keyed (message class, routing phase)
        phases = cfg.vc_phases
        groups = {}
        members = []
        vc_group = np.empty(V, dtype=np.int64)
        for i, spec in enumerate(cfg.vcs):
            key = (int(spec.mclass), phases[i])
            g = groups.get(key)
            if g is None:
                g = groups[key] = len(groups)
                members.append([])
            vc_group[i] = g
            members[g].append(i)
        G = self.G = len(groups)
        self.VC_GROUP = vc_group
        self.GROUP_CAP = np.array([len(m) for m in members], dtype=np.int64)
        n_phases = max(p for _, p in groups) + 1
        gid = np.full((2, n_phases), -1, dtype=np.int64)
        for (mc, ph), g in groups.items():
            gid[mc, ph] = g
        self.GROUP_ID = gid
        self.VC_DEPTH = np.array([spec.depth for spec in cfg.vcs],
                                 dtype=np.int64)
        self._freeq_init = np.zeros((G, V), dtype=np.int64)
        for g, mem in enumerate(members):
            self._freeq_init[g, : len(mem)] = mem
        self._vcidx = np.arange(V)
        self._pidx = np.arange(P)
        # round-robin rank of VC v seen from pointer p: one gather in
        # mSA-I instead of a subtract + modulo per call
        self.RANK_TAB = (self._vcidx[None, :] - self._vcidx[:, None]) % V

    def _build_state(self):
        N, V, D, T, RT, G = self.N, self.V, self.D, self.T, self.RT, self.G
        B = self.B
        z = np.zeros
        # input VC buffers (circular, per [port, vc])
        self.buf_pkt = z((N, V, D), dtype=np.int64)
        self.buf_stage = z((N, V, D), dtype=np.int64)
        self.bhead = z((N, V), dtype=np.int64)
        self.bocc = z((N, V), dtype=np.int64)
        # per-port registers
        self.s2_vc = np.full(N, -1, dtype=np.int64)
        self.s2_slot = z(N, dtype=np.int64)
        self.rrptr = z(N, dtype=np.int64)  # mSA-I round-robin pointers
        self.st_valid = z(N, dtype=bool)
        self.st_bypass = z(N, dtype=bool)
        self.st_vc = z(N, dtype=np.int64)
        self.st_port = z(N, dtype=np.int64)
        self.st_ovc = z(N, dtype=np.int64)
        # multicast ST registers: granted-branch bitmask, per-branch
        # output VC, whether this traversal pops the buffer slot
        self.st_pmask = z(N, dtype=np.int64)
        self.st_pop = z(N, dtype=bool)
        self.st_ovcp = z((N, P), dtype=np.int64)
        #: per input VC: tree branches already granted to the front flit
        self.mc_granted = z((N, V), dtype=np.int64)
        self.latch_pkt = z(N, dtype=np.int64)
        # channel registers (receiver indexed; delay-one single slot)
        self.fl_valid = z(N, dtype=bool)
        self.fl_pkt = z(N, dtype=np.int64)
        self.fl_vc = z(N, dtype=np.int64)
        self.lv_valid = z(N, dtype=bool)  # lookahead in flight
        self.lv_pkt = z(N, dtype=np.int64)
        self.lv_vc = z(N, dtype=np.int64)
        self.la_valid = z(N, dtype=bool)  # la_now latch
        self.la_pkt = z(N, dtype=np.int64)
        self.la_vc = z(N, dtype=np.int64)
        self.ej_valid = z(RT, dtype=bool)
        self.ej_pkt = z(RT, dtype=np.int64)
        self.ej_vc = z(RT, dtype=np.int64)
        # credit ping-pong (delay two)
        # slot-major layout: the per-cycle arrival scan touches one
        # whole slot row, so keeping slots contiguous makes the
        # nonzero/clear pass a sequential read instead of a stride-2 one
        self.cr_valid = z((2, T), dtype=bool)
        self.cr_vc = z((2, T), dtype=np.int64)
        self.cr_tail = z((2, T), dtype=bool)
        # unified credit trackers (router out ports + NICs)
        self.owner = np.full((T, V), -1, dtype=np.int64)
        self.credits = np.tile(self.VC_DEPTH, (T, 1))
        self.freeq = np.tile(self._freeq_init, (T, 1, 1))
        self.fq_head = z((T, G), dtype=np.int64)
        self.fq_len = np.tile(self.GROUP_CAP, (T, 1))
        # matrix arbiters as LRU rank vectors: the matrix state always
        # encodes a total order (winner drops to the bottom, everyone
        # else keeps relative order), so "beats all other requesters"
        # is just "minimum rank".  Ranks stay distinct per port because
        # every update assigns a fresh per-port counter value.
        self.arank = np.tile(np.arange(P, dtype=np.int64), (N, 1))
        self._rank_next = np.full(N, P, dtype=np.int64)
        # NIC state: ring queues per (node, message class)
        self.pend_valid = z(RT, dtype=bool)
        self.pend_pkt = z(RT, dtype=np.int64)
        self.pend_vc = z(RT, dtype=np.int64)
        self.nrr = z(RT, dtype=np.int64)  # message-class round robin
        self._qcap = 64
        self.q_pkt = z((RT, 2, self._qcap), dtype=np.int64)
        self.q_head = z((RT, 2), dtype=np.int64)
        self.q_len = z((RT, 2), dtype=np.int64)
        self.backlog = z(RT, dtype=bool)
        # packet/message tables (pid == mid; grown on demand)
        cap = 1024
        self._cap = cap
        self._mcount = 0
        self.p_dest = z(cap, dtype=np.int64)
        self.p_ord = z(cap, dtype=np.int64)
        self.p_gid = z(cap, dtype=np.int64)
        self.p_nflits = z(cap, dtype=np.int64)
        self.p_creation = z(cap, dtype=np.int64)
        self.p_completion = z(cap, dtype=np.int64)
        self.p_w = np.full(cap, -1, dtype=np.int64)  # valiant waypoint
        self.p_src = z(cap, dtype=np.int64)  # lane-local source router
        self.p_mcls = z(cap, dtype=np.int64)
        self.p_mcast = z(cap, dtype=bool)
        self.p_pending = z(cap, dtype=np.int64)  # deliveries outstanding
        self.p_lane = z(cap, dtype=np.int64)
        # activity counters: per input/output port (folded per router
        # lazily); for unicast workloads c_st covers credits_sent ==
        # xbar_in == xbar_out, multicast splits out c_xout
        for cname in ("c_bw", "c_br", "c_st", "c_byp", "c_link",
                      "c_m1", "c_m2", "c_las", "c_lar", "c_xout"):
            setattr(self, cname, z(N, dtype=np.int64))
        for cname in ("c_ej", "n_inj", "n_ej", "n_sub", "n_las"):
            setattr(self, cname, z(RT, dtype=np.int64))
        self._net_cycles = 0
        self._net_ejections = 0
        # emptiness counters (maintained at the mutation sites so the
        # hot loop never scans an array just to find it empty)
        self._fl_n = 0
        self._lv_n = 0
        self._la_n = 0
        self._ej_n = 0
        self._st_n = 0
        self._pend_n = 0
        self._cr_n = [0, 0]
        self._bocc_n = 0
        self._s2_n = 0
        # arbitration scratch
        self._best = z(N, dtype=np.int64)
        self._used = z(N, dtype=bool)
        # GRANTED flits in flight (set at buffered grant, cleared at
        # the traversal next cycle) — lets mSA-I skip the stage gather;
        # the per-port count confines that gather to the few ports
        # actually holding one
        self._gr_n = 0
        self._gr_port = z(N, dtype=np.int64)
        self._bl_any = False
        # per-lane replica bookkeeping (batched runs only).  Progress
        # is derived from the per-router ejection counters on demand,
        # so the hot loop pays nothing for it; the watchdog check
        # itself is amortised to at most once per WATCHDOG_CYCLES via
        # _wd_next (see _check_watchdog_batch).
        self._lane_msgs = z(B, dtype=np.int64)
        self._lane_progress = z(B, dtype=np.int64)
        self._lane_wd_start = z(B, dtype=np.int64)
        self._lane_wd_armed = z(B, dtype=bool)
        self._wd_next = WATCHDOG_CYCLES + 1
        self._lane_alive = np.ones(B, dtype=bool)
        self._lane_stop = ["completed"] * B
        self._src_live = np.ones(RT, dtype=bool)
        self._any_dead = False

    # ------------------------------------------------------------------
    # workload attachment
    # ------------------------------------------------------------------

    def attach_traffic(self, traffic):
        """Compile a bound :class:`SyntheticTraffic` into array form.

        On a batched simulator (``seeds=[...]``) the attached source
        acts as the *template*: each lane gets its own clone with the
        lane's seed (the template's own seed is not used).
        """
        mix = getattr(traffic, "mix", None)
        process = getattr(traffic, "process", None)
        if mix is None or process is None:
            raise _unsupported(
                f"traffic source {type(traffic).__name__} (only "
                f"SyntheticTraffic workloads compile to arrays)"
            )
        routing = self.cfg.routing
        bc = any(c.broadcast for c in mix.components)
        if bc:
            if not self.cfg.multicast:
                raise _unsupported(
                    "broadcast mixes on a multicast=False config "
                    "(per-destination flit replication)"
                )
            if not routing.supports_multicast:
                # mirror the object backend's rejection exactly
                raise ValueError(
                    f"{routing.name} routing cannot carry router-level "
                    f"multicast traffic (multicast trees are XY-only); "
                    f"use xy routing or a multicast=False config"
                )
            if any(c.broadcast and c.num_flits > 1 for c in mix.components):
                raise _unsupported("multi-flit broadcast packets")
        self._mc = bc
        lanes = [traffic]
        if self.seeds is not None:
            lanes = [
                type(traffic)(
                    mix,
                    traffic.injection_rate,
                    seed=s,
                    identical_generators=traffic.identical_generators,
                    pattern=traffic.pattern,
                    process=traffic.process,
                )
                for s in self.seeds
            ]
        for tr in lanes:
            tr.bind(self.cfg)
        self._traffic = lanes[0]
        self._packet_rate = lanes[0]._packet_rate
        R, RT, B = self.R, self.RT, self.B
        # main traffic streams: the scalar constructor performs the
        # tested seed diffusion; we lift its register state
        tstate = np.empty(RT, dtype=np.int64)
        for b, tr in enumerate(lanes):
            for node in range(R):
                node_seed = (tr.seed if tr.identical_generators
                             else tr.seed + node)
                tstate[b * R + node] = PRBSGenerator(
                    order=31, seed=node_seed
                )._state
        self.tstate = tstate
        # modulated injection: lift each node's ChainState
        if lanes[0]._steppers is None:
            self.cstate = None
        else:
            self.cstate = np.empty(RT, dtype=np.int64)
            self.chstate = np.empty(RT, dtype=np.int64)
            for b, tr in enumerate(lanes):
                for node in range(R):
                    chain = tr._steppers[node]
                    self.cstate[b * R + node] = chain.chain._state
                    self.chstate[b * R + node] = chain.state
            steppers0 = lanes[0]._steppers
            self.probs_tab = np.array(steppers0[0].probs, dtype=np.float64)
            self.leave_tab = np.array(steppers0[0].leave, dtype=np.float64)
            self.n_states = len(self.probs_tab)
        # mix selection: searchsorted over the cumulative weights plus
        # the oracle's fallback component as a trailing entry
        cum = list(mix.cumulative_weights())
        comps = [c for _, c in cum] + [mix.components[-1]]
        self._cum_arr = np.array([w for w, _ in cum], dtype=np.float64)
        self._comp_mclass = np.array([int(c.mclass) for c in comps],
                                     dtype=np.int64)
        self._comp_nflits = np.array([c.num_flits for c in comps],
                                     dtype=np.int64)
        self._comp_bcast = np.array([bool(c.broadcast) for c in comps],
                                    dtype=bool)
        # destination pattern (deterministic tables are seed-free, so
        # one lane's table serves every lane, tiled into global nodes)
        pattern = lanes[0].pattern
        if lanes[0]._dest_table is not None:
            base_tab = np.array(
                [next(iter(d)) for d in lanes[0]._dest_table],
                dtype=np.int64,
            )
            self._dest_arr = np.tile(base_tab, B)
            self._pattern_kind = "table"
        elif pattern.name == "uniform":
            self._pattern_kind = "uniform"
        elif pattern.name == "hotspot":
            self._pattern_kind = "hotspot"
            self._hot_arr = np.array(pattern.hot_nodes, dtype=np.int64)
            self._hot_fraction = pattern.fraction
        else:
            raise _unsupported(f"the stochastic {pattern.name!r} pattern")
        # routing header streams (o1turn and valiant draw from them)
        self._o1turn = routing.name == "o1turn"
        self._valiant = routing.name == "valiant"
        self._route_fixed = self.ROUTE[1 if routing.name == "yx" else 0]
        if self._o1turn or self._valiant:
            self.rstate = np.empty(RT, dtype=np.int64)
            for b, tr in enumerate(lanes):
                for node in range(R):
                    seed = salted_stream_seed(
                        tr.seed, _ROUTING_STREAM_SALT, node
                    )
                    self.rstate[b * R + node] = PRBSGenerator(
                        order=31, seed=seed
                    )._state
        # multicast trees: output-port bitmask of the XY tree rooted at
        # each source as it passes each router, found by walking the
        # same partition the object router evaluates per flit
        if self._mc:
            k = self.cfg.k
            mcp = np.zeros((R, R), dtype=np.int64)
            for src in range(R):
                frontier = [(src, frozenset(range(R)))]
                while frontier:
                    r, dests = frontier.pop()
                    mask = 0
                    for port, sub in _xy_partition(r, dests, k).items():
                        mask |= 1 << port
                        if port != LOCAL:
                            frontier.append((next_router(r, port, k), sub))
                    mcp[src, r] = mask
            self.MC_PORTS = mcp
        self._sources_on = True
        # queues start empty, so nothing is backlogged until a submit
        self.backlog[:] = False
        self._bl_any = False

    def attach_faults(self, model, seed=None):
        raise _unsupported("fault injection")

    # ------------------------------------------------------------------
    # cycle phases
    # ------------------------------------------------------------------

    def step(self):
        self._step()

    def _step(self):
        t = self.cycle
        self._receive(t)
        if self._ej_n:
            self._nic_receive(t)
        self._nic_step(t)
        if self._st_n:
            if self._mc:
                self._st_mc(t)
            else:
                self._st(t)
        if (self._bypass and self._la_n) or self._s2_n:
            self._msa2(t)
        if self._bocc_n:
            self._msa1(t)
        self._net_cycles += 1
        if self.B == 1:
            self._check_watchdog()
        else:
            self._check_watchdog_batch()
        self.cycle += 1

    def _receive(self, t):
        # credit arrivals (a credit sent at t-2 lands in slot t&1 now)
        slot = t & 1
        if self._cr_n[slot]:
            self._cr_n[slot] = 0
            cv = self.cr_valid[slot]
            tr = cv.nonzero()[0]
            cv[:] = False
            vcs = self.cr_vc[slot, tr]
            self.credits[tr, vcs] += 1
            tails = self.cr_tail[slot, tr]
            if tails.any():
                trt = tr[tails]
                vct = vcs[tails]
                self.owner[trt, vct] = -1
                g = self.VC_GROUP[vct]
                cap = self.GROUP_CAP[g]
                pos = (self.fq_head[trt, g] + self.fq_len[trt, g]) % cap
                self.freeq[trt, g, pos] = vct
                self.fq_len[trt, g] += 1
        # flit arrivals: bypass reservations latch, the rest buffer
        if self._fl_n:
            self._fl_n = 0
            narr = self.fl_valid.nonzero()[0]
            self.fl_valid[:] = False
            pkt = self.fl_pkt[narr]
            vcs = self.fl_vc[narr]
            if self._valiant:
                # the header advances (the waypoint is consumed) before
                # the route is derived — set the ADV bit on arrival at
                # the waypoint router, before latching or buffering
                adv = ((pkt & _ADV) == 0) & (
                    ((narr // P) % self.R) == self.p_w[pkt >> 3]
                )
                if adv.any():
                    pkt = pkt | (adv.astype(np.int64) << 2)
            byp = self.st_valid[narr] & self.st_bypass[narr]
            if byp.any():
                nb = narr[byp]
                self.latch_pkt[nb] = pkt[byp]
            buf = ~byp
            if buf.any():
                nw = narr[buf]
                vw = vcs[buf]
                slotw = (self.bhead[nw, vw] + self.bocc[nw, vw]) % self.D
                self.buf_pkt[nw, vw, slotw] = pkt[buf]
                self.buf_stage[nw, vw, slotw] = _ST_NONE
                self.bocc[nw, vw] += 1
                self.c_bw[nw] += 1
                self._bocc_n += len(nw)
        # lookahead arrivals replace the la_now latch (array swap: the
        # in-flight registers become the latch, the stale latch becomes
        # next cycle's in-flight registers)
        if self._la_n:
            self.la_valid[:] = False
            self._la_n = 0
        if self._lv_n:
            self.la_valid, self.lv_valid = self.lv_valid, self.la_valid
            self.la_pkt, self.lv_pkt = self.lv_pkt, self.la_pkt
            self.la_vc, self.lv_vc = self.lv_vc, self.la_vc
            self._la_n = self._lv_n
            self._lv_n = 0
            idx = self.la_valid.nonzero()[0]
            self.c_lar[idx] += 1

    def _nic_receive(self, t):
        self._ej_n = 0
        rs = self.ej_valid.nonzero()[0]
        self.ej_valid[:] = False
        pkt = self.ej_pkt[rs]
        self.n_ej[rs] += 1
        tails = (pkt & _TAIL) != 0
        if tails.any():
            mids = pkt[tails] >> 3
            if self._mc:
                # reception convention: visible at t, received at end
                # of t-1; a multicast completes at its *last* delivery
                np.subtract.at(self.p_pending, mids, 1)
                done = mids[self.p_pending[mids] == 0]
                if len(done):
                    self.p_completion[done] = t - 1
            else:
                self.p_completion[mids] = t - 1
        tracker = rs * P + LOCAL  # the router's LOCAL output tracker
        slot = t & 1
        self.cr_valid[slot, tracker] = True
        self.cr_vc[slot, tracker] = self.ej_vc[rs]
        self.cr_tail[slot, tracker] = tails
        self._cr_n[slot] += len(rs)

    def _nic_step(self, t):
        # 1) send last cycle's decision onto the injection wire
        if self._pend_n:
            self._pend_n = 0
            rs = self.pend_valid.nonzero()[0]
            self.pend_valid[:] = False
            n = rs * P + LOCAL
            self.fl_valid[n] = True
            self.fl_pkt[n] = self.pend_pkt[rs]
            self.fl_vc[n] = self.pend_vc[rs]
            self._fl_n += len(rs)
        # 2) generate traffic (batched PRBS draws) and submit
        if self._sources_on:
            inj = self._generate()
            if len(inj):
                self._submit_batch(inj, t)
        # 3) VC-allocate at most one flit per backlogged NIC
        if self._bl_any:
            self._decide_all()

    def _generate(self):
        """The per-cycle injection decisions of every node at once."""
        tstate = self.tstate
        if self.cstate is None:
            # Bernoulli fast path: one main-stream word per node
            word, ns = _word24(tstate)
            tstate[:] = ns
            inject = word / 16777216.0 < self._packet_rate
        else:
            # modulated: main word only in positive-rate states, chain
            # word only in states with a positive leave probability
            ch = self.chstate
            p = self.probs_tab[ch]
            active = p > 0.0
            word, ns = _word24(tstate)
            np.copyto(tstate, ns, where=active)
            inject = active & (word / 16777216.0 < p)
            leave = self.leave_tab[ch]
            cact = leave > 0.0
            cword, cns = _word24(self.cstate)
            np.copyto(self.cstate, cns, where=cact)
            move = cact & (cword / 16777216.0 < leave)
            np.copyto(ch, (ch + 1) % self.n_states, where=move)
        if self._any_dead:
            # watchdog-killed replica lanes stop sourcing traffic
            inject &= self._src_live
        return inject.nonzero()[0]

    def _submit_batch(self, inj, t):
        """Draw one message per injecting node and enqueue its flits.

        Nodes are processed in ascending order (``nonzero`` order), so
        message ids are handed out exactly as the oracle's node loop
        does (lane-major within a cycle for batched runs).  For a given
        pattern every *unicast* draw consumes the same number of words
        at every node, and broadcast rows consume no destination and no
        routing word — which is what makes the batch exact.
        """
        m = len(inj)
        R = self.R
        inj_loc = inj % R if self.B > 1 else inj
        st = self.tstate[inj]
        word, st = _word24(st)
        pick = word / 16777216.0
        ci = np.searchsorted(self._cum_arr, pick, side="right")
        mcls = self._comp_mclass[ci]
        nfl = self._comp_nflits[ci]
        kind = self._pattern_kind
        if self._mc:
            bc = self._comp_bcast[ci]
            ui = (~bc).nonzero()[0]  # only unicast rows draw dests
        else:
            bc = None
            ui = None
        dest = np.empty(m, dtype=np.int64)
        if kind == "table":
            dest[:] = self._dest_arr[inj]
        elif kind == "uniform":
            if ui is None:
                w2, st = _word24(st)
                other = w2 % (R - 1)
                dest[:] = other + (other >= inj_loc)
            elif len(ui):
                su = st[ui]
                w2, su = _word24(su)
                st[ui] = su
                other = w2 % (R - 1)
                dest[ui] = other + (other >= inj_loc[ui])
        else:  # hotspot: two words per destination, both branches
            if ui is None:
                w2, st = _word24(st)
                w3, st = _word24(st)
                hd = self._hot_arr[w3 % len(self._hot_arr)]
                other = w3 % (R - 1)
                dest[:] = np.where(
                    w2 / 16777216.0 < self._hot_fraction,
                    hd,
                    other + (other >= inj_loc),
                )
            elif len(ui):
                su = st[ui]
                w2, su = _word24(su)
                w3, su = _word24(su)
                st[ui] = su
                hd = self._hot_arr[w3 % len(self._hot_arr)]
                other = w3 % (R - 1)
                dest[ui] = np.where(
                    w2 / 16777216.0 < self._hot_fraction,
                    hd,
                    other + (other >= inj_loc[ui]),
                )
        if bc is not None:
            # a broadcast's delivery set is implicit in the tree tables
            dest[bc] = inj_loc[bc]
        self.tstate[inj] = st
        pid0 = self._mcount
        while pid0 + m > self._cap:
            self._grow_tables()
        pids = pid0 + np.arange(m)
        self._mcount = pid0 + m
        adv = None
        phase = 0
        rows = np.arange(m) if ui is None else ui
        if self._o1turn:
            ordw = np.zeros(m, dtype=np.int64)
            if len(rows):
                rs_ = self.rstate[inj[rows]]
                fb = ((rs_ >> 30) ^ (rs_ >> 27)) & 1
                self.rstate[inj[rows]] = ((rs_ << 1) | fb) & _MASK31
                ordw[rows] = fb
            self.p_ord[pids] = ordw  # only consulted on the o1turn path
            phase = ordw
        elif self._valiant:
            pw = np.full(m, -1, dtype=np.int64)
            adv = np.zeros(m, dtype=np.int64)
            if len(rows):
                rs_ = self.rstate[inj[rows]]
                w24, rs2 = _word24(rs_)
                self.rstate[inj[rows]] = rs2
                w = w24 % R
                born = (w == inj_loc[rows]).astype(np.int64)
                # a draw landing on the source is consumed immediately:
                # the packet is born in phase 1 with no waypoint
                pw[rows] = np.where(born == 1, -1, w)
                adv[rows] = born
            self.p_w[pids] = pw
            phase = adv
        self.p_dest[pids] = dest
        self.p_gid[pids] = self.GROUP_ID[mcls, phase]
        self.p_nflits[pids] = nfl
        self.p_creation[pids] = t
        self.p_completion[pids] = -1
        self.p_src[pids] = inj_loc
        self.p_mcls[pids] = mcls
        if bc is not None:
            self.p_mcast[pids] = bc
            self.p_pending[pids] = np.where(bc, R, 1)
        else:
            self.p_mcast[pids] = False
            self.p_pending[pids] = 1
        if self.B > 1:
            lane = inj // R
            self.p_lane[pids] = lane
            self._lane_msgs += np.bincount(lane, minlength=self.B)
        self.n_sub[inj] += 1
        self.backlog[inj] = True
        self._bl_any = True
        nmax = int(nfl.max())
        while int(self.q_len[inj, mcls].max()) + nmax > self._qcap:
            self._grow_queues()
        if nmax == 1:
            # single-flit fast path: one vector append per cycle
            pos = (self.q_head[inj, mcls] + self.q_len[inj, mcls]) \
                % self._qcap
            word_q = (pids << 3) | (_HEAD | _TAIL)
            if adv is not None:
                word_q |= adv << 2
            self.q_pkt[inj, mcls, pos] = word_q
            self.q_len[inj, mcls] += 1
        else:
            qcap = self._qcap
            for j in range(m):
                node = int(inj[j])
                mc = int(mcls[j])
                f = int(nfl[j])
                base = int(pids[j]) << 3
                if adv is not None:
                    base |= int(adv[j]) << 2
                head = int(self.q_head[node, mc])
                length = int(self.q_len[node, mc])
                for seq in range(f):
                    flags = (_HEAD if seq == 0 else 0) \
                        | (_TAIL if seq == f - 1 else 0)
                    self.q_pkt[node, mc, (head + length + seq) % qcap] = \
                        base | flags
                self.q_len[node, mc] = length + f

    def _grow_tables(self):
        new = self._cap * 2
        for name in ("p_dest", "p_ord", "p_gid", "p_nflits",
                     "p_creation", "p_completion", "p_w", "p_src",
                     "p_mcls", "p_mcast", "p_pending", "p_lane"):
            old = getattr(self, name)
            arr = np.zeros(new, dtype=old.dtype)
            arr[: self._cap] = old
            setattr(self, name, arr)
        self._cap = new

    def _grow_queues(self):
        old_cap = self._qcap
        new_cap = old_cap * 2
        # relinearise every ring so the new tail space is contiguous
        order = (self.q_head[:, :, None] + np.arange(old_cap)) % old_cap
        new_q = np.zeros((self.RT, 2, new_cap), dtype=np.int64)
        new_q[:, :, :old_cap] = np.take_along_axis(self.q_pkt, order, axis=2)
        self.q_pkt = new_q
        self.q_head[:] = 0
        self._qcap = new_cap

    def _decide_all(self):
        """Mirror ``Nic._decide`` for every backlogged NIC at once:
        class round robin, then head/body VC allocation."""
        nodes = self.backlog.nonzero()[0]
        rr = self.nrr[nodes]
        trackers = self.N + nodes
        remaining = np.ones(len(nodes), dtype=bool)
        for i in (0, 1):
            mc = (rr + i) & 1
            cand = remaining & (self.q_len[nodes, mc] > 0)
            ci = cand.nonzero()[0]
            if len(ci) == 0:
                continue
            cn = nodes[ci]
            cmc = mc[ci]
            ctr = trackers[ci]
            pkt = self.q_pkt[cn, cmc, self.q_head[cn, cmc]]
            is_head = (pkt & _HEAD) != 0
            if is_head.all():
                # single-flit fast path: every queue head is a header
                g = self.p_gid[pkt >> 3]
                ok = self.fq_len[ctr, g] > 0
                vc = np.zeros(len(ci), dtype=np.int64)
                fi = ok.nonzero()[0]
                if len(fi):
                    ftr = ctr[fi]
                    fg = g[fi]
                    head = self.fq_head[ftr, fg]
                    v = self.freeq[ftr, fg, head]
                    self.fq_head[ftr, fg] = (head + 1) % self.GROUP_CAP[fg]
                    self.fq_len[ftr, fg] -= 1
                    self.owner[ftr, v] = pkt[fi] >> 3
                    self.credits[ftr, v] -= 1
                    vc[fi] = v
                wi = fi
                if len(wi) == 0:
                    continue
                self._decide_commit(rr, remaining, ci, cn, cmc,
                                    pkt, vc, wi, i)
                if not remaining.any():
                    break
                continue
            ok = np.zeros(len(ci), dtype=bool)
            vc = np.zeros(len(ci), dtype=np.int64)
            hi = is_head.nonzero()[0]
            if len(hi):
                htr = ctr[hi]
                g = self.p_gid[pkt[hi] >> 3]
                free = self.fq_len[htr, g] > 0
                fi = hi[free]
                if len(fi):
                    ftr = ctr[fi]
                    fg = g[free]
                    head = self.fq_head[ftr, fg]
                    v = self.freeq[ftr, fg, head]
                    self.fq_head[ftr, fg] = (head + 1) % self.GROUP_CAP[fg]
                    self.fq_len[ftr, fg] -= 1
                    self.owner[ftr, v] = pkt[fi] >> 3
                    self.credits[ftr, v] -= 1
                    ok[fi] = True
                    vc[fi] = v
            bi = (~is_head).nonzero()[0]
            if len(bi):
                btr = ctr[bi]
                own = self.owner[btr] == (pkt[bi] >> 3)[:, None]
                v = own.argmax(axis=1)
                good = self.credits[btr, v] > 0
                gi = bi[good]
                if len(gi):
                    self.credits[ctr[gi], v[good]] -= 1
                    ok[gi] = True
                    vc[gi] = v[good]
            wi = ok.nonzero()[0]
            if len(wi) == 0:
                continue
            self._decide_commit(rr, remaining, ci, cn, cmc, pkt, vc, wi, i)
            if not remaining.any():
                break
        # a full fruitless scan leaves the rotation where it started.
        # Drop satisfied NICs from the backlog eagerly (an empty-queue
        # decide has no side effects, so pruning is invisible) — the
        # steady-state backlog is then just this cycle's submitters
        # plus genuinely blocked NICs.
        still = self.q_len[nodes].any(axis=1)
        self.backlog[nodes] = still
        self._bl_any = bool(still.any())

    def _decide_commit(self, rr, remaining, ci, cn, cmc, pkt, vc, wi, i):
        """Pop the winners' queue heads and stage flit + lookahead."""
        wn = cn[wi]
        wmc = cmc[wi]
        self.q_head[wn, wmc] = (self.q_head[wn, wmc] + 1) % self._qcap
        self.q_len[wn, wmc] -= 1
        wpkt = pkt[wi]
        wvc = vc[wi]
        if self._bypass:
            n = wn * P + LOCAL
            self.lv_valid[n] = True
            self.lv_pkt[n] = wpkt
            self.lv_vc[n] = wvc
            self.n_las[wn] += 1
            self._lv_n += len(wn)
        self.pend_valid[wn] = True
        self.pend_pkt[wn] = wpkt
        self.pend_vc[wn] = wvc
        self._pend_n += len(wn)
        self.n_inj[wn] += 1
        self.nrr[wn] = (rr[ci[wi]] + i + 1) & 1
        remaining[ci[wi]] = False

    def _st(self, t):
        self._st_n = 0
        ns = self.st_valid.nonzero()[0]
        self.st_valid[:] = False
        byp = self.st_bypass[ns]
        pkt = np.empty(len(ns), dtype=np.int64)
        bi = byp.nonzero()[0]
        if len(bi):
            nb = ns[bi]
            pkt[bi] = self.latch_pkt[nb]
            self.c_byp[nb] += 1
        fi = (~byp).nonzero()[0]
        if len(fi):
            nn = ns[fi]
            vcn = self.st_vc[nn]
            # a granted buffered flit is always at its VC's head by the
            # time its traversal fires (one ST per port per cycle)
            h = self.bhead[nn, vcn]
            pkt[fi] = self.buf_pkt[nn, vcn, h]
            self.bhead[nn, vcn] = (h + 1) % self.D
            self.bocc[nn, vcn] -= 1
            self.c_br[nn] += 1
            self._bocc_n -= len(nn)
            self._gr_n -= len(nn)  # every buffered traversal was GRANTED
            self._gr_port[nn] -= 1
        # one credit upstream per traversal (pop is unconditional for
        # unicast: a granted flit always leaves its buffer/latch)
        target = self.CRED_TARGET[ns]
        slot = t & 1
        self.cr_valid[slot, target] = True
        self.cr_vc[slot, target] = self.st_vc[ns]
        self.cr_tail[slot, target] = (pkt & _TAIL) != 0
        self._cr_n[slot] += len(ns)
        self.c_st[ns] += 1
        # crossbar output: eject locally or forward on the mesh link
        q = self.st_port[ns]
        ovc = self.st_ovc[ns]
        loc = q == LOCAL
        li = loc.nonzero()[0]
        if len(li):
            re = ns[li] // P
            self.ej_valid[re] = True
            self.ej_pkt[re] = pkt[li]
            self.ej_vc[re] = ovc[li]
            self.c_ej[re] += 1
            self._net_ejections += len(li)
            self._ej_n += len(li)
        wi = (~loc).nonzero()[0]
        if len(wi):
            nf = ns[wi]
            dst = self.DST_IN[nf - nf % P + q[wi]]
            self.fl_valid[dst] = True
            self.fl_pkt[dst] = pkt[wi]
            self.fl_vc[dst] = ovc[wi]
            self.c_link[nf] += 1
            self._fl_n += len(wi)

    def _st_mc(self, t):
        """Switch traversal with per-port fanout (multicast configs).

        ``st_pmask`` holds this cycle's granted port set per input
        port; a buffered flit pops only when the cycle's grants
        completed its route (``st_pop``), mirroring the oracle's
        ``STOp(pop=...)``.  Credits flow only when the flit actually
        leaves (pop or bypass) and the crossbar-output counter grows by
        the branch count, not by one.
        """
        self._st_n = 0
        ns = self.st_valid.nonzero()[0]
        self.st_valid[:] = False
        byp = self.st_bypass[ns]
        pop = self.st_pop[ns]
        vcn = self.st_vc[ns]
        pkt = np.empty(len(ns), dtype=np.int64)
        bi = byp.nonzero()[0]
        if len(bi):
            nb = ns[bi]
            pkt[bi] = self.latch_pkt[nb]
            self.c_byp[nb] += 1
        fi = (~byp).nonzero()[0]
        if len(fi):
            nn = ns[fi]
            # the front flit sits at its VC's head whether this round
            # pops it or leaves it for the remaining branches
            pkt[fi] = self.buf_pkt[nn, vcn[fi], self.bhead[nn, vcn[fi]]]
        pi = ((~byp) & pop).nonzero()[0]
        if len(pi):
            nq = ns[pi]
            vp = vcn[pi]
            h = self.bhead[nq, vp]
            self.bhead[nq, vp] = (h + 1) % self.D
            self.bocc[nq, vp] -= 1
            self.c_br[nq] += 1
            self.mc_granted[nq, vp] = 0  # grant set dies with the flit
            self._bocc_n -= len(nq)
            self._gr_n -= len(nq)
            self._gr_port[nq] -= 1
        ci = (byp | pop).nonzero()[0]
        if len(ci):
            nc = ns[ci]
            target = self.CRED_TARGET[nc]
            slot = t & 1
            self.cr_valid[slot, target] = True
            self.cr_vc[slot, target] = vcn[ci]
            self.cr_tail[slot, target] = (pkt[ci] & _TAIL) != 0
            self._cr_n[slot] += len(nc)
        self.c_st[ns] += 1
        pm = self.st_pmask[ns]
        nout = np.zeros(len(ns), dtype=np.int64)
        for p in range(P):
            nout += (pm >> p) & 1
        self.c_xout[ns] += nout
        for p in range(P):
            rows = (((pm >> p) & 1) != 0).nonzero()[0]
            if len(rows) == 0:
                continue
            nr = ns[rows]
            ovc = self.st_ovcp[nr, p]
            if p == LOCAL:
                re = nr // P
                self.ej_valid[re] = True
                self.ej_pkt[re] = pkt[rows]
                self.ej_vc[re] = ovc
                self.c_ej[re] += 1
                self._net_ejections += len(re)
                self._ej_n += len(re)
            else:
                dst = self.DST_IN[nr - nr % P + p]
                self.fl_valid[dst] = True
                self.fl_pkt[dst] = pkt[rows]
                self.fl_vc[dst] = ovc
                self.c_link[nr] += 1
                self._fl_n += len(rows)

    # ------------------------------------------------------------ mSA-II

    def _check_resources(self, m, pids, heads, gids):
        """Vectorized ``_port_resources_ok``: heads need a free VC in
        their (class, phase) group, bodies need their owner VC to have
        a credit.  Returns the mask plus each body's owner VC so the
        commit step need not search again."""
        bvc = np.zeros(len(m), dtype=np.int64)
        if heads.all():
            # single-flit mixes never present body flits
            return self.fq_len[m, gids] > 0, bvc
        ok = np.empty(len(m), dtype=bool)
        hi = heads.nonzero()[0]
        if len(hi):
            ok[hi] = self.fq_len[m[hi], gids[hi]] > 0
        bi = (~heads).nonzero()[0]
        if len(bi):
            bm = m[bi]
            own = self.owner[bm] == pids[bi, None]
            hasv = own.any(axis=1)
            v = own.argmax(axis=1)
            ok[bi] = hasv & (self.credits[bm, v] > 0)
            bvc[bi] = v
        return ok, bvc

    def _commit_alloc(self, m, pids, heads, bvc, gids):
        """``alloc_head`` / ``consume_body`` for winners (their out
        ports are distinct, so the scatters cannot collide)."""
        if heads.all():
            head = self.fq_head[m, gids]
            v = self.freeq[m, gids, head]
            self.fq_head[m, gids] = (head + 1) % self.GROUP_CAP[gids]
            self.fq_len[m, gids] -= 1
            self.owner[m, v] = pids
            self.credits[m, v] -= 1
            return v
        ovc = np.empty(len(m), dtype=np.int64)
        hi = heads.nonzero()[0]
        if len(hi):
            hm = m[hi]
            g = gids[hi]
            head = self.fq_head[hm, g]
            v = self.freeq[hm, g, head]
            self.fq_head[hm, g] = (head + 1) % self.GROUP_CAP[g]
            self.fq_len[hm, g] -= 1
            self.owner[hm, v] = pids[hi]
            self.credits[hm, v] -= 1
            ovc[hi] = v
        bi = (~heads).nonzero()[0]
        if len(bi):
            self.credits[m[bi], bvc[bi]] -= 1
            ovc[bi] = bvc[bi]
        return ovc

    def _arbitrate(self, cand_n, cand_m):
        """Matrix-arbitrate requests; returns the winner mask.

        Mirrors ``MatrixArbiter.grant``: every *requested* output port
        elects exactly one dominating input port and rotates it to the
        lowest priority, whether or not the caller uses the grant.  The
        matrix state is a total order throughout (initially i beats j
        for i < j; the winner drops to the bottom while everyone else
        keeps relative order), so the dominating requester is simply
        the one with the minimum LRU rank.
        """
        ip = cand_n % P
        r = self.arank[cand_m, ip]
        best = self._best
        best[cand_m] = 1 << 62
        np.minimum.at(best, cand_m, r)
        win = r == best[cand_m]
        wm = cand_m[win]
        self.arank[wm, ip[win]] = self._rank_next[wm]
        self._rank_next[wm] += 1
        return win

    def _msa2(self, t):
        used = self._used
        used[:] = False
        if self._mc:
            if self._bypass and self._la_n:
                self._lookahead_pass_mc(used)
            if self._s2_n:
                self._buffered_pass_mc(used)
            return
        if self._bypass and self._la_n:
            self._lookahead_pass(used)
        if self._s2_n:
            self._buffered_pass(used)

    def _route_ports(self, nsel, pids, pkt, mirror_adv=False):
        """Output port of each candidate plus its valiant phase.

        ``mirror_adv`` replays the receive-time phase advance for
        lookahead candidates: the lookahead word travels one hop ahead
        of its flit, so it reaches the waypoint router before the flit
        has been advanced.
        """
        r = (nsel // P) % self.R
        if self._o1turn:
            return self.ROUTE[self.p_ord[pids], r, self.p_dest[pids]], None
        if self._valiant:
            adv = (pkt & _ADV) != 0
            if mirror_adv:
                adv = adv | (r == self.p_w[pids])
            tgt = np.where(adv, self.p_dest[pids], self.p_w[pids])
            return self.ROUTE[0, r, tgt], adv
        return self._route_fixed[r, self.p_dest[pids]], None

    def _lookahead_pass(self, used):
        nsel = self.la_valid.nonzero()[0]
        vcs = self.la_vc[nsel]
        pkt = self.la_pkt[nsel]
        pids = pkt >> 3
        q, adv = self._route_ports(nsel, pids, pkt, mirror_adv=True)
        if adv is not None:
            # forward the advanced word so the next hop sees phase 1
            pkt = pkt | (adv.astype(np.int64) << 2)
            gids = self.GROUP_ID[self.p_mcls[pids], adv.astype(np.int64)]
        else:
            gids = self.p_gid[pids]
        m = nsel - nsel % P + q
        heads = (pkt & _HEAD) != 0
        # bypass preserves intra-VC order: the VC must be empty (the
        # bypass latch is always clear by mSA-II — ST precedes it).
        # Combined with the resource check into one filter round.
        ok, bvc = self._check_resources(m, pids, heads, gids)
        ok &= self.bocc[nsel, vcs] == 0
        oi = ok.nonzero()[0]
        if len(oi) == 0:
            return
        nsel, vcs, pkt, pids, q, m, heads, bvc, gids = (
            nsel[oi], vcs[oi], pkt[oi], pids[oi], q[oi], m[oi],
            heads[oi], bvc[oi], gids[oi],
        )
        win = self._arbitrate(nsel, m)
        wi = win.nonzero()[0]
        if len(wi) == 0:
            return
        nw = nsel[wi]
        mw = m[wi]
        qw = q[wi]
        ovc = self._commit_alloc(mw, pids[wi], heads[wi], bvc[wi], gids[wi])
        used[mw] = True
        self._forward_la(mw, qw, pkt[wi], ovc)
        self.st_valid[nw] = True
        self.st_bypass[nw] = True
        self.st_vc[nw] = vcs[wi]
        self.st_port[nw] = qw
        self.st_ovc[nw] = ovc
        self._st_n += len(nw)
        self.c_m2[nw] += 1

    def _buffered_pass(self, used):
        nsel = (self.s2_vc >= 0).nonzero()[0]
        if self._bypass and self._la_n:
            # the port's mSA-II mux selected the lookahead
            nsel = nsel[~self.la_valid[nsel]]
            if len(nsel) == 0:
                return
        vcs = self.s2_vc[nsel]
        slots = self.s2_slot[nsel]
        pkt = self.buf_pkt[nsel, vcs, slots]
        pids = pkt >> 3
        # buffered words were advanced on arrival, so no mirror here
        q, adv = self._route_ports(nsel, pids, pkt)
        if adv is not None:
            gids = self.GROUP_ID[self.p_mcls[pids], adv.astype(np.int64)]
        else:
            gids = self.p_gid[pids]
        m = nsel - nsel % P + q
        heads = (pkt & _HEAD) != 0
        ok, bvc = self._check_resources(m, pids, heads, gids)
        askable = ok & ~used[m]
        # nothing available: release the S2 register so mSA-I can pick
        # a different VC next cycle (no head-of-line squatting)
        ri = (~askable).nonzero()[0]
        if len(ri):
            self.buf_stage[nsel[ri], vcs[ri], slots[ri]] = _ST_NONE
            self.s2_vc[nsel[ri]] = -1
            self._s2_n -= len(ri)
        ai = askable.nonzero()[0]
        if len(ai) == 0:
            return
        nsel, vcs, slots, pkt, pids, q, m, heads, bvc, gids = (
            nsel[ai], vcs[ai], slots[ai], pkt[ai], pids[ai], q[ai],
            m[ai], heads[ai], bvc[ai], gids[ai],
        )
        win = self._arbitrate(nsel, m)
        wi = win.nonzero()[0]
        if len(wi) == 0:
            return
        nw = nsel[wi]
        mw = m[wi]
        qw = q[wi]
        ovc = self._commit_alloc(mw, pids[wi], heads[wi], bvc[wi], gids[wi])
        # unicast grants are always complete: mark GRANTED, free the S2
        # register, schedule the traversal
        self.buf_stage[nw, vcs[wi], slots[wi]] = _ST_GRANTED
        self._gr_n += len(wi)
        self._gr_port[nw] += 1
        self.s2_vc[nw] = -1
        self._s2_n -= len(wi)
        if self._bypass:
            self._forward_la(mw, qw, pkt[wi], ovc)
        self.st_valid[nw] = True
        self.st_bypass[nw] = False
        self.st_vc[nw] = vcs[wi]
        self.st_port[nw] = qw
        self.st_ovc[nw] = ovc
        self._st_n += len(nw)
        self.c_m2[nw] += 1

    def _lookahead_pass_mc(self, used):
        """Lookahead mSA-II with multicast candidates in the mix.

        A multicast lookahead asks for *every* port of its XY tree and
        bypasses all-or-nothing: resources are checked on the full port
        set before any arbitration (a failed candidate never requests,
        so no arbiter rotates for it), every per-port winner rotates
        its arbiter, and only candidates that won every requested port
        latch, allocate and mark their ports used.
        """
        nsel = self.la_valid.nonzero()[0]
        vcs = self.la_vc[nsel]
        pkt = self.la_pkt[nsel]
        pids = pkt >> 3
        base = nsel - nsel % P
        r_loc = (nsel // P) % self.R
        mcm = self.p_mcast[pids]
        heads = (pkt & _HEAD) != 0
        gids = self.p_gid[pids]
        C = len(nsel)
        bvc = np.zeros(C, dtype=np.int64)
        ok = np.zeros(C, dtype=bool)
        reqm = np.zeros((C, P), dtype=bool)
        ui = (~mcm).nonzero()[0]
        if len(ui):
            q_u, adv_u = self._route_ports(
                nsel[ui], pids[ui], pkt[ui], mirror_adv=True
            )
            if adv_u is not None:
                advw = adv_u.astype(np.int64)
                pkt[ui] = pkt[ui] | (advw << 2)
                gids[ui] = self.GROUP_ID[self.p_mcls[pids[ui]], advw]
            reqm[ui, q_u] = True
            ok_u, bvc_u = self._check_resources(
                base[ui] + q_u, pids[ui], heads[ui], gids[ui]
            )
            ok[ui] = ok_u
            bvc[ui] = bvc_u
        mi = mcm.nonzero()[0]
        if len(mi):
            masks = self.MC_PORTS[self.p_src[pids[mi]], r_loc[mi]]
            reqm[mi] = ((masks[:, None] >> self._pidx) & 1) != 0
            ptr = base[mi][:, None] + self._pidx
            fq = self.fq_len[ptr, gids[mi][:, None]] > 0
            ok[mi] = (fq | ~reqm[mi]).all(axis=1)
        ok &= self.bocc[nsel, vcs] == 0
        oi = ok.nonzero()[0]
        if len(oi) == 0:
            return
        nsel, vcs, pkt, pids, heads, gids, bvc, base, reqm = (
            nsel[oi], vcs[oi], pkt[oi], pids[oi], heads[oi], gids[oi],
            bvc[oi], base[oi], reqm[oi],
        )
        rows_c, rows_p = reqm.nonzero()
        win = self._arbitrate(nsel[rows_c], base[rows_c] + rows_p)
        nwon = np.zeros(len(nsel), dtype=np.int64)
        np.add.at(nwon, rows_c[win], 1)
        full = nwon == reqm.sum(axis=1)
        wr = win & full[rows_c]
        wrc = rows_c[wr]
        wrp = rows_p[wr]
        if len(wrc) == 0:
            return
        m_rows = base[wrc] + wrp
        ovc = self._commit_alloc(
            m_rows, pids[wrc], heads[wrc], bvc[wrc], gids[wrc]
        )
        used[m_rows] = True
        self._forward_la(m_rows, wrp, pkt[wrc], ovc)
        self.st_ovcp[nsel[wrc], wrp] = ovc
        pm = np.zeros(len(nsel), dtype=np.int64)
        np.add.at(pm, wrc, np.int64(1) << wrp)
        wc = full.nonzero()[0]
        nw = nsel[wc]
        self.st_valid[nw] = True
        self.st_bypass[nw] = True
        self.st_pop[nw] = True
        self.st_vc[nw] = vcs[wc]
        self.st_pmask[nw] = pm[wc]
        self._st_n += len(nw)
        self.c_m2[nw] += 1

    def _buffered_pass_mc(self, used):
        """Buffered mSA-II with incremental multicast grants.

        A buffered multicast asks only for the not-yet-granted ports of
        its tree (``mc_granted`` per input VC persists across rounds),
        wins them incrementally, and pops its buffer slot only on the
        round that completes the set.  An empty askable set releases
        the S2 register (the grant set persists on the flit).
        """
        nsel = (self.s2_vc >= 0).nonzero()[0]
        if self._bypass and self._la_n:
            # the port's mSA-II mux selected the lookahead
            nsel = nsel[~self.la_valid[nsel]]
            if len(nsel) == 0:
                return
        vcs = self.s2_vc[nsel]
        slots = self.s2_slot[nsel]
        pkt = self.buf_pkt[nsel, vcs, slots]
        pids = pkt >> 3
        base = nsel - nsel % P
        r_loc = (nsel // P) % self.R
        mcm = self.p_mcast[pids]
        heads = (pkt & _HEAD) != 0
        gids = self.p_gid[pids]
        C = len(nsel)
        bvc = np.zeros(C, dtype=np.int64)
        routem = np.zeros((C, P), dtype=bool)
        reqm = np.zeros((C, P), dtype=bool)
        ui = (~mcm).nonzero()[0]
        if len(ui):
            q_u, adv_u = self._route_ports(nsel[ui], pids[ui], pkt[ui])
            if adv_u is not None:
                gids[ui] = self.GROUP_ID[
                    self.p_mcls[pids[ui]], adv_u.astype(np.int64)
                ]
            routem[ui, q_u] = True
            ok_u, bvc_u = self._check_resources(
                base[ui] + q_u, pids[ui], heads[ui], gids[ui]
            )
            bvc[ui] = bvc_u
            reqm[ui, q_u] = ok_u & ~used[base[ui] + q_u]
        mi = mcm.nonzero()[0]
        if len(mi):
            masks = self.MC_PORTS[self.p_src[pids[mi]], r_loc[mi]]
            routem[mi] = ((masks[:, None] >> self._pidx) & 1) != 0
            granted = self.mc_granted[nsel[mi], vcs[mi]]
            remaining = routem[mi] \
                & (((granted[:, None] >> self._pidx) & 1) == 0)
            ptr = base[mi][:, None] + self._pidx
            fq = self.fq_len[ptr, gids[mi][:, None]] > 0
            reqm[mi] = remaining & fq & ~used[ptr]
        askany = reqm.any(axis=1)
        ri = (~askany).nonzero()[0]
        if len(ri):
            self.buf_stage[nsel[ri], vcs[ri], slots[ri]] = _ST_NONE
            self.s2_vc[nsel[ri]] = -1
            self._s2_n -= len(ri)
        ai = askany.nonzero()[0]
        if len(ai) == 0:
            return
        nsel, vcs, slots, pkt, pids, heads, gids, bvc, base, routem, \
            reqm = (
                nsel[ai], vcs[ai], slots[ai], pkt[ai], pids[ai],
                heads[ai], gids[ai], bvc[ai], base[ai], routem[ai],
                reqm[ai],
            )
        rows_c, rows_p = reqm.nonzero()
        win = self._arbitrate(nsel[rows_c], base[rows_c] + rows_p)
        wrc = rows_c[win]
        wrp = rows_p[win]
        m_rows = base[wrc] + wrp
        ovc = self._commit_alloc(
            m_rows, pids[wrc], heads[wrc], bvc[wrc], gids[wrc]
        )
        if self._bypass:
            self._forward_la(m_rows, wrp, pkt[wrc], ovc)
        self.st_ovcp[nsel[wrc], wrp] = ovc
        grantm = np.zeros(len(nsel), dtype=np.int64)
        np.add.at(grantm, wrc, np.int64(1) << wrp)
        gi = (grantm != 0).nonzero()[0]
        ng = nsel[gi]
        gvc = vcs[gi]
        newg = self.mc_granted[ng, gvc] | grantm[gi]
        self.mc_granted[ng, gvc] = newg
        routebits = (routem[gi] * (np.int64(1) << self._pidx)) \
            .sum(axis=1)
        fully = (routebits & ~newg) == 0
        fi = fully.nonzero()[0]
        if len(fi):
            nf = ng[fi]
            self.buf_stage[nf, gvc[fi], slots[gi][fi]] = _ST_GRANTED
            self._gr_n += len(fi)
            self._gr_port[nf] += 1
            self.s2_vc[nf] = -1
            self._s2_n -= len(fi)
        self.st_valid[ng] = True
        self.st_bypass[ng] = False
        self.st_pop[ng] = fully
        self.st_vc[ng] = gvc
        self.st_pmask[ng] = grantm[gi]
        self._st_n += len(ng)
        self.c_m2[ng] += 1

    def _forward_la(self, m, q, pkt, ovc):
        """NRC + lookahead generation for granted non-local branches."""
        fwd = (q != LOCAL).nonzero()[0]
        if len(fwd) == 0:
            return
        mf = m[fwd]
        dst = self.DST_IN[mf]
        self.lv_valid[dst] = True
        self.lv_pkt[dst] = pkt[fwd]
        self.lv_vc[dst] = ovc[fwd]
        self.c_las[mf] += 1
        self._lv_n += len(fwd)

    def _msa1(self, t):
        ports = ((self.s2_vc < 0) & self.bocc.any(axis=1)).nonzero()[0]
        if len(ports) == 0:
            return
        heads = self.bhead[ports]
        occ = self.bocc[ports]
        ar = np.arange(len(ports))
        grp = self._gr_port[ports] if self._gr_n else None
        if grp is None or not grp.any():
            # no GRANTED flit at any candidate port: every occupied VC
            # is eligible, and every selected port has one (bocc.any)
            elig = occ > 0
            rank = self.RANK_TAB[self.rrptr[ports]]
            rank[~elig] = self.V
            win = rank.argmin(axis=1)
            slot = heads[ar, win]
        else:
            # a leading GRANTED flit (awaiting next cycle's traversal)
            # is skipped by oldest_unrequested; anything behind it
            # bids.  Only ports actually holding a GRANTED flit pay
            # the stage gather.
            granted = np.zeros(occ.shape, dtype=bool)
            gi = grp.nonzero()[0]
            pg = ports[gi]
            stage_h = self.buf_stage[
                pg[:, None], self._vcidx[None, :], heads[gi]
            ]
            granted[gi] = (stage_h == _ST_GRANTED) & (occ[gi] > 0)
            elig = occ > granted
            emask = elig.any(axis=1)
            ei = emask.nonzero()[0]
            if len(ei) == 0:
                return
            if len(ei) < len(ports):
                ports = ports[ei]
                heads = heads[ei]
                granted = granted[ei]
                elig = elig[ei]
                ar = ar[: len(ei)]
            rank = self.RANK_TAB[self.rrptr[ports]]
            rank[~elig] = self.V
            win = rank.argmin(axis=1)
            slot = (heads[ar, win] + granted[ar, win]) % self.D
        self.buf_stage[ports, win, slot] = _ST_S2
        self.s2_vc[ports] = win
        self.s2_slot[ports] = slot
        self.rrptr[ports] = (win + 1) % self.V
        self._s2_n += len(ports)
        self.c_m1[ports] += 1

    # ------------------------------------------------------------------
    # drain predicate and watchdog
    # ------------------------------------------------------------------

    def _quiet(self):
        """Exact equivalent of ``MeshNetwork.quiescent``: no payload in
        flight on any wire, no router-local work, no NIC backlog."""
        return (
            self._fl_n == 0 and self._lv_n == 0 and self._la_n == 0
            and self._ej_n == 0 and self._st_n == 0 and self._pend_n == 0
            and self._cr_n[0] == 0 and self._cr_n[1] == 0
            and self._s2_n == 0 and self._bocc_n == 0
            and not self.q_len.any()
        )

    def _lane_quiet(self, b):
        """The quiescence predicate restricted to one replica lane."""
        s = slice(b * self.N1, (b + 1) * self.N1)
        r = slice(b * self.R, (b + 1) * self.R)
        tr = slice(self.N + b * self.R, self.N + (b + 1) * self.R)
        return (
            not self.fl_valid[s].any()
            and not self.lv_valid[s].any()
            and not self.la_valid[s].any()
            and not self.st_valid[s].any()
            and not self.ej_valid[r].any()
            and not self.pend_valid[r].any()
            and not self.cr_valid[:, s].any()
            and not self.cr_valid[:, tr].any()
            and not (self.s2_vc[s] >= 0).any()
            and not self.bocc[s].any()
            and not self.q_len[r].any()
        )

    def _check_watchdog(self):
        if self._net_ejections != self._last_progress:
            self._last_progress = self._net_ejections
            self._watchdog_start = self.cycle
            self._watchdog_armed = False
        elif self.cycle - self._watchdog_start > WATCHDOG_CYCLES:
            if self._quiet():
                self._watchdog_armed = False
            elif self._watchdog_armed:
                raise SimulationStalled(self.cycle, WATCHDOG_CYCLES)
            else:
                self._watchdog_armed = True
            self._watchdog_start = self.cycle

    def _lane_ej_counts(self):
        """Total flits ejected per lane (from the per-router counters,
        so the hot loop carries no extra bookkeeping)."""
        return self.c_ej.reshape(self.B, self.R).sum(axis=1)

    def _check_watchdog_batch(self):
        """Per-lane watchdog: a stalled replica is killed (its state
        zeroed, its sources masked) instead of raising, so the other
        lanes keep running lockstep.  The killed lane's counters stay
        frozen at their trip-time values and its stop reason is
        recorded for the per-lane summaries.

        The check is amortised: no lane can trip before ``_wd_next``
        (the earliest stale horizon observed last time), so the hot
        loop pays a single integer compare per cycle.  A lane that
        made progress inside a skipped span is re-timestamped at check
        time — later than the actual ejection, which only makes the
        safety net more lenient, never byte-visible on healthy runs.
        """
        if self.cycle < self._wd_next:
            return
        counts = self._lane_ej_counts()
        prog = counts != self._lane_progress
        if prog.any():
            self._lane_progress[prog] = counts[prog]
            self._lane_wd_start[prog] = self.cycle
            self._lane_wd_armed[prog] = False
        stale = (
            self._lane_alive & ~prog
            & (self.cycle - self._lane_wd_start > WATCHDOG_CYCLES)
        )
        for b in stale.nonzero()[0]:
            if self._lane_quiet(b):
                self._lane_wd_armed[b] = False
            elif self._lane_wd_armed[b]:
                self._lane_stop[b] = "watchdog"
                self._kill_lane(int(b))
                continue
            else:
                self._lane_wd_armed[b] = True
            self._lane_wd_start[b] = self.cycle
        alive = self._lane_alive
        if alive.any():
            self._wd_next = (
                int(self._lane_wd_start[alive].min()) + WATCHDOG_CYCLES + 1
            )
        else:
            self._wd_next = self.cycle + WATCHDOG_CYCLES + 1

    def _kill_lane(self, b):
        """Zero one lane's in-flight state and mask its sources,
        keeping the global emptiness counters consistent."""
        s = slice(b * self.N1, (b + 1) * self.N1)
        r = slice(b * self.R, (b + 1) * self.R)
        tr = slice(self.N + b * self.R, self.N + (b + 1) * self.R)
        self._fl_n -= int(self.fl_valid[s].sum())
        self.fl_valid[s] = False
        self._lv_n -= int(self.lv_valid[s].sum())
        self.lv_valid[s] = False
        self._la_n -= int(self.la_valid[s].sum())
        self.la_valid[s] = False
        self._st_n -= int(self.st_valid[s].sum())
        self.st_valid[s] = False
        self._ej_n -= int(self.ej_valid[r].sum())
        self.ej_valid[r] = False
        self._pend_n -= int(self.pend_valid[r].sum())
        self.pend_valid[r] = False
        for slot in (0, 1):
            self._cr_n[slot] -= int(self.cr_valid[slot, s].sum())
            self._cr_n[slot] -= int(self.cr_valid[slot, tr].sum())
        self.cr_valid[:, s] = False
        self.cr_valid[:, tr] = False
        self._s2_n -= int((self.s2_vc[s] >= 0).sum())
        self.s2_vc[s] = -1
        # count the GRANTED flits actually held in this lane's rings
        ring = (np.arange(self.D)[None, None, :]
                - self.bhead[s][:, :, None]) % self.D
        held = ring < self.bocc[s][:, :, None]
        self._gr_n -= int(
            (held & (self.buf_stage[s] == _ST_GRANTED)).sum()
        )
        self._gr_port[s] = 0
        self._bocc_n -= int(self.bocc[s].sum())
        self.bocc[s] = 0
        self.buf_stage[s] = _ST_NONE
        self.mc_granted[s] = 0
        self.q_len[r] = 0
        self.backlog[r] = False
        self._bl_any = bool(self.backlog.any())
        self._src_live[r] = False
        self._any_dead = True
        self._lane_alive[b] = False

    # ------------------------------------------------------------------
    # measurement surface
    # ------------------------------------------------------------------

    def run(self, cycles):
        step = self._step
        for _ in range(cycles):
            step()

    def run_experiment(self, warmup=1_000, measure=10_000, drain=5_000):
        """Byte-identical mirror of ``Simulator.run_experiment``."""
        if self.B > 1:
            raise ValueError(
                "run_experiment on a batched ArraySimulator is "
                "ambiguous; use run_experiment_batch for per-seed "
                "WindowStats"
            )
        stop_reason = "completed"
        try:
            self.run(warmup)
        except SimulationStalled:
            stop_reason = "watchdog"
        start_msgs = self._mcount
        start_byp = int(self.c_byp.sum())
        start_xin = int(self.c_st.sum())
        start_ej = int(self.n_ej.sum())
        if stop_reason == "completed":
            try:
                self.run(measure)
            except SimulationStalled:
                stop_reason = "watchdog"
        end_ej = int(self.n_ej.sum())
        end_msgs = self._mcount
        # stop generating traffic, then drain
        had_sources = self._sources_on
        self._sources_on = False
        drained = 0
        if stop_reason == "completed":
            try:
                while drained < drain and not self._quiet():
                    self._step()
                    drained += 1
            except SimulationStalled:
                stop_reason = "watchdog"
            else:
                if drained >= drain and not self._quiet():
                    stop_reason = "max-cycles"
        self._sources_on = had_sources
        delta_byp = int(self.c_byp.sum()) - start_byp
        delta_xin = int(self.c_st.sum()) - start_xin
        rate = (self._traffic.injection_rate
                if self._traffic is not None else float("nan"))
        return summarize_window(
            self.cfg,
            self.name,
            rate,
            measure,
            self._message_views(start_msgs, end_msgs),
            end_ej - start_ej,
            delta_byp,
            delta_xin,
            stop_reason=stop_reason,
        )

    def run_experiment_batch(self, warmup=1_000, measure=10_000,
                             drain=5_000):
        """One window per replica lane, all lanes stepped in lockstep.

        Lane *k*'s ``WindowStats`` is byte-identical to a single-seed
        run at ``seeds[k]``: the lanes share no draw streams and no
        router state, only the python/numpy dispatch overhead.  A
        stalled lane is killed by the per-lane watchdog (reported as
        ``stop_reason="watchdog"``); the drain budget is shared, so a
        lane still busy when it runs out reports ``"max-cycles"``.
        """
        if self.B == 1:
            return [self.run_experiment(
                warmup=warmup, measure=measure, drain=drain
            )]
        self.run(warmup)
        start_msgs = self._lane_msgs.copy()
        start_byp = self._lane_port_sums(self.c_byp)
        start_xin = self._lane_port_sums(self.c_st)
        start_ej = self._lane_node_sums(self.n_ej)
        self.run(measure)
        end_ej = self._lane_node_sums(self.n_ej)
        end_msgs = self._lane_msgs.copy()
        had_sources = self._sources_on
        self._sources_on = False
        drained = 0
        while drained < drain and not self._quiet():
            self._step()
            drained += 1
        exhausted = drained >= drain and not self._quiet()
        self._sources_on = had_sources
        delta_byp = self._lane_port_sums(self.c_byp) - start_byp
        delta_xin = self._lane_port_sums(self.c_st) - start_xin
        rate = (self._traffic.injection_rate
                if self._traffic is not None else float("nan"))
        out = []
        for b in range(self.B):
            stop = self._lane_stop[b]
            if stop == "completed" and exhausted \
                    and not self._lane_quiet(b):
                stop = "max-cycles"
            out.append(summarize_window(
                self.cfg,
                self.name,
                rate,
                measure,
                self._message_views(
                    int(start_msgs[b]), int(end_msgs[b]), lane=b
                ),
                int(end_ej[b] - start_ej[b]),
                int(delta_byp[b]),
                int(delta_xin[b]),
                stop_reason=stop,
            ))
        return out

    def activity(self):
        """Aggregate router activity since construction (power models)."""
        return self.network.total_router_activity()

    # ------------------------------------------------------------------
    # stats materialisation
    # ------------------------------------------------------------------

    def _lane_port_sums(self, arr):
        return arr.reshape(self.B, self.N1).sum(axis=1)

    def _lane_node_sums(self, arr):
        return arr.reshape(self.B, self.R).sum(axis=1)

    def _lane_count(self, b):
        return int(self._lane_msgs[b]) if self.B > 1 else self._mcount

    def _message_views(self, start, end, lane=0):
        creation = self.p_creation
        completion = self.p_completion
        nflits = self.p_nflits
        mcast = self.p_mcast
        if self.B > 1:
            sel = (self.p_lane[: self._mcount] == lane).nonzero()[0]
            idx = sel[start:end]
        else:
            idx = range(start, end)
        return [
            _MsgView(int(creation[i]), int(completion[i]),
                     int(nflits[i]), bool(mcast[i]))
            for i in idx
        ]

    def _fold(self, arr, lane):
        lo = lane * self.N1
        return arr[lo:lo + self.N1].reshape(self.R, P).sum(axis=1)

    def _router_counters(self, lane=0):
        bw = self._fold(self.c_bw, lane)
        br = self._fold(self.c_br, lane)
        st = self._fold(self.c_st, lane)
        byp = self._fold(self.c_byp, lane)
        link = self._fold(self.c_link, lane)
        m1 = self._fold(self.c_m1, lane)
        m2 = self._fold(self.c_m2, lane)
        las = self._fold(self.c_las, lane)
        lar = self._fold(self.c_lar, lane)
        ej0 = lane * self.R
        if self._mc:
            xout = self._fold(self.c_xout, lane)
            credits = byp + br
        else:
            # unicast: every traversal has one branch and pops
            xout = st
            credits = st
        out = []
        for r in range(self.R):
            out.append(ActivityCounters(
                buffer_writes=int(bw[r]),
                buffer_reads=int(br[r]),
                xbar_input_traversals=int(st[r]),
                xbar_output_traversals=int(xout[r]),
                link_traversals=int(link[r]),
                ejections=int(self.c_ej[ej0 + r]),
                bypasses=int(byp[r]),
                msa1_grants=int(m1[r]),
                msa2_grants=int(m2[r]),
                la_sent=int(las[r]),
                la_received=int(lar[r]),
                credits_sent=int(credits[r]),
            ))
        return out

    def _nic_counters(self, lane=0):
        lo = lane * self.R
        out = []
        for r in range(self.R):
            out.append(ActivityCounters(
                injections=int(self.n_inj[lo + r]),
                ejected_flits=int(self.n_ej[lo + r]),
                messages_submitted=int(self.n_sub[lo + r]),
                la_sent=int(self.n_las[lo + r]),
            ))
        return out
