"""The struct-of-arrays cycle kernel (DESIGN.md §9).

Layout
------
Routers are flattened: with ``R = k*k`` routers and ``P = 5`` ports,
input port ``p`` of router ``r`` is flat index ``n = r*P + p`` and the
matching output port is the same flat index on the output side.  Every
piece of per-port pipeline state — VC buffers, the S2 outport-request
register, the scheduled-ST register, lookahead and bypass latches —
is a preallocated numpy array over ``n`` (and ``[n, vc, slot]`` for
the buffers).  Credit trackers are unified: tracker ``m < R*P`` is
router output port ``m`` and tracker ``R*P + r`` is NIC ``r``.

Channels collapse into receiver-indexed registers.  Flit, lookahead,
injection and ejection wires have delay one and at most one payload
per wire per cycle, and within a cycle every read of such a wire
(phase ``receive``) precedes every write (``st``/``msa2``/NIC step),
so a single slot per receiver is exact.  Credit wires have delay two
and at most one credit per wire per cycle, so a two-slot ping-pong
indexed by ``arrival_cycle % 2`` is exact for the same reason.

Performance notes
-----------------
At small radix the cost of a numpy pass is dominated by per-op
dispatch, not element count, so the kernel is written to minimise op
*count*: flit identity travels as one packed word (``pid << 2 |
flags``), emptiness checks are plain Python integers maintained at the
mutation sites instead of array scans, activity counters are per-port
arrays bumped with unique-index fancy adds (every event set touches
each port at most once per cycle — a pinned pipeline invariant) and
folded to per-router view lazily, and the NIC front end (injection
draws, VC allocation, class round-robin) runs as vectorized passes
over numpy ring queues.

Draw-stream contract
--------------------
PRBS-31 streams live in int64 state arrays and are advanced with the
same two-shift/xor ``next_word(24)`` batch step as
:class:`repro.traffic.prbs.PRBSGenerator`, under masks that replicate
the object backend's *conditional* draws exactly: a zero-rate chain
state consumes no main-stream word, a ``leave == 0`` state consumes
no chain word, deterministic patterns consume no destination word and
o1turn consumes one routing-stream bit per unicast packet header.
Initial states are produced by the tested scalar constructors
(seed diffusion, the stationary-distribution chain draw), then lifted
into the arrays — so the very first draw already matches the oracle.

Everything observable — WindowStats, per-router and per-NIC
ActivityCounters, stop reasons, watchdog behaviour — is byte-identical
to ``backend="object"`` for every workload this kernel accepts; the
equivalence suite pins that claim across the injection x routing x
pattern matrix.
"""

from __future__ import annotations

import numpy as np

from repro.noc.metrics import ActivityCounters, summarize_window
from repro.noc.ports import EAST, LOCAL, NORTH, NUM_PORTS, OPPOSITE, SOUTH, WEST
from repro.noc.routing import _ROUTING_STREAM_SALT, coords, node_at
from repro.noc.simulator import WATCHDOG_CYCLES, SimulationStalled
from repro.traffic.prbs import PRBSGenerator, salted_stream_seed

P = NUM_PORTS
_MASK31 = (1 << 31) - 1
#: packed flit word: ``pid << 2 | flags`` with HEAD/TAIL flag bits
_HEAD = 1
_TAIL = 2
#: buf_stage encoding (mirrors Flit.stage None / "S2" / "GRANTED")
_ST_NONE, _ST_S2, _ST_GRANTED = 0, 1, 2

#: routing algorithms the kernel can compile (valiant rewrites headers
#: en route, which only the object backend models)
_SUPPORTED_ROUTING = ("o1turn", "xy", "yx")


def _unsupported(what):
    return ValueError(
        f"backend=\"array\" does not support {what}; "
        f"use backend=\"object\" (see the support matrix in "
        f"repro/noc/array_backend/__init__.py and DESIGN.md §9)"
    )


def _word24(state):
    """Vectorized ``PRBSGenerator.next_word(24)`` on an int64 array."""
    word = ((state >> 7) ^ (state >> 4)) & 0xFFFFFF
    return word, ((state << 24) | word) & _MASK31


class _MsgView:
    """Lightweight stand-in for :class:`repro.noc.flit.Message` with
    exactly the surface :func:`summarize_window` consumes."""

    __slots__ = ("creation_cycle", "completion_cycle", "flits_per_packet")
    is_multicast = False

    def __init__(self, creation, completion, flits):
        self.creation_cycle = creation
        self.completion_cycle = None if completion < 0 else completion
        self.flits_per_packet = flits

    @property
    def complete(self):
        return self.completion_cycle is not None

    @property
    def latency(self):
        return self.completion_cycle - self.creation_cycle


class _ArrayNetwork:
    """Stats facade matching the ``Simulator.network`` surface."""

    def __init__(self, sim):
        self._sim = sim

    @property
    def cfg(self):
        return self._sim.cfg

    @property
    def cycles(self):
        return self._sim._net_cycles

    @property
    def ejections(self):
        return self._sim._net_ejections

    @property
    def router_stats(self):
        return self._sim._router_counters()

    @property
    def nic_stats(self):
        return self._sim._nic_counters()

    @property
    def messages(self):
        return self._sim._message_views(0, self._sim._mcount)

    def total_router_activity(self):
        agg = ActivityCounters()
        for c in self.router_stats:
            agg = agg + c
        agg.cycles += self.cycles * self._sim.R
        return agg

    def total_nic_activity(self):
        agg = ActivityCounters()
        for c in self.nic_stats:
            agg = agg + c
        agg.cycles += self.cycles * self._sim.R
        return agg


class ArraySimulator:
    """Struct-of-arrays drop-in for :class:`repro.noc.simulator.Simulator`.

    Construct it directly or via ``Simulator(..., backend="array")``.
    The constructor surface, :meth:`run`, :meth:`run_experiment`,
    :meth:`activity` and the ``network`` stats facade match the object
    backend; unsupported workload axes raise ``ValueError`` at attach
    or construction time instead of silently diverging.
    """

    backend = "array"

    def __init__(self, config, traffic=None, name="", gated=True):
        if config.separate_st_lt:
            raise _unsupported("the split ST/LT pipeline (separate_st_lt)")
        if config.routing.name not in _SUPPORTED_ROUTING:
            raise _unsupported(f"{config.routing.name!r} routing")
        self.cfg = config
        self.name = name or ("proposed" if config.bypass else "baseline")
        self.gated = gated
        self.cycle = 0
        self.obs = None
        self.faults = None
        self._bypass = config.bypass
        self._last_progress = 0
        self._watchdog_start = 0
        self._watchdog_armed = False
        self._build_static()
        self._build_state()
        self.network = _ArrayNetwork(self)
        self._traffic = None
        self._sources_on = False
        if traffic is not None:
            self.attach_traffic(traffic)

    # ------------------------------------------------------------------
    # compilation: geometry, routing and VC tables
    # ------------------------------------------------------------------

    def _build_static(self):
        cfg = self.cfg
        k = cfg.k
        R = self.R = k * k
        N = self.N = R * P
        self.T = N + R  # trackers: router out ports, then NICs
        V = self.V = cfg.num_vcs
        self.D = max(spec.depth for spec in cfg.vcs)

        # link topology: downstream input port of each output port, the
        # tracker each input port returns credits to
        dst_in = np.full(N, -1, dtype=np.int64)
        cred_target = np.full(N, -1, dtype=np.int64)
        for r in range(R):
            x, y = coords(r, k)
            cred_target[r * P + LOCAL] = N + r  # NIC tracker
            for port, (nx, ny) in (
                (NORTH, (x, y + 1)),
                (EAST, (x + 1, y)),
                (SOUTH, (x, y - 1)),
                (WEST, (x - 1, y)),
            ):
                if not (0 <= nx < k and 0 <= ny < k):
                    continue
                nb = node_at(nx, ny, k)
                dst_in[r * P + port] = nb * P + OPPOSITE[port]
                cred_target[r * P + port] = nb * P + OPPOSITE[port]
        self.DST_IN = dst_in
        self.CRED_TARGET = cred_target

        # unicast route tables: output port by (dimension order, router,
        # destination); 0 = XY, 1 = YX — o1turn headers index into this
        route = np.empty((2, R, R), dtype=np.int64)
        for r in range(R):
            x, y = coords(r, k)
            for d in range(R):
                dx, dy = coords(d, k)
                if dx < x:
                    xy = WEST
                elif dx > x:
                    xy = EAST
                elif dy > y:
                    xy = NORTH
                elif dy < y:
                    xy = SOUTH
                else:
                    xy = LOCAL
                if dy > y:
                    yx = NORTH
                elif dy < y:
                    yx = SOUTH
                elif dx > x:
                    yx = EAST
                elif dx < x:
                    yx = WEST
                else:
                    yx = LOCAL
                route[0, r, d] = xy
                route[1, r, d] = yx
        self.ROUTE = route

        # VC free-queue groups keyed (message class, routing phase)
        phases = cfg.vc_phases
        groups = {}
        members = []
        vc_group = np.empty(V, dtype=np.int64)
        for i, spec in enumerate(cfg.vcs):
            key = (int(spec.mclass), phases[i])
            g = groups.get(key)
            if g is None:
                g = groups[key] = len(groups)
                members.append([])
            vc_group[i] = g
            members[g].append(i)
        G = self.G = len(groups)
        self.VC_GROUP = vc_group
        self.GROUP_CAP = np.array([len(m) for m in members], dtype=np.int64)
        n_phases = max(p for _, p in groups) + 1
        gid = np.full((2, n_phases), -1, dtype=np.int64)
        for (mc, ph), g in groups.items():
            gid[mc, ph] = g
        self.GROUP_ID = gid
        self.VC_DEPTH = np.array([spec.depth for spec in cfg.vcs],
                                 dtype=np.int64)
        self._freeq_init = np.zeros((G, V), dtype=np.int64)
        for g, mem in enumerate(members):
            self._freeq_init[g, : len(mem)] = mem
        self._vcidx = np.arange(V)

    def _build_state(self):
        N, V, D, T, R, G = self.N, self.V, self.D, self.T, self.R, self.G
        z = np.zeros
        # input VC buffers (circular, per [port, vc])
        self.buf_pkt = z((N, V, D), dtype=np.int64)
        self.buf_stage = z((N, V, D), dtype=np.int64)
        self.bhead = z((N, V), dtype=np.int64)
        self.bocc = z((N, V), dtype=np.int64)
        # per-port registers
        self.s2_vc = np.full(N, -1, dtype=np.int64)
        self.s2_slot = z(N, dtype=np.int64)
        self.rrptr = z(N, dtype=np.int64)  # mSA-I round-robin pointers
        self.st_valid = z(N, dtype=bool)
        self.st_bypass = z(N, dtype=bool)
        self.st_vc = z(N, dtype=np.int64)
        self.st_port = z(N, dtype=np.int64)
        self.st_ovc = z(N, dtype=np.int64)
        self.latch_pkt = z(N, dtype=np.int64)
        # channel registers (receiver indexed; delay-one single slot)
        self.fl_valid = z(N, dtype=bool)
        self.fl_pkt = z(N, dtype=np.int64)
        self.fl_vc = z(N, dtype=np.int64)
        self.lv_valid = z(N, dtype=bool)  # lookahead in flight
        self.lv_pkt = z(N, dtype=np.int64)
        self.lv_vc = z(N, dtype=np.int64)
        self.la_valid = z(N, dtype=bool)  # la_now latch
        self.la_pkt = z(N, dtype=np.int64)
        self.la_vc = z(N, dtype=np.int64)
        self.ej_valid = z(R, dtype=bool)
        self.ej_pkt = z(R, dtype=np.int64)
        self.ej_vc = z(R, dtype=np.int64)
        # credit ping-pong (delay two)
        self.cr_valid = z((T, 2), dtype=bool)
        self.cr_vc = z((T, 2), dtype=np.int64)
        self.cr_tail = z((T, 2), dtype=bool)
        # unified credit trackers (router out ports + NICs)
        self.owner = np.full((T, V), -1, dtype=np.int64)
        self.credits = np.tile(self.VC_DEPTH, (T, 1))
        self.freeq = np.tile(self._freeq_init, (T, 1, 1))
        self.fq_head = z((T, G), dtype=np.int64)
        self.fq_len = np.tile(self.GROUP_CAP, (T, 1))
        # matrix arbiters as LRU rank vectors: the matrix state always
        # encodes a total order (winner drops to the bottom, everyone
        # else keeps relative order), so "beats all other requesters"
        # is just "minimum rank".  Ranks stay distinct per port because
        # every update assigns a fresh per-port counter value.
        self.arank = np.tile(np.arange(P, dtype=np.int64), (N, 1))
        self._rank_next = np.full(N, P, dtype=np.int64)
        # NIC state: ring queues per (node, message class)
        self.pend_valid = z(R, dtype=bool)
        self.pend_pkt = z(R, dtype=np.int64)
        self.pend_vc = z(R, dtype=np.int64)
        self.nrr = z(R, dtype=np.int64)  # message-class round robin
        self._qcap = 64
        self.q_pkt = z((R, 2, self._qcap), dtype=np.int64)
        self.q_head = z((R, 2), dtype=np.int64)
        self.q_len = z((R, 2), dtype=np.int64)
        self.backlog = z(R, dtype=bool)
        # packet/message tables (pid == mid for unicast; grown on demand)
        cap = 1024
        self._cap = cap
        self._mcount = 0
        self.p_dest = z(cap, dtype=np.int64)
        self.p_ord = z(cap, dtype=np.int64)
        self.p_gid = z(cap, dtype=np.int64)
        self.p_nflits = z(cap, dtype=np.int64)
        self.p_creation = z(cap, dtype=np.int64)
        self.p_completion = z(cap, dtype=np.int64)
        # activity counters: per input/output port (folded per router
        # lazily); c_st covers credits_sent == xbar_in == xbar_out
        for cname in ("c_bw", "c_br", "c_st", "c_byp", "c_link",
                      "c_m1", "c_m2", "c_las", "c_lar"):
            setattr(self, cname, z(N, dtype=np.int64))
        for cname in ("c_ej", "n_inj", "n_ej", "n_sub", "n_las"):
            setattr(self, cname, z(R, dtype=np.int64))
        self._net_cycles = 0
        self._net_ejections = 0
        # emptiness counters (maintained at the mutation sites so the
        # hot loop never scans an array just to find it empty)
        self._fl_n = 0
        self._lv_n = 0
        self._la_n = 0
        self._ej_n = 0
        self._st_n = 0
        self._pend_n = 0
        self._cr_n = [0, 0]
        self._bocc_n = 0
        self._s2_n = 0
        # arbitration scratch
        self._best = z(N, dtype=np.int64)
        self._used = z(N, dtype=bool)
        # GRANTED flits in flight (set at buffered grant, cleared at
        # the traversal next cycle) — lets mSA-I skip the stage gather
        self._gr_n = 0
        self._bl_any = False

    # ------------------------------------------------------------------
    # workload attachment
    # ------------------------------------------------------------------

    def attach_traffic(self, traffic):
        """Compile a bound :class:`SyntheticTraffic` into array form."""
        mix = getattr(traffic, "mix", None)
        process = getattr(traffic, "process", None)
        if mix is None or process is None:
            raise _unsupported(
                f"traffic source {type(traffic).__name__} (only "
                f"SyntheticTraffic workloads compile to arrays)"
            )
        if any(c.broadcast for c in mix.components):
            raise _unsupported("multicast/broadcast traffic mixes")
        traffic.bind(self.cfg)
        self._traffic = traffic
        self._packet_rate = traffic._packet_rate
        R = self.R
        # main traffic streams: the scalar constructor performs the
        # tested seed diffusion; we lift its register state
        tstate = np.empty(R, dtype=np.int64)
        for node in range(R):
            node_seed = (traffic.seed if traffic.identical_generators
                         else traffic.seed + node)
            tstate[node] = PRBSGenerator(order=31, seed=node_seed)._state
        self.tstate = tstate
        # modulated injection: lift each node's ChainState
        steppers = traffic._steppers
        if steppers is None:
            self.cstate = None
        else:
            self.cstate = np.empty(R, dtype=np.int64)
            self.chstate = np.empty(R, dtype=np.int64)
            for node in range(R):
                chain = steppers[node]
                self.cstate[node] = chain.chain._state
                self.chstate[node] = chain.state
            self.probs_tab = np.array(steppers[0].probs, dtype=np.float64)
            self.leave_tab = np.array(steppers[0].leave, dtype=np.float64)
            self.n_states = len(self.probs_tab)
        # mix selection: searchsorted over the cumulative weights plus
        # the oracle's fallback component as a trailing entry
        cum = list(mix.cumulative_weights())
        comps = [c for _, c in cum] + [mix.components[-1]]
        self._cum_arr = np.array([w for w, _ in cum], dtype=np.float64)
        self._comp_mclass = np.array([int(c.mclass) for c in comps],
                                     dtype=np.int64)
        self._comp_nflits = np.array([c.num_flits for c in comps],
                                     dtype=np.int64)
        # destination pattern
        pattern = traffic.pattern
        if traffic._dest_table is not None:
            self._dest_arr = np.array(
                [next(iter(d)) for d in traffic._dest_table], dtype=np.int64
            )
            self._pattern_kind = "table"
        elif pattern.name == "uniform":
            self._pattern_kind = "uniform"
        elif pattern.name == "hotspot":
            self._pattern_kind = "hotspot"
            self._hot_arr = np.array(pattern.hot_nodes, dtype=np.int64)
            self._hot_fraction = pattern.fraction
        else:
            raise _unsupported(f"the stochastic {pattern.name!r} pattern")
        # routing header streams (only o1turn draws from them)
        routing = self.cfg.routing
        self._o1turn = routing.name == "o1turn"
        self._route_fixed = self.ROUTE[1 if routing.name == "yx" else 0]
        if self._o1turn:
            self.rstate = np.empty(R, dtype=np.int64)
            for node in range(R):
                seed = salted_stream_seed(
                    traffic.seed, _ROUTING_STREAM_SALT, node
                )
                self.rstate[node] = PRBSGenerator(order=31, seed=seed)._state
        self._sources_on = True
        # queues start empty, so nothing is backlogged until a submit
        self.backlog[:] = False
        self._bl_any = False

    def attach_faults(self, model, seed=None):
        raise _unsupported("fault injection")

    # ------------------------------------------------------------------
    # cycle phases
    # ------------------------------------------------------------------

    def step(self):
        self._step()

    def _step(self):
        t = self.cycle
        self._receive(t)
        if self._ej_n:
            self._nic_receive(t)
        self._nic_step(t)
        if self._st_n:
            self._st(t)
        if (self._bypass and self._la_n) or self._s2_n:
            self._msa2(t)
        if self._bocc_n:
            self._msa1(t)
        self._net_cycles += 1
        self._check_watchdog()
        self.cycle += 1

    def _receive(self, t):
        # credit arrivals (a credit sent at t-2 lands in slot t&1 now)
        slot = t & 1
        if self._cr_n[slot]:
            self._cr_n[slot] = 0
            cv = self.cr_valid[:, slot]
            tr = cv.nonzero()[0]
            cv[:] = False
            vcs = self.cr_vc[tr, slot]
            self.credits[tr, vcs] += 1
            tails = self.cr_tail[tr, slot]
            if tails.any():
                trt = tr[tails]
                vct = vcs[tails]
                self.owner[trt, vct] = -1
                g = self.VC_GROUP[vct]
                cap = self.GROUP_CAP[g]
                pos = (self.fq_head[trt, g] + self.fq_len[trt, g]) % cap
                self.freeq[trt, g, pos] = vct
                self.fq_len[trt, g] += 1
        # flit arrivals: bypass reservations latch, the rest buffer
        if self._fl_n:
            self._fl_n = 0
            narr = self.fl_valid.nonzero()[0]
            self.fl_valid[:] = False
            pkt = self.fl_pkt[narr]
            vcs = self.fl_vc[narr]
            byp = self.st_valid[narr] & self.st_bypass[narr]
            if byp.any():
                nb = narr[byp]
                self.latch_pkt[nb] = pkt[byp]
            buf = ~byp
            if buf.any():
                nw = narr[buf]
                vw = vcs[buf]
                slotw = (self.bhead[nw, vw] + self.bocc[nw, vw]) % self.D
                self.buf_pkt[nw, vw, slotw] = pkt[buf]
                self.buf_stage[nw, vw, slotw] = _ST_NONE
                self.bocc[nw, vw] += 1
                self.c_bw[nw] += 1
                self._bocc_n += len(nw)
        # lookahead arrivals replace the la_now latch (array swap: the
        # in-flight registers become the latch, the stale latch becomes
        # next cycle's in-flight registers)
        if self._la_n:
            self.la_valid[:] = False
            self._la_n = 0
        if self._lv_n:
            self.la_valid, self.lv_valid = self.lv_valid, self.la_valid
            self.la_pkt, self.lv_pkt = self.lv_pkt, self.la_pkt
            self.la_vc, self.lv_vc = self.lv_vc, self.la_vc
            self._la_n = self._lv_n
            self._lv_n = 0
            idx = self.la_valid.nonzero()[0]
            self.c_lar[idx] += 1

    def _nic_receive(self, t):
        self._ej_n = 0
        rs = self.ej_valid.nonzero()[0]
        self.ej_valid[:] = False
        pkt = self.ej_pkt[rs]
        self.n_ej[rs] += 1
        tails = (pkt & _TAIL) != 0
        if tails.any():
            # reception convention: visible at t, received at end of t-1
            self.p_completion[pkt[tails] >> 2] = t - 1
        tracker = rs * P + LOCAL  # the router's LOCAL output tracker
        slot = t & 1
        self.cr_valid[tracker, slot] = True
        self.cr_vc[tracker, slot] = self.ej_vc[rs]
        self.cr_tail[tracker, slot] = tails
        self._cr_n[slot] += len(rs)

    def _nic_step(self, t):
        # 1) send last cycle's decision onto the injection wire
        if self._pend_n:
            self._pend_n = 0
            rs = self.pend_valid.nonzero()[0]
            self.pend_valid[:] = False
            n = rs * P + LOCAL
            self.fl_valid[n] = True
            self.fl_pkt[n] = self.pend_pkt[rs]
            self.fl_vc[n] = self.pend_vc[rs]
            self._fl_n += len(rs)
        # 2) generate traffic (batched PRBS draws) and submit
        if self._sources_on:
            inj = self._generate()
            if len(inj):
                self._submit_batch(inj, t)
        # 3) VC-allocate at most one flit per backlogged NIC
        if self._bl_any:
            self._decide_all()

    def _generate(self):
        """The per-cycle injection decisions of every node at once."""
        tstate = self.tstate
        if self.cstate is None:
            # Bernoulli fast path: one main-stream word per node
            word, ns = _word24(tstate)
            tstate[:] = ns
            inject = word / 16777216.0 < self._packet_rate
        else:
            # modulated: main word only in positive-rate states, chain
            # word only in states with a positive leave probability
            ch = self.chstate
            p = self.probs_tab[ch]
            active = p > 0.0
            word, ns = _word24(tstate)
            np.copyto(tstate, ns, where=active)
            inject = active & (word / 16777216.0 < p)
            leave = self.leave_tab[ch]
            cact = leave > 0.0
            cword, cns = _word24(self.cstate)
            np.copyto(self.cstate, cns, where=cact)
            move = cact & (cword / 16777216.0 < leave)
            np.copyto(ch, (ch + 1) % self.n_states, where=move)
        return inject.nonzero()[0]

    def _submit_batch(self, inj, t):
        """Draw one message per injecting node and enqueue its flits.

        Nodes are processed in ascending order (``nonzero`` order), so
        message ids are handed out exactly as the oracle's node loop
        does.  Every node draws the same *number* of words for a given
        pattern, which is what makes the batch exact.
        """
        m = len(inj)
        st = self.tstate[inj]
        word, st = _word24(st)
        pick = word / 16777216.0
        ci = np.searchsorted(self._cum_arr, pick, side="right")
        mcls = self._comp_mclass[ci]
        nfl = self._comp_nflits[ci]
        kind = self._pattern_kind
        if kind == "table":
            dest = self._dest_arr[inj]
        elif kind == "uniform":
            w2, st = _word24(st)
            other = w2 % (self.R - 1)
            dest = other + (other >= inj)
        else:  # hotspot: two words per destination, both branches
            w2, st = _word24(st)
            w3, st = _word24(st)
            hd = self._hot_arr[w3 % len(self._hot_arr)]
            other = w3 % (self.R - 1)
            dest = np.where(
                w2 / 16777216.0 < self._hot_fraction,
                hd,
                other + (other >= inj),
            )
        self.tstate[inj] = st
        pid0 = self._mcount
        while pid0 + m > self._cap:
            self._grow_tables()
        pids = pid0 + np.arange(m)
        self._mcount = pid0 + m
        if self._o1turn:
            rs_ = self.rstate[inj]
            fb = ((rs_ >> 30) ^ (rs_ >> 27)) & 1
            self.rstate[inj] = ((rs_ << 1) | fb) & _MASK31
            self.p_ord[pids] = fb  # only consulted on the o1turn path
            phase = fb
        else:
            phase = 0
        self.p_dest[pids] = dest
        self.p_gid[pids] = self.GROUP_ID[mcls, phase]
        self.p_nflits[pids] = nfl
        self.p_creation[pids] = t
        self.p_completion[pids] = -1
        self.n_sub[inj] += 1
        self.backlog[inj] = True
        self._bl_any = True
        nmax = int(nfl.max())
        while int(self.q_len[inj, mcls].max()) + nmax > self._qcap:
            self._grow_queues()
        if nmax == 1:
            # single-flit fast path: one vector append per cycle
            pos = (self.q_head[inj, mcls] + self.q_len[inj, mcls]) \
                % self._qcap
            self.q_pkt[inj, mcls, pos] = (pids << 2) | (_HEAD | _TAIL)
            self.q_len[inj, mcls] += 1
        else:
            qcap = self._qcap
            for j in range(m):
                node = int(inj[j])
                mc = int(mcls[j])
                f = int(nfl[j])
                base = int(pids[j]) << 2
                head = int(self.q_head[node, mc])
                length = int(self.q_len[node, mc])
                for seq in range(f):
                    flags = (_HEAD if seq == 0 else 0) \
                        | (_TAIL if seq == f - 1 else 0)
                    self.q_pkt[node, mc, (head + length + seq) % qcap] = \
                        base | flags
                self.q_len[node, mc] = length + f

    def _grow_tables(self):
        new = self._cap * 2
        for name in ("p_dest", "p_ord", "p_gid", "p_nflits",
                     "p_creation", "p_completion"):
            old = getattr(self, name)
            arr = np.zeros(new, dtype=np.int64)
            arr[: self._cap] = old
            setattr(self, name, arr)
        self._cap = new

    def _grow_queues(self):
        old_cap = self._qcap
        new_cap = old_cap * 2
        # relinearise every ring so the new tail space is contiguous
        order = (self.q_head[:, :, None] + np.arange(old_cap)) % old_cap
        new_q = np.zeros((self.R, 2, new_cap), dtype=np.int64)
        new_q[:, :, :old_cap] = np.take_along_axis(self.q_pkt, order, axis=2)
        self.q_pkt = new_q
        self.q_head[:] = 0
        self._qcap = new_cap

    def _decide_all(self):
        """Mirror ``Nic._decide`` for every backlogged NIC at once:
        class round robin, then head/body VC allocation."""
        nodes = self.backlog.nonzero()[0]
        rr = self.nrr[nodes]
        trackers = self.N + nodes
        remaining = np.ones(len(nodes), dtype=bool)
        for i in (0, 1):
            mc = (rr + i) & 1
            cand = remaining & (self.q_len[nodes, mc] > 0)
            ci = cand.nonzero()[0]
            if len(ci) == 0:
                continue
            cn = nodes[ci]
            cmc = mc[ci]
            ctr = trackers[ci]
            pkt = self.q_pkt[cn, cmc, self.q_head[cn, cmc]]
            is_head = (pkt & _HEAD) != 0
            if is_head.all():
                # single-flit fast path: every queue head is a header
                g = self.p_gid[pkt >> 2]
                ok = self.fq_len[ctr, g] > 0
                vc = np.zeros(len(ci), dtype=np.int64)
                fi = ok.nonzero()[0]
                if len(fi):
                    ftr = ctr[fi]
                    fg = g[fi]
                    head = self.fq_head[ftr, fg]
                    v = self.freeq[ftr, fg, head]
                    self.fq_head[ftr, fg] = (head + 1) % self.GROUP_CAP[fg]
                    self.fq_len[ftr, fg] -= 1
                    self.owner[ftr, v] = pkt[fi] >> 2
                    self.credits[ftr, v] -= 1
                    vc[fi] = v
                wi = fi
                if len(wi) == 0:
                    continue
                self._decide_commit(rr, remaining, ci, cn, cmc,
                                    pkt, vc, wi, i)
                if not remaining.any():
                    break
                continue
            ok = np.zeros(len(ci), dtype=bool)
            vc = np.zeros(len(ci), dtype=np.int64)
            hi = is_head.nonzero()[0]
            if len(hi):
                htr = ctr[hi]
                g = self.p_gid[pkt[hi] >> 2]
                free = self.fq_len[htr, g] > 0
                fi = hi[free]
                if len(fi):
                    ftr = ctr[fi]
                    fg = g[free]
                    head = self.fq_head[ftr, fg]
                    v = self.freeq[ftr, fg, head]
                    self.fq_head[ftr, fg] = (head + 1) % self.GROUP_CAP[fg]
                    self.fq_len[ftr, fg] -= 1
                    self.owner[ftr, v] = pkt[fi] >> 2
                    self.credits[ftr, v] -= 1
                    ok[fi] = True
                    vc[fi] = v
            bi = (~is_head).nonzero()[0]
            if len(bi):
                btr = ctr[bi]
                own = self.owner[btr] == (pkt[bi] >> 2)[:, None]
                v = own.argmax(axis=1)
                good = self.credits[btr, v] > 0
                gi = bi[good]
                if len(gi):
                    self.credits[ctr[gi], v[good]] -= 1
                    ok[gi] = True
                    vc[gi] = v[good]
            wi = ok.nonzero()[0]
            if len(wi) == 0:
                continue
            self._decide_commit(rr, remaining, ci, cn, cmc, pkt, vc, wi, i)
            if not remaining.any():
                break
        # a full fruitless scan leaves the rotation where it started.
        # Drop satisfied NICs from the backlog eagerly (an empty-queue
        # decide has no side effects, so pruning is invisible) — the
        # steady-state backlog is then just this cycle's submitters
        # plus genuinely blocked NICs.
        still = self.q_len[nodes].any(axis=1)
        self.backlog[nodes] = still
        self._bl_any = bool(still.any())

    def _decide_commit(self, rr, remaining, ci, cn, cmc, pkt, vc, wi, i):
        """Pop the winners' queue heads and stage flit + lookahead."""
        wn = cn[wi]
        wmc = cmc[wi]
        self.q_head[wn, wmc] = (self.q_head[wn, wmc] + 1) % self._qcap
        self.q_len[wn, wmc] -= 1
        wpkt = pkt[wi]
        wvc = vc[wi]
        if self._bypass:
            n = wn * P + LOCAL
            self.lv_valid[n] = True
            self.lv_pkt[n] = wpkt
            self.lv_vc[n] = wvc
            self.n_las[wn] += 1
            self._lv_n += len(wn)
        self.pend_valid[wn] = True
        self.pend_pkt[wn] = wpkt
        self.pend_vc[wn] = wvc
        self._pend_n += len(wn)
        self.n_inj[wn] += 1
        self.nrr[wn] = (rr[ci[wi]] + i + 1) & 1
        remaining[ci[wi]] = False

    def _st(self, t):
        self._st_n = 0
        ns = self.st_valid.nonzero()[0]
        self.st_valid[:] = False
        byp = self.st_bypass[ns]
        pkt = np.empty(len(ns), dtype=np.int64)
        bi = byp.nonzero()[0]
        if len(bi):
            nb = ns[bi]
            pkt[bi] = self.latch_pkt[nb]
            self.c_byp[nb] += 1
        fi = (~byp).nonzero()[0]
        if len(fi):
            nn = ns[fi]
            vcn = self.st_vc[nn]
            # a granted buffered flit is always at its VC's head by the
            # time its traversal fires (one ST per port per cycle)
            h = self.bhead[nn, vcn]
            pkt[fi] = self.buf_pkt[nn, vcn, h]
            self.bhead[nn, vcn] = (h + 1) % self.D
            self.bocc[nn, vcn] -= 1
            self.c_br[nn] += 1
            self._bocc_n -= len(nn)
            self._gr_n -= len(nn)  # every buffered traversal was GRANTED
        # one credit upstream per traversal (pop is unconditional for
        # unicast: a granted flit always leaves its buffer/latch)
        target = self.CRED_TARGET[ns]
        slot = t & 1
        self.cr_valid[target, slot] = True
        self.cr_vc[target, slot] = self.st_vc[ns]
        self.cr_tail[target, slot] = (pkt & _TAIL) != 0
        self._cr_n[slot] += len(ns)
        self.c_st[ns] += 1
        # crossbar output: eject locally or forward on the mesh link
        q = self.st_port[ns]
        ovc = self.st_ovc[ns]
        loc = q == LOCAL
        li = loc.nonzero()[0]
        if len(li):
            re = ns[li] // P
            self.ej_valid[re] = True
            self.ej_pkt[re] = pkt[li]
            self.ej_vc[re] = ovc[li]
            self.c_ej[re] += 1
            self._net_ejections += len(li)
            self._ej_n += len(li)
        wi = (~loc).nonzero()[0]
        if len(wi):
            nf = ns[wi]
            dst = self.DST_IN[nf - nf % P + q[wi]]
            self.fl_valid[dst] = True
            self.fl_pkt[dst] = pkt[wi]
            self.fl_vc[dst] = ovc[wi]
            self.c_link[nf] += 1
            self._fl_n += len(wi)

    # ------------------------------------------------------------ mSA-II

    def _check_resources(self, m, pids, heads):
        """Vectorized ``_port_resources_ok``: heads need a free VC in
        their (class, phase) group, bodies need their owner VC to have
        a credit.  Returns the mask plus each body's owner VC so the
        commit step need not search again."""
        bvc = np.zeros(len(m), dtype=np.int64)
        if heads.all():
            # single-flit mixes never present body flits
            return self.fq_len[m, self.p_gid[pids]] > 0, bvc
        ok = np.empty(len(m), dtype=bool)
        hi = heads.nonzero()[0]
        if len(hi):
            g = self.p_gid[pids[hi]]
            ok[hi] = self.fq_len[m[hi], g] > 0
        bi = (~heads).nonzero()[0]
        if len(bi):
            bm = m[bi]
            own = self.owner[bm] == pids[bi, None]
            hasv = own.any(axis=1)
            v = own.argmax(axis=1)
            ok[bi] = hasv & (self.credits[bm, v] > 0)
            bvc[bi] = v
        return ok, bvc

    def _commit_alloc(self, m, pids, heads, bvc):
        """``alloc_head`` / ``consume_body`` for winners (their out
        ports are distinct, so the scatters cannot collide)."""
        if heads.all():
            g = self.p_gid[pids]
            head = self.fq_head[m, g]
            v = self.freeq[m, g, head]
            self.fq_head[m, g] = (head + 1) % self.GROUP_CAP[g]
            self.fq_len[m, g] -= 1
            self.owner[m, v] = pids
            self.credits[m, v] -= 1
            return v
        ovc = np.empty(len(m), dtype=np.int64)
        hi = heads.nonzero()[0]
        if len(hi):
            hm = m[hi]
            g = self.p_gid[pids[hi]]
            head = self.fq_head[hm, g]
            v = self.freeq[hm, g, head]
            self.fq_head[hm, g] = (head + 1) % self.GROUP_CAP[g]
            self.fq_len[hm, g] -= 1
            self.owner[hm, v] = pids[hi]
            self.credits[hm, v] -= 1
            ovc[hi] = v
        bi = (~heads).nonzero()[0]
        if len(bi):
            self.credits[m[bi], bvc[bi]] -= 1
            ovc[bi] = bvc[bi]
        return ovc

    def _arbitrate(self, cand_n, cand_m):
        """Matrix-arbitrate requests; returns the winner mask.

        Mirrors ``MatrixArbiter.grant``: every *requested* output port
        elects exactly one dominating input port and rotates it to the
        lowest priority, whether or not the caller uses the grant.  The
        matrix state is a total order throughout (initially i beats j
        for i < j; the winner drops to the bottom while everyone else
        keeps relative order), so the dominating requester is simply
        the one with the minimum LRU rank.
        """
        ip = cand_n % P
        r = self.arank[cand_m, ip]
        best = self._best
        best[cand_m] = 1 << 62
        np.minimum.at(best, cand_m, r)
        win = r == best[cand_m]
        wm = cand_m[win]
        self.arank[wm, ip[win]] = self._rank_next[wm]
        self._rank_next[wm] += 1
        return win

    def _msa2(self, t):
        used = self._used
        used[:] = False
        if self._bypass and self._la_n:
            self._lookahead_pass(used)
        if self._s2_n:
            self._buffered_pass(used)

    def _route_ports(self, nsel, pids):
        """Output port of each candidate (route table lookup)."""
        r = nsel // P
        if self._o1turn:
            return self.ROUTE[self.p_ord[pids], r, self.p_dest[pids]]
        return self._route_fixed[r, self.p_dest[pids]]

    def _lookahead_pass(self, used):
        nsel = self.la_valid.nonzero()[0]
        vcs = self.la_vc[nsel]
        pkt = self.la_pkt[nsel]
        pids = pkt >> 2
        q = self._route_ports(nsel, pids)
        m = nsel - nsel % P + q
        heads = (pkt & _HEAD) != 0
        # bypass preserves intra-VC order: the VC must be empty (the
        # bypass latch is always clear by mSA-II — ST precedes it).
        # Combined with the resource check into one filter round.
        ok, bvc = self._check_resources(m, pids, heads)
        ok &= self.bocc[nsel, vcs] == 0
        oi = ok.nonzero()[0]
        if len(oi) == 0:
            return
        nsel, vcs, pkt, pids, q, m, heads, bvc = (
            nsel[oi], vcs[oi], pkt[oi], pids[oi], q[oi], m[oi],
            heads[oi], bvc[oi],
        )
        win = self._arbitrate(nsel, m)
        wi = win.nonzero()[0]
        if len(wi) == 0:
            return
        nw = nsel[wi]
        mw = m[wi]
        qw = q[wi]
        ovc = self._commit_alloc(mw, pids[wi], heads[wi], bvc[wi])
        used[mw] = True
        self._forward_la(mw, qw, pkt[wi], ovc)
        self.st_valid[nw] = True
        self.st_bypass[nw] = True
        self.st_vc[nw] = vcs[wi]
        self.st_port[nw] = qw
        self.st_ovc[nw] = ovc
        self._st_n += len(nw)
        self.c_m2[nw] += 1

    def _buffered_pass(self, used):
        nsel = (self.s2_vc >= 0).nonzero()[0]
        if self._bypass and self._la_n:
            # the port's mSA-II mux selected the lookahead
            nsel = nsel[~self.la_valid[nsel]]
            if len(nsel) == 0:
                return
        vcs = self.s2_vc[nsel]
        slots = self.s2_slot[nsel]
        pkt = self.buf_pkt[nsel, vcs, slots]
        pids = pkt >> 2
        q = self._route_ports(nsel, pids)
        m = nsel - nsel % P + q
        heads = (pkt & _HEAD) != 0
        ok, bvc = self._check_resources(m, pids, heads)
        askable = ok & ~used[m]
        # nothing available: release the S2 register so mSA-I can pick
        # a different VC next cycle (no head-of-line squatting)
        ri = (~askable).nonzero()[0]
        if len(ri):
            self.buf_stage[nsel[ri], vcs[ri], slots[ri]] = _ST_NONE
            self.s2_vc[nsel[ri]] = -1
            self._s2_n -= len(ri)
        ai = askable.nonzero()[0]
        if len(ai) == 0:
            return
        nsel, vcs, slots, pkt, pids, q, m, heads, bvc = (
            nsel[ai], vcs[ai], slots[ai], pkt[ai], pids[ai], q[ai],
            m[ai], heads[ai], bvc[ai],
        )
        win = self._arbitrate(nsel, m)
        wi = win.nonzero()[0]
        if len(wi) == 0:
            return
        nw = nsel[wi]
        mw = m[wi]
        qw = q[wi]
        ovc = self._commit_alloc(mw, pids[wi], heads[wi], bvc[wi])
        # unicast grants are always complete: mark GRANTED, free the S2
        # register, schedule the traversal
        self.buf_stage[nw, vcs[wi], slots[wi]] = _ST_GRANTED
        self._gr_n += len(wi)
        self.s2_vc[nw] = -1
        self._s2_n -= len(wi)
        if self._bypass:
            self._forward_la(mw, qw, pkt[wi], ovc)
        self.st_valid[nw] = True
        self.st_bypass[nw] = False
        self.st_vc[nw] = vcs[wi]
        self.st_port[nw] = qw
        self.st_ovc[nw] = ovc
        self._st_n += len(nw)
        self.c_m2[nw] += 1

    def _forward_la(self, m, q, pkt, ovc):
        """NRC + lookahead generation for granted non-local branches."""
        fwd = (q != LOCAL).nonzero()[0]
        if len(fwd) == 0:
            return
        mf = m[fwd]
        dst = self.DST_IN[mf]
        self.lv_valid[dst] = True
        self.lv_pkt[dst] = pkt[fwd]
        self.lv_vc[dst] = ovc[fwd]
        self.c_las[mf] += 1
        self._lv_n += len(fwd)

    def _msa1(self, t):
        ports = ((self.s2_vc < 0) & self.bocc.any(axis=1)).nonzero()[0]
        if len(ports) == 0:
            return
        heads = self.bhead[ports]
        occ = self.bocc[ports]
        ar = np.arange(len(ports))
        if self._gr_n == 0:
            # no GRANTED flit anywhere: every occupied VC is eligible,
            # and every selected port has one (bocc.any above)
            elig = occ > 0
            rank = (self._vcidx[None, :] - self.rrptr[ports][:, None]) \
                % self.V
            rank[~elig] = self.V
            win = rank.argmin(axis=1)
            slot = heads[ar, win]
        else:
            stage_h = self.buf_stage[
                ports[:, None], self._vcidx[None, :], heads
            ]
            # a leading GRANTED flit (awaiting next cycle's traversal)
            # is skipped by oldest_unrequested; anything behind it bids
            granted = (stage_h == _ST_GRANTED) & (occ > 0)
            elig = occ > granted
            emask = elig.any(axis=1)
            ei = emask.nonzero()[0]
            if len(ei) == 0:
                return
            if len(ei) < len(ports):
                ports = ports[ei]
                heads = heads[ei]
                granted = granted[ei]
                elig = elig[ei]
                ar = ar[: len(ei)]
            rank = (self._vcidx[None, :] - self.rrptr[ports][:, None]) \
                % self.V
            rank[~elig] = self.V
            win = rank.argmin(axis=1)
            slot = (heads[ar, win] + granted[ar, win]) % self.D
        self.buf_stage[ports, win, slot] = _ST_S2
        self.s2_vc[ports] = win
        self.s2_slot[ports] = slot
        self.rrptr[ports] = (win + 1) % self.V
        self._s2_n += len(ports)
        self.c_m1[ports] += 1

    # ------------------------------------------------------------------
    # drain predicate and watchdog
    # ------------------------------------------------------------------

    def _quiet(self):
        """Exact equivalent of ``MeshNetwork.quiescent``: no payload in
        flight on any wire, no router-local work, no NIC backlog."""
        return (
            self._fl_n == 0 and self._lv_n == 0 and self._la_n == 0
            and self._ej_n == 0 and self._st_n == 0 and self._pend_n == 0
            and self._cr_n[0] == 0 and self._cr_n[1] == 0
            and self._s2_n == 0 and self._bocc_n == 0
            and not self.q_len.any()
        )

    def _check_watchdog(self):
        if self._net_ejections != self._last_progress:
            self._last_progress = self._net_ejections
            self._watchdog_start = self.cycle
            self._watchdog_armed = False
        elif self.cycle - self._watchdog_start > WATCHDOG_CYCLES:
            if self._quiet():
                self._watchdog_armed = False
            elif self._watchdog_armed:
                raise SimulationStalled(self.cycle, WATCHDOG_CYCLES)
            else:
                self._watchdog_armed = True
            self._watchdog_start = self.cycle

    # ------------------------------------------------------------------
    # measurement surface
    # ------------------------------------------------------------------

    def run(self, cycles):
        step = self._step
        for _ in range(cycles):
            step()

    def run_experiment(self, warmup=1_000, measure=10_000, drain=5_000):
        """Byte-identical mirror of ``Simulator.run_experiment``."""
        stop_reason = "completed"
        try:
            self.run(warmup)
        except SimulationStalled:
            stop_reason = "watchdog"
        start_msgs = self._mcount
        start_byp = int(self.c_byp.sum())
        start_xin = int(self.c_st.sum())
        start_ej = int(self.n_ej.sum())
        if stop_reason == "completed":
            try:
                self.run(measure)
            except SimulationStalled:
                stop_reason = "watchdog"
        end_ej = int(self.n_ej.sum())
        end_msgs = self._mcount
        # stop generating traffic, then drain
        had_sources = self._sources_on
        self._sources_on = False
        drained = 0
        if stop_reason == "completed":
            try:
                while drained < drain and not self._quiet():
                    self._step()
                    drained += 1
            except SimulationStalled:
                stop_reason = "watchdog"
            else:
                if drained >= drain and not self._quiet():
                    stop_reason = "max-cycles"
        self._sources_on = had_sources
        delta_byp = int(self.c_byp.sum()) - start_byp
        delta_xin = int(self.c_st.sum()) - start_xin
        rate = (self._traffic.injection_rate
                if self._traffic is not None else float("nan"))
        return summarize_window(
            self.cfg,
            self.name,
            rate,
            measure,
            self._message_views(start_msgs, end_msgs),
            end_ej - start_ej,
            delta_byp,
            delta_xin,
            stop_reason=stop_reason,
        )

    def activity(self):
        """Aggregate router activity since construction (power models)."""
        return self.network.total_router_activity()

    # ------------------------------------------------------------------
    # stats materialisation
    # ------------------------------------------------------------------

    def _message_views(self, start, end):
        creation = self.p_creation
        completion = self.p_completion
        nflits = self.p_nflits
        return [
            _MsgView(int(creation[i]), int(completion[i]), int(nflits[i]))
            for i in range(start, end)
        ]

    def _fold(self, arr):
        return arr.reshape(self.R, P).sum(axis=1)

    def _router_counters(self):
        bw = self._fold(self.c_bw)
        br = self._fold(self.c_br)
        st = self._fold(self.c_st)
        byp = self._fold(self.c_byp)
        link = self._fold(self.c_link)
        m1 = self._fold(self.c_m1)
        m2 = self._fold(self.c_m2)
        las = self._fold(self.c_las)
        lar = self._fold(self.c_lar)
        out = []
        for r in range(self.R):
            out.append(ActivityCounters(
                buffer_writes=int(bw[r]),
                buffer_reads=int(br[r]),
                xbar_input_traversals=int(st[r]),
                xbar_output_traversals=int(st[r]),
                link_traversals=int(link[r]),
                ejections=int(self.c_ej[r]),
                bypasses=int(byp[r]),
                msa1_grants=int(m1[r]),
                msa2_grants=int(m2[r]),
                la_sent=int(las[r]),
                la_received=int(lar[r]),
                credits_sent=int(st[r]),
            ))
        return out

    def _nic_counters(self):
        out = []
        for r in range(self.R):
            out.append(ActivityCounters(
                injections=int(self.n_inj[r]),
                ejected_flits=int(self.n_ej[r]),
                messages_submitted=int(self.n_sub[r]),
                la_sent=int(self.n_las[r]),
            ))
        return out
