"""Struct-of-arrays simulation backend (DESIGN.md §9).

The :class:`ArraySimulator` replaces the object-per-flit cycle loop
with preallocated numpy integer arrays indexed ``[router, port, vc,
slot]`` and executes each DESIGN.md §1 phase as one vectorized pass
over all routers.  It is registered as ``backend="array"`` in
:mod:`repro.noc.backend`; the object loop remains the oracle, and the
equivalence suite in ``tests/noc/test_array_backend.py`` asserts
byte-identical WindowStats and per-router counters on every supported
workload axis.

Every array also carries a leading *batch* axis: ``ArraySimulator(...,
seeds=[...])`` lays out ``B`` replica simulations lane by lane (lane
``b`` owns routers ``[b*R, (b+1)*R)`` in the flattened index space)
and advances all of them in the same vectorized pass, so ``N`` seeds
cost one kernel dispatch per cycle instead of ``N``.  Lanes share the
static route/group tables and nothing else; lane ``b`` of a batched
run is byte-identical to a single-seed run with that seed.

Support matrix (anything outside raises a clear ``ValueError``):

==================  ==========================================
axis                 supported by ``backend="array"``
==================  ==========================================
traffic mixes        unicast, plus XY-tree broadcast/multicast
                     on ``multicast=True`` configs (multi-flit
                     broadcast bodies and the ``multicast=False``
                     per-destination replication fallback are
                     object-only)
routing              xy, yx, o1turn, valiant (yx rejects
                     multicast mixes: the trees are XY-only)
patterns             all registered patterns
injection processes  all (bernoulli, onoff, mmp)
batching             ``seeds=[...]`` runs N replica lanes in one
                     pass (object backend is one replica per run)
pipeline             combined ST+LT only (``separate_st_lt``
                     is object-only)
faults               object-only
observability        object-only (probes never touch the arrays)
==================  ==========================================
"""

from repro.noc.array_backend.kernel import ArraySimulator

__all__ = ["ArraySimulator"]
