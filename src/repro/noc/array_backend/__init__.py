"""Struct-of-arrays simulation backend (DESIGN.md §9).

The :class:`ArraySimulator` replaces the object-per-flit cycle loop
with preallocated numpy integer arrays indexed ``[router, port, vc,
slot]`` and executes each DESIGN.md §1 phase as one vectorized pass
over all routers.  It is registered as ``backend="array"`` in
:mod:`repro.noc.backend`; the object loop remains the oracle, and the
equivalence suite in ``tests/noc/test_array_backend.py`` asserts
byte-identical WindowStats and per-router counters on every supported
workload axis.

Support matrix (anything outside raises a clear ``ValueError``):

==================  ==========================================
axis                 supported by ``backend="array"``
==================  ==========================================
traffic mixes        unicast-only (broadcasts need the XY-tree
                     fork path of the object backend)
routing              xy, yx, o1turn (valiant's en-route header
                     rewrite is object-only)
patterns             all registered patterns
injection processes  all (bernoulli, onoff, mmp)
pipeline             combined ST+LT only (``separate_st_lt``
                     is object-only)
faults               object-only
observability        object-only (probes never touch the arrays)
==================  ==========================================
"""

from repro.noc.array_backend.kernel import ArraySimulator

__all__ = ["ArraySimulator"]
