"""Network interface controller.

The NIC connects a core to its router: it segments core messages into
packets and flits, performs VC allocation / credit flow control toward
the router's local input port (it is the "upstream node" of that port),
sends lookaheads one cycle ahead of each injected flit when bypassing
is enabled, and sinks ejected flits.

When the network has no router-level multicast support (the baseline),
the NIC expands a k**2-destination broadcast message into one unicast
packet per destination — the TILE64/Teraflops behaviour the paper
analyses: channel load inflates by k**2 and the source injection link
serialises the copies.
"""

from __future__ import annotations

import itertools
from collections import deque

from repro.noc.flit import Message, MessageClass, Packet
from repro.noc.lookahead import Lookahead
from repro.noc.routing import RouteState
from repro.noc.vc import CreditMsg, OutputVCTracker


class Nic:
    """One network interface: injection pipeline plus ejection sink."""

    def __init__(self, config, node, stats, message_log):
        self.cfg = config
        self.node = node
        self.stats = stats
        self.message_log = message_log
        self.tracker = OutputVCTracker(config.vcs, config.vc_phases)
        self.queues = {mc: deque() for mc in MessageClass}
        self._mc_rr = deque(MessageClass)
        self._pending = None
        #: observability hook (DESIGN.md §7): an attached observer
        #: (``on_inject``/``on_eject`` methods), ``None`` by default.
        self.probe = None
        #: owning :class:`~repro.noc.mesh.MeshNetwork` (``None`` standalone);
        #: notified whenever this NIC acquires injection work so the
        #: gated cycle loop knows to step it.
        self.network = None
        # wires, connected by MeshNetwork
        self.link_out = None
        self.la_out = None
        self.credit_in = None
        self.link_in = None
        self.credit_out = None
        self._source = None
        # standalone fallback id counters; a NIC inside a MeshNetwork
        # shares the network's per-simulation counters instead, so ids
        # are network-unique and every simulation starts from 0
        self._local_message_ids = None
        self._local_packet_ids = None
        # standalone fallback routing runtime (shared network instance
        # otherwise, so header draws and route memos stay per-network)
        self._local_route_state = None

    @property
    def source(self):
        """The attached traffic source (``None`` for a silent NIC).

        A NIC with a source must be stepped every cycle — the source
        draws from its PRBS streams per cycle (the injection decision,
        and for a modulated injection process also the state-chain
        advance, which ticks even through long OFF gaps), so skipping
        a step would change the traffic trace.  Attaching one
        therefore wakes the NIC in the owning network's active set.
        """
        return self._source

    @source.setter
    def source(self, source):
        self._source = source
        if source is not None and self.network is not None:
            self.network.wake_nic_step(self.node)

    # ------------------------------------------------------------------
    # message admission
    # ------------------------------------------------------------------

    def _id_counters(self):
        """The (message, packet) id counters: the owning network's, or
        lazily-created local ones for a standalone NIC."""
        net = self.network
        if net is not None:
            return net.message_ids, net.packet_ids
        if self._local_message_ids is None:
            self._local_message_ids = itertools.count()
            self._local_packet_ids = itertools.count()
        return self._local_message_ids, self._local_packet_ids

    def _routing(self):
        """The routing runtime: the owning network's, or a lazily
        created local one for a standalone NIC."""
        net = self.network
        if net is not None:
            return net.route_state
        if self._local_route_state is None:
            self._local_route_state = RouteState(self.cfg.routing, self.cfg.k)
        return self._local_route_state

    def submit(self, spec, cycle):
        """Accept a core message and enqueue its flits for injection."""
        message_ids, packet_ids = self._id_counters()
        routing = self._routing()
        destinations = frozenset(spec.destinations)
        if (
            len(destinations) > 1
            and self.cfg.multicast
            and not routing.algorithm.supports_multicast
        ):
            # multicast trees are XY-only (DESIGN.md §5): an algorithm
            # whose single VC partition would mix non-XY turns with the
            # tree cannot carry router-level multicast deadlock free
            raise RuntimeError(
                f"{routing.algorithm.name} routing cannot carry "
                f"router-level multicast (XY-tree restriction); use xy "
                f"routing or a multicast=False config"
            )
        message = Message(
            mid=next(message_ids),
            src=self.node,
            destinations=destinations,
            mclass=spec.mclass,
            flits_per_packet=spec.num_flits,
            creation_cycle=cycle,
            is_multicast=len(destinations) > 1,
        )
        if len(destinations) > 1 and not self.cfg.multicast:
            packet_dests = [frozenset([d]) for d in sorted(destinations)]
        else:
            packet_dests = [destinations]
        for dests in packet_dests:
            rheader, rphase = routing.packet_header(self.node, dests)
            packet = Packet(
                pid=next(packet_ids),
                message=message,
                src=self.node,
                destinations=dests,
                mclass=spec.mclass,
                num_flits=spec.num_flits,
                rheader=rheader,
                rphase=rphase,
            )
            message.register_packet(packet)
            for flit in packet.make_flits():
                self.queues[spec.mclass].append(flit)
        self.message_log.append(message)
        self.stats.messages_submitted += 1
        if self.network is not None:
            self.network.wake_nic_step(self.node)
        return message

    # ------------------------------------------------------------------
    # cycle phases
    # ------------------------------------------------------------------

    def receive(self, cycle):
        """Sink ejected flits and absorb returned credits."""
        if self.link_in is not None:
            for flit in self.link_in.receive(cycle):
                if self.node not in flit.destinations:
                    raise RuntimeError(
                        f"NIC {self.node} received a misrouted flit {flit}"
                    )
                self.stats.ejected_flits += 1
                if self.probe is not None:
                    self.probe.on_eject(cycle, self.node, flit)
                if flit.is_tail:
                    # reception convention: a flit sent during cycle c is
                    # visible at c+1 but was received at the end of c
                    flit.packet.message.record_delivery(
                        self.node, flit.packet, cycle - 1
                    )
                self.credit_out.send(cycle, CreditMsg(flit.vc, flit.is_tail))
        if self.credit_in is not None:
            for msg in self.credit_in.receive(cycle):
                self.tracker.credit_return(msg)

    def step(self, cycle):
        """Send last cycle's decision, generate traffic, decide the next flit."""
        if self._pending is not None:
            self.link_out.send(cycle, self._pending)
            self._pending = None
        source = self._source
        if source is not None:
            for spec in source.generate(cycle, self.node):
                self.submit(spec, cycle)
        self._decide(cycle)

    def _decide(self, cycle):
        """VC-allocate at most one flit; its link traversal is next cycle."""
        # nothing queued: skipping the round-robin scan is exact (a full
        # fruitless scan rotates the deque back to its start position)
        if not any(self.queues.values()):
            return
        for _ in range(len(self._mc_rr)):
            mclass = self._mc_rr[0]
            self._mc_rr.rotate(-1)
            queue = self.queues[mclass]
            if not queue:
                continue
            flit = queue[0]
            if flit.is_head:
                if self.tracker.peek_free(mclass, flit.phase) is None:
                    continue
                out_vc = self.tracker.alloc_head(mclass, flit.pid, flit.phase)
            else:
                if self.tracker.body_vc(flit.pid) is None:
                    continue
                out_vc = self.tracker.consume_body(flit.pid)
            queue.popleft()
            flit.vc = out_vc
            flit.injection_cycle = cycle
            if self.cfg.bypass:
                self.la_out.send(
                    cycle,
                    Lookahead(
                        vc=out_vc,
                        mclass=flit.mclass,
                        pid=flit.pid,
                        seq=flit.seq,
                        is_head=flit.is_head,
                        is_tail=flit.is_tail,
                        destinations=flit.destinations,
                        rheader=flit.rheader,
                        phase=flit.phase,
                    ),
                )
                self.stats.la_sent += 1
            self._pending = flit
            self.stats.injections += 1
            if self.probe is not None:
                self.probe.on_inject(cycle, self.node, flit)
            return

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def backlog(self):
        """Flits generated but not yet injected."""
        pending = 1 if self._pending is not None else 0
        return pending + sum(len(q) for q in self.queues.values())

    def idle(self):
        return self.backlog() == 0
