"""Synchronous wires between network components.

Everything that crosses a clocked boundary in the chip — flit links,
credit/free-VC return wires and lookahead signals — is modelled as a
:class:`Channel` with an integer delay in cycles.  A payload sent
during cycle ``t`` becomes visible to the receiver at ``t + delay``.
Because all cross-component communication goes through channels, the
per-cycle evaluation order of routers cannot leak combinational state
across the network, which keeps the simulation deterministic and
faithful to synchronous hardware.
"""

from __future__ import annotations

from collections import deque


class Channel:
    """A fixed-delay, in-order pipe carrying at most one payload per cycle."""

    def __init__(self, delay=1, name=""):
        if delay < 1:
            raise ValueError("channel delay must be at least one cycle")
        self.delay = delay
        self.name = name
        self._queue = deque()
        self._last_send_cycle = None

    def send(self, cycle, payload):
        """Transmit ``payload`` during ``cycle``; visible at ``cycle+delay``."""
        if self._last_send_cycle == cycle:
            raise RuntimeError(
                f"channel {self.name or id(self)} driven twice in cycle {cycle}"
            )
        self._last_send_cycle = cycle
        self._queue.append((cycle + self.delay, payload))

    def receive(self, cycle):
        """Pop every payload whose arrival cycle is ``<= cycle``."""
        out = []
        while self._queue and self._queue[0][0] <= cycle:
            out.append(self._queue.popleft()[1])
        return out

    def peek_arrivals(self, cycle):
        """Payloads that would be delivered at ``cycle`` (non-destructive)."""
        return [p for (when, p) in self._queue if when <= cycle]

    @property
    def in_flight(self):
        return len(self._queue)


class MultiChannel(Channel):
    """A channel allowed to carry several payloads in the same cycle.

    Credit wires are physically separate per-VC signals, so more than
    one credit can return in a cycle; modelling them as one logical
    channel with multi-send keeps the wiring simple.
    """

    def send(self, cycle, payload):
        self._queue.append((cycle + self.delay, payload))
        # keep FIFO order even with multiple sends per cycle
        if len(self._queue) > 1 and self._queue[-1][0] < self._queue[-2][0]:
            raise RuntimeError("multichannel send cycles went backwards")
