"""Synchronous wires between network components.

Everything that crosses a clocked boundary in the chip — flit links,
credit/free-VC return wires and lookahead signals — is modelled as a
:class:`Channel` with an integer delay in cycles.  A payload sent
during cycle ``t`` becomes visible to the receiver at ``t + delay``.
Because all cross-component communication goes through channels, the
per-cycle evaluation order of routers cannot leak combinational state
across the network, which keeps the simulation deterministic and
faithful to synchronous hardware.

Channels are also the wake sources of the activity-gated cycle loop
(DESIGN.md §3): a channel constructed with a ``wake`` callback invokes
it with the arrival cycle of every payload it accepts, so the mesh can
schedule the receiving component to run exactly when something will be
delivered to it, and an idle wire costs nothing per cycle.
"""

from __future__ import annotations

from collections import deque

#: Shared result of draining an empty channel.  Callers only iterate or
#: compare it; they must never mutate it.
_NO_PAYLOADS = []


class Channel:
    """A fixed-delay, in-order pipe carrying at most one payload per cycle."""

    __slots__ = (
        "delay", "name", "wake", "probe", "cid", "_queue", "_last_send_cycle"
    )

    def __init__(self, delay=1, name="", wake=None):
        if delay < 1:
            raise ValueError("channel delay must be at least one cycle")
        self.delay = delay
        self.name = name
        #: Called with the arrival cycle of each accepted payload so the
        #: network can wake the receiving component (``None`` when the
        #: channel is used standalone, outside a gated mesh).
        self.wake = wake
        #: observability hook (DESIGN.md §7): called as ``probe(channel,
        #: cycle, payload)`` on every accepted send.  ``None`` (the
        #: default) keeps the fast path at a single identity test; an
        #: attached observer sets it on flit links only, together with
        #: ``cid`` (its index into the observer's link table).
        self.probe = None
        self.cid = None
        self._queue = deque()
        self._last_send_cycle = None

    def send(self, cycle, payload):
        """Transmit ``payload`` during ``cycle``; visible at ``cycle+delay``."""
        if self._last_send_cycle == cycle:
            raise RuntimeError(
                f"channel {self.name or id(self)} driven twice in cycle {cycle}"
            )
        self._last_send_cycle = cycle
        arrival = cycle + self.delay
        self._queue.append((arrival, payload))
        if self.probe is not None:
            self.probe(self, cycle, payload)
        if self.wake is not None:
            self.wake(arrival)

    def receive(self, cycle):
        """Pop every payload whose arrival cycle is ``<= cycle``."""
        queue = self._queue
        # earliest-arrival fast path: empty/idle wires cost one compare
        if not queue or queue[0][0] > cycle:
            return _NO_PAYLOADS
        out = []
        while queue and queue[0][0] <= cycle:
            out.append(queue.popleft()[1])
        return out

    def peek_arrivals(self, cycle):
        """Payloads that would be delivered at ``cycle`` (non-destructive)."""
        return [p for (when, p) in self._queue if when <= cycle]

    @property
    def in_flight(self):
        return len(self._queue)


class MultiChannel(Channel):
    """A channel allowed to carry several payloads in the same cycle.

    Credit wires are physically separate per-VC signals, so more than
    one credit can return in a cycle; modelling them as one logical
    channel with multi-send keeps the wiring simple.
    """

    __slots__ = ()

    def send(self, cycle, payload):
        arrival = cycle + self.delay
        self._queue.append((arrival, payload))
        # keep FIFO order even with multiple sends per cycle
        if len(self._queue) > 1 and self._queue[-1][0] < self._queue[-2][0]:
            raise RuntimeError("multichannel send cycles went backwards")
        if self.wake is not None:
            self.wake(arrival)
