"""Messages, packets and flits.

Terminology follows the paper (Section 2.1): a *message* is what a core
hands to its NIC; it is segmented into *packets*, which are divided
into fixed-length *flits*.  Only head flits carry routing information,
so all flits of a packet follow the same route.

The proposed network carries a broadcast as a single packet that is
replicated inside routers; the baseline network expands the same
message into ``k**2`` unicast packets at the source NIC.  The
:class:`Message` object is the unit of latency accounting in both
cases: a message completes when the tail flit of every constituent
packet has been ejected at every destination.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import IntEnum


class MessageClass(IntEnum):
    """Virtual message classes used to break protocol-level deadlock.

    The fabricated chip provisions two classes per input port: cache
    coherence *requests* (single-flit packets) and *responses*
    (five-flit cache-line packets).
    """

    REQUEST = 0
    RESPONSE = 1


@dataclass
class Message:
    """A core-level message; the unit of end-to-end latency accounting."""

    mid: int
    src: int
    destinations: frozenset
    mclass: MessageClass
    flits_per_packet: int
    creation_cycle: int
    is_multicast: bool = False
    #: (destination, packet) pairs still outstanding.
    _pending: set = field(default_factory=set, repr=False)
    completion_cycle: int | None = None
    #: set by the fault engine when the message exhausted its retry
    #: budget or a destination became unreachable; a failed message
    #: never completes (see repro.noc.faults)
    failed: bool = False

    def register_packet(self, packet):
        for dest in packet.destinations:
            self._pending.add((dest, packet.pid))

    def record_delivery(self, dest, packet, cycle):
        """Record the tail-flit ejection of ``packet`` at ``dest``."""
        self._pending.discard((dest, packet.pid))
        if not self._pending and self.completion_cycle is None and not self.failed:
            self.completion_cycle = cycle

    @property
    def complete(self):
        return self.completion_cycle is not None

    @property
    def latency(self):
        if self.completion_cycle is None:
            raise ValueError(f"message {self.mid} has not completed")
        return self.completion_cycle - self.creation_cycle


@dataclass
class Packet:
    """A routable unit: one head flit, optional body flits, one tail.

    ``rheader`` / ``rphase`` are the packet's routing header state,
    drawn once at injection by the network's
    :class:`~repro.noc.routing.RouteState` (O1TURN's chosen dimension
    order, Valiant's intermediate node) and copied onto every flit; the
    empty header ``None`` is dimension-ordered XY in VC partition 0,
    which is also what every multicast packet carries (multicast trees
    are XY-only, see DESIGN.md §5).
    """

    pid: int
    message: Message
    src: int
    destinations: frozenset
    mclass: MessageClass
    num_flits: int
    rheader: object = None
    rphase: int = 0

    def __post_init__(self):
        if self.num_flits < 1:
            raise ValueError("a packet needs at least one flit")
        if len(self.destinations) > 1 and self.num_flits != 1:
            raise NotImplementedError(
                "multicast is only supported for single-flit packets "
                "(the chip's broadcasts are one-flit coherence requests)"
            )

    @property
    def is_multicast(self):
        return len(self.destinations) > 1

    def make_flits(self):
        """Materialise the packet's flits in transmission order."""
        return [
            Flit(
                packet=self,
                seq=i,
                is_head=(i == 0),
                is_tail=(i == self.num_flits - 1),
                destinations=self.destinations,
                rheader=self.rheader,
                phase=self.rphase,
            )
            for i in range(self.num_flits)
        ]


_flit_uid = itertools.count()


@dataclass(slots=True)
class Flit:
    """A flow-control unit travelling hop by hop through the mesh.

    ``destinations`` is the subset of the packet's destination set that
    this particular copy is responsible for: replication at a fork
    splits the set between branch copies.  ``vc`` is the input virtual
    channel the flit occupies (or would occupy, when bypassing) at the
    router it is currently heading to; it is rewritten at every hop by
    the VC allocator of the upstream node.
    """

    packet: Packet
    seq: int
    is_head: bool
    is_tail: bool
    destinations: frozenset
    vc: int | None = None
    uid: int = field(default_factory=lambda: next(_flit_uid))
    injection_cycle: int | None = None
    hops: int = 0
    bypassed_hops: int = 0
    #: routing header state (see :class:`Packet`); ``rheader`` may be
    #: rewritten en route by an advancing algorithm (Valiant flips to
    #: its terminal phase at the intermediate node), ``phase`` is the
    #: VC partition the flit allocates from at its next hop.
    rheader: object = None
    phase: int = 0
    #: error-detect flag (repro.noc.faults): a corrupted flit keeps
    #: travelling its route — releasing VC allocations hop by hop —
    #: and is discarded at the receiving input VC of the NIC
    corrupt: bool = False
    #: Per-hop pipeline bookkeeping, reset on every arrival:
    #: ``route`` is the output-port partition of ``destinations`` at the
    #: current router; ``stage`` is None (awaiting mSA-I), "S2" (holds the
    #: port's outport-request register) or "GRANTED" (all ports won);
    #: ``granted_ports`` accumulates multicast branches already served.
    route: dict | None = field(default=None, repr=False)
    stage: str | None = field(default=None, repr=False)
    granted_ports: set = field(default_factory=set, repr=False)

    @property
    def mclass(self):
        return self.packet.mclass

    @property
    def pid(self):
        return self.packet.pid

    def fork(self, branch_destinations):
        """Copy for one output branch of a multicast crossbar traversal."""
        return Flit(
            packet=self.packet,
            seq=self.seq,
            is_head=self.is_head,
            is_tail=self.is_tail,
            destinations=frozenset(branch_destinations),
            vc=None,
            injection_cycle=self.injection_cycle,
            hops=self.hops,
            bypassed_hops=self.bypassed_hops,
            rheader=self.rheader,
            phase=self.phase,
            corrupt=self.corrupt,
        )

    def __repr__(self):  # keep traces short
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        return (
            f"Flit(p{self.pid}.{self.seq}{kind} mc={self.mclass.name[:3]} "
            f"vc={self.vc} dst={sorted(self.destinations)})"
        )
