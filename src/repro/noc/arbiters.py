"""Arbitration primitives used by the separable switch allocator.

The chip uses a round-robin circuit for the first allocation stage
(mSA-I, one winner among the VCs of an input port) and a matrix arbiter
for the second stage (mSA-II, one winner among the input ports
competing for an output port).  Both are implemented here exactly as
their hardware counterparts behave cycle by cycle, so allocation
fairness and starvation freedom can be tested directly.
"""

from __future__ import annotations


class RoundRobinArbiter:
    """Rotating-priority arbiter: fair and starvation-free.

    The grant pointer advances to just past the winner, so under
    continuous contention every requester is served once per round.
    """

    def __init__(self, num_requesters):
        if num_requesters < 1:
            raise ValueError("arbiter needs at least one requester")
        self.num_requesters = num_requesters
        self._pointer = 0

    def grant(self, requests):
        """Pick a winner among requesting indices; ``None`` if none request.

        ``requests`` is an iterable of requester indices.
        """
        req = set(requests)
        if not req:
            return None
        for offset in range(self.num_requesters):
            candidate = (self._pointer + offset) % self.num_requesters
            if candidate in req:
                self._pointer = (candidate + 1) % self.num_requesters
                return candidate
        return None

    def peek(self):
        """Current priority position (for tests)."""
        return self._pointer


class MatrixArbiter:
    """Least-recently-served matrix arbiter.

    ``_prio[i][j] is True`` means requester ``i`` beats requester ``j``.
    On a grant, the winner's row is cleared and its column set: the
    winner becomes the lowest priority, which yields LRS fairness.
    """

    def __init__(self, num_requesters):
        if num_requesters < 1:
            raise ValueError("arbiter needs at least one requester")
        self.num_requesters = num_requesters
        self._prio = [
            [i < j for j in range(num_requesters)] for i in range(num_requesters)
        ]

    def grant(self, requests):
        """Pick the requester that beats all other requesters."""
        req = list(dict.fromkeys(requests))
        if not req:
            return None
        for i in req:
            if all(self._prio[i][j] for j in req if j != i):
                self._update(i)
                return i
        # The priority matrix is a strict total order, so exactly one
        # requester dominates; reaching here would be a logic bug.
        raise AssertionError("matrix arbiter found no dominating requester")

    def _update(self, winner):
        for j in range(self.num_requesters):
            if j != winner:
                self._prio[winner][j] = False
                self._prio[j][winner] = True

    def wins_over(self, i, j):
        """Whether ``i`` currently has priority over ``j`` (for tests)."""
        return self._prio[i][j]
