"""HTTP routes of the sweep service (the only Flask-aware view code).

Every handler is a thin translation between HTTP and the Flask-free
layers: :mod:`~repro.service.schemas` owns the wire shapes,
:mod:`~repro.service.workers` owns the sweep state and execution.  The
handlers reach their :class:`~repro.service.app.ServiceState` through
``current_app.extensions["repro"]``, so the same blueprint serves any
number of independently configured apps (each test builds its own).
"""

from __future__ import annotations

from flask import Blueprint, Response, current_app, jsonify, request

from repro.service import schemas
from repro.service.workers import CACHED, QUEUED, JobRecord

bp = Blueprint("repro_service", __name__)


def _state():
    return current_app.extensions["repro"]


@bp.errorhandler(schemas.SchemaError)
def _bad_request(exc):
    return jsonify(schemas.error_view(str(exc))), 400


@bp.post("/sweeps")
def post_sweep():
    """Submit a batch of jobs; cache hits answer instantly, misses queue.

    Dedup happens at the front door: each job's content address is
    looked up in the shared cache before anything is enqueued, so a
    re-POST of an already-computed sweep costs one disk read per job
    and zero simulations.
    """
    state = _state()
    specs = schemas.parse_sweep_request(request.get_json(silent=True))
    records, misses = [], []
    for spec in specs:
        if state.cache.get(spec) is not None:
            records.append(JobRecord(spec, CACHED))
        else:
            record = JobRecord(spec, QUEUED)
            records.append(record)
            misses.append(record)
    state.cache.flush_counters()  # front-door hits/misses count too
    sweep_id = state.store.create(records)
    for record in misses:
        state.pool.submit(record)
    body = schemas.sweep_view(sweep_id, records, state.pool.queue_depth)
    return jsonify(body), 201, {"Location": f"/sweeps/{sweep_id}"}


@bp.get("/sweeps/<sweep_id>")
def get_sweep(sweep_id):
    state = _state()
    records = state.store.records(sweep_id)
    if records is None:
        return jsonify(schemas.error_view(f"no such sweep: {sweep_id}")), 404
    body = schemas.sweep_view(sweep_id, records, state.pool.queue_depth)
    return jsonify(body)


@bp.get("/results/<key>")
def get_result(key):
    """The raw cache-entry bytes for a content address.

    Served verbatim from disk — not re-serialized — so what a client
    receives is byte-for-byte the entry a CLI run of the same JobSpec
    would have written (DESIGN.md §10's identity contract, testably).
    """
    state = _state()
    if not schemas.KEY_RE.fullmatch(key):  # also refuses any path tricks
        return jsonify(schemas.error_view("not a content address")), 404
    try:
        payload = (state.cache.root / f"{key}.json").read_bytes()
    except OSError:
        return jsonify(schemas.error_view(f"no cached result {key}")), 404
    return Response(payload, mimetype="application/json")


@bp.get("/healthz")
def healthz():
    state = _state()
    return jsonify(
        {
            "status": "ok",
            "workers": state.pool.workers,
            "queue_depth": state.pool.queue_depth,
            "executed": state.pool.executed,
            "cache_root": str(state.cache.root),
        }
    )


@bp.get("/cache/stats")
def cache_stats():
    return jsonify(_state().cache.stats())
