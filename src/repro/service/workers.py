"""Sweep bookkeeping and the background worker pool (Flask-free).

The service keeps its *own* state deliberately small: an in-memory
:class:`SweepStore` of submitted batches and a :class:`WorkerPool` of
daemon threads draining a queue through the ordinary engine
:class:`~repro.engine.executor.Executor`.  The durable state is the
content-addressed cache itself — restarting the service forgets sweep
ids but loses no computed result, and a re-POST of the same batch is
answered from the cache.

Each worker thread owns a private ``ResultCache`` handle and
``Executor`` over the *shared* cache root — deliberately the
multiple-executors/one-root topology that the engine's concurrency
hardening (the ``flock``-guarded counter merge, vanished-file-tolerant
``stats()``) exists for.  Results land under their normal content
addresses via ``Executor``'s ordinary put path, so service-computed and
CLI-computed entries are byte-identical and mutually cache-visible.
"""

from __future__ import annotations

import itertools
import logging
import queue
import threading
from dataclasses import replace

from repro.engine.cache import ResultCache
from repro.engine.executor import Executor

logger = logging.getLogger(__name__)

#: job lifecycle states, as served by ``GET /sweeps/<id>``
CACHED = "cached"    # answered from the cache at submission time
QUEUED = "queued"    # waiting for a worker
RUNNING = "running"  # on a worker now
DONE = "done"        # simulated and stored under its content address
FAILED = "failed"    # the backend gave up (structured JobFailure)

_SENTINEL = object()


class JobRecord:
    """One job of a submitted sweep: spec + content address + status.

    Mutated only under the owning :class:`SweepStore`'s lock.
    """

    __slots__ = ("spec", "key", "status", "error")

    def __init__(self, spec, status):
        self.spec = spec
        self.key = spec.cache_key
        self.status = status
        self.error = None


class SweepStore:
    """Thread-safe registry of submitted sweeps (in-memory)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._sweeps = {}
        self._ids = itertools.count(1)

    def create(self, records):
        """Register a batch; returns its sweep id."""
        with self._lock:
            sweep_id = f"sweep-{next(self._ids)}"
            self._sweeps[sweep_id] = list(records)
            return sweep_id

    def records(self, sweep_id):
        """The sweep's JobRecords (the live objects), or None."""
        with self._lock:
            records = self._sweeps.get(sweep_id)
            return None if records is None else list(records)

    def mark(self, record, status, error=None):
        with self._lock:
            record.status = status
            record.error = error


class WorkerPool:
    """Daemon threads draining queued jobs through the engine.

    ``executor``/``backend``/``exec_workers`` mirror the CLI's
    ``--executor``/``--backend``/``--workers`` axes: each thread builds
    ``Executor(backend=executor, workers=exec_workers, cache=...)`` at
    start-up, and jobs submitted with the default simulation backend
    run on the pool's configured one (an execution detail — the result
    bytes and content address are identical on every backend that
    accepts the job, so the choice never enters identity).

    ``executor_factory`` is an injection seam for tests: a callable
    ``(cache) -> Executor``-like object.
    """

    def __init__(self, cache_root, store, workers=2, executor="serial",
                 backend="object", exec_workers=None, telemetry=False,
                 executor_factory=None):
        if workers < 1:
            raise ValueError("worker count must be at least one")
        self.cache_root = cache_root
        self.store = store
        self.backend = backend
        self._queue = queue.Queue()
        self._lock = threading.Lock()
        self._executed = 0
        self._factory = executor_factory or (
            lambda cache: Executor(
                backend=executor,
                workers=exec_workers,
                cache=cache,
                telemetry=telemetry,
            )
        )
        self._threads = [
            threading.Thread(
                target=self._loop, name=f"repro-sweep-worker-{n}",
                daemon=True,
            )
            for n in range(workers)
        ]

    def start(self):
        for thread in self._threads:
            thread.start()
        return self

    @property
    def workers(self):
        return len(self._threads)

    @property
    def queue_depth(self):
        """Jobs waiting for a worker (approximate, like any queue size)."""
        return self._queue.qsize()

    @property
    def executed(self):
        """Simulations actually run by this pool (not cache hits)."""
        with self._lock:
            return self._executed

    def submit(self, record):
        self.store.mark(record, QUEUED)
        self._queue.put(record)

    def stop(self, timeout=10.0):
        """Drain-free shutdown: workers exit after their current job."""
        for _ in self._threads:
            self._queue.put(_SENTINEL)
        for thread in self._threads:
            thread.join(timeout)

    # ------------------------------------------------------------- worker

    def _loop(self):
        # per-thread cache handle + executor over the shared root; the
        # flock'd counter merge keeps the siblings' tallies intact
        cache = ResultCache(self.cache_root)
        executor = self._factory(cache)
        while True:
            record = self._queue.get()
            if record is _SENTINEL:
                return
            try:
                self._run(executor, record)
            except Exception as exc:  # a worker must never die silently
                logger.exception(
                    "sweep worker failed on %s", record.key[:12]
                )
                self.store.mark(record, FAILED, error=f"{type(exc).__name__}: {exc}")

    def _run(self, executor, record):
        self.store.mark(record, RUNNING)
        spec = record.spec
        if spec.backend == "object" and self.backend != "object":
            # run on the pool's configured kernel; identity unchanged
            spec = replace(spec, backend=self.backend)
        before = executor.executed
        stats = executor.run_one(spec)
        with self._lock:
            self._executed += executor.executed - before
        if stats.stop_reason == "failed":
            failures = (executor.last_batch or {}).get("failures", [])
            error = failures[0]["error"] if failures else "job failed"
            self.store.mark(record, FAILED, error=error)
            logger.warning("job %s failed: %s", record.key[:12], error)
        else:
            self.store.mark(record, DONE)
