"""Flask application factory for the sweep service.

:func:`create_app` builds a fully wired app — front-door cache handle,
sweep store, started worker pool — so tests drive the whole service
in-process through Flask's test client and ``python -m repro serve``
just adds a listening socket on top.  Every piece of mutable state
hangs off one :class:`ServiceState` in ``app.extensions["repro"]``;
two apps over different cache roots never share anything but code.
"""

from __future__ import annotations

try:
    from flask import Flask
except ImportError as exc:  # pragma: no cover - exercised without flask
    raise ImportError(
        "the sweep service needs Flask, which is an optional dependency; "
        "install it with 'pip install flask' (or the service extra: "
        "pip install -e .[service])"
    ) from exc

from repro.engine.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.service.blueprint import bp
from repro.service.workers import SweepStore, WorkerPool


class ServiceState:
    """Everything one app instance owns: cache, store, worker pool."""

    def __init__(self, cache, store, pool):
        self.cache = cache
        self.store = store
        self.pool = pool

    def shutdown(self, timeout=10.0):
        """Stop the workers and persist the front-door counters."""
        self.pool.stop(timeout=timeout)
        self.cache.flush_counters()


def create_app(cache_root=DEFAULT_CACHE_DIR, workers=2, executor="serial",
               backend="object", exec_workers=None, telemetry=False,
               executor_factory=None):
    """Build the sweep-service app over ``cache_root``.

    ``workers`` is the number of service worker threads draining the
    sweep queue; ``executor``/``exec_workers`` pick the engine executor
    each thread runs jobs through (``"serial"`` or ``"process"`` with
    that many processes), and ``backend`` the simulation kernel —
    mirroring the CLI's ``--executor``/``--workers``/``--backend``.
    ``executor_factory`` (tests) overrides executor construction with a
    callable ``(cache) -> Executor``-like object.
    """
    app = Flask("repro.service")
    cache = ResultCache(cache_root)
    store = SweepStore()
    pool = WorkerPool(
        cache_root,
        store,
        workers=workers,
        executor=executor,
        backend=backend,
        exec_workers=exec_workers,
        telemetry=telemetry,
        executor_factory=executor_factory,
    ).start()
    app.extensions["repro"] = ServiceState(cache, store, pool)
    app.register_blueprint(bp)
    return app
