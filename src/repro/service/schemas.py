"""Schema'd JSON value objects of the sweep service (Flask-free).

Every request and response body the service speaks is produced or
checked here, so the HTTP layer stays a thin translation and the wire
shapes are testable without Flask.  The one identity rule (DESIGN.md
§10): a job's identity is its *content address* — the SHA-256 of
``JobSpec.canonical_json()`` — and nothing the service adds (sweep ids,
statuses, queue positions) ever enters it.
"""

from __future__ import annotations

import re

from repro.engine.jobspec import JobSpec

#: an entry key as it appears on disk: the full SHA-256 content address
KEY_RE = re.compile(r"[0-9a-f]{64}")

#: refuse unboundedly large batches before validating them job by job
MAX_JOBS = 4096


class SchemaError(ValueError):
    """A request body that does not match the service schema."""


def parse_sweep_request(data):
    """``{"jobs": [<JobSpec dict>, ...]}`` -> list of JobSpecs.

    Each entry must be a :meth:`JobSpec.to_dict` / :meth:`to_payload`
    shaped object; validation failures carry the offending index so a
    client can fix the exact job.  Raises :class:`SchemaError`.
    """
    if not isinstance(data, dict):
        raise SchemaError("request body must be a JSON object")
    unknown = sorted(set(data) - {"jobs"})
    if unknown:
        raise SchemaError(f"unknown request field(s): {', '.join(unknown)}")
    jobs = data.get("jobs")
    if not isinstance(jobs, list) or not jobs:
        raise SchemaError('"jobs" must be a non-empty array of job objects')
    if len(jobs) > MAX_JOBS:
        raise SchemaError(
            f"a sweep is limited to {MAX_JOBS} jobs per request, "
            f"got {len(jobs)}"
        )
    specs = []
    for i, item in enumerate(jobs):
        if not isinstance(item, dict):
            raise SchemaError(f"jobs[{i}]: must be a JobSpec object")
        try:
            specs.append(JobSpec.from_dict(item))
        except KeyError as exc:
            raise SchemaError(
                f"jobs[{i}]: missing required field {exc.args[0]!r}"
            ) from exc
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"jobs[{i}]: {exc}") from exc
    return specs


def job_view(record):
    """The wire shape of one job of a sweep."""
    view = {
        "key": record.key,
        "status": record.status,
        "name": record.spec.name,
        "rate": record.spec.rate,
        "result_url": f"/results/{record.key}",
    }
    if record.error is not None:
        view["error"] = record.error
    return view


def summary_view(records, queue_depth):
    """Status counts, front-door hit rate and current queue depth."""
    counts = {
        status: 0
        for status in ("cached", "queued", "running", "done", "failed")
    }
    for record in records:
        counts[record.status] += 1
    total = len(records)
    finished = total - counts["queued"] - counts["running"]
    return {
        "total": total,
        **counts,
        # jobs answered straight from the cache at submission time
        "hit_rate": counts["cached"] / total if total else 0.0,
        "complete": finished == total,
        "queue_depth": queue_depth,
    }


def sweep_view(sweep_id, records, queue_depth):
    """The wire shape of a whole sweep (POST response and GET body)."""
    return {
        "id": sweep_id,
        "jobs": [job_view(r) for r in records],
        "summary": summary_view(records, queue_depth),
    }


def error_view(message):
    return {"error": message}
