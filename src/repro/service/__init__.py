"""HTTP sweep service over the result cache (DESIGN.md §10).

The content-addressed ``.repro_cache/`` makes every operating point a
shareable artifact; this package puts a small Flask API in front of it
so hot figures are near-always cache hits served from disk and only
novel points simulate:

* ``POST /sweeps`` — a batch of JobSpec dicts in; each job is validated,
  deduped against the :class:`~repro.engine.cache.ResultCache`, and the
  misses are enqueued for a background worker pool that drains them
  through the ordinary :class:`~repro.engine.executor.Executor`;
* ``GET /sweeps/<id>`` — per-job status (``cached``/``queued``/
  ``running``/``done``/``failed``) with a hit-rate and queue-depth
  summary;
* ``GET /results/<key>`` — the raw cache-entry bytes for a content
  address (service-computed and CLI-computed points are byte-identical
  and mutually cache-visible);
* ``GET /healthz`` and ``GET /cache/stats`` — liveness and occupancy.

Layering: :mod:`~repro.service.schemas` (Flask-free JSON value objects)
and :mod:`~repro.service.workers` (queue + worker pool, Flask-free) can
be imported without Flask installed; only :mod:`~repro.service.app` and
:mod:`~repro.service.blueprint` need it, which is why ``create_app`` is
re-exported lazily here.  Start the server with ``python -m repro serve``
or build an app in-process (tests use Flask's test client — no network):

    from repro.service import create_app
    app = create_app(cache_root=".repro_cache", workers=2)
"""

from __future__ import annotations

__all__ = ["create_app"]


def __getattr__(name):
    # lazy so that `import repro.service` (and the Flask-free
    # submodules) works on an installation without the service extra
    if name == "create_app":
        from repro.service.app import create_app

        return create_app
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
