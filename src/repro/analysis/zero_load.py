"""Zero-load latency of concrete router pipelines.

Table 2 compares chips by multiplying the average hop count by the
per-hop pipeline depth and adding broadcast serialisation where a chip
lacks multicast support (the source NIC must inject k^2 - 1 unicast
copies back to back through a single injection link).
"""

from __future__ import annotations

from repro.analysis.limits import MeshLimits


def zero_load_latency(
    k,
    cycles_per_hop,
    traffic="unicast",
    multicast_support=True,
    nic_cycles=0,
    serialization_flits=1,
):
    """Zero-load latency in cycles.

    ``nic_cycles`` adds injection/ejection link traversals (the Fig. 5
    accounting); Table 2 quotes hop traversals only (``nic_cycles=0``).
    ``serialization_flits`` accounts for multi-flit packets (tail
    arrives ``num_flits - 1`` cycles after the head).
    """
    limits = MeshLimits(k)
    if traffic == "unicast":
        hops = limits.unicast_hops
        flight = hops * cycles_per_hop
    elif traffic == "broadcast":
        hops = limits.broadcast_hops_paper
        flight = hops * cycles_per_hop
        if not multicast_support:
            # the last of k^2 - 1 unicast copies leaves k^2 - 2 cycles
            # after the first one
            flight += k * k - 2
    else:
        raise ValueError(f"unknown traffic type {traffic!r}")
    return flight + nic_cycles + (serialization_flits - 1)


def zero_load_latency_config(config, traffic="unicast", nic_cycles=2):
    """Zero-load latency of one of our design points.

    Bypassing reaches one cycle per hop; the non-bypassed pipeline is
    three cycles per hop (BW+mSA-I+VA | NRC+mSA-II | ST+LT) and the
    textbook pipeline four.
    """
    if config.bypass:
        cycles_per_hop = 1
    elif config.separate_st_lt:
        cycles_per_hop = 4
    else:
        cycles_per_hop = 3
    return zero_load_latency(
        config.k,
        cycles_per_hop,
        traffic=traffic,
        multicast_support=config.multicast,
        nic_cycles=nic_cycles,
    )
