"""Delivered throughput under faults: the reliability exhibit.

Two simulation-backed curves quantify how gracefully the network
degrades, the system-level counterpart of the circuit-level Fig. 10
(swing vs sense-amp failure probability):

* :func:`reliability_vs_faults` kills a growing number of links
  (:class:`~repro.noc.faults.RandomFaults`, whose single permutation
  draw makes the fault sets *nested* — every curve point contains the
  previous point's dead links, so delivered throughput degrades
  monotonically by construction);
* :func:`reliability_vs_swing` lowers the link voltage swing
  (:class:`~repro.noc.faults.SwingFaults`), converting the paper's
  swing -> P(fail) model into end-to-end delivered fraction under
  error-detect + retransmit.

Zero-fault points run with ``faults=None`` — byte-identical to the
fault-free engine, sharing its cache entries (DESIGN.md §8).
"""

from __future__ import annotations

from repro.engine import (
    DEFAULT_DRAIN,
    DEFAULT_MEASURE,
    DEFAULT_SEED,
    DEFAULT_WARMUP,
    Executor,
    JobSpec,
)
from repro.noc.faults import BitErrorFaults, RandomFaults, SwingFaults

#: a comfortably sub-saturation operating point for a 4x4 mesh, so the
#: curves isolate fault loss from congestion loss
DEFAULT_RATE = 0.10


def _default_mix():
    # unicast only: hard faults replace routing with spanning-tree
    # rerouting, which cannot carry router-level multicast
    from repro.traffic.mix import UNIFORM_UNICAST

    return UNIFORM_UNICAST


def _default_config():
    from repro.core.presets import proposed_network

    return proposed_network()


def _row(stats, **axis):
    row = dict(axis)
    row.update(
        injection_rate=stats.injection_rate,
        delivered_fraction=stats.delivered_fraction,
        delivered_throughput_flits_per_cycle=stats.throughput_flits_per_cycle,
        delivered_throughput_gbps=stats.throughput_gbps,
        avg_latency=stats.avg_latency,
        dropped_flits=stats.dropped_flits,
        retransmissions=stats.retransmissions,
        stop_reason=stats.stop_reason,
    )
    return row


def _run(jobs, executor):
    if executor is None:
        executor = Executor()
    return executor.run(jobs)


def reliability_vs_faults(
    counts=(0, 1, 2, 4, 8, 12),
    link_error_rate=0.0,
    rate=DEFAULT_RATE,
    mix=None,
    config=None,
    seed=DEFAULT_SEED,
    warmup=DEFAULT_WARMUP,
    measure=DEFAULT_MEASURE,
    drain=DEFAULT_DRAIN,
    executor=None,
):
    """Delivered throughput and latency vs number of dead links.

    ``link_error_rate`` layers a soft per-flit corruption probability
    on the surviving links.  Returns one row dict per count.
    """
    jobs = []
    for count in counts:
        if count == 0:
            faults = (
                BitErrorFaults(rate=link_error_rate)
                if link_error_rate > 0.0
                else None
            )
        else:
            faults = RandomFaults(count=count, rate=link_error_rate)
        jobs.append(
            JobSpec(
                config=config if config is not None else _default_config(),
                mix=mix if mix is not None else _default_mix(),
                rate=rate,
                seed=seed,
                warmup=warmup,
                measure=measure,
                drain=drain,
                name=f"faults-{count}",
                faults=faults,
            )
        )
    results = _run(jobs, executor)
    return [
        _row(stats, fault_count=count)
        for count, stats in zip(counts, results)
    ]


def reliability_vs_swing(
    swings_mv=(180, 220, 260, 300, 340),
    rate=DEFAULT_RATE,
    mix=None,
    config=None,
    seed=DEFAULT_SEED,
    warmup=DEFAULT_WARMUP,
    measure=DEFAULT_MEASURE,
    drain=DEFAULT_DRAIN,
    executor=None,
):
    """Delivered throughput and latency vs link voltage swing.

    Each row carries the analytic per-flit error probability of its
    swing next to the simulated delivered fraction, so the exhibit
    reads as "model in, behaviour out".
    """
    cfg = config if config is not None else _default_config()
    the_mix = mix if mix is not None else _default_mix()
    models = [SwingFaults(swing_mv=float(s)) for s in swings_mv]
    jobs = [
        JobSpec(
            config=cfg,
            mix=the_mix,
            rate=rate,
            seed=seed,
            warmup=warmup,
            measure=measure,
            drain=drain,
            name=f"swing-{s}",
            faults=model,
        )
        for s, model in zip(swings_mv, models)
    ]
    results = _run(jobs, executor)
    return [
        _row(stats, swing_mv=float(s), flit_error_rate=model.error_rate(cfg))
        for s, model, stats in zip(swings_mv, models, results)
    ]


def reliability_figure(
    counts=(0, 1, 2, 4, 8, 12),
    swings_mv=(180, 220, 260, 300, 340),
    link_error_rate=0.0,
    rate=DEFAULT_RATE,
    warmup=DEFAULT_WARMUP,
    measure=DEFAULT_MEASURE,
    drain=DEFAULT_DRAIN,
    seed=DEFAULT_SEED,
    executor=None,
):
    """The full reliability exhibit: both degradation curves."""
    common = dict(
        rate=rate,
        seed=seed,
        warmup=warmup,
        measure=measure,
        drain=drain,
        executor=executor,
    )
    return {
        "injection_rate": rate,
        "vs_faults": reliability_vs_faults(
            counts=counts, link_error_rate=link_error_rate, **common
        ),
        "vs_swing": reliability_vs_swing(swings_mv=swings_mv, **common),
    }
