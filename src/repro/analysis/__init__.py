"""Closed-form analysis — theoretical mesh limits, chip comparisons —
plus the simulation-backed reliability exhibit."""

from repro.analysis.burstiness import (
    burstiness_timescale,
    dispersion_index,
    expected_onset_rate,
    mean_rate,
    peak_rate,
    rate_cv2,
    saturation_shift,
    stationary_distribution,
    state_flit_rates,
)
from repro.analysis.limits import MeshLimits
from repro.analysis.pattern_limits import (
    channel_load_map,
    max_channel_load,
    max_ejection_indegree,
    pattern_saturation_rate,
)
from repro.analysis.prototypes import (
    PROTOTYPES,
    ChipPrototype,
    prototype_comparison,
)
from repro.analysis.reliability import (
    reliability_figure,
    reliability_vs_faults,
    reliability_vs_swing,
)
from repro.analysis.replicas import (
    REPLICA_SEED_STRIDE,
    aggregate_replicas,
    replica_seeds,
    t_critical_95,
)
from repro.analysis.saturation import find_saturation, saturation_throughput
from repro.analysis.zero_load import zero_load_latency

__all__ = [
    "ChipPrototype",
    "MeshLimits",
    "PROTOTYPES",
    "REPLICA_SEED_STRIDE",
    "aggregate_replicas",
    "burstiness_timescale",
    "channel_load_map",
    "dispersion_index",
    "expected_onset_rate",
    "find_saturation",
    "max_channel_load",
    "max_ejection_indegree",
    "mean_rate",
    "pattern_saturation_rate",
    "peak_rate",
    "prototype_comparison",
    "rate_cv2",
    "reliability_figure",
    "reliability_vs_faults",
    "reliability_vs_swing",
    "replica_seeds",
    "saturation_shift",
    "saturation_throughput",
    "state_flit_rates",
    "stationary_distribution",
    "t_critical_95",
    "zero_load_latency",
]
