"""Closed-form analysis: theoretical mesh limits and chip comparisons."""

from repro.analysis.limits import MeshLimits
from repro.analysis.prototypes import (
    PROTOTYPES,
    ChipPrototype,
    prototype_comparison,
)
from repro.analysis.saturation import find_saturation, saturation_throughput
from repro.analysis.zero_load import zero_load_latency

__all__ = [
    "ChipPrototype",
    "MeshLimits",
    "PROTOTYPES",
    "find_saturation",
    "prototype_comparison",
    "saturation_throughput",
    "zero_load_latency",
]
