"""Closed-form analysis: theoretical mesh limits and chip comparisons."""

from repro.analysis.limits import MeshLimits
from repro.analysis.pattern_limits import (
    channel_load_map,
    max_channel_load,
    max_ejection_indegree,
    pattern_saturation_rate,
)
from repro.analysis.prototypes import (
    PROTOTYPES,
    ChipPrototype,
    prototype_comparison,
)
from repro.analysis.saturation import find_saturation, saturation_throughput
from repro.analysis.zero_load import zero_load_latency

__all__ = [
    "ChipPrototype",
    "MeshLimits",
    "PROTOTYPES",
    "channel_load_map",
    "find_saturation",
    "max_channel_load",
    "max_ejection_indegree",
    "pattern_saturation_rate",
    "prototype_comparison",
    "saturation_throughput",
    "zero_load_latency",
]
