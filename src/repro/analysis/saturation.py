"""Saturation-point detection.

The paper defines the saturation point as the injection rate at which
average latency reaches three times the no-load latency (footnote 1,
Section 4.1), arguing most multi-threaded applications operate below
it.  These helpers apply that rule to a latency-vs-rate sweep.

A fully saturated measurement window can complete *zero* messages, in
which case :func:`~repro.noc.metrics.summarize_window` reports
``avg_latency = NaN``.  NaN compares False against any threshold, so a
naive scan would silently skip exactly the most-saturated points; here
NaN is treated as unbounded latency (the point is past saturation by
definition).
"""

from __future__ import annotations

import math


def _latency(point):
    """The point's latency, with NaN mapped to +inf.

    NaN means the window completed no messages at all — the network is
    past saturation there, which for threshold purposes is unbounded
    latency, not a missing sample.
    """
    latency = point.avg_latency
    return float("inf") if math.isnan(latency) else latency


def find_saturation(points, zero_load_latency=None, factor=3.0):
    """Locate the saturation injection rate on a latency curve.

    ``points`` is a list of objects with ``injection_rate`` and
    ``avg_latency`` (e.g. :class:`~repro.noc.metrics.WindowStats`),
    sorted by rate.  The zero-load latency defaults to the first
    point's latency.  Returns the interpolated rate at which latency
    crosses ``factor`` times the zero-load value, or ``None`` if the
    curve never crosses within the sweep.  Points whose window
    completed no messages (NaN latency) count as above any threshold;
    a crossing into such a point is reported at the point's own rate,
    since there is no finite latency to interpolate against.
    """
    if not points:
        raise ValueError("empty sweep")
    pts = sorted(points, key=lambda p: p.injection_rate)
    base = zero_load_latency if zero_load_latency is not None else _latency(pts[0])
    if not math.isfinite(base):
        # the sweep starts beyond saturation; the first point bounds it
        return pts[0].injection_rate
    threshold = factor * base
    prev = None
    for p in pts:
        latency = _latency(p)
        if latency >= threshold:
            if prev is None or not math.isfinite(latency):
                return p.injection_rate
            # linear interpolation between the straddling points
            # (prev's latency is finite: it was below the threshold)
            dr = p.injection_rate - prev.injection_rate
            dl = latency - prev.avg_latency
            if dl <= 0:
                return p.injection_rate
            return prev.injection_rate + dr * (threshold - prev.avg_latency) / dl
        prev = p
    return None


def saturation_throughput(points, zero_load_latency=None, factor=3.0):
    """Delivered throughput (Gb/s) at the saturation point.

    Interpolates the throughput curve at the saturation rate; falls
    back to the highest measured throughput when the sweep never
    saturates.
    """
    pts = sorted(points, key=lambda p: p.injection_rate)
    rate = find_saturation(pts, zero_load_latency, factor)
    if rate is None:
        return max(p.throughput_gbps for p in pts)
    prev = None
    for p in pts:
        if p.injection_rate >= rate:
            if prev is None or p.injection_rate == rate:
                return p.throughput_gbps
            span = p.injection_rate - prev.injection_rate
            frac = (rate - prev.injection_rate) / span
            return prev.throughput_gbps + frac * (
                p.throughput_gbps - prev.throughput_gbps
            )
        prev = p
    return pts[-1].throughput_gbps
