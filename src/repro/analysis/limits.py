"""Theoretical limits of a k x k mesh NoC (Table 1 and Appendix A).

The bounds assume perfect routing (minimal, perfectly balanced),
perfect flow control (no link ever idles under load) and a perfect
router microarchitecture (flits spend exactly one crossbar-plus-link
traversal of delay and energy per hop).  Under those assumptions the
topology alone dictates:

* latency — the average hop count (to the destination for unicasts, to
  the *furthest* destination for broadcasts, Fig. 9);
* throughput — the binding channel load, bisection links for unicasts
  and ejection links for broadcasts (and for 4x4 unicasts, where
  ejection also binds);
* energy — crossbar and link traversal energy only; a broadcast must
  visit all k^2 routers, so its energy limit grows quadratically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.routing import coords


@dataclass(frozen=True)
class MeshLimits:
    """Closed-form limits for one mesh radix ``k`` (Table 1)."""

    k: int

    def __post_init__(self):
        if self.k < 2:
            raise ValueError("mesh radix must be at least 2")

    # -------------------------------------------------- latency (hops)

    @property
    def unicast_hops(self):
        """Average unicast hop count, 2(k+1)/3, the paper's H_average."""
        return 2 * (self.k + 1) / 3

    @property
    def broadcast_hops(self):
        """Average hops to the furthest destination (Fig. 9 geometry)."""
        k = self.k
        if k % 2 == 0:
            return (3 * k - 2) / 2
        return (k - 1) * (3 * k + 1) / (2 * k)

    @property
    def broadcast_hops_paper(self):
        """The even-k expression exactly as printed, (3k-1)/2.

        The printed even-k formula gives 5.5 for k=4, matching Table 2;
        the direct average of max(|dx|)+max(|dy|) over uniform sources
        gives (3k-2)/2 = 5.0.  Both are exposed: simulation checks use
        :attr:`broadcast_hops_exact`, paper-facing tables use this one.
        """
        k = self.k
        if k % 2 == 0:
            return (3 * k - 1) / 2
        return (k - 1) * (3 * k + 1) / (2 * k)

    @property
    def broadcast_hops_exact(self):
        """Exact average distance from a uniform source to its furthest node."""
        k = self.k
        total = 0
        for src in range(k * k):
            x, y = coords(src, k)
            total += max(x, k - 1 - x) + max(y, k - 1 - y)
        return total / (k * k)

    @property
    def unicast_hops_exact(self):
        """Exact mean pairwise distance, uniform over ordered pairs i != j."""
        k = self.k
        n = k * k
        total = 0
        for src in range(n):
            sx, sy = coords(src, k)
            for dst in range(n):
                dx, dy = coords(dst, k)
                total += abs(sx - dx) + abs(sy - dy)
        return total / (n * (n - 1))

    def latency_limit(self, traffic, nic_cycles=2):
        """Zero-load latency bound in cycles, including NIC links.

        The Fig. 5/13 limit lines add two cycles for the NIC-to-router
        and router-to-NIC traversals, which every packet must incur.
        """
        if traffic == "unicast":
            return self.unicast_hops + nic_cycles
        if traffic == "broadcast":
            return self.broadcast_hops_paper + nic_cycles
        raise ValueError(f"unknown traffic type {traffic!r}")

    # ---------------------------------------------- throughput (loads)

    def bisection_load(self, traffic, rate):
        """Per-bisection-link channel load at injection ``rate`` (Table 1)."""
        if traffic == "unicast":
            return self.k * rate / 4
        if traffic == "broadcast":
            return self.k * self.k * rate / 4
        raise ValueError(f"unknown traffic type {traffic!r}")

    def ejection_load(self, traffic, rate):
        """Per-ejection-link channel load at injection ``rate`` (Table 1)."""
        if traffic == "unicast":
            return rate
        if traffic == "broadcast":
            return self.k * self.k * rate
        raise ValueError(f"unknown traffic type {traffic!r}")

    def max_injection_rate(self, traffic):
        """Largest sustainable R (flits/node/cycle): binding load = 1."""
        if traffic == "unicast":
            # ejection binds for k <= 4, bisection beyond
            return min(1.0, 4 / self.k)
        if traffic == "broadcast":
            return 1.0 / (self.k * self.k)
        raise ValueError(f"unknown traffic type {traffic!r}")

    def throughput_limit_flits(self, traffic):
        """Delivered (ejected) flits/cycle, network-wide, at the limit."""
        n = self.k * self.k
        rate = self.max_injection_rate(traffic)
        fanout = n if traffic == "broadcast" else 1
        return n * rate * fanout

    def throughput_limit_gbps(self, traffic, flit_bits=64, frequency_ghz=1.0):
        return self.throughput_limit_flits(traffic) * flit_bits * frequency_ghz

    # ------------------------------------------------------- energy

    def energy_limit(self, traffic, e_xbar, e_link):
        """Energy per packet at the limit (Table 1, bottom row).

        A unicast traverses ``H_average`` links and ``H_average + 1``
        crossbars (one per router visited); a broadcast visits all k^2
        routers over a spanning tree of k^2 - 1 links.
        """
        if traffic == "unicast":
            h = self.unicast_hops
            return (h + 1) * e_xbar + h * e_link
        if traffic == "broadcast":
            n = self.k * self.k
            return n * e_xbar + (n - 1) * e_link
        raise ValueError(f"unknown traffic type {traffic!r}")

    # --------------------------------------------------- mixed traffic

    def mix_throughput_limit_gbps(self, mix, flit_bits=64, frequency_ghz=1.0):
        """Ejection-limited ceiling for a traffic mix (Fig. 5 limit)."""
        n = self.k * self.k
        return n * flit_bits * frequency_ghz  # one ejection/NIC/cycle

    def mix_saturation_rate(self, mix):
        """Offered load (flits/node/cycle) at which a mix hits the ceiling."""
        return mix.saturation_injection_rate(self.k * self.k)
