"""Replica aggregation: mean / std / 95% CI over multi-seed runs.

A *replica* is the same operating point re-simulated under a different
traffic seed.  Replicas answer "how much of this curve is seed noise?"
— the batched array kernel (``ArraySimulator(seeds=[...])``) makes N
of them cost barely more than one, so confidence intervals become a
default-on part of figure output instead of a luxury.

Two contracts matter for cache soundness:

* :func:`replica_seeds` is the *single* definition of the seed
  schedule.  Replica ``i`` of base seed ``s`` always runs at
  ``s + i*REPLICA_SEED_STRIDE``, so a replica's result is cached under
  the same content address as an ordinary single-seed run at that
  seed — replication, like batching, never enters job identity.
* :func:`aggregate_replicas` is pure post-processing over
  :class:`~repro.noc.metrics.WindowStats` values; it never touches the
  simulator, so aggregation can change freely without forking keys.
"""

from __future__ import annotations

import math

#: Spacing between consecutive replica seeds.  A large prime keeps the
#: per-node seed diffusion streams (``seed + node``) of different
#: replicas from ever colliding, for any mesh size we will ever run.
REPLICA_SEED_STRIDE = 100_003

#: WindowStats fields a replica aggregate summarises.
REPLICA_METRICS = (
    "avg_latency",
    "throughput_flits_per_cycle",
    "throughput_gbps",
    "delivered_fraction",
)

#: Two-tailed Student-t critical values at 95% confidence, indexed by
#: degrees of freedom (df = replicas - 1); beyond 30 the normal 1.96
#: is within 1%.
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048, 2.045, 2.042,
)


def t_critical_95(df):
    """Two-tailed 95% Student-t critical value for ``df`` degrees of
    freedom (1.96 beyond 30)."""
    if df < 1:
        raise ValueError("t critical value needs at least 1 degree of freedom")
    return _T95[df - 1] if df <= len(_T95) else 1.960


def replica_seeds(base, count):
    """The canonical seed schedule: ``count`` seeds starting at
    ``base``, stride :data:`REPLICA_SEED_STRIDE`.

    Replica 0 *is* the base seed, so a ``seeds=1`` run is byte-for-byte
    the ordinary single-seed run (same cache key, same stats).
    """
    if count < 1:
        raise ValueError("replica count must be at least 1")
    return [base + i * REPLICA_SEED_STRIDE for i in range(count)]


def aggregate_replicas(stats_list, metrics=REPLICA_METRICS):
    """Mean / sample std / 95% CI half-width per metric over replicas.

    ``stats_list`` holds one :class:`~repro.noc.metrics.WindowStats`
    per replica (any object with the metric attributes works).
    Returns ``{metric: {"mean", "std", "ci95", "n"}}``: ``std`` is the
    sample standard deviation (ddof=1) and ``ci95`` the half-width of
    the two-sided Student-t interval, so the interval is
    ``mean ± ci95``.  A single replica has no spread estimate (std and
    ci95 are 0.0); a NaN metric (a saturated or failed window's
    latency) propagates to NaN rather than being silently dropped —
    seed disagreement about saturation is a finding, not noise.
    """
    stats_list = list(stats_list)
    if not stats_list:
        raise ValueError("cannot aggregate zero replicas")
    n = len(stats_list)
    out = {}
    for metric in metrics:
        values = [float(getattr(s, metric)) for s in stats_list]
        mean = math.fsum(values) / n
        if n == 1:
            std = ci95 = 0.0
        else:
            var = math.fsum((v - mean) ** 2 for v in values) / (n - 1)
            std = math.sqrt(var)
            ci95 = t_critical_95(n - 1) * std / math.sqrt(n)
        out[metric] = {"mean": mean, "std": std, "ci95": ci95, "n": n}
    return out
