"""Temporal-burstiness analysis for modulated injection processes.

Two questions matter for a bursty sweep, and this module answers both
in closed form from the process's Markov-chain description
(:meth:`~repro.traffic.processes.InjectionProcess.state_rates`,
``stationary``, ``leave_probs``):

**The mean-rate identity.**  Every
:class:`~repro.traffic.processes.InjectionProcess` must offer the same
long-run load as the Bernoulli process it replaces:
``sum(pi[i] * r[i]) == rate`` exactly, where ``pi`` is the chain's
stationary distribution and ``r`` its per-state flit rates.
:func:`mean_rate` computes the left-hand side so tests can assert the
identity, and the derived moments (:func:`rate_cv2`,
:func:`burstiness_timescale`, :func:`dispersion_index`) quantify *how*
the same mean is delivered.

**The expected saturation shift.**  The long-run saturation wall of
:func:`repro.analysis.pattern_limits.pattern_saturation_rate` does not
move under burstiness — by the identity, a channel that can carry the
mean carries it, and OFF gaps are exactly long enough to drain what
bursts over-drive (the drain inequality reduces to ``rate <= wall``).
What moves is the *measured onset*: the paper's 3x-zero-load latency
criterion trips earlier because bursty arrivals queue more at the same
occupancy.  We model that with the standard heavy-traffic scaling —
queueing delay grows like ``I * rho / (1 - rho)`` where ``I`` is the
process's asymptotic index of dispersion (Bernoulli: ``I = 1``) — and
solve for the occupancy at which a bursty sweep reaches the delay a
Bernoulli sweep has at its measured onset.  :func:`expected_onset_rate`
returns that rate; it is a heuristic (the constant in front of the
queueing term cancels, the criterion does not), but it is exact in the
two limits that matter — it reproduces the Bernoulli reference when
``I = 1`` and it is monotone: burstier processes (longer bursts, higher
peak-to-mean) predict earlier onset, which the integration sweeps
confirm in measurement.
"""

from __future__ import annotations

from repro.analysis.pattern_limits import pattern_saturation_rate

#: Occupancy (fraction of the analytic wall) at which a Bernoulli sweep
#: measures saturation by the 3x-zero-load criterion; the bursty onset
#: is referenced to the delay level reached here.
BERNOULLI_ONSET_OCCUPANCY = 0.9


def _validated(process, rate):
    """Reject rates outside the process's expressible range up front.

    The chain description is only meaningful inside it — beyond
    ``max_rate`` an on-off OFF-exit 'probability' exceeds one (or the
    duty division blows up at ``rate == on_rate``), and every derived
    moment silently degrades into garbage rather than failing.
    """
    process.validate(rate)
    return rate


def stationary_distribution(process, rate):
    """Long-run state distribution ``pi`` of the process's chain."""
    return tuple(process.stationary(_validated(process, rate)))


def state_flit_rates(process, rate):
    """Per-state offered flit rates at configured mean ``rate``."""
    return tuple(process.state_rates(_validated(process, rate)))


def mean_rate(process, rate):
    """Stationary-weighted mean flit rate: ``sum(pi * r)``.

    The mean-rate identity says this equals ``rate`` exactly for every
    registered process; the statistical tests assert it analytically
    here and empirically against long simulated traces.
    """
    pi = process.stationary(_validated(process, rate))
    rates = process.state_rates(rate)
    return sum(p * r for p, r in zip(pi, rates))


def peak_rate(process, rate):
    """The busiest state's flit rate (the instantaneous burst load)."""
    return max(process.state_rates(_validated(process, rate)))


def rate_cv2(process, rate):
    """Squared coefficient of variation of the instantaneous rate.

    ``Var(r) / E[r]^2`` over the stationary distribution: 0 for
    Bernoulli (one state), ``on_rate/rate - 1`` for on-off, and the
    level-spread measure for MMP.  Zero mean rate has no variation by
    convention.
    """
    if _validated(process, rate) <= 0.0:
        return 0.0
    pi = process.stationary(rate)
    rates = process.state_rates(rate)
    second = sum(p * r * r for p, r in zip(pi, rates))
    return second / (rate * rate) - 1.0


def burstiness_timescale(process, rate):
    """Correlation time of the modulating chain, in cycles.

    ``1 / sum(leave_probs)`` — for a two-state chain this is exactly
    the rate-autocorrelation decay constant ``1 / (alpha + beta)``
    (harmonic mean of the dwell times); memoryless processes have no
    temporal correlation, so the timescale is 0.
    """
    if process.memoryless:
        return 0.0
    total = sum(process.leave_probs(_validated(process, rate)))
    return 1.0 / total if total > 0.0 else 0.0


def dispersion_index(process, rate):
    """Asymptotic index of dispersion of the injected-flit counts.

    ``I = 1 + 2 * cv2 * rate * tau``: the Bernoulli variance-to-mean
    ratio of 1, inflated by the rate variance accumulated over the
    chain's correlation time.  This is the standard long-window IDC of
    a Markov-modulated process and the burstiness knob of the onset
    heuristic: for on-off at full burst rate it reduces to
    ``1 + 2 * L * (1 - duty)^2``, growing linearly in the burst length
    and collapsing to 1 as the duty cycle approaches always-on.
    """
    return 1.0 + (
        2.0
        * rate_cv2(process, rate)
        * rate
        * burstiness_timescale(process, rate)
    )


def expected_onset_rate(
    mix,
    k,
    pattern=None,
    routing=None,
    process=None,
    reference_occupancy=BERNOULLI_ONSET_OCCUPANCY,
):
    """Predicted measured-saturation onset (flits/node/cycle).

    Solves ``I(rho * wall) * rho / (1 - rho)`` equal to the Bernoulli
    reference level ``rho0 / (1 - rho0)`` for the occupancy ``rho``
    (fixed point, a few iterations — ``I`` depends on the rate for
    processes like on-off whose duty cycle scales with it), then
    returns ``rho * wall`` clamped to the process's expressible range.
    Bernoulli (or ``process=None``) returns ``rho0 * wall``; burstier
    processes return strictly less, never below the trivial floor.
    """
    wall = pattern_saturation_rate(mix, k, pattern, routing)
    rho0 = reference_occupancy
    if not 0.0 < rho0 < 1.0:
        raise ValueError("reference occupancy must be in (0, 1)")
    if process is None or process.memoryless:
        return rho0 * wall
    tau0 = rho0 / (1.0 - rho0)
    rho = rho0
    for _ in range(64):
        rate = min(rho * wall, process.max_rate())
        index = dispersion_index(process, rate)
        nxt = tau0 / (tau0 + index)
        if abs(nxt - rho) < 1e-12:
            rho = nxt
            break
        rho = nxt
    return min(rho * wall, process.max_rate())


def saturation_shift(mix, k, pattern=None, routing=None, process=None):
    """Expected onset of the bursty sweep relative to the Bernoulli one.

    ``expected_onset(process) / expected_onset(bernoulli)`` — 1.0 for
    the memoryless default, strictly below 1.0 for bursty processes
    (the integration sweeps measure the same ordering).
    """
    bursty = expected_onset_rate(mix, k, pattern, routing, process)
    reference = expected_onset_rate(mix, k, pattern, routing, None)
    return bursty / reference
