"""Pattern- and routing-dependent throughput ceilings for a k x k mesh.

Table 1 formalises the two channel-load bounds of the paper — the
bisection links for spreading traffic and the ejection links for
converging traffic — under uniform and broadcast workloads.  This
module generalises :meth:`repro.traffic.mix.TrafficMix.
saturation_injection_rate` to spatial
:class:`~repro.traffic.patterns.DestinationPattern` workloads:

* deterministic patterns (transpose, tornado, ...): the XY route of
  every source-destination pair is known, so the binding channel load
  is computed *exactly* by walking the routes and counting directed
  link crossings, and the binding ejection load is the maximum
  in-degree of the destination map;
* hotspot: ejection-limited at the hot nodes, which receive the
  concentrated fraction of every node's unicasts on a single
  one-flit-per-cycle ejection link;
* uniform (or no pattern): Table 1's bisection bound (kR/4 per link)
  plus the mix's ejection bound, reproducing the existing behaviour.

Broadcast components of a mix are pattern-independent (they always
address all nodes); their k^2 R ejection load and k^2 R / 4 bisection
load ride along in every bound.  For mixes combining broadcasts with a
patterned unicast component, the two constraint families are evaluated
independently and the minimum is returned — exact for single-kind
mixes, mildly optimistic when the binding link would carry both kinds.

The ``routing`` axis (PR 4) generalises the channel bounds to the
oblivious algorithms of :mod:`repro.noc.routing`:

* ``yx`` — the XY computation with the dimension order swapped;
* ``o1turn`` — every flow splits evenly over its XY and YX paths, so a
  link's load is the *elementwise average* of the XY and YX load maps.
  For permutations whose XY and YX hot links are disjoint (transpose)
  this is the classic max(XY, YX)/2 halving; where they coincide
  (tornado) the exact elementwise average shows the bound does not
  move, which the issue's coarser max/2 formula would miss;
* ``valiant`` — two uniform-random XY phases regardless of the
  pattern, so the binding channel load is twice uniform's kR/4
  bisection load (pattern-independence bought at 2x the average load).

Ejection bounds are routing-independent: no oblivious algorithm
changes *where* a flit finally ejects.  All channel bounds assume the
VC provisioning is not binding — see
:func:`repro.noc.config.routed_vc_config` for why two-phase algorithms
need more than the chip's stock six VCs to express them.
"""

from __future__ import annotations

from collections import Counter

from repro.noc.routing import coords
from repro.traffic.patterns import HotspotPattern, UniformPattern


def _unicast_broadcast_flit_fractions(mix):
    """Fractions of injected *flits* that are unicast vs broadcast."""
    mean = mix.mean_flits_per_message
    broadcast = sum(
        c.weight * c.num_flits for c in mix.components if c.broadcast
    )
    unicast = sum(
        c.weight * c.num_flits for c in mix.components if not c.broadcast
    )
    return unicast / mean, broadcast / mean


def xy_route_links(src, dst, k):
    """Directed router-to-router links of the XY route from src to dst."""
    links = []
    x, y = coords(src, k)
    dx, dy = coords(dst, k)
    while x != dx:
        nx = x + (1 if dx > x else -1)
        links.append(((x, y), (nx, y)))
        x = nx
    while y != dy:
        ny = y + (1 if dy > y else -1)
        links.append(((x, y), (x, ny)))
        y = ny
    return links


def yx_route_links(src, dst, k):
    """Directed router-to-router links of the YX route from src to dst."""
    links = []
    x, y = coords(src, k)
    dx, dy = coords(dst, k)
    while y != dy:
        ny = y + (1 if dy > y else -1)
        links.append(((x, y), (x, ny)))
        y = ny
    while x != dx:
        nx = x + (1 if dx > x else -1)
        links.append(((x, y), (nx, y)))
        x = nx
    return links


def channel_load_map(pattern, k, route_links=xy_route_links):
    """Directed-link crossing counts of a deterministic pattern.

    Each source contributes its full route (``route_links``; XY by
    default) once, so an entry of ``c`` means the link carries
    ``c * R_u`` flits/cycle at a per-node unicast flit rate of ``R_u``.
    """
    if not pattern.deterministic:
        raise ValueError(
            f"channel loads need a deterministic pattern, not {pattern.name!r}"
        )
    loads = Counter()
    for src in range(k * k):
        for link in route_links(src, pattern.dest(src, k), k):
            loads[link] += 1
    return loads


def max_channel_load(pattern, k, routing=None):
    """The binding (maximum) directed-link load per unit unicast rate
    of a deterministic pattern under an oblivious routing algorithm
    (``None`` = the XY default; Valiant is handled separately because
    its load is pattern-independent)."""
    name = _routing_name(routing)
    if name == "valiant":
        raise ValueError(
            "valiant channel load is pattern-independent (2x uniform); "
            "use pattern_saturation_rate, which models it directly"
        )
    if name == "yx":
        loads = channel_load_map(pattern, k, yx_route_links)
    elif name == "o1turn":
        xy = channel_load_map(pattern, k, xy_route_links)
        yx = channel_load_map(pattern, k, yx_route_links)
        loads = {
            link: (xy.get(link, 0) + yx.get(link, 0)) / 2.0
            for link in set(xy) | set(yx)
        }
    else:
        loads = channel_load_map(pattern, k, xy_route_links)
    return max(loads.values()) if loads else 0


def _routing_name(routing):
    """Canonical algorithm name of a routing argument (None = xy)."""
    if routing is None:
        return "xy"
    name = getattr(routing, "name", routing)
    if name not in ("xy", "yx", "o1turn", "valiant"):
        raise ValueError(f"no channel-load model for routing {name!r}")
    return name


def max_ejection_indegree(pattern, k):
    """Sources converging on the most popular destination."""
    if not pattern.deterministic:
        raise ValueError(
            f"ejection in-degree needs a deterministic pattern, "
            f"not {pattern.name!r}"
        )
    indeg = Counter(pattern.dest(src, k) for src in range(k * k))
    return max(indeg.values())


def pattern_saturation_rate(mix, k, pattern=None, routing=None):
    """Offered-load ceiling (flits/node/cycle) for a patterned mix.

    Generalises :meth:`TrafficMix.saturation_injection_rate`: returns
    the smallest injection rate R at which some channel load reaches
    one flit per cycle, for the given spatial pattern on a k x k mesh
    routed by ``routing`` (``None`` = dimension-ordered XY).
    ``pattern=None`` (or uniform) with XY routing reproduces Table 1's
    uniform bounds.
    """
    name = _routing_name(routing)
    n = k * k
    unicast, broadcast = _unicast_broadcast_flit_fractions(mix)
    bounds = []

    # --- ejection links: one flit per NIC per cycle ------------------
    # every broadcast flit ejects at every node: n * broadcast per R
    broadcast_ej = n * broadcast
    if pattern is None or isinstance(pattern, UniformPattern):
        unicast_ej = unicast  # spread evenly: one ejection per flit
    elif isinstance(pattern, HotspotPattern):
        # a hot node receives the concentrated fraction of every
        # node's unicasts plus its share of the uniform background
        concentration = n * pattern.fraction / len(pattern.hot_nodes)
        unicast_ej = unicast * (concentration + (1.0 - pattern.fraction))
    elif pattern.deterministic:
        unicast_ej = unicast * max_ejection_indegree(pattern, k)
    else:
        unicast_ej = unicast
    ejection = broadcast_ej + unicast_ej
    if ejection > 0:
        bounds.append(1.0 / ejection)

    # --- mesh channels: one flit per directed link per cycle ---------
    # broadcasts load each bisection link with k^2 R / 4 (Table 1;
    # multicast trees are XY regardless of the routing algorithm)
    broadcast_ch = broadcast * (n / 4.0)
    if name == "valiant":
        # two uniform-random XY phases whatever the pattern: twice the
        # uniform kR/4 bisection load on the binding link
        unicast_ch = unicast * (k / 2.0)
    elif pattern is not None and pattern.deterministic:
        unicast_ch = unicast * max_channel_load(pattern, k, name)
    else:
        # uniform (and the hotspot background): kR/4 per bisection
        # link under xy, yx and o1turn alike (the elementwise average
        # of two equal uniform load maps is the same map)
        unicast_ch = unicast * (k / 4.0)
    channel = broadcast_ch + unicast_ch
    if channel > 0:
        bounds.append(1.0 / channel)

    if not bounds:
        raise ValueError("mix offers no load")
    return min(bounds)
