"""Prior mesh NoC chip prototypes and their position against the limits.

Table 2 of the paper compares the Intel Teraflops, Tilera TILE64 and
SWIFT chips against the fabricated design on zero-load latency, channel
load and bisection bandwidth, modelling all prior chips as 8x8 networks
and this work as 4x4.  We regenerate every computed row from each
chip's published microarchitectural parameters and keep the paper's
quoted values alongside for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.zero_load import zero_load_latency


@dataclass(frozen=True)
class ChipPrototype:
    """Parameters of one chip as the paper models it."""

    name: str
    modeled_k: int
    technology: str
    frequency_ghz: float
    channel_bits: int
    #: per-hop pipeline depth in cycles for straight-through traffic
    cycles_per_hop: float
    multicast_support: bool
    #: number of physical networks the channel is split across
    num_networks: int = 1
    power_note: str = ""
    paper_values: dict = field(default_factory=dict)

    # ------------------------------------------------------- derived

    @property
    def delay_per_hop_ns(self):
        return self.cycles_per_hop / self.frequency_ghz

    def zero_load(self, traffic):
        """Zero-load latency in cycles (Table 2 convention: hops only)."""
        return zero_load_latency(
            self.modeled_k,
            self.cycles_per_hop,
            traffic=traffic,
            multicast_support=self.multicast_support,
        )

    def channel_load(self, traffic):
        """Network-wide offered flit load per unit injection rate R.

        Table 2 normalises to the flits entering the network per cycle
        for injection rate R per core: k^2 R for unicasts, multiplied
        by k^2 when broadcasts must be expanded into unicast copies.
        """
        n = self.modeled_k**2
        if traffic == "unicast":
            return n
        if traffic == "broadcast":
            return n if self.multicast_support else n * n
        raise ValueError(f"unknown traffic type {traffic!r}")

    @property
    def bisection_bandwidth_gbps(self):
        """One-directional bisection bandwidth of the modelled mesh."""
        return (
            self.modeled_k
            * self.num_networks
            * self.channel_bits
            * self.frequency_ghz
        )


PROTOTYPES = (
    ChipPrototype(
        name="Intel Teraflops",
        modeled_k=8,
        technology="65nm",
        frequency_ghz=5.0,
        channel_bits=39,
        cycles_per_hop=5,  # five-pipeline-stage router
        multicast_support=False,
        paper_values={
            "zero_load_unicast": 30,
            "zero_load_broadcast": 120.5,
            "channel_load_unicast": 64,
            "channel_load_broadcast": 4096,
            "bisection_gbps": 1560,
            "power_w": 97,
        },
    ),
    ChipPrototype(
        name="Tilera TILE64",
        modeled_k=8,
        technology="90nm",
        frequency_ghz=0.75,
        channel_bits=32,
        cycles_per_hop=1.5,  # 1 cycle straight, 2 turning
        multicast_support=False,
        num_networks=5,
        paper_values={
            "zero_load_unicast": 9,
            "zero_load_broadcast": 77.5,
            "channel_load_unicast": 64,
            "channel_load_broadcast": 4096,
            "bisection_gbps": 937.5,
            "power_w": 18.5,
        },
    ),
    ChipPrototype(
        name="SWIFT",
        modeled_k=8,
        technology="90nm",
        frequency_ghz=0.225,
        channel_bits=64,
        cycles_per_hop=2,  # single-cycle router + link
        multicast_support=False,
        paper_values={
            "zero_load_unicast": 12,
            "zero_load_broadcast": 86,
            "channel_load_unicast": 64,
            "channel_load_broadcast": 4096,
            "bisection_gbps": 112.5,
            "power_w": 0.1165,
        },
    ),
    ChipPrototype(
        name="This work",
        modeled_k=4,
        technology="45nm SOI",
        frequency_ghz=1.0,
        channel_bits=64,
        cycles_per_hop=1,  # bypassed single-cycle ST+LT
        multicast_support=True,
        paper_values={
            "zero_load_unicast": 3.3,
            "zero_load_broadcast": 5.5,
            "channel_load_unicast": 16,
            "channel_load_broadcast": 16,
            "bisection_gbps": 256,
            "power_w": 0.4273,
        },
    ),
)


def prototype_comparison():
    """Table 2 rows: computed metrics next to the paper's quoted values."""
    rows = []
    for chip in PROTOTYPES:
        rows.append(
            {
                "name": chip.name,
                "mesh": f"{chip.modeled_k}x{chip.modeled_k}",
                "frequency_ghz": chip.frequency_ghz,
                "delay_per_hop_ns": chip.delay_per_hop_ns,
                "zero_load_unicast": chip.zero_load("unicast"),
                "zero_load_broadcast": chip.zero_load("broadcast"),
                "channel_load_unicast": chip.channel_load("unicast"),
                "channel_load_broadcast": chip.channel_load("broadcast"),
                "bisection_gbps": chip.bisection_bandwidth_gbps,
                "paper": dict(chip.paper_values),
            }
        )
    return rows
