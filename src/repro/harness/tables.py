"""Plain-text rendering of result tables and curve series."""

from __future__ import annotations


def _fmt(value):
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def format_table(headers, rows, title=None):
    """Render a list-of-rows table with aligned columns."""
    cells = [[_fmt(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(series, x_label="x", y_label="y", title=None):
    """Render named (x, y) curves side by side, joined on x."""
    xs = sorted({x for points in series.values() for x, _ in points})
    headers = [x_label] + [f"{name} {y_label}" for name in series]
    lookup = {name: dict(points) for name, points in series.items()}
    rows = []
    for x in xs:
        rows.append([x] + [lookup[name].get(x, float("nan")) for name in series])
    return format_table(headers, rows, title=title)
