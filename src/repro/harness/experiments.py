"""One driver per table and figure of the paper.

Every public function regenerates the data behind one exhibit and
returns plain data structures (dicts/lists/dataclasses) that the
benchmarks assert on and the examples print.  Simulation-backed
figures accept ``measure``/``warmup`` cycle counts so benchmarks can
trade fidelity for runtime; the defaults match the paper's 10^4-cycle
methodology.
"""

from __future__ import annotations

import sys

from repro.analysis.limits import MeshLimits
from repro.analysis.prototypes import prototype_comparison
from repro.analysis.saturation import find_saturation, saturation_throughput
from repro.analysis.zero_load import zero_load_latency_config
from repro.circuits.crossbar import LowSwingCrossbar
from repro.circuits.eye import repeated_vs_direct
from repro.circuits.repeater import FullSwingRepeatedLink
from repro.circuits.rsd import TriStateRSD
from repro.circuits.sense_amp import SenseAmplifier
from repro.core.presets import (
    baseline_network,
    proposed_network,
    strawman_network,
)
from repro.engine import (
    DEFAULT_DRAIN,
    DEFAULT_MEASURE,
    DEFAULT_SEED,
    DEFAULT_WARMUP,
)
from repro.analysis.replicas import aggregate_replicas
from repro.harness.sweep import default_rates, run_sweep_batch
from repro.noc.metrics import aggregate
from repro.noc.simulator import Simulator
from repro.physical.area import AreaModel
from repro.physical.critical_path import CriticalPathAnalysis
from repro.power.meter import PowerMeter
from repro.power.orion import OrionPowerModel
from repro.power.postlayout import PostLayoutPowerModel
from repro.traffic.generators import BernoulliTraffic
from repro.traffic.mix import BROADCAST_ONLY, MIXED_TRAFFIC

#: offered broadcast rate delivering ~653 Gb/s (the Fig. 6/8 point)
FIG6_RATE = 653 / 64 / 256


# ----------------------------------------------------------------- tables


def table1_limits(ks=(2, 4, 8, 16)):
    """Table 1: theoretical limits for a range of mesh radices."""
    rows = []
    for k in ks:
        lim = MeshLimits(k)
        rows.append(
            {
                "k": k,
                "unicast_hops": lim.unicast_hops,
                "broadcast_hops": lim.broadcast_hops_paper,
                "unicast_bisection_load": lim.bisection_load("unicast", 1.0),
                "broadcast_bisection_load": lim.bisection_load("broadcast", 1.0),
                "unicast_ejection_load": lim.ejection_load("unicast", 1.0),
                "broadcast_ejection_load": lim.ejection_load("broadcast", 1.0),
                "unicast_max_rate": lim.max_injection_rate("unicast"),
                "broadcast_max_rate": lim.max_injection_rate("broadcast"),
                "unicast_energy_xbar_link": lim.energy_limit("unicast", 1.0, 1.0),
                "broadcast_energy_xbar_link": lim.energy_limit(
                    "broadcast", 1.0, 1.0
                ),
            }
        )
    return rows


def table2_prototypes():
    """Table 2: chip prototype comparison."""
    return prototype_comparison()


def table3_critical_path():
    """Table 3: pre/post-layout and measured critical paths."""
    return CriticalPathAnalysis().report()


def table4_area():
    """Table 4: full-swing vs low-swing crossbar and router area."""
    return AreaModel()


# ---------------------------------------------------------------- figures


def _paired_sweeps(mix, rates, executor=None, routing=None, seeds=1,
                   **kwargs):
    """Proposed + baseline sweeps, submitted as one engine batch so a
    process-pool backend can overlap the two.  ``routing`` swaps the
    unicast routing algorithm into both configs (multicast trees stay
    XY — the baseline expands broadcasts into unicasts anyway);
    ``seeds`` runs that many replicas per rate (see
    :func:`~repro.harness.sweep.run_sweep_batch`)."""
    configs = {"proposed": proposed_network(), "baseline": baseline_network()}
    if routing is not None:
        configs = {
            name: cfg.with_(routing=routing) for name, cfg in configs.items()
        }
    return run_sweep_batch(
        configs, mix, rates, executor=executor, replicas=seeds, **kwargs
    )


def _fold_replicas(result, sweeps, seeds):
    """Fan a replicated sweep dict into the figure result: the plain
    ``proposed``/``baseline`` series stay the base-seed runs (so every
    downstream consumer — ``summarize_sweeps``, the benchmarks — sees
    exactly what a ``seeds=1`` run produces), and per-rate mean/std/CI
    aggregates land next to them under ``*_replicas``."""
    for name in ("proposed", "baseline"):
        groups = sweeps[name]
        result[name] = [g[0] for g in groups]
        result[f"{name}_replicas"] = [aggregate_replicas(g) for g in groups]
    result["seeds"] = seeds
    return result


def fig5_mixed_traffic(
    rates=None,
    warmup=DEFAULT_WARMUP,
    measure=DEFAULT_MEASURE,
    drain=DEFAULT_DRAIN,
    seed=DEFAULT_SEED,
    executor=None,
    backend="object",
    pattern=None,
    routing=None,
    injection=None,
    seeds=1,
):
    """Fig. 5: latency vs injection for mixed traffic at 1 GHz.

    Returns the proposed and baseline sweeps plus the theoretical
    latency and throughput limit lines.  ``executor`` (an
    :class:`~repro.engine.Executor`) selects the execution backend and
    result cache; the default is serial and uncached.  ``pattern``
    replaces the paper's uniform unicast destinations with a spatial
    :class:`~repro.traffic.patterns.DestinationPattern`, ``routing``
    swaps the unicast routing algorithm (a
    :class:`~repro.noc.routing.RoutingAlgorithm`), and ``injection``
    swaps the temporal process (an
    :class:`~repro.traffic.processes.InjectionProcess` — bursty
    processes offer the same mean load but reach saturation earlier);
    the limit lines are only exact for the uniform-XY-Bernoulli
    default.  ``seeds`` runs each rate under that many replica seeds
    (cheap on ``backend="array"``, which folds them into one batched
    kernel pass): the ``proposed``/``baseline`` series stay the
    base-seed runs, and per-rate mean/std/95%-CI aggregates appear
    under ``proposed_replicas``/``baseline_replicas``.
    """
    lim = MeshLimits(4)
    if rates is None:
        if pattern is None and routing is None and injection is None:
            rates = [0.02, 0.05, 0.08, 0.11, 0.14, 0.16, 0.18, 0.21]
        else:
            # adversarial patterns (or non-default routing) saturate
            # away from the uniform grid; bracket their own ceiling,
            # clamped to what the injection process can express
            rates = default_rates(
                MIXED_TRAFFIC,
                16,
                pattern=pattern,
                routing=routing,
                injection=injection,
            )
    sweeps = _paired_sweeps(
        MIXED_TRAFFIC,
        rates,
        executor=executor,
        backend=backend,
        routing=routing,
        seeds=seeds,
        warmup=warmup,
        measure=measure,
        drain=drain,
        seed=seed,
        pattern=pattern,
        injection=injection,
    )
    weights = {c.name: c.weight for c in MIXED_TRAFFIC.components}
    latency_limit = (
        weights["broadcast_request"] * lim.latency_limit("broadcast")
        + weights["unicast_request"] * lim.latency_limit("unicast")
        + weights["unicast_response"] * (lim.latency_limit("unicast") + 4)
    )
    result = {
        "traffic": "mixed",
        "rates": list(rates),
        "proposed": sweeps["proposed"],
        "baseline": sweeps["baseline"],
        "latency_limit_cycles": latency_limit,
        "throughput_limit_gbps": lim.mix_throughput_limit_gbps(MIXED_TRAFFIC),
        "saturation_rate_limit": lim.mix_saturation_rate(MIXED_TRAFFIC),
    }
    if seeds > 1:
        _fold_replicas(result, sweeps, seeds)
    return result


def fig13_broadcast_traffic(
    rates=None,
    warmup=DEFAULT_WARMUP,
    measure=DEFAULT_MEASURE,
    drain=DEFAULT_DRAIN,
    seed=DEFAULT_SEED,
    executor=None,
    backend="object",
    pattern=None,
    routing=None,
    injection=None,
    seeds=1,
):
    """Fig. 13 / Appendix D: broadcast-only latency vs injection.

    ``pattern`` and ``routing`` are accepted for CLI symmetry but
    *ignored*: broadcast messages always address every node and route
    along the XY multicast tree under every algorithm, and this mix
    has no unicast component, so neither knob can change a single
    flit — honouring them would only fork the cache keys and
    re-simulate identical results.  ``injection`` is honoured: the
    temporal process decides *when* broadcasts are injected, so bursty
    processes genuinely change this figure.
    """
    lim = MeshLimits(4)
    if rates is None:
        rates = [0.005, 0.015, 0.025, 0.035, 0.045, 0.055, 0.065, 0.072]
        if injection is not None:
            kept = [r for r in rates if r <= injection.max_rate()]
            if not kept:
                raise ValueError(
                    f"the {injection.name} process cannot express any of "
                    f"fig13's default rates (max "
                    f"{injection.max_rate():.4g} flits/node/cycle); pass "
                    f"explicit rates within its range"
                )
            if len(kept) < len(rates):
                # never truncate silently: a shorter grid changes what
                # find_saturation can see, and that must read as a
                # coverage limit, not a workload effect
                print(
                    f"note: fig13 rates above the {injection.name} "
                    f"process's expressible mean "
                    f"({injection.max_rate():.4g}) dropped: "
                    f"{[r for r in rates if r not in kept]}",
                    file=sys.stderr,
                )
            rates = kept
    sweeps = _paired_sweeps(
        BROADCAST_ONLY,
        rates,
        executor=executor,
        backend=backend,
        seeds=seeds,
        warmup=warmup,
        measure=measure,
        drain=drain,
        seed=seed,
        injection=injection,
    )
    result = {
        "traffic": "broadcast_only",
        "rates": list(rates),
        "proposed": sweeps["proposed"],
        "baseline": sweeps["baseline"],
        "latency_limit_cycles": lim.latency_limit("broadcast"),
        "throughput_limit_gbps": lim.mix_throughput_limit_gbps(BROADCAST_ONLY),
        "saturation_rate_limit": lim.mix_saturation_rate(BROADCAST_ONLY),
    }
    if seeds > 1:
        _fold_replicas(result, sweeps, seeds)
    return result


def summarize_sweeps(result):
    """Section 4.1 headline numbers from a Fig. 5/13 result dict.

    Low-load latency reduction, saturation throughputs by the paper's
    3x-zero-load rule, their ratio, and the fraction of the theoretical
    throughput limit attained.
    """
    proposed, baseline = result["proposed"], result["baseline"]
    lat_red = 1.0 - proposed[0].avg_latency / baseline[0].avg_latency
    sat_prop = saturation_throughput(proposed)
    sat_base = saturation_throughput(baseline)
    return {
        "low_load_latency_reduction": lat_red,
        "proposed_saturation_gbps": sat_prop,
        "baseline_saturation_gbps": sat_base,
        "throughput_ratio": sat_prop / sat_base,
        "fraction_of_limit": sat_prop / result["throughput_limit_gbps"],
        "proposed_saturation_rate": find_saturation(proposed),
        "baseline_saturation_rate": find_saturation(baseline),
        "max_delivered_gbps": max(p.throughput_gbps for p in proposed),
    }


def _window_activity(config, rate, low_swing, warmup, measure, seed=7):
    traffic = BernoulliTraffic(BROADCAST_ONLY, rate, seed=seed)
    sim = Simulator(config, traffic)
    sim.run(warmup)
    start = aggregate(sim.network.router_stats).snapshot()
    start_ej = sum(s.ejected_flits for s in sim.network.nic_stats)
    sim.run(measure)
    activity = aggregate(sim.network.router_stats) - start
    ejected = sum(s.ejected_flits for s in sim.network.nic_stats) - start_ej
    meter = PowerMeter(low_swing=low_swing, num_routers=config.num_nodes)
    return activity, meter.evaluate(activity, measure), ejected


def fig6_power_reduction(rate=FIG6_RATE, warmup=1_000, measure=4_000, seed=7):
    """Fig. 6: the A->B->C->D power waterfall at ~653 Gb/s broadcast.

    A: full-swing unicast network, B: low-swing unicast network,
    C: low-swing broadcast network without bypass, D: with bypass.
    """
    configs = {
        "A": (baseline_network(), False),
        "B": (baseline_network(), True),
        "C": (strawman_network(), True),
        "D": (proposed_network(), True),
    }
    out = {}
    for label, (cfg, low_swing) in configs.items():
        activity, breakdown, ejected = _window_activity(
            cfg, rate, low_swing, warmup, measure, seed
        )
        out[label] = {
            "breakdown": breakdown,
            "delivered_gbps": 64.0 * ejected / measure,
        }
    a, b = out["A"]["breakdown"], out["B"]["breakdown"]
    c, d = out["C"]["breakdown"], out["D"]["breakdown"]
    out["reductions"] = {
        "datapath_low_swing": 1 - b.datapath_mw / a.datapath_mw,
        "logic_multicast": 1 - c.logic_mw / b.logic_mw,
        "buffers_bypass": 1 - d.buffers_mw / c.buffers_mw,
        "total": 1 - d.total_mw / a.total_mw,
    }
    return out


def fig8_power_models(rate=FIG6_RATE, warmup=1_000, measure=4_000, seed=7):
    """Fig. 8: ORION vs post-layout vs 'measured' power estimates."""
    base_cfg, prop_cfg = baseline_network(), proposed_network()
    act_b, meas_b, _ = _window_activity(base_cfg, rate, False, warmup, measure, seed)
    act_p, meas_p, _ = _window_activity(prop_cfg, rate, True, warmup, measure, seed)
    rows = {
        "measured": {"baseline": meas_b, "proposed": meas_p},
        "orion": {
            "baseline": OrionPowerModel(base_cfg).evaluate(act_b, measure),
            "proposed": OrionPowerModel(prop_cfg).evaluate(act_p, measure),
        },
        "postlayout": {
            "baseline": PostLayoutPowerModel(low_swing=False).evaluate(
                act_b, measure
            ),
            "proposed": PostLayoutPowerModel(low_swing=True).evaluate(
                act_p, measure
            ),
        },
    }
    summary = {}
    for model in ("orion", "postlayout"):
        summary[f"{model}_baseline_ratio"] = (
            rows[model]["baseline"].total_mw / rows["measured"]["baseline"].total_mw
        )
        summary[f"{model}_proposed_ratio"] = (
            rows[model]["proposed"].total_mw / rows["measured"]["proposed"].total_mw
        )
        summary[f"{model}_relative_reduction"] = 1 - (
            rows[model]["proposed"].total_mw / rows[model]["baseline"].total_mw
        )
    summary["measured_relative_reduction"] = 1 - (
        meas_p.total_mw / meas_b.total_mw
    )
    rows["summary"] = summary
    return rows


def fig7_lowswing_energy(lengths_mm=(1.0, 2.0), alpha=0.5):
    """Fig. 7: RSD vs full-swing repeater energy on PRBS-like data."""
    rows = []
    for length in lengths_mm:
        rsd = TriStateRSD(length)
        full = FullSwingRepeatedLink(length)
        rows.append(
            {
                "length_mm": length,
                "rsd_energy_fj": rsd.energy_per_bit_fj(alpha),
                "full_swing_energy_fj": full.energy_per_bit_fj(alpha),
                "advantage": rsd.energy_advantage(alpha),
                "rsd_max_clock_ghz": rsd.max_clock_ghz(),
            }
        )
    return rows


def fig10_reliability(swings_mv=(100, 150, 200, 250, 300, 350, 400), runs=1000):
    """Fig. 10: energy vs failure probability across voltage swings."""
    amp = SenseAmplifier()
    rows = []
    for swing in swings_mv:
        rsd = TriStateRSD(1.0).with_swing(swing / 1000.0)
        rows.append(
            {
                "swing_mv": swing,
                "energy_fj": rsd.energy_per_bit_fj(),
                "failure_analytic": amp.failure_probability(swing),
                "failure_monte_carlo": amp.monte_carlo_failures(swing, runs=runs),
                "sigma_margin": amp.sigma_margin(swing),
            }
        )
    return rows


def fig11_multicast_power(data_rate_gbps=5.0):
    """Fig. 11: RSD crossbar dynamic power vs multicast fanout."""
    xbar = LowSwingCrossbar()
    return [
        {
            "fanout": m,
            "power_uw": xbar.dynamic_power_uw(data_rate_gbps, fanout=m),
        }
        for m in range(1, xbar.ports + 1)
    ]


def fig12_eye_margin(runs=1000):
    """Fig. 12: repeated vs direct 2mm low-swing transmission."""
    return repeated_vs_direct(runs=runs)


def low_load_power_breakdown(rate=3 / 255, warmup=1_000, measure=4_000):
    """Section 4.1's per-router low-load analysis vs the 5.6 mW floor."""
    cfg = proposed_network()
    traffic = BernoulliTraffic(
        BROADCAST_ONLY, rate, seed=7, identical_generators=True
    )
    sim = Simulator(cfg, traffic)
    sim.run(warmup)
    start = aggregate(sim.network.router_stats).snapshot()
    sim.run(measure)
    activity = aggregate(sim.network.router_stats) - start
    meter = PowerMeter(low_swing=True, num_routers=cfg.num_nodes)
    breakdown = meter.evaluate(activity, measure)
    n = cfg.num_nodes
    return {
        "per_router_dynamic_mw": breakdown.dynamic_mw / n,
        "floor_mw": meter.theoretical_floor_mw(activity, measure) / n,
        "vc_state_mw": meter.model.vc_state_pj_per_cycle,
        "buffers_mw": breakdown.buffers_mw / n,
        "allocators_mw": (
            (activity.msa1_grants + activity.msa2_grants)
            * meter.model.arbitration_pj
            / measure
            + meter.model.allocator_state_pj_per_cycle * n
        )
        / n,
        "lookaheads_mw": activity.la_sent * meter.model.lookahead_pj / measure / n,
        "breakdown": breakdown,
    }


def zero_load_model_check(config=None, traffic="unicast"):
    """Analytic zero-load latency for a design point (sanity helper)."""
    cfg = config or proposed_network()
    return zero_load_latency_config(cfg, traffic=traffic)
