"""Experiment drivers that regenerate every table and figure."""

from repro.harness import experiments
from repro.harness.sweep import run_point, run_sweep, run_sweep_batch
from repro.harness.tables import format_series, format_table

__all__ = [
    "experiments",
    "format_series",
    "format_table",
    "run_point",
    "run_sweep",
    "run_sweep_batch",
]
