"""Latency-throughput sweeps: the engine behind Figs. 5 and 13."""

from __future__ import annotations

from repro.noc.simulator import Simulator
from repro.traffic.generators import BernoulliTraffic


def run_point(
    config,
    mix,
    rate,
    seed=7,
    warmup=1_000,
    measure=6_000,
    drain=6_000,
    identical_generators=False,
    name="",
):
    """Simulate one operating point; returns WindowStats."""
    traffic = BernoulliTraffic(
        mix, rate, seed=seed, identical_generators=identical_generators
    )
    sim = Simulator(config, traffic, name=name)
    return sim.run_experiment(warmup=warmup, measure=measure, drain=drain)


def run_sweep(config, mix, rates, name="", **kwargs):
    """Simulate a list of injection rates; returns a list of WindowStats.

    Each point runs on a fresh network (the paper's measurements reset
    the chip between operating points), so points are independent and
    the sweep order does not matter.
    """
    return [run_point(config, mix, rate, name=name, **kwargs) for rate in rates]


def default_rates(mix, num_nodes, points=8, headroom=1.15):
    """A sensible rate grid from near-zero load past the mix's ceiling."""
    ceiling = mix.saturation_injection_rate(num_nodes)
    top = min(1.0, ceiling * headroom)
    return [top * (i + 1) / points for i in range(points)]
