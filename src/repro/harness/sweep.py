"""Latency-throughput sweeps: the engine behind Figs. 5 and 13.

Sweeps are expressed as batches of :class:`~repro.engine.JobSpec` and
executed by a :class:`~repro.engine.Executor`, so any sweep can run on
the process-pool backend and hit the persistent result cache.  The
default executor (serial, uncached) is deterministically identical to
the historical ``for rate in rates`` loop.
"""

from __future__ import annotations

import math

from repro.analysis.replicas import replica_seeds
from repro.engine import (
    DEFAULT_DRAIN,
    DEFAULT_MEASURE,
    DEFAULT_SEED,
    DEFAULT_WARMUP,
    Executor,
    JobSpec,
)


def run_point(
    config,
    mix,
    rate,
    seed=DEFAULT_SEED,
    warmup=DEFAULT_WARMUP,
    measure=DEFAULT_MEASURE,
    drain=DEFAULT_DRAIN,
    identical_generators=False,
    name="",
    pattern=None,
    injection=None,
    faults=None,
    backend="object",
):
    """Simulate one operating point; returns WindowStats."""
    return JobSpec(
        config=config,
        mix=mix,
        rate=rate,
        seed=seed,
        warmup=warmup,
        measure=measure,
        drain=drain,
        identical_generators=identical_generators,
        name=name,
        pattern=pattern,
        injection=injection,
        faults=faults,
        backend=backend,
    ).run()


def run_sweep(config, mix, rates, name="", executor=None, **kwargs):
    """Simulate a list of injection rates; returns a list of WindowStats.

    Each point runs on a fresh network (the paper's measurements reset
    the chip between operating points), so points are independent and
    the sweep order does not matter — which is exactly what lets the
    process-pool backend fan them out.  Pass ``executor`` to choose a
    backend and/or attach a :class:`~repro.engine.ResultCache`.
    """
    jobs = [
        JobSpec(config=config, mix=mix, rate=rate, name=name, **kwargs)
        for rate in rates
    ]
    if executor is None:
        executor = Executor()
    return executor.run(jobs)


def run_sweep_replicated(config, mix, rates, replicas, name="",
                         executor=None, seed=DEFAULT_SEED, **kwargs):
    """One sweep, ``replicas`` seeds per rate, as a single engine batch.

    The seed schedule is :func:`repro.analysis.replicas.replica_seeds`
    (replica 0 is the base seed), and jobs are submitted rate-major /
    seed-minor — consecutive jobs differ only by seed, so a serial
    executor over the array backend folds each rate's replicas into
    one batched kernel pass while every result is still cached under
    its ordinary single-seed content address.  Returns a list (in rate
    order) of per-replica ``WindowStats`` lists (in seed order); feed
    each group to :func:`repro.analysis.replicas.aggregate_replicas`.
    """
    seeds = replica_seeds(seed, replicas)
    jobs = [
        JobSpec(config=config, mix=mix, rate=rate, name=name, seed=s,
                **kwargs)
        for rate in rates
        for s in seeds
    ]
    if executor is None:
        executor = Executor()
    results = executor.run(jobs)
    n = len(seeds)
    return [results[i * n : (i + 1) * n] for i in range(len(rates))]


def run_sweep_batch(named_configs, mix, rates, executor=None, replicas=1,
                    seed=DEFAULT_SEED, **kwargs):
    """Run one sweep per named config as a *single* engine batch.

    All points of all sweeps are independent, so submitting them
    together lets a process-pool backend overlap the sweeps and pay
    pool start-up once, instead of serialising one sweep after the
    other.  Returns ``{name: [WindowStats in rate order]}``.

    With ``replicas > 1`` each rate runs once per seed of
    :func:`~repro.analysis.replicas.replica_seeds` (rate-major /
    seed-minor, so serial array-backend replicas batch into one kernel
    pass) and each series entry is the per-replica list instead of a
    single WindowStats.
    """
    items = list(named_configs.items())
    seeds = replica_seeds(seed, replicas)
    jobs = [
        JobSpec(config=cfg, mix=mix, rate=rate, name=name, seed=s, **kwargs)
        for name, cfg in items
        for rate in rates
        for s in seeds
    ]
    if executor is None:
        executor = Executor()
    results = executor.run(jobs)
    n = len(rates) * len(seeds)
    out = {}
    for i, (name, _) in enumerate(items):
        block = results[i * n : (i + 1) * n]
        groups = [
            block[j * len(seeds) : (j + 1) * len(seeds)]
            for j in range(len(rates))
        ]
        out[name] = [g[0] for g in groups] if replicas == 1 else groups
    return out


def default_rates(mix, num_nodes, points=8, headroom=1.15, pattern=None,
                  routing=None, injection=None):
    """A sensible rate grid from near-zero load past the mix's ceiling.

    With a spatial ``pattern`` and/or a non-default ``routing``
    algorithm, the ceiling comes from the per-algorithm bound of
    :func:`repro.analysis.pattern_limits.pattern_saturation_rate`
    (e.g. the halved permutation channel load of O1TURN, or Valiant's
    2x-uniform load), so the grid brackets where that combination
    actually saturates rather than where uniform XY would.  A bursty
    ``injection`` process saturates at or before the same wall (the
    mean-rate identity of :mod:`repro.analysis.burstiness`), so the
    grid keeps the wall's bracket but is clamped to the largest mean
    rate the process can express (an on-off OFF gap cannot shrink
    below one cycle).
    """
    if pattern is None and routing is None:
        ceiling = mix.saturation_injection_rate(num_nodes)
    else:
        from repro.analysis.pattern_limits import pattern_saturation_rate

        k = math.isqrt(num_nodes)
        if k * k != num_nodes:
            raise ValueError(f"{num_nodes} nodes is not a square mesh")
        ceiling = pattern_saturation_rate(mix, k, pattern, routing)
    top = min(1.0, ceiling * headroom)
    if injection is not None:
        top = min(top, injection.max_rate())
    return [top * (i + 1) / points for i in range(points)]
