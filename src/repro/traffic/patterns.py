"""Spatial destination patterns for unicast traffic.

The paper's evaluation (Section 4.1) uses uniform-random destinations
only; a :class:`DestinationPattern` generalises the *spatial* axis of
the workload while leaving the *temporal* axis (the Bernoulli process
and its PRBS draws) untouched.  :class:`~repro.traffic.generators.
BernoulliTraffic` delegates every unicast destination choice to its
pattern; broadcast components always address all nodes and bypass the
pattern entirely.

PRBS-draw compatibility contract
--------------------------------
:class:`UniformPattern` consumes *exactly* the draw sequence of the
historical inline code — one ``next_below(num_nodes - 1)`` per unicast
destination, mapped around the source — so a sweep with the default
pattern is byte-identical to every pre-pattern result (and hits the
same ``.repro_cache/`` entries).  Deterministic patterns consume *no*
draws — the destination is a pure function of the source — so any two
deterministic patterns at the same seed share identical injection and
mix-selection streams (they differ only spatially); relative to a
*uniform* run, however, the streams diverge after a node's first
unicast, because uniform consumes one extra word per destination.
:class:`HotspotPattern` draws two words per destination (the
hot/background decision and the index).

Deterministic patterns may map a source onto itself (e.g. the diagonal
of ``transpose``); such messages are injected normally and eject
through the source's own router after the NIC-router-NIC traversal,
keeping the offered load exactly ``R`` at every node.

All patterns are frozen dataclasses: hashable values that serialize
through ``to_dict`` / :func:`pattern_from_dict`, which is what lets
:class:`~repro.engine.jobspec.JobSpec` hash them into cache keys and
ship them across process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.routing import coords, node_at

#: name -> pattern class; populated by :func:`_register`.
_REGISTRY = {}


def _register(cls):
    _REGISTRY[cls.name] = cls
    return cls


def pattern_names():
    """The registered pattern names, sorted (CLI choices)."""
    return sorted(_REGISTRY)


def make_pattern(name, **kwargs):
    """Instantiate a registered pattern by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown destination pattern {name!r}; "
            f"choose from {pattern_names()}"
        ) from None
    return cls(**kwargs)


def pattern_from_dict(data):
    """Invert ``to_dict`` for any registered pattern."""
    try:
        name = data["name"]
    except (TypeError, KeyError):
        raise ValueError(f"not a serialized pattern: {data!r}") from None
    kwargs = {k: v for k, v in data.items() if k != "name"}
    if "hot_nodes" in kwargs:
        kwargs["hot_nodes"] = tuple(int(n) for n in kwargs["hot_nodes"])
    if "fraction" in kwargs:
        kwargs["fraction"] = float(kwargs["fraction"])
    return make_pattern(name, **kwargs)


def _require_power_of_two(name, num_nodes):
    if num_nodes & (num_nodes - 1):
        raise ValueError(
            f"the {name} pattern permutes node-index bits and needs a "
            f"power-of-two node count, not {num_nodes}"
        )


@dataclass(frozen=True)
class DestinationPattern:
    """Maps a source node (plus optional PRBS draws) to a destination.

    Subclasses either override :meth:`dest` (deterministic patterns —
    a pure function of the source, no draws) or :meth:`pick`
    (stochastic patterns, which consume draws from the per-node PRBS
    stream).
    """

    #: registry key; also the ``--pattern`` CLI spelling
    name = None
    #: True when :meth:`dest` fully determines the destination
    deterministic = False

    def validate(self, k):
        """Raise ValueError if the pattern cannot run on a k x k mesh."""

    def dest(self, src, k):
        """Destination of ``src`` for deterministic patterns."""
        raise NotImplementedError(f"{self.name} is not deterministic")

    def pick(self, rng, src, k, num_nodes):
        """Draw a destination for ``src`` (default: the deterministic map)."""
        return self.dest(src, k)

    def to_dict(self):
        """A JSON-safe representation that :func:`pattern_from_dict` inverts."""
        return {"name": self.name}


@_register
@dataclass(frozen=True)
class UniformPattern(DestinationPattern):
    """Uniform-random over the other nodes — the paper's workload.

    ``pick`` is the historical inline draw, verbatim: one
    ``next_below(num_nodes - 1)`` word mapped around the source, so the
    default pattern replays byte-identical PRBS sequences.
    """

    name = "uniform"

    def pick(self, rng, src, k, num_nodes):
        other = rng.next_below(num_nodes - 1)
        return other if other < src else other + 1


@_register
@dataclass(frozen=True)
class TransposePattern(DestinationPattern):
    """Matrix transpose: (x, y) -> (y, x).

    Adversarial for XY routing: every X-phase in row y targets column
    y, so the row's edge link carries k-1 overlapping flows and the
    mesh saturates near R = 1/(k-1).
    """

    name = "transpose"
    deterministic = True

    def dest(self, src, k):
        x, y = coords(src, k)
        return node_at(y, x, k)


@_register
@dataclass(frozen=True)
class BitComplementPattern(DestinationPattern):
    """Complement every node-index bit: dest = ~src (mod num_nodes)."""

    name = "bit_complement"
    deterministic = True

    def validate(self, k):
        _require_power_of_two(self.name, k * k)

    def dest(self, src, k):
        return src ^ (k * k - 1)


@_register
@dataclass(frozen=True)
class BitReversalPattern(DestinationPattern):
    """Reverse the node-index bits (FFT-style permutation)."""

    name = "bit_reversal"
    deterministic = True

    def validate(self, k):
        _require_power_of_two(self.name, k * k)

    def dest(self, src, k):
        bits = (k * k - 1).bit_length()
        out = 0
        for i in range(bits):
            out = (out << 1) | ((src >> i) & 1)
        return out


@_register
@dataclass(frozen=True)
class ShufflePattern(DestinationPattern):
    """Perfect shuffle: rotate the node-index bits left by one."""

    name = "shuffle"
    deterministic = True

    def validate(self, k):
        _require_power_of_two(self.name, k * k)

    def dest(self, src, k):
        n = k * k
        bits = (n - 1).bit_length()
        return ((src << 1) | (src >> (bits - 1))) & (n - 1)


@_register
@dataclass(frozen=True)
class TornadoPattern(DestinationPattern):
    """Half-span rotation in each dimension: c -> (c + k//2) mod k.

    The torus-adversarial tornado adapted to a mesh: the wrapped pairs
    have no short way around, so the central row/column links carry
    k//2 overlapping flows in each direction.
    """

    name = "tornado"
    deterministic = True

    def dest(self, src, k):
        shift = max(1, k // 2)
        x, y = coords(src, k)
        return node_at((x + shift) % k, (y + shift) % k, k)


@_register
@dataclass(frozen=True)
class NeighborPattern(DestinationPattern):
    """Nearest neighbour in X: (x, y) -> ((x+1) mod k, y).

    A benign, mostly-one-hop pattern (the wrap source crosses its whole
    row); the low-stress counterpoint to transpose/tornado.
    """

    name = "neighbor"
    deterministic = True

    def dest(self, src, k):
        x, y = coords(src, k)
        return node_at((x + 1) % k, y, k)


@_register
@dataclass(frozen=True)
class HotspotPattern(DestinationPattern):
    """Concentrate a fraction of unicasts on a few hot nodes.

    With probability ``fraction`` the destination is drawn uniformly
    from ``hot_nodes`` (self-delivery allowed when the source is hot);
    otherwise it is drawn like :class:`UniformPattern` over the other
    nodes.  Two PRBS words per destination.
    """

    name = "hotspot"
    hot_nodes: tuple = field(default=(0,))
    fraction: float = 0.5

    def __post_init__(self):
        object.__setattr__(self, "hot_nodes", tuple(self.hot_nodes))
        if not self.hot_nodes:
            raise ValueError("hotspot needs at least one hot node")
        if len(set(self.hot_nodes)) != len(self.hot_nodes):
            raise ValueError("hot nodes must be distinct")
        if any(n < 0 for n in self.hot_nodes):
            raise ValueError("hot nodes must be non-negative node ids")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("hotspot fraction must be in (0, 1]")

    def validate(self, k):
        num_nodes = k * k
        bad = [n for n in self.hot_nodes if n >= num_nodes]
        if bad:
            raise ValueError(
                f"hot nodes {bad} outside the {k}x{k} mesh "
                f"(node ids 0..{num_nodes - 1})"
            )

    def pick(self, rng, src, k, num_nodes):
        if rng.next_uniform() < self.fraction:
            return self.hot_nodes[rng.next_below(len(self.hot_nodes))]
        other = rng.next_below(num_nodes - 1)
        return other if other < src else other + 1

    def to_dict(self):
        return {
            "name": self.name,
            "hot_nodes": list(self.hot_nodes),
            "fraction": self.fraction,
        }
