"""Temporal injection processes for synthetic traffic.

The paper's workload is a pure Bernoulli process: every cycle each NIC
injects a packet with a fixed probability, so inter-injection gaps are
geometric and memoryless.  Real NoC traffic is *bursty*;
:class:`InjectionProcess` makes the temporal axis of the workload
pluggable, mirroring :class:`~repro.traffic.patterns.DestinationPattern`
(the spatial axis) and :class:`~repro.noc.routing.RoutingAlgorithm`:

* ``bernoulli`` — the paper's memoryless process, byte-identical to the
  historical inline draw (one ``next_uniform()`` word per cycle from the
  node's traffic stream);
* ``onoff`` — the standard two-state burstiness model (Dally & Towles
  §24.2): a Markov chain alternates geometric ON bursts (mean
  ``burst_length`` cycles, injecting at ``on_rate`` flits/cycle) with
  geometric OFF gaps sized so the long-run mean equals the configured
  injection rate;
* ``mmp`` — an N-state Markov-modulated Bernoulli process: a cyclic
  chain of states with relative rate ``levels`` and mean ``dwells``,
  normalised so the stationary-weighted mean rate is *exactly* the
  configured rate.

Mean-rate identity contract
---------------------------
Every process expresses the same long-run offered load: with stationary
distribution ``pi`` over its states and per-state flit rates ``r``,
``sum(pi[i] * r[i]) == rate`` holds exactly (see
:mod:`repro.analysis.burstiness`, which derives saturation-onset shifts
from the same quantities).  A bursty sweep therefore compares like with
like against a Bernoulli sweep at the same rate axis — what changes is
*when* the flits come, not how many.

PRBS draw-stream contract
-------------------------
:class:`BernoulliProcess` consumes exactly the historical draw sequence
— one ``next_uniform()`` per cycle from the node's main traffic stream —
so the default process replays every pre-process run byte for byte (the
golden fig5 WindowStats pin in ``tests/integration``).  Modulated
processes keep their *state chain* on a private per-node PRBS stream,
salted from the node's traffic seed exactly like the routing header
streams (so a chain never replays an injection stream): chain
transitions cost zero draws on the main stream, a cycle in a
positive-rate state consumes one main-stream word (the injection
decision, like Bernoulli), and a cycle in a zero-rate state consumes
none.

All processes are frozen dataclasses registered by name; they serialize
through ``to_dict`` / :func:`process_from_dict`, which lets
:class:`~repro.engine.jobspec.JobSpec` hash them into cache keys
(omitted-when-default, so pre-process cache keys survive) and ship them
across process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.traffic.prbs import PRBSGenerator, salted_stream_seed

#: name -> process class; populated by :func:`_register`.
_REGISTRY = {}

#: Salt decorrelating a node's state-chain stream from its traffic
#: stream (which seeds the register directly) and from the routing
#: header streams (which use a different salt).
_CHAIN_STREAM_SALT = 0x61C88647


def _register(cls):
    _REGISTRY[cls.name] = cls
    return cls


def process_names():
    """The registered process names, sorted (CLI choices)."""
    return sorted(_REGISTRY)


def make_process(name, **kwargs):
    """Instantiate a registered injection process by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown injection process {name!r}; "
            f"choose from {process_names()}"
        ) from None
    return cls(**kwargs)


def process_from_dict(data):
    """Invert ``to_dict`` for any registered process."""
    try:
        name = data["name"]
    except (TypeError, KeyError):
        raise ValueError(f"not a serialized process: {data!r}") from None
    kwargs = {k: v for k, v in data.items() if k != "name"}
    for key in ("burst_length", "on_rate"):
        if key in kwargs:
            kwargs[key] = float(kwargs[key])
    for key in ("levels", "dwells"):
        if key in kwargs:
            kwargs[key] = tuple(float(v) for v in kwargs[key])
    return make_process(name, **kwargs)


def _chain_seed(base):
    """A PRBS-31 register state for a node's state-chain stream:
    non-zero, inside the register, disjoint from the traffic seeds."""
    return salted_stream_seed(base, _CHAIN_STREAM_SALT)


class ChainState:
    """Per-node runtime of a modulated process: the private chain
    stream plus the current state index.  ``pulse`` is the per-cycle
    injection decision the NIC's traffic source consults."""

    __slots__ = ("chain", "state", "probs", "leave")

    def __init__(self, chain, state, probs, leave):
        self.chain = chain
        self.state = state
        #: per-state packet-injection probability (flit rate / mean
        #: flits per message)
        self.probs = probs
        #: per-state probability of leaving for the next state
        self.leave = leave

    def pulse(self, rng):
        """Decide this cycle's packet injection, then advance the chain.

        The decision uses the state *entered last cycle* (a transition
        becomes effective the cycle after it is drawn), so dwell times
        are geometric with mean ``1 / leave[state]``.
        """
        state = self.state
        p = self.probs[state]
        inject = p > 0.0 and rng.next_uniform() < p
        leave = self.leave[state]
        if leave > 0.0 and self.chain.next_uniform() < leave:
            self.state = (state + 1) % len(self.probs)
        return inject


@dataclass(frozen=True)
class InjectionProcess:
    """Decides, per node per cycle, whether a packet is injected.

    Subclasses model an N-state Markov chain: :meth:`state_rates` gives
    each state's flit rate, :meth:`stationary` the long-run state
    distribution and :meth:`leave_probs` the per-cycle exit
    probabilities; :meth:`start` builds the per-node runtime.  The
    mean-rate identity ``sum(pi * r) == rate`` must hold exactly for
    every subclass — :mod:`repro.analysis.burstiness` and the
    statistical tests rely on it.
    """

    #: registry key; also the ``--injection`` CLI spelling
    name = None
    #: True when the process is stateless (the Bernoulli fast path:
    #: no chain stream, no per-node runtime object)
    memoryless = False

    def validate(self, rate):
        """Raise ValueError if the process cannot express mean ``rate``."""
        if not 0.0 <= rate <= self.max_rate():
            raise ValueError(
                f"{self.name} injection cannot express a mean rate of "
                f"{rate} (max {self.max_rate():.4g} flits/node/cycle)"
            )

    def max_rate(self):
        """Largest mean flit rate the process can express."""
        return 1.0

    def state_rates(self, rate):
        """Per-state flit rates at configured mean ``rate``."""
        raise NotImplementedError

    def stationary(self, rate):
        """Stationary distribution over the states at mean ``rate``."""
        raise NotImplementedError

    def leave_probs(self, rate):
        """Per-state per-cycle probability of moving to the next state."""
        raise NotImplementedError

    def start(self, rate, packet_scale, seed_base):
        """Per-node runtime (:class:`ChainState`); ``None`` when
        memoryless.  ``packet_scale`` converts flit rates to per-cycle
        packet probabilities (``1 / mix.mean_flits_per_message``);
        ``seed_base`` is the node's traffic-stream seed, salted here
        into the private chain stream.  The initial state is drawn
        from the stationary distribution (one chain draw) so the
        long-run mean holds from cycle zero instead of converging
        through a transient.
        """
        chain = PRBSGenerator(order=31, seed=_chain_seed(seed_base))
        pi = self.stationary(rate)
        pick = chain.next_uniform()
        state = len(pi) - 1
        total = 0.0
        for i, p in enumerate(pi):
            total += p
            if pick < total:
                state = i
                break
        probs = tuple(r * packet_scale for r in self.state_rates(rate))
        return ChainState(chain, state, probs, self.leave_probs(rate))

    def to_dict(self):
        """A JSON-safe representation that :func:`process_from_dict` inverts."""
        return {"name": self.name}


@_register
@dataclass(frozen=True)
class BernoulliProcess(InjectionProcess):
    """The paper's memoryless workload — the default.

    One state at the configured rate; the traffic generator inlines the
    historical per-cycle draw (``next_uniform() < packet_rate``), so the
    default process is byte-identical to every pre-process run.
    """

    name = "bernoulli"
    memoryless = True

    def state_rates(self, rate):
        return (rate,)

    def stationary(self, rate):
        return (1.0,)

    def leave_probs(self, rate):
        return (0.0,)

    def start(self, rate, packet_scale, seed_base):
        return None


@_register
@dataclass(frozen=True)
class OnOffProcess(InjectionProcess):
    """Two-state bursty injection: geometric ON bursts, geometric gaps.

    While ON the node injects at ``on_rate`` flits/cycle and leaves the
    burst with probability ``1 / burst_length`` per cycle (mean burst =
    ``burst_length``); while OFF it is silent and starts a new burst
    with the probability that makes the ON duty cycle exactly
    ``rate / on_rate`` — so the long-run mean rate is the configured
    rate, with all of the load compressed into bursts.  The expressible
    mean is capped at ``on_rate * L / (L + 1)`` (the OFF gap cannot
    shrink below one cycle).
    """

    name = "onoff"
    burst_length: float = 8.0
    on_rate: float = 1.0

    def __post_init__(self):
        # normalise to float so equal values encode identically (an
        # int 8 and a float 8.0 must hash to the same cache key)
        object.__setattr__(self, "burst_length", float(self.burst_length))
        object.__setattr__(self, "on_rate", float(self.on_rate))
        if self.burst_length < 1.0:
            raise ValueError("mean burst length must be at least one cycle")
        if not 0.0 < self.on_rate <= 1.0:
            raise ValueError("on-rate must be in (0, 1] flits/cycle")

    def max_rate(self):
        return self.on_rate * self.burst_length / (self.burst_length + 1.0)

    def _duty(self, rate):
        return rate / self.on_rate

    def state_rates(self, rate):
        return (self.on_rate, 0.0)

    def stationary(self, rate):
        duty = self._duty(rate)
        return (duty, 1.0 - duty)

    def leave_probs(self, rate):
        beta = 1.0 / self.burst_length
        duty = self._duty(rate)
        if duty <= 0.0:
            return (beta, 0.0)  # never leaves OFF: silent source
        alpha = beta * duty / (1.0 - duty)
        return (beta, alpha)

    def to_dict(self):
        return {
            "name": self.name,
            "burst_length": self.burst_length,
            "on_rate": self.on_rate,
        }


@_register
@dataclass(frozen=True)
class MMPProcess(InjectionProcess):
    """N-state Markov-modulated Bernoulli injection.

    A cyclic chain visits the states in order; state ``i`` dwells a
    geometric ``dwells[i]`` cycles and injects at a flit rate
    proportional to ``levels[i]``.  The proportionality constant is
    fixed by the mean-rate identity: with ``pi[i] = dwells[i] /
    sum(dwells)``, state ``i`` runs at ``rate * levels[i] / sum(pi *
    levels)``, so the stationary-weighted mean is exactly the
    configured rate for any parameterisation.  The default two-state
    chain (levels 0.5/2.0, dwells 16/8) alternates a long half-rate
    background with short 2x bursts and has normalisation constant 1.
    """

    name = "mmp"
    levels: tuple = field(default=(0.5, 2.0))
    dwells: tuple = field(default=(16.0, 8.0))

    def __post_init__(self):
        object.__setattr__(self, "levels", tuple(float(v) for v in self.levels))
        object.__setattr__(self, "dwells", tuple(float(v) for v in self.dwells))
        if len(self.levels) < 2:
            raise ValueError("mmp needs at least two states")
        if len(self.levels) != len(self.dwells):
            raise ValueError("mmp needs one dwell time per level")
        if any(v < 0.0 for v in self.levels):
            raise ValueError("mmp levels must be non-negative")
        if all(v == 0.0 for v in self.levels):
            raise ValueError("mmp needs at least one positive level")
        if any(d < 1.0 for d in self.dwells):
            raise ValueError("mmp dwell times must be at least one cycle")

    def _mean_level(self):
        total = sum(self.dwells)
        return sum(l * d for l, d in zip(self.levels, self.dwells)) / total

    def max_rate(self):
        # the busiest state must stay within one flit per cycle
        return min(1.0, self._mean_level() / max(self.levels))

    def state_rates(self, rate):
        scale = rate / self._mean_level()
        return tuple(l * scale for l in self.levels)

    def stationary(self, rate):
        total = sum(self.dwells)
        return tuple(d / total for d in self.dwells)

    def leave_probs(self, rate):
        return tuple(1.0 / d for d in self.dwells)

    def to_dict(self):
        return {
            "name": self.name,
            "levels": list(self.levels),
            "dwells": list(self.dwells),
        }
