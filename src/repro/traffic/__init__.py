"""Traffic generation: injection processes, patterns and PRBS sources."""

from repro.traffic.generators import (
    BernoulliTraffic,
    SyntheticBurst,
    SyntheticTraffic,
)
from repro.traffic.mix import (
    BROADCAST_ONLY,
    MIXED_TRAFFIC,
    UNIFORM_UNICAST,
    TrafficMix,
    TrafficComponent,
)
from repro.traffic.patterns import (
    BitComplementPattern,
    BitReversalPattern,
    DestinationPattern,
    HotspotPattern,
    NeighborPattern,
    ShufflePattern,
    TornadoPattern,
    TransposePattern,
    UniformPattern,
    make_pattern,
    pattern_from_dict,
    pattern_names,
)
from repro.traffic.prbs import PRBSGenerator
from repro.traffic.processes import (
    BernoulliProcess,
    InjectionProcess,
    MMPProcess,
    OnOffProcess,
    make_process,
    process_from_dict,
    process_names,
)
from repro.traffic.spec import MessageSpec

__all__ = [
    "BROADCAST_ONLY",
    "BernoulliProcess",
    "BernoulliTraffic",
    "BitComplementPattern",
    "BitReversalPattern",
    "DestinationPattern",
    "HotspotPattern",
    "InjectionProcess",
    "MIXED_TRAFFIC",
    "MMPProcess",
    "MessageSpec",
    "NeighborPattern",
    "OnOffProcess",
    "PRBSGenerator",
    "ShufflePattern",
    "SyntheticBurst",
    "SyntheticTraffic",
    "TornadoPattern",
    "TrafficComponent",
    "TrafficMix",
    "TransposePattern",
    "UNIFORM_UNICAST",
    "UniformPattern",
    "make_pattern",
    "make_process",
    "pattern_from_dict",
    "pattern_names",
    "process_from_dict",
    "process_names",
]
