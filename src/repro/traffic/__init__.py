"""Traffic generation: injection processes, patterns and PRBS sources."""

from repro.traffic.generators import BernoulliTraffic, SyntheticBurst
from repro.traffic.mix import (
    BROADCAST_ONLY,
    MIXED_TRAFFIC,
    UNIFORM_UNICAST,
    TrafficMix,
    TrafficComponent,
)
from repro.traffic.patterns import (
    BitComplementPattern,
    BitReversalPattern,
    DestinationPattern,
    HotspotPattern,
    NeighborPattern,
    ShufflePattern,
    TornadoPattern,
    TransposePattern,
    UniformPattern,
    make_pattern,
    pattern_from_dict,
    pattern_names,
)
from repro.traffic.prbs import PRBSGenerator
from repro.traffic.spec import MessageSpec

__all__ = [
    "BROADCAST_ONLY",
    "BernoulliTraffic",
    "BitComplementPattern",
    "BitReversalPattern",
    "DestinationPattern",
    "HotspotPattern",
    "MIXED_TRAFFIC",
    "MessageSpec",
    "NeighborPattern",
    "PRBSGenerator",
    "ShufflePattern",
    "SyntheticBurst",
    "TornadoPattern",
    "TrafficComponent",
    "TrafficMix",
    "TransposePattern",
    "UNIFORM_UNICAST",
    "UniformPattern",
    "make_pattern",
    "pattern_from_dict",
    "pattern_names",
]
