"""Traffic generation: injection processes, patterns and PRBS sources."""

from repro.traffic.generators import BernoulliTraffic, SyntheticBurst
from repro.traffic.mix import (
    BROADCAST_ONLY,
    MIXED_TRAFFIC,
    UNIFORM_UNICAST,
    TrafficMix,
    TrafficComponent,
)
from repro.traffic.prbs import PRBSGenerator
from repro.traffic.spec import MessageSpec

__all__ = [
    "BROADCAST_ONLY",
    "BernoulliTraffic",
    "MIXED_TRAFFIC",
    "MessageSpec",
    "PRBSGenerator",
    "SyntheticBurst",
    "TrafficComponent",
    "TrafficMix",
    "UNIFORM_UNICAST",
]
