"""The interface between traffic sources and NICs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.flit import MessageClass


@dataclass(frozen=True)
class MessageSpec:
    """A core-level message request handed to a NIC for injection."""

    destinations: frozenset
    mclass: MessageClass
    num_flits: int

    def __post_init__(self):
        if not self.destinations:
            raise ValueError("a message needs at least one destination")
        if self.num_flits < 1:
            raise ValueError("a message needs at least one flit")

    @property
    def is_multicast(self):
        return len(self.destinations) > 1

    def to_dict(self):
        """A JSON-safe representation that :meth:`from_dict` inverts."""
        return {
            "destinations": sorted(self.destinations),
            "mclass": self.mclass.name,
            "num_flits": self.num_flits,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            destinations=frozenset(int(d) for d in data["destinations"]),
            mclass=MessageClass[data["mclass"]],
            num_flits=int(data["num_flits"]),
        )
