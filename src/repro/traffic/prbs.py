"""Linear-feedback shift register pseudo-random binary sequences.

The chip's NICs generate traffic with on-die PRBS circuits.  Crucially,
all sixteen NICs shared *identical* generators, which synchronised
injection decisions across nodes and produced avoidable contention even
at low loads (Section 4.1 attributes ~1 cycle/hop of low-load
contention latency to this artifact, dropping to ~0.04 cycles/hop in
RTL simulation with decorrelated generators).

The same class drives bit-level switching-activity estimation in the
circuit models (Fig. 7 measures RSD energy on PRBS data).
"""

from __future__ import annotations

#: Maximal-length feedback polynomials (exponent pairs, Fibonacci form):
#: x^a + x^b + 1, the standard ITU-T PRBS polynomials.
_TAPS = {
    7: (7, 6),
    9: (9, 5),
    11: (11, 9),
    15: (15, 14),
    23: (23, 18),
    31: (31, 28),
}


class PRBSGenerator:
    """A PRBS-(2^n - 1) generator producing bits and bounded integers."""

    def __init__(self, order=15, seed=1):
        if order not in _TAPS:
            raise ValueError(f"unsupported PRBS order {order}; use {sorted(_TAPS)}")
        if seed <= 0 or seed >= (1 << order):
            raise ValueError("seed must be a non-zero state within the register")
        self.order = order
        self._taps = _TAPS[order]
        self._state = seed
        # Diffuse the seed through the register: freshly seeded states
        # with few set bits would otherwise emit long runs of zeros,
        # which biases next_uniform() toward zero.
        for _ in range(4 * order):
            self.next_bit()

    def next_bit(self):
        """Advance one shift and return the output (feedback) bit."""
        a, b = self._taps
        feedback = ((self._state >> (a - 1)) ^ (self._state >> (b - 1))) & 1
        mask = (1 << self.order) - 1
        self._state = ((self._state << 1) | feedback) & mask
        return feedback

    def next_bits(self, n):
        return [self.next_bit() for _ in range(n)]

    def next_word(self, bits):
        """An integer assembled from ``bits`` successive output bits.

        For ``bits`` no larger than the youngest tap, all the feedback
        bits of the batch depend only on the *current* register state
        (freshly inserted bits cannot have reached a tap yet), so the
        whole word is computed with two shifts and an xor instead of a
        per-bit Python loop.  The fast path is bit-exact with the loop:
        ``fb_i = s[a-1-i] ^ s[b-1-i]`` and the register afterwards holds
        ``(s << bits) | word``.  This is the injection hot path — every
        NIC draws a 24-bit word per cycle.
        """
        a, b = self._taps
        if bits <= (b if b < a else a):
            state = self._state
            word = ((state >> (a - bits)) ^ (state >> (b - bits))) & (
                (1 << bits) - 1
            )
            self._state = ((state << bits) | word) & ((1 << self.order) - 1)
            return word
        word = 0
        for _ in range(bits):
            word = (word << 1) | self.next_bit()
        return word

    def next_uniform(self):
        """A float in [0, 1) with 24 bits of PRBS entropy."""
        return self.next_word(24) / float(1 << 24)

    def next_below(self, n):
        """An integer in [0, n) via rejection-free modular mapping."""
        if n < 1:
            raise ValueError("n must be positive")
        return self.next_word(24) % n

    @property
    def period(self):
        return (1 << self.order) - 1

    def clone(self):
        copy = PRBSGenerator(self.order, 1)
        copy._state = self._state
        return copy


def salted_stream_seed(base, salt, offset=0):
    """A PRBS-31 register state for a derived stream family.

    ``base`` (typically a node's traffic seed) is spread by an odd
    multiplier, XOR-``salt``-ed so each stream family (routing headers,
    injection-process chains, ...) is decorrelated from the traffic
    streams and from each other, shifted by ``offset`` (e.g. a node
    id), and folded into the register's non-zero range.
    """
    state = ((base * 1_000_003) ^ salt) + offset
    return state % ((1 << 31) - 2) + 1


def transition_density(bits):
    """Fraction of adjacent bit pairs that toggle (switching activity)."""
    if len(bits) < 2:
        raise ValueError("need at least two bits")
    toggles = sum(1 for a, b in zip(bits, bits[1:]) if a != b)
    return toggles / (len(bits) - 1)
