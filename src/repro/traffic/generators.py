"""Synthetic traffic sources.

:class:`SyntheticTraffic` composes the three pluggable axes of the
workload: a temporal :class:`~repro.traffic.processes.InjectionProcess`
(when packets are injected), a
:class:`~repro.traffic.mix.TrafficMix` (what each message is), and a
spatial :class:`~repro.traffic.patterns.DestinationPattern` (where
unicasts go; broadcasts always address every node).  The defaults —
Bernoulli injection, uniform destinations — are the paper's workload,
and :data:`BernoulliTraffic` remains the historical name for exactly
that composition.

``identical_generators=True`` reproduces the fabricated chip's
artifact: all NICs run the *same* PRBS streams, so their injection
decisions and destination choices are synchronised, creating structural
contention even at low loads.  The default (decorrelated per-node
streams) matches the paper's corrected RTL simulations.

Draw-stream contract: the Bernoulli default consumes one main-stream
``next_uniform()`` word per cycle (the historical inline code, byte for
byte); modulated processes run their state chains on private salted
streams and consume main-stream words only in positive-rate states, so
mix selection and destination draws stay on the main stream in both
cases (see :mod:`repro.traffic.processes`).
"""

from __future__ import annotations

from repro.traffic.patterns import UniformPattern
from repro.traffic.prbs import PRBSGenerator
from repro.traffic.processes import BernoulliProcess
from repro.traffic.spec import MessageSpec


class SyntheticTraffic:
    """Packet injection of a traffic mix: process x pattern x mix."""

    def __init__(
        self,
        mix,
        injection_rate,
        seed=1,
        identical_generators=False,
        pattern=None,
        process=None,
    ):
        if injection_rate < 0:
            raise ValueError("injection rate must be non-negative")
        if injection_rate > 1:
            raise ValueError(
                "a NIC cannot source more than one flit per cycle "
                f"(got {injection_rate})"
            )
        self.mix = mix
        self.injection_rate = injection_rate
        self.seed = seed
        self.identical_generators = identical_generators
        self.pattern = pattern if pattern is not None else UniformPattern()
        self.process = process if process is not None else BernoulliProcess()
        self.process.validate(injection_rate)
        self._cfg = None
        self._rngs = {}
        self._steppers = None
        # cached per-bind constants for the per-cycle injection decision
        self._packet_rate = injection_rate / mix.mean_flits_per_message
        self._cum_weights = mix.cumulative_weights()
        self._dest_table = None

    def bind(self, config):
        """Called by the simulator to learn the network geometry."""
        self.pattern.validate(config.k)
        self._cfg = config
        self._rngs = {}
        self._steppers = None
        self._packet_rate = self.injection_rate / self.mix.mean_flits_per_message
        self._cum_weights = self.mix.cumulative_weights()
        # deterministic patterns are pure src->dest maps: precompute the
        # destination sets once (frozensets are immutable, so sharing
        # one per source across all its MessageSpecs is safe) and the
        # hot path becomes a list index
        if self.pattern.deterministic:
            self._dest_table = [
                frozenset([self.pattern.dest(node, config.k)])
                for node in range(config.num_nodes)
            ]
        else:
            self._dest_table = None
        if not self.process.memoryless:
            self._steppers = {}
        packet_scale = 1.0 / self.mix.mean_flits_per_message
        for node in range(config.num_nodes):
            node_seed = self.seed if self.identical_generators else self.seed + node
            self._rngs[node] = PRBSGenerator(order=31, seed=node_seed)
            if self._steppers is not None:
                self._steppers[node] = self.process.start(
                    self.injection_rate, packet_scale, node_seed
                )

    @property
    def packet_rate(self):
        """Messages/node/cycle equivalent to the configured flit rate."""
        return self.injection_rate / self.mix.mean_flits_per_message

    def generate(self, cycle, node):
        if self._cfg is None:
            raise RuntimeError("traffic source used before bind()")
        rng = self._rngs[node]
        if self._steppers is None:
            # the Bernoulli fast path: the historical inline draw
            if rng.next_uniform() >= self._packet_rate:
                return ()
        elif not self._steppers[node].pulse(rng):
            return ()
        return (self._draw_message(rng, node),)

    def _draw_message(self, rng, node):
        pick = rng.next_uniform()
        component = self.mix.components[-1]
        for cumulative, c in self._cum_weights:
            if pick < cumulative:
                component = c
                break
        if component.broadcast:
            dests = frozenset(range(self._cfg.num_nodes))
        elif self._dest_table is not None:
            dests = self._dest_table[node]
        else:
            dest = self.pattern.pick(
                rng, node, self._cfg.k, self._cfg.num_nodes
            )
            dests = frozenset([dest])
        return MessageSpec(dests, component.mclass, component.num_flits)


#: The paper's workload by its historical name: Bernoulli injection of
#: a mix with uniform unicast destinations is the process=None,
#: pattern=None default of :class:`SyntheticTraffic`.
BernoulliTraffic = SyntheticTraffic


class SyntheticBurst:
    """A scripted one-shot workload for tests and examples.

    ``schedule`` maps ``(cycle, node)`` to a list of
    :class:`MessageSpec`; everything else is silent.  Deterministic by
    construction, which makes it the tool of choice for pinpoint
    latency assertions.  Like the other traffic specs it round-trips
    through ``to_dict`` / :meth:`from_dict`, so scripted workloads can
    be stored alongside engine results.
    """

    injection_rate = 0.0

    def __init__(self, schedule):
        self.schedule = dict(schedule)
        self._cfg = None

    def bind(self, config):
        self._cfg = config

    def generate(self, cycle, node):
        if self._cfg is None:
            raise RuntimeError("traffic source used before bind()")
        return list(self.schedule.get((cycle, node), []))

    def to_dict(self):
        """A JSON-safe representation that :meth:`from_dict` inverts."""
        return {
            "schedule": [
                {
                    "cycle": cycle,
                    "node": node,
                    "messages": [spec.to_dict() for spec in specs],
                }
                for (cycle, node), specs in sorted(self.schedule.items())
            ]
        }

    @classmethod
    def from_dict(cls, data):
        schedule = {}
        for entry in data["schedule"]:
            schedule[(int(entry["cycle"]), int(entry["node"]))] = [
                MessageSpec.from_dict(m) for m in entry["messages"]
            ]
        return cls(schedule)
