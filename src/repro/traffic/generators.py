"""Injection processes.

:class:`BernoulliTraffic` is the paper's workload: every NIC injects
flits as a Bernoulli process of rate R (flits/node/cycle), drawing each
message from a :class:`~repro.traffic.mix.TrafficMix`, with unicast
destinations uniformly distributed over the other nodes and broadcasts
addressed to every node.

``identical_generators=True`` reproduces the fabricated chip's
artifact: all NICs run the *same* PRBS stream, so their injection
decisions and destination choices are synchronised, creating structural
contention even at low loads.  The default (decorrelated per-node
streams) matches the paper's corrected RTL simulations.
"""

from __future__ import annotations

from repro.traffic.prbs import PRBSGenerator
from repro.traffic.spec import MessageSpec


class BernoulliTraffic:
    """Bernoulli packet injection of a traffic mix at a given flit rate."""

    def __init__(self, mix, injection_rate, seed=1, identical_generators=False):
        if injection_rate < 0:
            raise ValueError("injection rate must be non-negative")
        if injection_rate > 1:
            raise ValueError(
                "a NIC cannot source more than one flit per cycle "
                f"(got {injection_rate})"
            )
        self.mix = mix
        self.injection_rate = injection_rate
        self.seed = seed
        self.identical_generators = identical_generators
        self._cfg = None
        self._rngs = {}
        # cached per-bind constants for the per-cycle injection decision
        self._packet_rate = injection_rate / mix.mean_flits_per_message
        self._cum_weights = mix.cumulative_weights()

    def bind(self, config):
        """Called by the simulator to learn the network geometry."""
        self._cfg = config
        self._rngs = {}
        self._packet_rate = self.injection_rate / self.mix.mean_flits_per_message
        self._cum_weights = self.mix.cumulative_weights()
        for node in range(config.num_nodes):
            node_seed = self.seed if self.identical_generators else self.seed + node
            self._rngs[node] = PRBSGenerator(order=31, seed=node_seed)

    @property
    def packet_rate(self):
        """Messages/node/cycle equivalent to the configured flit rate."""
        return self.injection_rate / self.mix.mean_flits_per_message

    def generate(self, cycle, node):
        if self._cfg is None:
            raise RuntimeError("traffic source used before bind()")
        rng = self._rngs[node]
        if rng.next_uniform() >= self._packet_rate:
            return ()
        return (self._draw_message(rng, node),)

    def _draw_message(self, rng, node):
        pick = rng.next_uniform()
        component = self.mix.components[-1]
        for cumulative, c in self._cum_weights:
            if pick < cumulative:
                component = c
                break
        if component.broadcast:
            dests = frozenset(range(self._cfg.num_nodes))
        else:
            other = rng.next_below(self._cfg.num_nodes - 1)
            dest = other if other < node else other + 1
            dests = frozenset([dest])
        return MessageSpec(dests, component.mclass, component.num_flits)


class SyntheticBurst:
    """A scripted one-shot workload for tests and examples.

    ``schedule`` maps ``(cycle, node)`` to a list of
    :class:`MessageSpec`; everything else is silent.  Deterministic by
    construction, which makes it the tool of choice for pinpoint
    latency assertions.
    """

    injection_rate = 0.0

    def __init__(self, schedule):
        self.schedule = dict(schedule)

    def bind(self, config):
        self._cfg = config

    def generate(self, cycle, node):
        return list(self.schedule.get((cycle, node), []))
