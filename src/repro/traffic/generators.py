"""Injection processes.

:class:`BernoulliTraffic` is the paper's workload: every NIC injects
flits as a Bernoulli process of rate R (flits/node/cycle), drawing each
message from a :class:`~repro.traffic.mix.TrafficMix`, with unicast
destinations chosen by a
:class:`~repro.traffic.patterns.DestinationPattern` (uniform over the
other nodes by default, matching the paper) and broadcasts addressed to
every node.

``identical_generators=True`` reproduces the fabricated chip's
artifact: all NICs run the *same* PRBS stream, so their injection
decisions and destination choices are synchronised, creating structural
contention even at low loads.  The default (decorrelated per-node
streams) matches the paper's corrected RTL simulations.
"""

from __future__ import annotations

from repro.traffic.patterns import UniformPattern
from repro.traffic.prbs import PRBSGenerator
from repro.traffic.spec import MessageSpec


class BernoulliTraffic:
    """Bernoulli packet injection of a traffic mix at a given flit rate."""

    def __init__(
        self,
        mix,
        injection_rate,
        seed=1,
        identical_generators=False,
        pattern=None,
    ):
        if injection_rate < 0:
            raise ValueError("injection rate must be non-negative")
        if injection_rate > 1:
            raise ValueError(
                "a NIC cannot source more than one flit per cycle "
                f"(got {injection_rate})"
            )
        self.mix = mix
        self.injection_rate = injection_rate
        self.seed = seed
        self.identical_generators = identical_generators
        self.pattern = pattern if pattern is not None else UniformPattern()
        self._cfg = None
        self._rngs = {}
        # cached per-bind constants for the per-cycle injection decision
        self._packet_rate = injection_rate / mix.mean_flits_per_message
        self._cum_weights = mix.cumulative_weights()
        self._dest_table = None

    def bind(self, config):
        """Called by the simulator to learn the network geometry."""
        self.pattern.validate(config.k)
        self._cfg = config
        self._rngs = {}
        self._packet_rate = self.injection_rate / self.mix.mean_flits_per_message
        self._cum_weights = self.mix.cumulative_weights()
        # deterministic patterns are pure src->dest maps: precompute the
        # destination sets once (frozensets are immutable, so sharing
        # one per source across all its MessageSpecs is safe) and the
        # hot path becomes a list index
        if self.pattern.deterministic:
            self._dest_table = [
                frozenset([self.pattern.dest(node, config.k)])
                for node in range(config.num_nodes)
            ]
        else:
            self._dest_table = None
        for node in range(config.num_nodes):
            node_seed = self.seed if self.identical_generators else self.seed + node
            self._rngs[node] = PRBSGenerator(order=31, seed=node_seed)

    @property
    def packet_rate(self):
        """Messages/node/cycle equivalent to the configured flit rate."""
        return self.injection_rate / self.mix.mean_flits_per_message

    def generate(self, cycle, node):
        if self._cfg is None:
            raise RuntimeError("traffic source used before bind()")
        rng = self._rngs[node]
        if rng.next_uniform() >= self._packet_rate:
            return ()
        return (self._draw_message(rng, node),)

    def _draw_message(self, rng, node):
        pick = rng.next_uniform()
        component = self.mix.components[-1]
        for cumulative, c in self._cum_weights:
            if pick < cumulative:
                component = c
                break
        if component.broadcast:
            dests = frozenset(range(self._cfg.num_nodes))
        elif self._dest_table is not None:
            dests = self._dest_table[node]
        else:
            dest = self.pattern.pick(
                rng, node, self._cfg.k, self._cfg.num_nodes
            )
            dests = frozenset([dest])
        return MessageSpec(dests, component.mclass, component.num_flits)


class SyntheticBurst:
    """A scripted one-shot workload for tests and examples.

    ``schedule`` maps ``(cycle, node)`` to a list of
    :class:`MessageSpec`; everything else is silent.  Deterministic by
    construction, which makes it the tool of choice for pinpoint
    latency assertions.
    """

    injection_rate = 0.0

    def __init__(self, schedule):
        self.schedule = dict(schedule)
        self._cfg = None

    def bind(self, config):
        self._cfg = config

    def generate(self, cycle, node):
        if self._cfg is None:
            raise RuntimeError("traffic source used before bind()")
        return list(self.schedule.get((cycle, node), []))
