"""Traffic mixes evaluated in the paper.

Section 4.1 measures two patterns at 1 GHz:

* *mixed traffic* — 50% broadcast requests, 25% unicast requests and
  25% unicast responses, modelling a broadcast-based cache-coherence
  protocol (requests are 1-flit, responses carry a cache line in 5
  flits);
* *broadcast-only traffic* — 100% broadcast requests (Appendix D).

A :class:`TrafficMix` is a weighted set of :class:`TrafficComponent`
templates; generators draw from it per injected packet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.flit import MessageClass


@dataclass(frozen=True)
class TrafficComponent:
    """One message template of a mix."""

    name: str
    weight: float
    mclass: MessageClass
    num_flits: int
    broadcast: bool

    def __post_init__(self):
        if self.weight < 0:
            raise ValueError("component weight must be non-negative")
        if self.num_flits < 1:
            raise ValueError("component needs at least one flit")
        if self.broadcast and self.num_flits != 1:
            raise ValueError("broadcasts are single-flit coherence requests")

    def to_dict(self):
        """A JSON-safe representation (see :meth:`from_dict`)."""
        return {
            "name": self.name,
            "weight": self.weight,
            "mclass": self.mclass.name,
            "num_flits": self.num_flits,
            "broadcast": self.broadcast,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            name=data["name"],
            weight=float(data["weight"]),
            mclass=MessageClass[data["mclass"]],
            num_flits=int(data["num_flits"]),
            broadcast=bool(data["broadcast"]),
        )


@dataclass(frozen=True)
class TrafficMix:
    """A normalised weighted mixture of message templates."""

    name: str
    components: tuple

    def __post_init__(self):
        if not self.components:
            raise ValueError("a mix needs at least one component")
        if abs(sum(c.weight for c in self.components) - 1.0) > 1e-9:
            raise ValueError("component weights must sum to one")

    @property
    def mean_flits_per_message(self):
        return sum(c.weight * c.num_flits for c in self.components)

    def mean_ejections_per_flit(self, num_nodes):
        """Average NIC ejections caused per injected flit.

        A broadcast flit ejects at every node (the source delivers to
        itself through its own router, matching the paper's k^2 R
        ejection-link load); a unicast flit ejects once.
        """
        ej = 0.0
        for c in self.components:
            fanout = num_nodes if c.broadcast else 1
            ej += c.weight * c.num_flits * fanout
        return ej / self.mean_flits_per_message

    def saturation_injection_rate(self, num_nodes):
        """Ejection-limited throughput ceiling, flits/node/cycle.

        Each NIC can eject one flit per cycle, so the network as a
        whole can deliver ``num_nodes`` flits per cycle; the offered
        load at which deliveries would exceed that is the theoretical
        throughput limit of Table 1 generalised to a mix.
        """
        return 1.0 / self.mean_ejections_per_flit(num_nodes)

    def cumulative_weights(self):
        total = 0.0
        out = []
        for c in self.components:
            total += c.weight
            out.append((total, c))
        return out

    def to_dict(self):
        """A JSON-safe representation that :meth:`from_dict` inverts.

        Used by :mod:`repro.engine` to hash mixes into cache keys and
        to ship them across process boundaries.
        """
        return {
            "name": self.name,
            "components": [c.to_dict() for c in self.components],
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            name=data["name"],
            components=tuple(
                TrafficComponent.from_dict(c) for c in data["components"]
            ),
        )


MIXED_TRAFFIC = TrafficMix(
    "mixed",
    (
        TrafficComponent(
            "broadcast_request", 0.50, MessageClass.REQUEST, 1, broadcast=True
        ),
        TrafficComponent(
            "unicast_request", 0.25, MessageClass.REQUEST, 1, broadcast=False
        ),
        TrafficComponent(
            "unicast_response", 0.25, MessageClass.RESPONSE, 5, broadcast=False
        ),
    ),
)

BROADCAST_ONLY = TrafficMix(
    "broadcast_only",
    (
        TrafficComponent(
            "broadcast_request", 1.0, MessageClass.REQUEST, 1, broadcast=True
        ),
    ),
)

UNIFORM_UNICAST = TrafficMix(
    "uniform_unicast",
    (
        TrafficComponent(
            "unicast_request", 1.0, MessageClass.REQUEST, 1, broadcast=False
        ),
    ),
)
