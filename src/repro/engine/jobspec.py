"""The unit of work of the experiment engine.

A :class:`JobSpec` pins down everything that determines one simulated
operating point — network configuration, traffic mix, injection rate,
seed and cycle counts.  Because the simulator is fully deterministic
for a given seed (see DESIGN.md), a JobSpec is a *value*: running it
twice, on any backend, yields byte-identical :class:`WindowStats`.
That property is what makes both the process-pool fan-out and the
content-addressed result cache sound.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.noc.config import NocConfig
from repro.noc.simulator import Simulator
from repro.traffic.generators import SyntheticTraffic
from repro.traffic.mix import TrafficMix
from repro.traffic.patterns import UniformPattern, pattern_from_dict
from repro.traffic.processes import BernoulliProcess, process_from_dict

#: The paper's Section 4.1 measurement methodology; the single source
#: for every layer that exposes window defaults (JobSpec, run_point,
#: the fig5/fig13 drivers and the CLI).
DEFAULT_SEED = 7
DEFAULT_WARMUP = 1_000
DEFAULT_MEASURE = 6_000
DEFAULT_DRAIN = 6_000


@dataclass(frozen=True)
class JobSpec:
    """One simulation point, as a hashable, serializable value object."""

    config: NocConfig
    mix: TrafficMix
    rate: float
    seed: int = DEFAULT_SEED
    warmup: int = DEFAULT_WARMUP
    measure: int = DEFAULT_MEASURE
    drain: int = DEFAULT_DRAIN
    identical_generators: bool = False
    name: str = ""
    #: spatial destination pattern for unicasts; ``None`` means the
    #: paper's uniform-random default (and an explicitly-passed
    #: UniformPattern is normalised to None, so equal jobs stay equal)
    pattern: object = None
    #: temporal injection process; ``None`` means the paper's Bernoulli
    #: default (and an explicitly-passed BernoulliProcess is normalised
    #: to None, so equal jobs stay equal)
    injection: object = None
    #: fault model (a :class:`repro.noc.faults.FaultModel` value);
    #: ``None`` means fault free and is omitted from the encoding, so
    #: pre-fault cache keys stay valid byte for byte
    faults: object = None
    #: simulation backend (see :mod:`repro.noc.backend`).  An
    #: *execution* detail, never an identity axis: it is excluded from
    #: :meth:`to_dict` / :meth:`canonical_json` entirely (not merely
    #: omitted-when-default), because equal jobs produce byte-identical
    #: stats on every backend that accepts them, and so must share one
    #: content address.  Worker payloads carry it via
    #: :meth:`to_payload`, where it *is* omitted-when-default.
    backend: str = "object"

    @property
    def routing(self):
        """The job's unicast routing algorithm (lives on the config,
        where the VC partition is validated; surfaced here because it
        is an axis of the experiment space like ``pattern``).  The
        config omits the XY default from its encoding, so pre-routing
        cache keys stay byte-identical.
        """
        return self.config.routing

    def __post_init__(self):
        if self.rate < 0 or self.rate > 1:
            raise ValueError("injection rate must be within [0, 1]")
        for attr in ("warmup", "measure", "drain"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} cycle count must be non-negative")
        if self.pattern == UniformPattern():
            object.__setattr__(self, "pattern", None)
        if self.pattern is not None:
            self.pattern.validate(self.config.k)
        if self.injection == BernoulliProcess():
            object.__setattr__(self, "injection", None)
        if self.injection is not None:
            self.injection.validate(self.rate)
        if self.faults is not None:
            self.faults.validate(self.config)
        if self.backend != "object":
            # surfaces a typo (or an unknown name in a deserialized
            # payload) as a ValueError naming the available backends
            from repro.noc.backend import resolve_backend

            resolve_backend(self.backend)

    # ------------------------------------------------------------ identity

    def to_dict(self):
        """A JSON-safe representation that :meth:`from_dict` inverts.

        The ``pattern`` key is omitted for the uniform default and the
        ``injection`` key for the Bernoulli default, so that
        pre-pattern and pre-process cache keys (and on-disk
        ``.repro_cache/`` entries) stay valid byte for byte.
        """
        data = {
            "config": self.config.to_dict(),
            "mix": self.mix.to_dict(),
            "rate": self.rate,
            "seed": self.seed,
            "warmup": self.warmup,
            "measure": self.measure,
            "drain": self.drain,
            "identical_generators": self.identical_generators,
            "name": self.name,
        }
        if self.pattern is not None:
            data["pattern"] = self.pattern.to_dict()
        if self.injection is not None:
            data["injection"] = self.injection.to_dict()
        if self.faults is not None:
            data["faults"] = self.faults.to_dict()
        return data

    def to_payload(self):
        """The worker-shipping representation: :meth:`to_dict` plus the
        execution-only ``backend`` key (omitted for the default), which
        :meth:`from_dict` accepts but :meth:`canonical_json` never
        sees."""
        data = self.to_dict()
        if self.backend != "object":
            data["backend"] = self.backend
        return data

    @classmethod
    def from_dict(cls, data):
        # lazy import: repro.noc.faults pulls in the recovery stack,
        # which fault-free engine paths never need
        from repro.noc.faults import fault_from_dict

        pattern = data.get("pattern")
        injection = data.get("injection")
        faults = data.get("faults")
        return cls(
            config=NocConfig.from_dict(data["config"]),
            mix=TrafficMix.from_dict(data["mix"]),
            rate=float(data["rate"]),
            seed=int(data["seed"]),
            warmup=int(data["warmup"]),
            measure=int(data["measure"]),
            drain=int(data["drain"]),
            identical_generators=bool(data["identical_generators"]),
            name=data["name"],
            pattern=pattern_from_dict(pattern) if pattern is not None else None,
            injection=(
                process_from_dict(injection) if injection is not None else None
            ),
            faults=fault_from_dict(faults) if faults is not None else None,
            backend=data.get("backend", "object"),
        )

    def canonical_json(self):
        """A canonical encoding: the basis of the content address."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @property
    def cache_key(self):
        """Stable content hash; the filename in :class:`ResultCache`."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    # ----------------------------------------------------------- execution

    def _simulator(self, seeds=None):
        traffic = SyntheticTraffic(
            self.mix,
            self.rate,
            seed=self.seed,
            identical_generators=self.identical_generators,
            pattern=self.pattern,
            process=self.injection,
        )
        sim = Simulator(self.config, name=self.name, backend=self.backend,
                        seeds=seeds)
        if self.faults is not None:
            # before the traffic: a hard model swaps the routing
            # runtime, which attach_traffic then validates against
            sim.attach_faults(self.faults, seed=self.seed)
        sim.attach_traffic(traffic)
        return sim

    def run(self):
        """Simulate this point on a fresh network; returns WindowStats."""
        return self._simulator().run_experiment(
            warmup=self.warmup, measure=self.measure, drain=self.drain
        )

    def run_batch(self, seeds):
        """Simulate this point once per seed in one batched kernel pass.

        Requires ``backend="array"`` (the batch axis lives in the
        struct-of-arrays kernel).  Returns one :class:`WindowStats` per
        seed, in order, each byte-identical to ``replace(self,
        seed=s).run()`` — batching is an execution detail, never an
        identity axis, so callers (the Executor) cache each lane under
        its ordinary single-seed content address.
        """
        if self.faults is not None:
            raise ValueError(
                "batched multi-seed runs are fault-free only (faults "
                "are object-backend-only)"
            )
        return self._simulator(seeds=list(seeds)).run_experiment_batch(
            warmup=self.warmup, measure=self.measure, drain=self.drain
        )

    def run_profiled(self):
        """Like :meth:`run` with the phase profiler attached; returns
        ``(WindowStats, telemetry dict)``.

        The stats are byte-identical to :meth:`run` — profiling is
        read-only observation (DESIGN.md §7) — so callers may cache
        them under the same content address.  The import is local to
        keep :mod:`repro.obs` off the unprofiled path entirely.
        """
        from repro.obs import Observer

        if self.backend != "object":
            raise ValueError(
                "phase profiling requires backend='object' (probes are "
                "object-only; see the support matrix in "
                "repro.noc.array_backend)"
            )
        sim = self._simulator()
        obs = Observer(trace=False, profile=True).attach(sim)
        stats = sim.run_experiment(
            warmup=self.warmup, measure=self.measure, drain=self.drain
        )
        telemetry = obs.report()
        obs.detach()
        telemetry["stop_reason"] = stats.stop_reason
        return stats, telemetry
