"""Batch execution of JobSpecs over pluggable backends.

The :class:`Executor` is the engine's front door: it resolves each job
against the (optional) :class:`~repro.engine.cache.ResultCache`, fans
the misses out to a backend, stores the fresh results and returns
WindowStats in job order.

Two backends ship:

* :class:`SerialBackend` — runs jobs in-process, one after another.
  This is the default and is deterministically identical to the
  pre-engine ``for rate in rates`` loop.
* :class:`ProcessPoolBackend` — a ``multiprocessing`` pool.  Jobs cross
  the process boundary as their serialized dicts (not pickled live
  objects), so a worker reconstructs exactly what a serial run would
  build; results come back the same way.  Because every job simulates a
  fresh network from its own seed, the two backends produce
  byte-identical results.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
from collections import deque
from dataclasses import dataclass
from time import monotonic, perf_counter, sleep

from repro.engine.jobspec import JobSpec
from repro.noc.metrics import WindowStats

logger = logging.getLogger(__name__)

#: default per-job wall-clock budget of the process backend, generous
#: enough for any paper-methodology point on a slow machine
DEFAULT_JOB_TIMEOUT = 600.0


@dataclass(frozen=True)
class JobFailure:
    """A job the backend could not complete (crash or timeout).

    Returned by backends in place of WindowStats after the retry
    budget is spent; the :class:`Executor` converts it into a
    ``stop_reason="failed"`` stats record so a sweep survives a sick
    worker instead of raising out of the whole batch.
    """

    error: str
    attempts: int


class SerialBackend:
    """In-process, in-order execution (the deterministic reference)."""

    name = "serial"

    @staticmethod
    def _reject(job):
        """The JobFailure for an unresolvable backend name, else None.

        An unknown backend (a sick deserialized payload) surfaces as a
        structured failure naming the job, not as a traceback out of
        the whole batch; workload-axis rejections still raise like any
        other bad request.  Shared by :meth:`run` and
        :meth:`run_profiled` so a sick payload gets the same containment
        whether or not telemetry is on.
        """
        from repro.noc.backend import resolve_backend

        try:
            resolve_backend(job.backend)
        except ValueError as exc:
            return JobFailure(
                error=f"job {job.cache_key[:12]}: {exc}", attempts=1
            )
        return None

    def run(self, jobs):
        out = []
        for job in jobs:
            failure = self._reject(job)
            out.append(job.run() if failure is None else failure)
        return out

    def run_profiled(self, jobs):
        """Like :meth:`run`, returning ``(stats, telemetry)`` pairs."""
        out = []
        for job in jobs:
            failure = self._reject(job)
            if failure is not None:
                out.append(
                    (failure, {"failure": failure.error, "attempts": 1})
                )
                continue
            out.append(job.run_profiled())
        return out


def _run_payload(payload):
    """Worker entry point: dict in, dict out (must be module-level)."""
    return JobSpec.from_dict(payload).run().to_dict()


def _run_payload_profiled(payload):
    """Worker entry point for telemetry runs: adds worker timing.

    The profile's wall-clock numbers are measured inside the worker;
    ``worker_seconds`` additionally covers the job's deserialize +
    simulate + serialize span, so pool scheduling overhead is the gap
    between it and the executor's batch wall time.
    """
    start = perf_counter()
    stats, telemetry = JobSpec.from_dict(payload).run_profiled()
    telemetry["worker"] = {
        "pid": os.getpid(),
        "worker_seconds": perf_counter() - start,
    }
    return stats.to_dict(), telemetry


class ProcessPoolBackend:
    """Fan jobs out over a ``multiprocessing`` pool of workers.

    Worker failures are contained, not propagated: a job whose worker
    raises, dies, or exceeds ``timeout`` seconds is retried once (by
    default) in a *fresh* pool — the old pool is terminated, which also
    reaps hung workers — and a job that fails its last attempt comes
    back as a :class:`JobFailure` instead of an exception, so the rest
    of the batch is unaffected.  ``retried`` holds the number of jobs
    of the most recent batch that needed more than one attempt.
    """

    name = "process"

    def __init__(self, workers=None, timeout=DEFAULT_JOB_TIMEOUT, retries=1):
        if workers is not None and workers < 1:
            raise ValueError("worker count must be at least one")
        if timeout is not None and timeout <= 0:
            raise ValueError("job timeout must be positive (or None)")
        if retries < 0:
            raise ValueError("retry count must be non-negative")
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        #: jobs of the last batch that needed more than one attempt
        self.retried = 0

    def _pool_size(self, n):
        return min(self.workers or os.cpu_count() or 1, n)

    #: how often the dispatch loop polls outstanding handles (seconds)
    POLL_INTERVAL = 0.02

    def _map(self, fn, payloads):
        """Apply ``fn`` to every payload with timeout + retry.

        Returns ``(outcomes, attempts)``: per payload either
        ``("ok", value)`` or ``("err", message)``, plus the attempt
        count.  Uses ``apply_async`` (not ``map``) so one sick payload
        fails alone instead of poisoning its whole chunk.

        Dispatch is *windowed*: at most one in-flight job per pool
        worker, each charged its wall-clock budget from its own
        dispatch (the moment a worker slot was free to take it) — not
        from a shared sequential ``get``, which would falsely time out
        a healthy job queued behind slow ones and, conversely, let a
        late job run past its budget on credit from earlier fast gets.
        """
        outcomes = [None] * len(payloads)
        attempts = [0] * len(payloads)
        todo = list(range(len(payloads)))
        for round_no in range(1 + self.retries):
            if not todo:
                break
            if round_no:
                logger.warning(
                    "retrying %d failed job(s) in a fresh pool", len(todo)
                )
            failed = []
            slots = self._pool_size(len(todo))
            pool = multiprocessing.Pool(processes=slots)
            try:
                self._drain(
                    pool, fn, payloads, todo, slots,
                    outcomes, attempts, failed,
                )
            finally:
                # terminate (not close): reaps workers hung past their
                # timeout, so a fresh retry pool starts clean
                pool.terminate()
                pool.join()
            todo = failed
        self.retried = sum(1 for n in attempts if n > 1)
        return outcomes, attempts

    def _drain(self, pool, fn, payloads, todo, slots,
               outcomes, attempts, failed):
        """One round of windowed dispatch + ready-polling over ``pool``.

        A job past its deadline is failed immediately, but its (possibly
        hung) worker is only *presumed* lost: the slot is retired, and
        re-opened if the straggler finishes after all — so one slow job
        delays, but never consumes the budget of, the jobs queued behind
        it.
        """
        pending = deque(todo)
        running = {}  # payload index -> (handle, deadline)
        stragglers = []  # (handle, give_up_at): timed out, maybe hung
        while pending or running:
            while pending and len(running) < slots:
                i = pending.popleft()
                attempts[i] += 1
                deadline = (
                    None if self.timeout is None
                    else monotonic() + self.timeout
                )
                running[i] = (pool.apply_async(fn, (payloads[i],)), deadline)
            progressed = False
            now = monotonic()
            for i, (handle, deadline) in list(running.items()):
                if handle.ready():
                    del running[i]
                    progressed = True
                    try:
                        outcomes[i] = ("ok", handle.get(0))
                    except Exception as exc:
                        outcomes[i] = ("err", f"{type(exc).__name__}: {exc}")
                        failed.append(i)
                elif deadline is not None and now >= deadline:
                    del running[i]
                    progressed = True
                    outcomes[i] = (
                        "err", f"timed out after {self.timeout:g}s"
                    )
                    failed.append(i)
                    # the worker gets two more full budgets to prove it
                    # is slow rather than hung; until then its slot is
                    # retired so queued jobs are not dispatched into a
                    # possibly-dead worker's shadow
                    stragglers.append((handle, now + 2 * self.timeout))
                    slots -= 1
            for entry in list(stragglers):
                handle, give_up_at = entry
                if handle.ready():
                    stragglers.remove(entry)
                    slots += 1  # slow, not hung: re-open the slot
                    progressed = True
                elif now >= give_up_at:
                    stragglers.remove(entry)  # hung: slot stays retired
                    progressed = True
            if slots < 1 and not stragglers and pending and not running:
                # every worker is hung past its grace: fail the queue
                # rather than wait forever.  The starved jobs go to the
                # *front* of the retry order so the fresh pool runs them
                # before re-attempting the jobs that actually hung it.
                starved = []
                while pending:
                    i = pending.popleft()
                    attempts[i] += 1
                    outcomes[i] = (
                        "err", "every pool worker is hung past its "
                        "job timeout",
                    )
                    starved.append(i)
                failed[:0] = starved
                return
            if not progressed:
                sleep(self.POLL_INTERVAL)

    def run(self, jobs):
        jobs = list(jobs)
        outcomes, attempts = self._map(
            _run_payload, [job.to_payload() for job in jobs]
        )
        return [
            WindowStats.from_dict(value)
            if kind == "ok"
            else JobFailure(error=value, attempts=attempts[i])
            for i, (kind, value) in enumerate(outcomes)
        ]

    def run_profiled(self, jobs):
        """Like :meth:`run`, returning ``(stats, telemetry)`` pairs.

        Retries surface in the telemetry (an ``attempts`` key appears
        whenever a job needed more than one), so cache sidecars record
        which points had a flaky first run.
        """
        jobs = list(jobs)
        outcomes, attempts = self._map(
            _run_payload_profiled, [job.to_payload() for job in jobs]
        )
        out = []
        for i, (kind, value) in enumerate(outcomes):
            if kind != "ok":
                failure = JobFailure(error=value, attempts=attempts[i])
                out.append(
                    (failure, {"failure": value, "attempts": attempts[i]})
                )
                continue
            stats_dict, telemetry = value
            telemetry = dict(telemetry)
            if attempts[i] > 1:
                telemetry["attempts"] = attempts[i]
            out.append((WindowStats.from_dict(stats_dict), telemetry))
        return out


_BACKENDS = {
    "serial": SerialBackend,
    "process": ProcessPoolBackend,
}


def make_backend(name, workers=None, timeout=DEFAULT_JOB_TIMEOUT, retries=1):
    """Instantiate a backend by name ('serial' or 'process')."""
    try:
        backend_cls = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from {sorted(_BACKENDS)}"
        ) from None
    if backend_cls is ProcessPoolBackend:
        return backend_cls(workers=workers, timeout=timeout, retries=retries)
    if workers is not None:
        raise ValueError(
            f"a worker count only applies to the process backend, "
            f"not {name!r}"
        )
    return backend_cls()


def _failure_stats(job, failure):
    """The ``stop_reason="failed"`` record standing in for a job the
    backend gave up on: NaN metrics, never cached."""
    nan = float("nan")
    return WindowStats(
        config_name=job.name,
        injection_rate=job.rate,
        cycles=0,
        messages_measured=0,
        avg_latency=nan,
        avg_latency_by_kind={},
        received_flits=0,
        throughput_flits_per_cycle=nan,
        throughput_gbps=nan,
        bypass_fraction=nan,
        incomplete_messages=0,
        stop_reason="failed",
        delivered_fraction=nan,
    )


class Executor:
    """Maps batches of JobSpecs to WindowStats, with optional caching.

    Counters (reset never; read them between batches):

    * ``cache_hits`` — jobs answered from the cache,
    * ``cache_misses`` — jobs not found in the cache,
    * ``executed`` — simulations actually run (== misses).

    With ``telemetry=True`` each fresh job runs with the phase profiler
    attached and its run telemetry is stored in the cache's
    ``.telemetry`` sidecar (when a cache is present).  Results stay
    byte-identical either way — telemetry is observation, not state —
    and ``last_batch`` summarises the most recent :meth:`run`.
    """

    def __init__(self, backend="serial", workers=None, cache=None,
                 telemetry=False):
        if isinstance(backend, str):
            backend = make_backend(backend, workers=workers)
        self.backend = backend
        self.cache = cache
        self.telemetry = telemetry
        self.cache_hits = 0
        self.cache_misses = 0
        self.executed = 0
        #: summary of the most recent batch (None before the first)
        self.last_batch = None

    def run(self, jobs):
        """Execute a batch; returns WindowStats in the order of ``jobs``."""
        start = perf_counter()
        jobs = list(jobs)
        results = [None] * len(jobs)
        pending, pending_at = [], []
        for i, job in enumerate(jobs):
            cached = self.cache.get(job) if self.cache is not None else None
            if cached is not None:
                self.cache_hits += 1
                results[i] = cached
            else:
                self.cache_misses += 1
                pending.append(job)
                pending_at.append(i)
        telemetries = None
        if not pending:
            fresh = []
        elif self.telemetry:
            pairs = self.backend.run_profiled(pending)
            fresh = [stats for stats, _telemetry in pairs]
            telemetries = [telemetry for _stats, telemetry in pairs]
        else:
            fresh = self._run_pending(pending)
        if len(fresh) != len(pending):
            raise RuntimeError(
                f"backend {getattr(self.backend, 'name', self.backend)!r} "
                f"returned {len(fresh)} results for {len(pending)} jobs"
            )
        self.executed += len(pending)
        failures = []
        for n, (i, job, stats) in enumerate(zip(pending_at, pending, fresh)):
            if isinstance(stats, JobFailure):
                # structured failure record, not an unhandled exception:
                # the rest of the sweep stands, nothing gets cached
                failures.append(
                    {
                        "job": job.name or job.cache_key[:12],
                        "rate": job.rate,
                        "error": stats.error,
                        "attempts": stats.attempts,
                    }
                )
                logger.warning(
                    "job %s (rate %g) failed after %d attempt(s): %s",
                    job.name or job.cache_key[:12], job.rate,
                    stats.attempts, stats.error,
                )
                results[i] = _failure_stats(job, stats)
                continue
            if self.cache is not None:
                self.cache.put(job, stats)
                if telemetries is not None:
                    self.cache.put_telemetry(job, telemetries[n])
            results[i] = stats
        if self.cache is not None:
            self.cache.flush_counters()
        wall = perf_counter() - start
        self.last_batch = {
            "jobs": len(jobs),
            "hits": len(jobs) - len(pending),
            "executed": len(pending),
            "backend": getattr(self.backend, "name", str(self.backend)),
            "wall_seconds": wall,
            "failures": failures,
            "retried": getattr(self.backend, "retried", 0),
        }
        logger.debug(
            "batch of %d jobs: %d cached, %d executed on %s in %.2fs",
            len(jobs), len(jobs) - len(pending), len(pending),
            self.last_batch["backend"], wall,
        )
        return results

    def _run_pending(self, pending):
        """Dispatch cache misses, batching replica groups on the way.

        Serial array-backend fault-free jobs that differ *only* by seed
        run as one batched kernel pass (:meth:`JobSpec.run_batch`); the
        fan-in yields one ordinary per-seed result per job, so the
        caller stores each lane under its normal single-seed content
        address — batching, like backend, never enters job identity.
        Everything else (process pools, object-backend jobs, singleton
        groups) takes the plain backend path.
        """
        if getattr(self.backend, "name", "") != "serial" \
                or len(pending) < 2:
            return self.backend.run(pending)
        groups = {}
        for i, job in enumerate(pending):
            if job.backend == "array" and job.faults is None:
                payload = job.to_payload()
                del payload["seed"]
                key = json.dumps(payload, sort_keys=True)
            else:
                key = i  # unique key: never grouped
            groups.setdefault(key, []).append(i)
        results = [None] * len(pending)
        solo = [i for idxs in groups.values() if len(idxs) < 2
                for i in idxs]
        for i, stats in zip(
            solo, self.backend.run([pending[i] for i in solo])
        ):
            results[i] = stats
        for idxs in groups.values():
            if len(idxs) < 2:
                continue
            lanes = pending[idxs[0]].run_batch(
                [pending[i].seed for i in idxs]
            )
            for i, stats in zip(idxs, lanes):
                results[i] = stats
        return results

    def run_one(self, job):
        """Convenience wrapper: execute a single job."""
        return self.run([job])[0]
