"""Batch execution of JobSpecs over pluggable backends.

The :class:`Executor` is the engine's front door: it resolves each job
against the (optional) :class:`~repro.engine.cache.ResultCache`, fans
the misses out to a backend, stores the fresh results and returns
WindowStats in job order.

Two backends ship:

* :class:`SerialBackend` — runs jobs in-process, one after another.
  This is the default and is deterministically identical to the
  pre-engine ``for rate in rates`` loop.
* :class:`ProcessPoolBackend` — a ``multiprocessing`` pool.  Jobs cross
  the process boundary as their serialized dicts (not pickled live
  objects), so a worker reconstructs exactly what a serial run would
  build; results come back the same way.  Because every job simulates a
  fresh network from its own seed, the two backends produce
  byte-identical results.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
from time import perf_counter

from repro.engine.jobspec import JobSpec
from repro.noc.metrics import WindowStats

logger = logging.getLogger(__name__)


class SerialBackend:
    """In-process, in-order execution (the deterministic reference)."""

    name = "serial"

    def run(self, jobs):
        return [job.run() for job in jobs]

    def run_profiled(self, jobs):
        """Like :meth:`run`, returning ``(stats, telemetry)`` pairs."""
        return [job.run_profiled() for job in jobs]


def _run_payload(payload):
    """Worker entry point: dict in, dict out (must be module-level)."""
    return JobSpec.from_dict(payload).run().to_dict()


def _run_payload_profiled(payload):
    """Worker entry point for telemetry runs: adds worker timing.

    The profile's wall-clock numbers are measured inside the worker;
    ``worker_seconds`` additionally covers the job's deserialize +
    simulate + serialize span, so pool scheduling overhead is the gap
    between it and the executor's batch wall time.
    """
    start = perf_counter()
    stats, telemetry = JobSpec.from_dict(payload).run_profiled()
    telemetry["worker"] = {
        "pid": os.getpid(),
        "worker_seconds": perf_counter() - start,
    }
    return stats.to_dict(), telemetry


class ProcessPoolBackend:
    """Fan jobs out over a ``multiprocessing`` pool of workers."""

    name = "process"

    def __init__(self, workers=None):
        if workers is not None and workers < 1:
            raise ValueError("worker count must be at least one")
        self.workers = workers

    def _pool_size(self, jobs):
        return min(self.workers or os.cpu_count() or 1, len(jobs))

    def run(self, jobs):
        workers = self._pool_size(jobs)
        if workers <= 1:
            return SerialBackend().run(jobs)
        payloads = [job.to_dict() for job in jobs]
        with multiprocessing.Pool(processes=workers) as pool:
            results = pool.map(_run_payload, payloads, chunksize=1)
        return [WindowStats.from_dict(d) for d in results]

    def run_profiled(self, jobs):
        """Like :meth:`run`, returning ``(stats, telemetry)`` pairs."""
        workers = self._pool_size(jobs)
        if workers <= 1:
            return SerialBackend().run_profiled(jobs)
        payloads = [job.to_dict() for job in jobs]
        with multiprocessing.Pool(processes=workers) as pool:
            results = pool.map(_run_payload_profiled, payloads, chunksize=1)
        return [
            (WindowStats.from_dict(d), telemetry) for d, telemetry in results
        ]


_BACKENDS = {
    "serial": SerialBackend,
    "process": ProcessPoolBackend,
}


def make_backend(name, workers=None):
    """Instantiate a backend by name ('serial' or 'process')."""
    try:
        backend_cls = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from {sorted(_BACKENDS)}"
        ) from None
    if backend_cls is ProcessPoolBackend:
        return backend_cls(workers=workers)
    if workers is not None:
        raise ValueError(
            f"a worker count only applies to the process backend, "
            f"not {name!r}"
        )
    return backend_cls()


class Executor:
    """Maps batches of JobSpecs to WindowStats, with optional caching.

    Counters (reset never; read them between batches):

    * ``cache_hits`` — jobs answered from the cache,
    * ``cache_misses`` — jobs not found in the cache,
    * ``executed`` — simulations actually run (== misses).

    With ``telemetry=True`` each fresh job runs with the phase profiler
    attached and its run telemetry is stored in the cache's
    ``.telemetry`` sidecar (when a cache is present).  Results stay
    byte-identical either way — telemetry is observation, not state —
    and ``last_batch`` summarises the most recent :meth:`run`.
    """

    def __init__(self, backend="serial", workers=None, cache=None,
                 telemetry=False):
        if isinstance(backend, str):
            backend = make_backend(backend, workers=workers)
        self.backend = backend
        self.cache = cache
        self.telemetry = telemetry
        self.cache_hits = 0
        self.cache_misses = 0
        self.executed = 0
        #: summary of the most recent batch (None before the first)
        self.last_batch = None

    def run(self, jobs):
        """Execute a batch; returns WindowStats in the order of ``jobs``."""
        start = perf_counter()
        jobs = list(jobs)
        results = [None] * len(jobs)
        pending, pending_at = [], []
        for i, job in enumerate(jobs):
            cached = self.cache.get(job) if self.cache is not None else None
            if cached is not None:
                self.cache_hits += 1
                results[i] = cached
            else:
                self.cache_misses += 1
                pending.append(job)
                pending_at.append(i)
        telemetries = None
        if not pending:
            fresh = []
        elif self.telemetry:
            pairs = self.backend.run_profiled(pending)
            fresh = [stats for stats, _telemetry in pairs]
            telemetries = [telemetry for _stats, telemetry in pairs]
        else:
            fresh = self.backend.run(pending)
        if len(fresh) != len(pending):
            raise RuntimeError(
                f"backend {getattr(self.backend, 'name', self.backend)!r} "
                f"returned {len(fresh)} results for {len(pending)} jobs"
            )
        self.executed += len(pending)
        for n, (i, job, stats) in enumerate(zip(pending_at, pending, fresh)):
            if self.cache is not None:
                self.cache.put(job, stats)
                if telemetries is not None:
                    self.cache.put_telemetry(job, telemetries[n])
            results[i] = stats
        if self.cache is not None:
            self.cache.flush_counters()
        wall = perf_counter() - start
        self.last_batch = {
            "jobs": len(jobs),
            "hits": len(jobs) - len(pending),
            "executed": len(pending),
            "backend": getattr(self.backend, "name", str(self.backend)),
            "wall_seconds": wall,
        }
        logger.debug(
            "batch of %d jobs: %d cached, %d executed on %s in %.2fs",
            len(jobs), len(jobs) - len(pending), len(pending),
            self.last_batch["backend"], wall,
        )
        return results

    def run_one(self, job):
        """Convenience wrapper: execute a single job."""
        return self.run([job])[0]
