"""Parallel experiment engine with a persistent result cache.

Layers (bottom up):

* :class:`JobSpec` — one simulation point as a hashable, serializable
  value object with a stable content hash;
* :class:`Executor` + backends — batch execution, in-process serial
  (default, identical to the historical loop) or ``multiprocessing``
  process-pool fan-out;
* :class:`ResultCache` — content-addressed JSON store under
  ``.repro_cache/`` so repeated sweeps skip computed points;
* :mod:`repro.engine.cli` — the ``python -m repro`` command line
  (kept out of this namespace to avoid importing the harness eagerly).

See DESIGN.md for the architecture and the determinism argument.
"""

from repro.engine.cache import CACHE_VERSION, DEFAULT_CACHE_DIR, ResultCache
from repro.engine.executor import (
    DEFAULT_JOB_TIMEOUT,
    Executor,
    JobFailure,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
)
from repro.engine.jobspec import (
    DEFAULT_DRAIN,
    DEFAULT_MEASURE,
    DEFAULT_SEED,
    DEFAULT_WARMUP,
    JobSpec,
)

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_DRAIN",
    "DEFAULT_MEASURE",
    "DEFAULT_SEED",
    "DEFAULT_WARMUP",
    "DEFAULT_JOB_TIMEOUT",
    "Executor",
    "JobFailure",
    "JobSpec",
    "ProcessPoolBackend",
    "ResultCache",
    "SerialBackend",
    "make_backend",
]
