"""The ``repro`` command line (also reachable as ``python -m repro``).

Six subcommands drive the experiment engine:

* ``repro sweep``  — run a latency-throughput sweep for any preset
  config and traffic mix, on the serial or process-pool backend, with
  results cached under ``.repro_cache/``;
* ``repro figure`` — regenerate a paper exhibit via the drivers in
  :mod:`repro.harness.experiments` (fig5/fig13 route through the
  engine and benefit from caching and parallelism), or the
  ``reliability`` exhibit of :mod:`repro.analysis.reliability`
  (delivered throughput vs dead links and vs voltage swing);
* ``repro trace``  — run one operating point with event tracing and
  export the capture as Chrome trace-event JSON (``chrome://tracing``
  / Perfetto) and optionally JSONL;
* ``repro stats``  — run one operating point with the periodic metrics
  sampler and print link-utilization heatmaps and congestion figures;
* ``repro cache``  — inspect (``stats``) or empty (``clear``) the
  persistent result cache;
* ``repro serve``  — put the :mod:`repro.service` sweep API in front of
  the cache: POSTed JobSpec batches dedup against it and the misses run
  on a background worker pool (requires Flask, an optional dependency).

Diagnostics go through :mod:`logging` (stderr, ``repro:`` prefix;
``-v``/``-q`` select the level); figure and table output — the data a
script would parse — stays on stdout, byte-stable.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from pprint import pformat

from repro.core.presets import (
    baseline_network,
    proposed_network,
    strawman_network,
    textbook_network,
)
from repro.engine.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.engine.executor import Executor
from repro.engine.jobspec import (
    DEFAULT_DRAIN,
    DEFAULT_MEASURE,
    DEFAULT_SEED,
    DEFAULT_WARMUP,
)
from repro.harness import experiments
from repro.harness.sweep import default_rates, run_sweep, run_sweep_replicated
from repro.harness.tables import format_series
from repro.noc.faults import (
    BitErrorFaults,
    LinkFaults,
    RandomFaults,
    SwingFaults,
    fault_names,
)
from repro.noc.backend import backend_names
from repro.noc.routing import make_routing, routing_names
from repro.traffic.mix import BROADCAST_ONLY, MIXED_TRAFFIC, UNIFORM_UNICAST
from repro.traffic.patterns import HotspotPattern, make_pattern, pattern_names
from repro.traffic.processes import (
    MMPProcess,
    OnOffProcess,
    process_names,
)

logger = logging.getLogger(__name__)

CONFIGS = {
    "proposed": proposed_network,
    "baseline": baseline_network,
    "strawman": strawman_network,
    "textbook": textbook_network,
}

MIXES = {
    "mixed": MIXED_TRAFFIC,
    "broadcast_only": BROADCAST_ONLY,
    "uniform_unicast": UNIFORM_UNICAST,
}

#: Exhibits whose drivers accept engine keywords (rates/cycles/executor).
SWEEP_FIGURES = {
    "fig5": experiments.fig5_mixed_traffic,
    "fig13": experiments.fig13_broadcast_traffic,
}

#: Closed-form or single-run exhibits; regenerated as-is.
PLAIN_FIGURES = {
    "fig6": experiments.fig6_power_reduction,
    "fig7": experiments.fig7_lowswing_energy,
    "fig8": experiments.fig8_power_models,
    "fig10": experiments.fig10_reliability,
    "fig11": experiments.fig11_multicast_power,
    "fig12": experiments.fig12_eye_margin,
    "table1": experiments.table1_limits,
    "table2": experiments.table2_prototypes,
    "table3": experiments.table3_critical_path,
    "table4": experiments.table4_area,
}


def _positive_int(text):
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return value


def _parse_floats(text, what="value"):
    try:
        values = tuple(float(v) for v in text.split(",") if v.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated numbers, got {text!r}"
        ) from None
    if not values:
        raise argparse.ArgumentTypeError(f"at least one {what} is required")
    return values


def _parse_rates(text):
    return list(_parse_floats(text, what="rate"))


def _parse_nodes(text):
    try:
        nodes = tuple(int(n) for n in text.split(",") if n.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"hot nodes must be comma-separated node ids, got {text!r}"
        ) from None
    if not nodes:
        raise argparse.ArgumentTypeError("at least one hot node is required")
    return nodes


def _add_pattern_args(parser):
    group = parser.add_argument_group("spatial traffic pattern")
    group.add_argument(
        "--pattern",
        choices=pattern_names(),
        default="uniform",
        help="unicast destination pattern (default: uniform)",
    )
    group.add_argument(
        "--hotspot",
        type=_parse_nodes,
        default=None,
        metavar="N1,N2,...",
        help="hot node ids (requires --pattern hotspot)",
    )
    group.add_argument(
        "--hotspot-fraction",
        type=float,
        default=None,
        metavar="F",
        help="fraction of unicasts aimed at the hot nodes (default: 0.5)",
    )


def _add_injection_args(parser):
    group = parser.add_argument_group("temporal injection process")
    group.add_argument(
        "--injection",
        choices=process_names(),
        default="bernoulli",
        help="temporal injection process (default: bernoulli, the "
        "paper's memoryless workload)",
    )
    group.add_argument(
        "--burst-length",
        type=float,
        default=None,
        metavar="L",
        help="mean ON-burst length in cycles (requires --injection "
        "onoff; default: 8)",
    )
    group.add_argument(
        "--on-rate",
        type=float,
        default=None,
        metavar="R1",
        help="flit rate while ON (requires --injection onoff; "
        "default: 1.0, full speed)",
    )
    group.add_argument(
        "--mmp-levels",
        type=_parse_floats,
        default=None,
        metavar="L1,L2,...",
        help="relative rate of each MMP state (requires --injection mmp)",
    )
    group.add_argument(
        "--mmp-dwells",
        type=_parse_floats,
        default=None,
        metavar="D1,D2,...",
        help="mean dwell cycles of each MMP state (requires "
        "--injection mmp)",
    )


def _make_injection(args):
    """The InjectionProcess selected by the CLI flags (None = the
    Bernoulli default, so default cache keys stay byte-identical)."""
    if args.injection == "onoff":
        if args.mmp_levels is not None or args.mmp_dwells is not None:
            raise ValueError(
                "--mmp-levels/--mmp-dwells only apply to --injection mmp"
            )
        kwargs = {}
        if args.burst_length is not None:
            kwargs["burst_length"] = args.burst_length
        if args.on_rate is not None:
            kwargs["on_rate"] = args.on_rate
        return OnOffProcess(**kwargs)
    if args.injection == "mmp":
        if args.burst_length is not None or args.on_rate is not None:
            raise ValueError(
                "--burst-length/--on-rate only apply to --injection onoff"
            )
        kwargs = {}
        if args.mmp_levels is not None:
            kwargs["levels"] = args.mmp_levels
        if args.mmp_dwells is not None:
            kwargs["dwells"] = args.mmp_dwells
        return MMPProcess(**kwargs)
    for flag, value in (
        ("--burst-length", args.burst_length),
        ("--on-rate", args.on_rate),
        ("--mmp-levels", args.mmp_levels),
        ("--mmp-dwells", args.mmp_dwells),
    ):
        if value is not None:
            raise ValueError(
                f"{flag} only applies to a bursty --injection process, "
                f"not {args.injection!r}"
            )
    return None


def _parse_fault_links(text):
    """``"1-2@500,3-7"`` -> ``((1, 2, 500), (3, 7, 0))``."""
    links = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        pair, _, cycle = part.partition("@")
        try:
            a, _, b = pair.partition("-")
            links.append((int(a), int(b), int(cycle) if cycle else 0))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"fault links are A-B[@CYCLE] terms, got {part!r}"
            ) from None
    if not links:
        raise argparse.ArgumentTypeError("at least one fault link is required")
    return tuple(links)


def _parse_fault_routers(text):
    """``"5@400,12"`` -> ``((5, 400), (12, 0))``."""
    routers = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        node, _, cycle = part.partition("@")
        try:
            routers.append((int(node), int(cycle) if cycle else 0))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"fault routers are N[@CYCLE] terms, got {part!r}"
            ) from None
    if not routers:
        raise argparse.ArgumentTypeError(
            "at least one fault router is required"
        )
    return tuple(routers)


def _add_fault_args(parser):
    group = parser.add_argument_group("fault injection")
    group.add_argument(
        "--faults",
        choices=("none",) + tuple(fault_names()),
        default="none",
        help="fault model (default: none, the fault-free fast path)",
    )
    group.add_argument(
        "--link-error-rate",
        type=float,
        default=None,
        metavar="P",
        help="per-flit corruption probability on each live link "
        "(biterror/links/random models)",
    )
    group.add_argument(
        "--fault-swing",
        type=float,
        default=None,
        metavar="MV",
        help="link voltage swing in mV; the error rate follows the "
        "Fig. 10 swing -> P(fail) model (requires --faults swing)",
    )
    group.add_argument(
        "--fault-links",
        type=_parse_fault_links,
        default=None,
        metavar="A-B@C,...",
        help="links to kill, as node pairs with optional death cycles "
        "(requires --faults links)",
    )
    group.add_argument(
        "--fault-routers",
        type=_parse_fault_routers,
        default=None,
        metavar="N@C,...",
        help="routers to kill, with optional death cycles "
        "(requires --faults links)",
    )
    group.add_argument(
        "--fault-count",
        type=_positive_int,
        default=None,
        metavar="N",
        help="how many random links to kill (requires --faults random)",
    )
    group.add_argument(
        "--fault-at",
        type=int,
        default=None,
        metavar="CYCLE",
        help="death cycle of the random links (requires --faults random)",
    )


def _make_faults(args):
    """The FaultModel selected by the CLI flags (None = fault free, so
    fault-free cache keys stay byte-identical)."""
    name = args.faults
    flags = {
        "--link-error-rate": args.link_error_rate,
        "--fault-swing": args.fault_swing,
        "--fault-links": args.fault_links,
        "--fault-routers": args.fault_routers,
        "--fault-count": args.fault_count,
        "--fault-at": args.fault_at,
    }
    applies = {
        "none": (),
        "biterror": ("--link-error-rate",),
        "swing": ("--fault-swing",),
        "links": ("--link-error-rate", "--fault-links", "--fault-routers"),
        "random": ("--link-error-rate", "--fault-count", "--fault-at"),
    }[name]
    for flag, value in flags.items():
        if value is not None and flag not in applies:
            raise ValueError(
                f"{flag} does not apply to --faults {name}"
                if name != "none"
                else f"{flag} requires a fault model (--faults)"
            )
    if name == "none":
        return None
    if name == "biterror":
        kwargs = {}
        if args.link_error_rate is not None:
            kwargs["rate"] = args.link_error_rate
        return BitErrorFaults(**kwargs)
    if name == "swing":
        kwargs = {}
        if args.fault_swing is not None:
            kwargs["swing_mv"] = args.fault_swing
        return SwingFaults(**kwargs)
    if name == "links":
        if args.fault_links is None and args.fault_routers is None:
            raise ValueError(
                "--faults links needs --fault-links and/or --fault-routers"
            )
        return LinkFaults(
            links=args.fault_links or (),
            routers=args.fault_routers or (),
            rate=args.link_error_rate or 0.0,
        )
    kwargs = {}
    if args.fault_count is not None:
        kwargs["count"] = args.fault_count
    if args.fault_at is not None:
        kwargs["at"] = args.fault_at
    if args.link_error_rate is not None:
        kwargs["rate"] = args.link_error_rate
    return RandomFaults(**kwargs)


def _add_routing_args(parser):
    # choices= so a typo lists the valid names at the argparse layer
    # instead of surfacing as a KeyError from the registry downstream
    parser.add_argument(
        "--routing",
        choices=routing_names(),
        default="xy",
        help="unicast routing algorithm (default: xy; multicast trees "
        "always route xy — see DESIGN.md §5)",
    )


def _make_routing(args):
    """The RoutingAlgorithm selected by --routing (None = the XY
    default, so default cache keys stay byte-identical)."""
    if args.routing == "xy":
        return None
    return make_routing(args.routing)


def _make_traffic_pattern(args):
    """The DestinationPattern selected by the CLI flags (None = uniform)."""
    if args.pattern == "hotspot":
        if args.hotspot is None:
            raise ValueError(
                "--pattern hotspot needs --hotspot N1,N2,... to name "
                "the hot nodes"
            )
        fraction = 0.5 if args.hotspot_fraction is None else args.hotspot_fraction
        return HotspotPattern(args.hotspot, fraction)
    if args.hotspot is not None or args.hotspot_fraction is not None:
        raise ValueError(
            f"--hotspot/--hotspot-fraction only apply to --pattern hotspot, "
            f"not {args.pattern!r}"
        )
    if args.pattern == "uniform":
        return None
    return make_pattern(args.pattern)


def _add_engine_args(parser):
    group = parser.add_argument_group("engine")
    group.add_argument(
        "--executor",
        choices=("serial", "process"),
        default="serial",
        help="execution strategy: in-process serial or a process pool "
        "(default: serial)",
    )
    group.add_argument(
        "--backend",
        choices=backend_names(),
        default="object",
        help="simulation backend (default: object, the oracle; 'array' "
        "is the vectorized numpy kernel — see the support matrix in "
        "repro.noc.array_backend)",
    )
    group.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size (default: all cores)",
    )
    group.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result cache location (default: {DEFAULT_CACHE_DIR})",
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every point; do not read or write the cache",
    )
    group.add_argument(
        "--telemetry",
        action="store_true",
        help="profile fresh runs and store run telemetry in .telemetry "
        "sidecars next to the cached results (results stay "
        "byte-identical; see DESIGN.md §7)",
    )


def _add_cycle_args(parser, defaults=True):
    group = parser.add_argument_group("measurement window")
    kw = dict(type=int, metavar="CYCLES")
    if defaults:
        group.add_argument("--warmup", default=DEFAULT_WARMUP, **kw)
        group.add_argument("--measure", default=DEFAULT_MEASURE, **kw)
        group.add_argument("--drain", default=DEFAULT_DRAIN, **kw)
    else:  # None = keep the driver's paper-methodology defaults
        group.add_argument("--warmup", default=None, **kw)
        group.add_argument("--measure", default=None, **kw)
        group.add_argument("--drain", default=None, **kw)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)


def _add_seeds_arg(parser):
    parser.add_argument(
        "--seeds",
        type=_positive_int,
        default=1,
        metavar="N",
        help="replica seeds per operating point (--seed plus N-1 "
        "strided follow-ons); results are reported as mean ± 95%% CI, "
        "and on --backend array each point's replicas run as one "
        "batched kernel pass (default: 1)",
    )


def _add_verbosity_args(parser, root=False):
    # the flags are accepted both before and after the subcommand; the
    # subparser copies use SUPPRESS so an absent flag does not clobber
    # a value already parsed by the root parser
    default = 0 if root else argparse.SUPPRESS
    group = parser.add_argument_group("diagnostics")
    group.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=default,
        help="more diagnostics on stderr (DEBUG level)",
    )
    group.add_argument(
        "-q",
        "--quiet",
        action="count",
        default=default,
        help="fewer diagnostics on stderr (-q warnings only, -qq errors)",
    )


def _configure_logging(args):
    """Point the ``repro`` package logger at stderr per ``-v``/``-q``.

    Only the package logger is touched (never the root logger), and the
    handler is replaced on every invocation so back-to-back ``main()``
    calls — the test suite, or an embedding REPL — always log to the
    *current* ``sys.stderr``.
    """
    verbosity = getattr(args, "verbose", 0) - getattr(args, "quiet", 0)
    if verbosity > 0:
        level = logging.DEBUG
    elif verbosity == 0:
        level = logging.INFO
    elif verbosity == -1:
        level = logging.WARNING
    else:
        level = logging.ERROR
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("repro: %(levelname)s: %(message)s"))
    package = logging.getLogger("repro")
    package.handlers[:] = [handler]
    package.setLevel(level)


def _make_executor(args):
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return Executor(
        backend=args.executor,
        workers=args.workers,
        cache=cache,
        telemetry=args.telemetry,
    )


def _log_engine_summary(executor):
    logger.info(
        "[engine] executor=%s executed=%d cache_hits=%d cache_misses=%d",
        executor.backend.name,
        executor.executed,
        executor.cache_hits,
        executor.cache_misses,
    )
    batch = executor.last_batch
    if batch is not None:
        logger.debug(
            "[engine] last batch: %d job(s) in %.2fs wall",
            batch["jobs"],
            batch["wall_seconds"],
        )


def _print_replica_aggregates(named_aggs, rates, seeds):
    """Mean ± 95% CI per rate, per series (the ``--seeds N`` output).

    ``named_aggs`` maps series name to per-rate aggregate dicts from
    :func:`repro.analysis.replicas.aggregate_replicas`.
    """
    print()
    print(f"replicas: {seeds} seeds per point; mean ± 95% CI")
    for name, aggs in named_aggs.items():
        print(f"  {name}:")
        print("        rate      latency (cyc)            Gb/s")
        for rate, agg in zip(rates, aggs):
            lat, thr = agg["avg_latency"], agg["throughput_gbps"]
            print(
                f"    {rate:>8g}  {lat['mean']:9.2f} ± {lat['ci95']:<7.2f}"
                f"  {thr['mean']:8.1f} ± {thr['ci95']:<6.1f}"
            )


def _print_sweep(points, title):
    latency = {
        name: [(p.injection_rate, p.avg_latency) for p in series]
        for name, series in points.items()
    }
    throughput = {
        name: [(p.injection_rate, p.throughput_gbps) for p in series]
        for name, series in points.items()
    }
    print(format_series(latency, "R (flits/node/cyc)", "latency (cyc)", title))
    print()
    print(format_series(throughput, "R", "Gb/s", title=f"{title}: delivered"))


# -------------------------------------------------------------- subcommands


def cmd_sweep(args):
    config = CONFIGS[args.config]()
    routing = _make_routing(args)
    if routing is not None:
        config = config.with_(routing=routing)
    mix = MIXES[args.mix]
    pattern = _make_traffic_pattern(args)
    injection = _make_injection(args)
    faults = _make_faults(args)
    rates = args.rates or default_rates(
        mix,
        config.num_nodes,
        points=args.points,
        headroom=args.headroom,
        pattern=pattern,
        routing=routing,
        injection=injection,
    )
    executor = _make_executor(args)
    kwargs = dict(
        name=args.config,
        executor=executor,
        backend=args.backend,
        seed=args.seed,
        warmup=args.warmup,
        measure=args.measure,
        drain=args.drain,
        pattern=pattern,
        injection=injection,
        faults=faults,
    )
    groups = None
    if args.seeds > 1:
        # rate-major / seed-minor: the serial executor folds each
        # rate's replicas into one batched array-kernel pass
        groups = run_sweep_replicated(config, mix, rates, args.seeds,
                                      **kwargs)
        points = [g[0] for g in groups]
    else:
        points = run_sweep(config, mix, rates, **kwargs)
    _print_sweep(
        {args.config: points},
        f"{args.config} / {mix.name} / {args.pattern} / {args.routing} / "
        f"{args.injection} / {args.faults} latency-throughput sweep",
    )
    if groups is not None:
        from repro.analysis.replicas import aggregate_replicas

        _print_replica_aggregates(
            {args.config: [aggregate_replicas(g) for g in groups]},
            rates,
            args.seeds,
        )
    if faults is not None:
        print()
        print("reliability (per rate):")
        for p in points:
            print(
                f"  R={p.injection_rate:<6g} delivered={p.delivered_fraction:6.1%} "
                f"dropped={p.dropped_flits} retransmissions={p.retransmissions} "
                f"stop={p.stop_reason}"
            )
    _log_engine_summary(executor)
    return 0


def _print_reliability(result):
    print(f"reliability (injection rate {result['injection_rate']:g})")
    print()
    print("delivered throughput vs dead links:")
    print("  faults  delivered   Gb/s    latency  dropped  retx  stop")
    for r in result["vs_faults"]:
        print(
            f"  {r['fault_count']:>6d}  {r['delivered_fraction']:8.1%}  "
            f"{r['delivered_throughput_gbps']:7.1f}  {r['avg_latency']:7.2f}  "
            f"{r['dropped_flits']:>7d}  {r['retransmissions']:>4d}  "
            f"{r['stop_reason']}"
        )
    print()
    print("delivered throughput vs link voltage swing:")
    print("  swing_mv  P(flit err)  delivered   Gb/s    latency  retx")
    for r in result["vs_swing"]:
        print(
            f"  {r['swing_mv']:>8g}  {r['flit_error_rate']:11.3e}  "
            f"{r['delivered_fraction']:8.1%}  "
            f"{r['delivered_throughput_gbps']:7.1f}  {r['avg_latency']:7.2f}  "
            f"{r['retransmissions']:>4d}"
        )


def cmd_figure(args):
    if args.name == "reliability":
        from repro.analysis.reliability import reliability_figure

        executor = _make_executor(args)
        if (
            args.faults != "none"
            or args.pattern != "uniform"
            or args.routing != "xy"
            or args.injection != "bernoulli"
            or args.backend != "object"
            or args.seeds != 1
        ):
            logger.warning(
                "the reliability figure fixes its own fault models and "
                "uniform-XY-Bernoulli workload on the object backend "
                "(faults are object-only); --faults/--pattern/--routing/"
                "--injection/--backend/--seeds are ignored (use "
                "--fault-counts/--fault-swings/--link-error-rate to "
                "shape the grids)"
            )
        kwargs = dict(seed=args.seed, executor=executor)
        if args.fault_counts is not None:
            kwargs["counts"] = args.fault_counts
        if args.fault_swings is not None:
            kwargs["swings_mv"] = args.fault_swings
        if args.link_error_rate is not None:
            kwargs["link_error_rate"] = args.link_error_rate
        if args.rates is not None:
            if len(args.rates) != 1:
                raise ValueError(
                    "the reliability figure runs its fault grids at one "
                    "injection rate; pass a single value to --rates"
                )
            kwargs["rate"] = args.rates[0]
        for attr in ("warmup", "measure", "drain"):
            if getattr(args, attr) is not None:
                kwargs[attr] = getattr(args, attr)
        result = reliability_figure(**kwargs)
        _print_reliability(result)
        _log_engine_summary(executor)
        return 0
    if args.name in SWEEP_FIGURES:
        if _make_faults(args) is not None:
            raise ValueError(
                "fault injection applies to 'repro sweep' and the "
                "reliability figure, not fig5/fig13"
            )
        executor = _make_executor(args)
        kwargs = dict(
            seed=args.seed,
            executor=executor,
            backend=args.backend,
            pattern=_make_traffic_pattern(args),
            routing=_make_routing(args),
            injection=_make_injection(args),
        )
        if args.seeds > 1:
            kwargs["seeds"] = args.seeds
        if args.rates is not None:
            kwargs["rates"] = args.rates
        for attr in ("warmup", "measure", "drain"):
            if getattr(args, attr) is not None:
                kwargs[attr] = getattr(args, attr)
        result = SWEEP_FIGURES[args.name](**kwargs)
        _print_sweep(
            {name: result[name] for name in ("proposed", "baseline")},
            f"{args.name} ({result['traffic']} traffic)",
        )
        summary = experiments.summarize_sweeps(result)
        print()
        for key, value in summary.items():
            shown = f"{value:.4g}" if isinstance(value, float) else value
            print(f"{key:32s}: {shown}")
        if "proposed_replicas" in result:
            _print_replica_aggregates(
                {
                    name: result[f"{name}_replicas"]
                    for name in ("proposed", "baseline")
                },
                result["rates"],
                result["seeds"],
            )
        _log_engine_summary(executor)
    else:
        engine_flags = (
            args.executor != "serial"
            or args.backend != "object"
            or args.workers is not None
            or args.no_cache
            or args.cache_dir != DEFAULT_CACHE_DIR
        )
        window_flags = (
            args.rates is not None
            or args.seeds != 1
            or args.warmup is not None
            or args.measure is not None
            or args.drain is not None
            or args.seed != DEFAULT_SEED
            or args.pattern != "uniform"
            or args.routing != "xy"
            or args.injection != "bernoulli"
            or args.hotspot is not None
            or args.hotspot_fraction is not None
            or args.burst_length is not None
            or args.on_rate is not None
            or args.mmp_levels is not None
            or args.mmp_dwells is not None
            or args.faults != "none"
            or args.link_error_rate is not None
            or args.fault_swing is not None
            or args.fault_links is not None
            or args.fault_routers is not None
            or args.fault_count is not None
            or args.fault_at is not None
            or args.fault_counts is not None
            or args.fault_swings is not None
        )
        if engine_flags or window_flags:
            logger.warning(
                "engine and measurement-window options only apply to %s; "
                "ignored for %s",
                "/".join(sorted(SWEEP_FIGURES) + ["reliability"]),
                args.name,
            )
        result = PLAIN_FIGURES[args.name]()
        print(pformat(result))
    return 0


def cmd_cache(args):
    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        info = cache.stats()
        print(
            f"{info['entries']} cached result(s), {info['bytes']} bytes "
            f"in {info['root']}"
        )
        print(
            f"{info['telemetry_sidecars']} telemetry sidecar(s), "
            f"{info['telemetry_bytes']} bytes"
        )
        if info["quarantined"]:
            print(f"{info['quarantined']} quarantined corrupt entr(y/ies)")
        life = info["lifetime"]
        print(
            f"lifetime counters: {life['hits']} hit(s), "
            f"{life['misses']} miss(es), {life['puts']} put(s)"
        )
    else:  # clear
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")
    return 0


def cmd_serve(args):
    try:
        from repro.service import create_app
    except ImportError as exc:  # flask absent: a clean message, not a trace
        raise ValueError(str(exc)) from None
    app = create_app(
        cache_root=args.cache_dir,
        workers=args.workers,
        executor=args.executor,
        backend=args.backend,
        exec_workers=args.exec_workers,
        telemetry=args.telemetry,
    )
    logger.info(
        "sweep service on http://%s:%d (cache %s, %d worker thread(s), "
        "%s executor, %s backend)",
        args.host, args.port, args.cache_dir, args.workers,
        args.executor, args.backend,
    )
    try:
        # threaded so a long-running simulation never blocks /healthz
        app.run(host=args.host, port=args.port, threaded=True)
    finally:
        app.extensions["repro"].shutdown()
    return 0


# ------------------------------------------------------- observed points


def _run_observed_point(args, trace):
    """Simulate one operating point with an Observer attached.

    Shared by ``repro trace`` (tracing + sampling) and ``repro stats``
    (sampling only); both also profile, so the run reports cycles/s.
    Returns ``(sim, observer, window_stats)``.
    """
    from repro.noc.simulator import Simulator
    from repro.obs import Observer
    from repro.traffic.generators import SyntheticTraffic

    config = CONFIGS[args.config]()
    routing = _make_routing(args)
    if routing is not None:
        config = config.with_(routing=routing)
    traffic = SyntheticTraffic(
        MIXES[args.mix],
        args.rate,
        seed=args.seed,
        pattern=_make_traffic_pattern(args),
        process=_make_injection(args),
    )
    sim = Simulator(config, traffic, name=args.config)
    obs = Observer(
        trace=trace,
        capacity=getattr(args, "ring", None) or 65_536,
        sample=args.sample_interval,
        profile=True,
    ).attach(sim)
    logger.info(
        "observed run: %s / %s / rate=%g / %d+%d+%d cycles",
        args.config, args.mix, args.rate,
        args.warmup, args.measure, args.drain,
    )
    stats = sim.run_experiment(
        warmup=args.warmup, measure=args.measure, drain=args.drain
    )
    obs.detach()
    profile = obs.profiler.report(
        obs.tracer.recorded if obs.tracer is not None else 0
    )
    logger.info(
        "simulated %d cycles in %.2fs (%.0f cycles/s), stop_reason=%s",
        profile["cycles"], profile["wall_seconds"],
        profile["cycles_per_second"], stats.stop_reason,
    )
    return sim, obs, stats


def _print_point_summary(stats):
    latency = (
        f"{stats.avg_latency:.1f}" if stats.avg_latency == stats.avg_latency
        else "n/a"
    )
    print(
        f"stop_reason={stats.stop_reason} messages={stats.messages_measured} "
        f"avg_latency={latency} "
        f"throughput={stats.throughput_flits_per_cycle:.4f} flits/cyc"
    )


def cmd_trace(args):
    from repro.obs.tracer import EVENT_KINDS

    sim, obs, stats = _run_observed_point(args, trace=True)
    tracer = obs.tracer
    _print_point_summary(stats)
    print(
        f"events: {tracer.recorded} recorded, {len(tracer)} buffered, "
        f"{tracer.dropped} dropped (ring capacity {tracer.capacity})"
    )
    counts = tracer.counts()
    for kind in EVENT_KINDS:
        if counts[kind]:
            print(f"  {kind:10s} {counts[kind]}")
    written = obs.export_chrome_trace(args.out)
    print(f"chrome trace: {args.out} ({written} trace events)")
    if args.events is not None:
        lines = obs.export_jsonl(args.events)
        print(f"event log: {args.events} ({lines} records)")
    print()
    print(obs.sampler.heatmap_text(sim.cfg.k))
    return 0


def cmd_stats(args):
    sim, obs, stats = _run_observed_point(args, trace=False)
    sampler = obs.sampler
    _print_point_summary(stats)
    summary = sampler.summary()
    print(
        f"samples={summary['samples']} (every {summary['interval']} cycles) "
        f"mean_active_routers={summary.get('mean_active_routers', 0):.2f} "
        f"peak_occupancy={summary.get('peak_occupancy', 0)} "
        f"peak_backlog={summary.get('peak_backlog', 0)}"
    )
    print()
    print(obs.sampler.heatmap_text(sim.cfg.k))
    print()
    print("hottest links (utilization, src -> dst):")
    for util, src, dst in sampler.hottest_links(args.top):
        print(f"  {util:6.1%}  {src} -> {dst}")
    if args.plot is not None:
        try:
            sampler.heatmap_figure(sim.cfg.k, args.plot)
        except RuntimeError as exc:
            raise ValueError(str(exc)) from None
        print(f"heatmap figure: {args.plot}")
    return 0


# ------------------------------------------------------------------ parser


def _add_point_args(parser):
    """Arguments selecting a single observed operating point (shared by
    ``repro trace`` and ``repro stats``)."""
    parser.add_argument("--config", choices=sorted(CONFIGS), default="proposed")
    parser.add_argument("--mix", choices=sorted(MIXES), default="mixed")
    parser.add_argument(
        "--rate",
        type=float,
        default=0.05,
        metavar="R",
        help="injection rate in flits/node/cycle (default: 0.05)",
    )
    _add_pattern_args(parser)
    _add_routing_args(parser)
    _add_injection_args(parser)
    _add_cycle_args(parser, defaults=True)
    parser.add_argument(
        "--sample-interval",
        type=_positive_int,
        default=64,
        metavar="CYCLES",
        help="metrics-sampling period (default: 64)",
    )


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel, cached experiment engine for the DAC'12 "
        "mesh-NoC reproduction.",
    )
    _add_verbosity_args(parser, root=True)
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser(
        "sweep", help="run a latency-throughput sweep for one design point"
    )
    sweep.add_argument("--config", choices=sorted(CONFIGS), default="proposed")
    sweep.add_argument("--mix", choices=sorted(MIXES), default="mixed")
    sweep.add_argument(
        "--rates",
        type=_parse_rates,
        default=None,
        metavar="R1,R2,...",
        help="explicit injection rates (default: an auto grid)",
    )
    sweep.add_argument(
        "--points",
        type=_positive_int,
        default=8,
        help="auto-grid size (default: 8)",
    )
    sweep.add_argument(
        "--headroom",
        type=float,
        default=1.15,
        help="auto-grid top as a multiple of the mix ceiling",
    )
    _add_pattern_args(sweep)
    _add_routing_args(sweep)
    _add_injection_args(sweep)
    _add_fault_args(sweep)
    _add_cycle_args(sweep, defaults=True)
    _add_seeds_arg(sweep)
    _add_engine_args(sweep)
    _add_verbosity_args(sweep)
    sweep.set_defaults(func=cmd_sweep)

    figure = sub.add_parser(
        "figure", help="regenerate one table or figure of the paper"
    )
    figure.add_argument(
        "name",
        choices=sorted(SWEEP_FIGURES) + ["reliability"] + sorted(PLAIN_FIGURES),
    )
    figure.add_argument(
        "--rates",
        type=_parse_rates,
        default=None,
        metavar="R1,R2,...",
        help="override the sweep grid (fig5/fig13; a single rate for "
        "reliability)",
    )
    figure.add_argument(
        "--fault-counts",
        type=lambda t: tuple(int(v) for v in _parse_floats(t, "count")),
        default=None,
        metavar="N1,N2,...",
        help="dead-link grid of the reliability figure "
        "(default: 0,1,2,4,8,12)",
    )
    figure.add_argument(
        "--fault-swings",
        type=_parse_floats,
        default=None,
        metavar="MV1,MV2,...",
        help="voltage-swing grid of the reliability figure in mV "
        "(default: 180,220,260,300,340)",
    )
    _add_pattern_args(figure)
    _add_routing_args(figure)
    _add_injection_args(figure)
    _add_fault_args(figure)
    _add_cycle_args(figure, defaults=False)
    _add_seeds_arg(figure)
    _add_engine_args(figure)
    _add_verbosity_args(figure)
    figure.set_defaults(func=cmd_figure)

    trace = sub.add_parser(
        "trace", help="trace one operating point and export a Chrome "
        "trace-event capture"
    )
    _add_point_args(trace)
    trace.add_argument(
        "--out",
        default="trace.json",
        metavar="PATH",
        help="Chrome trace-event output file (default: trace.json)",
    )
    trace.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="also write the raw event records as JSON lines",
    )
    trace.add_argument(
        "--ring",
        type=_positive_int,
        default=None,
        metavar="N",
        help="trace ring-buffer capacity in events (default: 65536; "
        "oldest events drop first)",
    )
    _add_verbosity_args(trace)
    trace.set_defaults(func=cmd_trace)

    stats = sub.add_parser(
        "stats", help="sample one operating point and print congestion "
        "heatmaps and figures"
    )
    _add_point_args(stats)
    stats.add_argument(
        "--top",
        type=_positive_int,
        default=8,
        metavar="N",
        help="how many hottest links to list (default: 8)",
    )
    stats.add_argument(
        "--plot",
        default=None,
        metavar="PATH",
        help="save a matplotlib heatmap figure (requires matplotlib)",
    )
    _add_verbosity_args(stats)
    stats.set_defaults(func=cmd_stats)

    serve = sub.add_parser(
        "serve",
        help="serve the sweep API over the result cache "
        "(HTTP; requires flask)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="listen address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="listen port (default: 8080)",
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=2,
        metavar="N",
        help="service worker threads draining the sweep queue "
        "(default: 2)",
    )
    serve.add_argument(
        "--executor",
        choices=("serial", "process"),
        default="serial",
        help="engine executor each worker thread runs jobs through "
        "(default: serial)",
    )
    serve.add_argument(
        "--exec-workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="process-pool size per worker thread (requires "
        "--executor process; default: all cores)",
    )
    serve.add_argument(
        "--backend",
        choices=backend_names(),
        default="object",
        help="simulation backend for queued jobs (default: object; an "
        "execution detail — results and content addresses are "
        "backend-independent)",
    )
    serve.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result cache location (default: {DEFAULT_CACHE_DIR})",
    )
    serve.add_argument(
        "--telemetry",
        action="store_true",
        help="profile fresh runs and store .telemetry sidecars "
        "(results stay byte-identical)",
    )
    _add_verbosity_args(serve)
    serve.set_defaults(func=cmd_serve)

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result cache location (default: {DEFAULT_CACHE_DIR})",
    )
    _add_verbosity_args(cache)
    cache.set_defaults(func=cmd_cache)

    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    _configure_logging(args)
    try:
        return args.func(args)
    except ValueError as exc:  # domain validation (rates, workers, ...)
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout went to a pager/head that closed early; die quietly
        # like coreutils do (and keep the shutdown flush from crying)
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141  # 128 + SIGPIPE


if __name__ == "__main__":
    raise SystemExit(main())
