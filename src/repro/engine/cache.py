"""Persistent, content-addressed result cache.

Each entry is one JSON file under the cache root, named by the SHA-256
of the :class:`~repro.engine.jobspec.JobSpec`'s canonical encoding, and
stores both the job and its :class:`~repro.noc.metrics.WindowStats`.
Re-running any benchmark, example or CLI sweep therefore skips every
operating point that has already been computed with identical
parameters.  Stale entries are treated as misses and overwritten on
the next store; *damaged* entries (truncated or garbled JSON) are
also misses but are first quarantined as ``<key>.corrupt`` so the bad
bytes can be diagnosed.  The cache can always be deleted (or ``repro
cache clear``-ed) with no loss beyond recomputation time.

Key-compatibility policy: default-valued experiment axes are *omitted*
from the canonical job encoding (``JobSpec.pattern`` when uniform,
``NocConfig.routing`` when XY), so growing the experiment space never
invalidates previously cached entries; only non-default values extend
the encoding and get fresh content addresses.  ``CACHE_VERSION`` is
reserved for changes to the *meaning* of already-cached results.
"""

from __future__ import annotations

import json
import logging
import math
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path

try:
    import fcntl
except ImportError:  # non-POSIX platform: no advisory file locking
    fcntl = None

from repro.noc.metrics import WindowStats

logger = logging.getLogger(__name__)


def _jsonify(value):
    """Replace non-finite floats with ``None``, recursively.

    ``json.dump`` would otherwise emit bare ``NaN``/``Infinity`` tokens
    (a saturated window has ``avg_latency = NaN``), which are not
    standard JSON and choke strict parsers.
    :meth:`WindowStats.from_dict` restores ``None`` back to NaN.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value

#: Bump when the cache entry layout or WindowStats semantics change;
#: entries with a different version are ignored.
CACHE_VERSION = 1

DEFAULT_CACHE_DIR = ".repro_cache"

#: Persistent hit/miss/put totals, accumulated across sessions.  The
#: ``.meta`` extension keeps it outside the ``*.json`` entry glob and
#: the ``*.telemetry`` sidecar glob.
COUNTERS_FILE = "counters.meta"

#: Lock file beside ``counters.meta`` serializing counter merges across
#: processes sharing one cache root (e.g. the sweep service's worker
#: pool).  The ``.lock`` extension keeps it outside every content glob.
COUNTERS_LOCK = "counters.lock"

_COUNTER_KEYS = ("hits", "misses", "puts")


class ResultCache:
    """JSON-file store mapping JobSpec content hashes to WindowStats.

    Besides the entries themselves the cache keeps two kinds of
    bookkeeping, neither of which participates in content addressing:

    * **counters** — per-instance ``hits``/``misses``/``puts`` tallies,
      folded into the persistent ``counters.meta`` totals by
      :meth:`flush_counters` (the executor flushes after each batch);
    * **telemetry sidecars** — optional ``<key>.telemetry`` files
      holding run telemetry (phase profile, wall-clock timing) for the
      entry with the same key.  Sidecars are written separately from
      entries and ignored by :meth:`get`, so enabling telemetry never
      changes a cache key or invalidates an existing result.
    """

    def __init__(self, root=DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self._flushed = dict.fromkeys(_COUNTER_KEYS, 0)

    def path_for(self, job):
        return self.root / f"{job.cache_key}.json"

    def telemetry_path_for(self, job):
        return self.root / f"{job.cache_key}.telemetry"

    def get(self, job):
        """The cached WindowStats for ``job``, or None on a miss."""
        stats = self._lookup(job)
        if stats is None:
            self.misses += 1
            logger.debug("cache miss for %s", job.cache_key[:12])
        else:
            self.hits += 1
            logger.debug("cache hit for %s", job.cache_key[:12])
        return stats

    def _lookup(self, job):
        path = self.path_for(job)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except OSError:  # absent (or unreadable): a plain miss
            return None
        except ValueError:  # truncated/garbled bytes on disk
            self._quarantine(path, "undecodable JSON")
            return None
        if not isinstance(entry, dict):
            self._quarantine(path, "not a JSON object")
            return None
        if entry.get("version") != CACHE_VERSION:
            return None
        if entry.get("job") != job.to_dict():  # hash collision or drift
            return None
        try:
            return WindowStats.from_dict(entry["stats"])
        except (KeyError, TypeError):
            self._quarantine(path, "malformed stats")
            return None

    def _quarantine(self, path, why):
        """Move a damaged entry aside as ``<key>.corrupt``.

        The miss then behaves like any other — the point is recomputed
        and re-stored — but the bad bytes survive for diagnosis instead
        of being silently overwritten, and the entry glob never serves
        them again.
        """
        target = path.with_suffix(".corrupt")
        try:
            os.replace(path, target)
        except OSError:  # vanished or unwritable root: stay a miss
            return
        logger.warning(
            "quarantined corrupt cache entry %s (%s) as %s",
            path.name, why, target.name,
        )

    def put(self, job, stats):
        """Store ``stats`` for ``job`` (atomically, last writer wins)."""
        entry = {
            "version": CACHE_VERSION,
            "key": job.cache_key,
            "job": job.to_dict(),
            "stats": stats.to_dict(),
        }
        self._write_atomic(self.path_for(job), entry)
        self.puts += 1

    def put_telemetry(self, job, telemetry):
        """Store run telemetry in the entry's ``.telemetry`` sidecar.

        The sidecar is keyed like the entry but written independently:
        it never touches the entry file, so the result's content
        address and bytes are identical with telemetry on or off.
        """
        self._write_atomic(
            self.telemetry_path_for(job),
            {
                "version": CACHE_VERSION,
                "key": job.cache_key,
                "telemetry": telemetry,
            },
        )

    def get_telemetry(self, job):
        """The telemetry sidecar for ``job``, or None."""
        try:
            with open(self.telemetry_path_for(job)) as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return None
        if entry.get("version") != CACHE_VERSION:
            return None
        return entry.get("telemetry")

    def _write_atomic(self, path, entry):
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(_jsonify(entry), fh, sort_keys=True, allow_nan=False)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ----------------------------------------------------------- counters

    def counters(self):
        """This instance's hit/miss/put tallies."""
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts}

    def lifetime_counters(self):
        """Persistent totals from ``counters.meta`` (zeros if absent),
        plus this instance's not-yet-flushed activity."""
        totals = self._read_counters_file()
        current = self.counters()
        return {
            key: totals[key] + current[key] - self._flushed[key]
            for key in _COUNTER_KEYS
        }

    def _read_counters_file(self):
        try:
            with open(self.root / COUNTERS_FILE) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            data = {}
        return {key: int(data.get(key, 0)) for key in _COUNTER_KEYS}

    @contextmanager
    def _counters_lock(self):
        """Exclusive advisory lock over the ``counters.meta`` merge.

        The lock file lives beside ``counters.meta`` (never the counters
        file itself, which is replaced atomically and would drop the
        lock with the old inode).  ``flock`` locks are per open file
        description, so the guard serializes caches sharing one root
        both across processes and across threads in one process.
        """
        if fcntl is None:  # no flock: degrade to the unserialized merge
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.root / COUNTERS_LOCK, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)  # closing the descriptor releases the lock

    def flush_counters(self):
        """Fold unflushed instance tallies into ``counters.meta``.

        Returns the persistent totals after the merge.  Called by the
        executor after each batch; safe to call at any time (flushing
        twice adds nothing).  The read-modify-write is serialized by an
        ``flock``-guarded lock file, so executors sharing a cache root
        (the sweep service's worker pool, or parallel CLI runs) never
        lose each other's counts to an interleaved merge.
        """
        current = self.counters()
        if all(current[key] == self._flushed[key] for key in _COUNTER_KEYS):
            return self._read_counters_file()
        with self._counters_lock():
            totals = self._read_counters_file()
            for key in _COUNTER_KEYS:
                totals[key] += current[key] - self._flushed[key]
            self._write_atomic(self.root / COUNTERS_FILE, totals)
        self._flushed = current
        return totals

    # -------------------------------------------------------- maintenance

    def _entries(self):
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"))

    def _sidecars(self):
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.telemetry"))

    def _quarantined(self):
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.corrupt"))

    @staticmethod
    def _size(path):
        """``st_size``, tolerating files that vanished since the glob.

        Another process (a service worker, a concurrent ``repro cache
        clear``) may unlink or quarantine an entry between our glob and
        the stat; a vanished file simply no longer occupies bytes.
        """
        try:
            return path.stat().st_size
        except OSError:
            return 0

    def stats(self):
        """Occupancy and counter summary (read-only).

        ``session`` covers this :class:`ResultCache` instance;
        ``lifetime`` is the persistent total including the session's
        not-yet-flushed activity.
        """
        entries = self._entries()
        sidecars = self._sidecars()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(self._size(p) for p in entries),
            "telemetry_sidecars": len(sidecars),
            "telemetry_bytes": sum(self._size(p) for p in sidecars),
            "quarantined": len(self._quarantined()),
            "session": self.counters(),
            "lifetime": self.lifetime_counters(),
        }

    def clear(self):
        """Delete every cached result; returns the number removed.

        Telemetry sidecars, quarantined ``*.corrupt`` entries and the
        persistent counters go with the entries, and ``*.tmp`` files
        orphaned by an interrupted :meth:`put` (e.g. a SIGKILL between
        write and rename) are swept up too.
        """
        removed = 0
        for path in self._entries():
            path.unlink()
            removed += 1
        if self.root.is_dir():
            for orphan in (
                *self.root.glob("*.tmp"),
                *self._sidecars(),
                *self._quarantined(),
                *self.root.glob(COUNTERS_FILE),
                *self.root.glob(COUNTERS_LOCK),
            ):
                # missing_ok: a concurrent clear may have won the race
                orphan.unlink(missing_ok=True)
        self._flushed = self.counters()
        logger.debug("cleared %d cache entries under %s", removed, self.root)
        return removed
