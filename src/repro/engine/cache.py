"""Persistent, content-addressed result cache.

Each entry is one JSON file under the cache root, named by the SHA-256
of the :class:`~repro.engine.jobspec.JobSpec`'s canonical encoding, and
stores both the job and its :class:`~repro.noc.metrics.WindowStats`.
Re-running any benchmark, example or CLI sweep therefore skips every
operating point that has already been computed with identical
parameters.  Corrupt or stale entries are treated as misses and
overwritten on the next store, so the cache can always be deleted (or
``repro cache clear``-ed) with no loss beyond recomputation time.

Key-compatibility policy: default-valued experiment axes are *omitted*
from the canonical job encoding (``JobSpec.pattern`` when uniform,
``NocConfig.routing`` when XY), so growing the experiment space never
invalidates previously cached entries; only non-default values extend
the encoding and get fresh content addresses.  ``CACHE_VERSION`` is
reserved for changes to the *meaning* of already-cached results.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from pathlib import Path

from repro.noc.metrics import WindowStats


def _jsonify(value):
    """Replace non-finite floats with ``None``, recursively.

    ``json.dump`` would otherwise emit bare ``NaN``/``Infinity`` tokens
    (a saturated window has ``avg_latency = NaN``), which are not
    standard JSON and choke strict parsers.
    :meth:`WindowStats.from_dict` restores ``None`` back to NaN.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value

#: Bump when the cache entry layout or WindowStats semantics change;
#: entries with a different version are ignored.
CACHE_VERSION = 1

DEFAULT_CACHE_DIR = ".repro_cache"


class ResultCache:
    """JSON-file store mapping JobSpec content hashes to WindowStats."""

    def __init__(self, root=DEFAULT_CACHE_DIR):
        self.root = Path(root)

    def path_for(self, job):
        return self.root / f"{job.cache_key}.json"

    def get(self, job):
        """The cached WindowStats for ``job``, or None on a miss."""
        path = self.path_for(job)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return None
        if entry.get("version") != CACHE_VERSION:
            return None
        if entry.get("job") != job.to_dict():  # hash collision or drift
            return None
        try:
            return WindowStats.from_dict(entry["stats"])
        except (KeyError, TypeError):
            return None

    def put(self, job, stats):
        """Store ``stats`` for ``job`` (atomically, last writer wins)."""
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": CACHE_VERSION,
            "key": job.cache_key,
            "job": job.to_dict(),
            "stats": stats.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(_jsonify(entry), fh, sort_keys=True, allow_nan=False)
            os.replace(tmp, self.path_for(job))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _entries(self):
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"))

    def stats(self):
        """Occupancy summary: entry count and total size in bytes."""
        entries = self._entries()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
        }

    def clear(self):
        """Delete every cached result; returns the number removed.

        Also sweeps up ``*.tmp`` files orphaned by an interrupted
        :meth:`put` (e.g. a SIGKILL between write and rename).
        """
        removed = 0
        for path in self._entries():
            path.unlink()
            removed += 1
        if self.root.is_dir():
            for orphan in self.root.glob("*.tmp"):
                orphan.unlink()
        return removed
