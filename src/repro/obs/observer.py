"""The attachable observability bundle.

An :class:`Observer` owns up to three instruments — a
:class:`~repro.obs.tracer.Tracer`, a
:class:`~repro.obs.sampler.MetricsSampler` and a
:class:`~repro.obs.profiler.PhaseProfiler` — and wires them into a
:class:`~repro.noc.simulator.Simulator` through the probe slots every
instrumentable component carries (``Router.probe``, ``Nic.probe``,
``InputVC.probe``, ``Channel.probe``; all ``None`` by default).

The zero-overhead-off contract (DESIGN.md §7) has two halves:

* **off**: every probe slot defaults to ``None`` and each probe site is
  a single ``is not None`` test on a component the hot loop already
  holds; the plain step functions contain no observer hooks at all
  (the simulator swaps in observed step variants only while an
  observer is attached).
* **on**: probes only *read* simulation state — they never touch PRBS
  streams, arbiters, credits or flit fields — so an observed run is
  byte-identical to a bare one (asserted by the gating test suite).

``detach`` restores every probe slot to ``None``, returning the
simulator to the pristine fast path.
"""

from __future__ import annotations

from repro.obs.export import write_chrome_trace, write_jsonl
from repro.obs.profiler import PhaseProfiler
from repro.obs.sampler import DEFAULT_INTERVAL, MetricsSampler
from repro.obs.tracer import DEFAULT_CAPACITY, Tracer


class _VCProbe:
    """Per-router probe shared by that router's input VCs.

    ``InputVC`` carries no node or cycle context of its own (its write
    and pop paths are deliberately minimal), so the probe contributes
    the node and reads the current cycle off the owning observer.
    """

    __slots__ = ("obs", "node")

    def __init__(self, obs, node):
        self.obs = obs
        self.node = node

    def buf_write(self, vc, flit):
        obs = self.obs
        obs.tracer.record(
            obs.cycle, "buf_write", self.node,
            flit.pid, flit.seq, vc.index, vc.occupancy,
        )

    def buf_read(self, vc, flit):
        obs = self.obs
        obs.tracer.record(
            obs.cycle, "buf_read", self.node,
            flit.pid, flit.seq, vc.index, vc.occupancy,
        )


class Observer:
    """Tracing, sampling and profiling for one simulator, as a unit."""

    def __init__(
        self,
        trace=True,
        capacity=DEFAULT_CAPACITY,
        sample=None,
        profile=False,
    ):
        """``trace`` enables event tracing (ring of ``capacity``),
        ``sample`` is a metrics-sampling interval in cycles (``None``
        disables sampling; ``True`` selects the default interval) and
        ``profile`` enables the wall-clock phase profiler."""
        self.tracer = Tracer(capacity) if trace else None
        if sample is True:
            sample = DEFAULT_INTERVAL
        self.sampler = MetricsSampler(sample) if sample else None
        self.profiler = PhaseProfiler() if profile else None
        if self.tracer is None and self.sampler is None and self.profiler is None:
            raise ValueError("observer with nothing to observe")
        self.sim = None
        self._k = None  # mesh radix, remembered past detach for exports
        #: current simulation cycle (maintained by begin_cycle; read by
        #: probes whose call sites carry no cycle argument)
        self.cycle = 0
        self._prev_active = ()
        self._links = []        # [(key, channel)] in channel-index order
        self._link_src = []     # cid -> upstream node (trace payload)
        self._link_dst = []     # cid -> downstream node (trace payload)

    # ------------------------------------------------------------ wiring

    def attach(self, sim):
        """Install probes into ``sim``; returns self for chaining."""
        if getattr(sim, "backend", "object") != "object":
            raise ValueError(
                f'observability probes are object-only: backend='
                f'{sim.backend!r} has no probe slots (see the support '
                f'matrix in repro.noc.array_backend)'
            )
        if self.sim is not None:
            raise RuntimeError("observer is already attached")
        if sim.obs is not None:
            raise RuntimeError("simulator already has an observer attached")
        net = sim.network
        self.sim = sim
        self._k = sim.cfg.k
        self.cycle = sim.cycle
        self._prev_active = ()
        if self.tracer is not None:
            for router in net.routers:
                router.probe = self
                vc_probe = _VCProbe(self, router.node)
                for ip in router.in_ports:
                    for vc in ip.vcs:
                        vc.probe = vc_probe
            for nic in net.nics:
                nic.probe = self
        if self.tracer is not None or self.sampler is not None:
            from repro.noc.routing import node_at

            self._links = net.flit_links()
            k = sim.cfg.k
            self._link_src = [
                node_at(*src, k) for ((src, _dst), _ch) in self._links
            ]
            self._link_dst = [
                node_at(*dst, k) for ((_src, dst), _ch) in self._links
            ]
            for cid, (_key, channel) in enumerate(self._links):
                channel.cid = cid
                channel.probe = self.on_link
        if self.sampler is not None:
            self.sampler.bind(net, self._links)
        sim.obs = self
        return self

    def detach(self):
        """Remove every probe, restoring the uninstrumented fast path."""
        sim = self.sim
        if sim is None:
            return
        net = sim.network
        for router in net.routers:
            router.probe = None
            for ip in router.in_ports:
                for vc in ip.vcs:
                    vc.probe = None
        for nic in net.nics:
            nic.probe = None
        for _key, channel in self._links:
            channel.probe = None
            channel.cid = None
        sim.obs = None
        self.sim = None

    # ------------------------------------------------------- cycle hooks

    def begin_cycle(self, cycle):
        self.cycle = cycle
        if self.profiler is not None:
            self.profiler.begin_cycle()

    def end_cycle(self, cycle, active):
        """``active`` is the gated loop's sorted router active set for
        this cycle, or ``None`` under the ungated reference loop (which
        has no wake/sleep notion)."""
        tracer = self.tracer
        if tracer is not None and active is not None:
            prev = self._prev_active
            if active != prev:
                prev_set = set(prev)
                active_set = set(active)
                for node in active:
                    if node not in prev_set:
                        tracer.record(cycle, "wake", node)
                for node in prev:
                    if node not in active_set:
                        tracer.record(cycle, "sleep", node)
                self._prev_active = tuple(active)
        if self.sampler is not None:
            self.sampler.tick(
                cycle, len(active) if active is not None else None
            )
        if self.profiler is not None:
            self.profiler.end_cycle()

    # ------------------------------------------------------ probe sites

    def on_route(self, cycle, node, flit):
        self.tracer.record(
            cycle, "route", node,
            flit.pid, flit.seq, flit.vc, tuple(sorted(flit.route)),
        )

    def on_vc_alloc(self, cycle, node, port, out_vc, source):
        self.tracer.record(
            cycle, "vc_alloc", node, source.pid, source.seq, out_vc, port
        )

    def on_sa_grant(self, cycle, node, source, path):
        self.tracer.record(
            cycle, "sa_grant", node, source.pid, source.seq, source.vc, path
        )

    def on_inject(self, cycle, node, flit):
        self.tracer.record(cycle, "inject", node, flit.pid, flit.seq, flit.vc)

    def on_eject(self, cycle, node, flit):
        self.tracer.record(cycle, "eject", node, flit.pid, flit.seq, flit.vc)

    # Fault-engine probe sites (repro.noc.faults).  Unlike the router
    # and NIC sites — whose callers hold a per-component probe slot —
    # these are reached through ``sim.obs`` and may fire while only a
    # sampler or profiler is attached, so they guard the tracer
    # themselves.

    def on_drop(self, cycle, node, flit, reason):
        if self.tracer is not None:
            self.tracer.record(
                cycle, "drop", node, flit.pid, flit.seq, flit.vc, reason
            )

    def on_retransmit(self, cycle, node, pid, mid):
        if self.tracer is not None:
            self.tracer.record(cycle, "retransmit", node, pid, None, None, mid)

    def on_fault(self, cycle, node, detail):
        if self.tracer is not None:
            self.tracer.record(cycle, "fault", node, None, None, None, detail)

    def on_link(self, channel, cycle, flit):
        cid = channel.cid
        if self.tracer is not None:
            self.tracer.record(
                cycle, "link", self._link_src[cid],
                flit.pid, flit.seq, flit.vc, self._link_dst[cid],
            )
        if self.sampler is not None:
            self.sampler.count_link(cid)

    # ----------------------------------------------------------- results

    @property
    def events(self):
        return self.tracer.events if self.tracer is not None else ()

    def export_jsonl(self, path):
        return write_jsonl(self.events, path)

    def export_chrome_trace(self, path):
        if self._k is None:
            raise RuntimeError("observer was never attached to a simulator")
        return write_chrome_trace(self.events, self._k, path)

    def report(self):
        """Run-telemetry dict combining whichever instruments are on."""
        out = {}
        if self.tracer is not None:
            out["trace"] = {
                "recorded": self.tracer.recorded,
                "buffered": len(self.tracer),
                "dropped": self.tracer.dropped,
                "capacity": self.tracer.capacity,
                "by_kind": self.tracer.counts(),
            }
        if self.sampler is not None:
            out["metrics"] = self.sampler.summary()
        if self.profiler is not None:
            events = self.tracer.recorded if self.tracer is not None else 0
            out["profile"] = self.profiler.report(events)
        return out
