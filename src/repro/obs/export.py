"""Trace exporters: JSONL and Chrome trace-event JSON.

Both exporters are pure functions of the tracer's ring buffer, so the
same capture can be written in either format (or both).  The Chrome
format targets ``chrome://tracing`` and Perfetto: each router (and each
NIC) becomes a *process* track named after its mesh coordinates, events
become 1-cycle complete slices (``ph: "X"``) named after the flit they
concern, and timestamps are simulation cycles, so a flit's life —
inject, per-hop route/allocation/traversal, eject — reads left to
right across the router tracks it visited.
"""

from __future__ import annotations

import json

from repro.noc.routing import coords

#: JSONL column names, matching the record layout of repro.obs.tracer.
FIELDS = ("cycle", "kind", "node", "pid", "seq", "vc", "extra")


def event_dicts(events):
    """The ring buffer as JSON-safe dicts (one per event, in order)."""
    out = []
    for record in events:
        entry = dict(zip(FIELDS, record))
        extra = entry["extra"]
        if isinstance(extra, tuple):
            entry["extra"] = list(extra)
        out.append(entry)
    return out


def write_jsonl(events, path):
    """Write one JSON object per line; returns the number written."""
    dicts = event_dicts(events)
    with open(path, "w") as fh:
        for entry in dicts:
            fh.write(json.dumps(entry, sort_keys=True))
            fh.write("\n")
    return len(dicts)


def _track_name(node, k, nic):
    x, y = coords(node, k)
    return f"{'nic' if nic else 'router'} {node} ({x},{y})"


def chrome_trace(events, k):
    """The ring buffer as a Chrome trace-event JSON object.

    Layout: one *process* per router (pid = node) and one per NIC
    (pid = 1000 + node, so NIC tracks sort after router tracks); the
    *thread* of a slice is the flit's VC (component-level wake/sleep
    events sit on thread 0).  ``ts`` is the simulation cycle and every
    event is a 1-cycle ``"X"`` slice, which chrome://tracing and
    Perfetto render without any further options.
    """
    trace = []
    seen_tracks = set()
    nic_kinds = ("inject", "eject")
    for cycle, kind, node, pid, seq, vc, extra in events:
        nic = kind in nic_kinds
        track = 1000 + node if nic else node
        if track not in seen_tracks:
            seen_tracks.add(track)
            trace.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": track,
                    "tid": 0,
                    "args": {"name": _track_name(node, k, nic)},
                }
            )
        if pid is None:
            name = kind
        else:
            name = f"{kind} p{pid}.{seq}"
        args = {}
        if extra is not None:
            field = "extra" if kind not in _EXTRA_NAMES else _EXTRA_NAMES[kind]
            args[field] = list(extra) if isinstance(extra, tuple) else extra
        if vc is not None:
            args["vc"] = vc
        trace.append(
            {
                "ph": "X",
                "name": name,
                "cat": kind,
                "ts": cycle,
                "dur": 1,
                "pid": track,
                "tid": vc if vc is not None else 0,
                "args": args,
            }
        )
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


_EXTRA_NAMES = {
    "route": "ports",
    "vc_alloc": "port",
    "sa_grant": "path",
    "link": "dst",
    "buf_write": "occupancy",
    "buf_read": "occupancy",
}


def write_chrome_trace(events, k, path):
    """Write the Chrome trace JSON; returns the number of trace events."""
    trace = chrome_trace(events, k)
    with open(path, "w") as fh:
        json.dump(trace, fh, sort_keys=True)
        fh.write("\n")
    return len(trace["traceEvents"])
