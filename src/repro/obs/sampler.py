"""Periodic time-series congestion metrics.

A :class:`MetricsSampler` snapshots the network every ``interval``
cycles into columnar series — the congestion signal the ROADMAP's
adaptive-routing and dashboard fronts consume:

* **per-link utilization** — flits that entered each directed
  router-to-router link since the last sample, as a fraction of the
  link's one-flit-per-cycle capacity.  Links are keyed
  ``((x, y), (nx, ny))`` exactly like
  :func:`repro.analysis.pattern_limits.channel_load_map`, so measured
  heatmaps and analytic channel-load predictions are directly
  comparable;
* **per-router occupancy** — buffered flits across the router's input
  VCs (instantaneous), and **free credits** across its output-port
  trackers;
* **per-NIC backlog** — flits generated but not yet injected;
* **active-set size** — mean routers per cycle the gated loop actually
  stepped (``nan`` under ungated stepping, which has no active set);
* **ejections** — network-wide ejected flits since the last sample.

Sampling is read-only: it never touches PRBS streams, arbiter state or
credits, so enabling it cannot perturb the simulation (asserted by the
byte-identity tests).  Capture appends to plain lists; :meth:`columns`
materialises numpy arrays for analysis.
"""

from __future__ import annotations

import math

DEFAULT_INTERVAL = 64


class MetricsSampler:
    """Fixed-interval sampler of link, buffer and queue congestion."""

    def __init__(self, interval=DEFAULT_INTERVAL):
        if interval < 1:
            raise ValueError("sampling interval must be at least one cycle")
        self.interval = interval
        self.links = []  # ((x, y), (nx, ny)) in channel-index order
        self._network = None
        self._link_counts = []
        self._active_sum = 0
        self._active_known = True
        self._last_ejections = 0
        self._cycles_in_window = 0
        # one python list per column; numpy arrays are built on demand
        self._rows = {
            "cycle": [],
            "active_mean": [],
            "ejections": [],
            "link_flits": [],
            "occupancy": [],
            "credits": [],
            "backlog": [],
        }

    # ------------------------------------------------------------ capture

    def bind(self, network, links):
        """Adopt a network's geometry; ``links`` come from
        :meth:`~repro.noc.mesh.MeshNetwork.flit_links`."""
        self._network = network
        self.links = [key for (key, _channel) in links]
        self._link_counts = [0] * len(self.links)
        self._active_sum = 0
        self._active_known = True
        self._last_ejections = network.ejections
        self._cycles_in_window = 0

    def count_link(self, cid):
        """Probe target: one flit entered link ``cid`` (channel index)."""
        self._link_counts[cid] += 1

    def tick(self, cycle, active_count):
        """Advance one cycle; sample when the interval elapses.

        ``active_count`` is the gated loop's router active-set size for
        this cycle, or ``None`` under the ungated reference loop.
        """
        if active_count is None:
            self._active_known = False
        else:
            self._active_sum += active_count
        self._cycles_in_window += 1
        if self._cycles_in_window >= self.interval:
            self._sample(cycle)

    def _sample(self, cycle):
        net = self._network
        rows = self._rows
        rows["cycle"].append(cycle)
        window = self._cycles_in_window
        rows["active_mean"].append(
            self._active_sum / window if self._active_known else math.nan
        )
        rows["ejections"].append(net.ejections - self._last_ejections)
        self._last_ejections = net.ejections
        rows["link_flits"].append(list(self._link_counts))
        self._link_counts = [0] * len(self.links)
        rows["occupancy"].append([r.occupancy() for r in net.routers])
        rows["credits"].append(
            [
                sum(sum(op.tracker.credits) for op in r.out_ports if op.connected)
                for r in net.routers
            ]
        )
        rows["backlog"].append([nic.backlog() for nic in net.nics])
        self._active_sum = 0
        self._active_known = True
        self._cycles_in_window = 0

    # ----------------------------------------------------------- analysis

    @property
    def samples(self):
        return len(self._rows["cycle"])

    def columns(self):
        """The captured series as numpy arrays (1-D per scalar column,
        ``(samples, width)`` for the per-link / per-component ones)."""
        import numpy as np

        return {name: np.asarray(col) for name, col in self._rows.items()}

    def link_utilization(self):
        """Mean flits/cycle per directed link over the whole capture,
        as ``{((x, y), (nx, ny)): utilization}``."""
        cycles = self.samples * self.interval
        if cycles == 0:
            return {key: 0.0 for key in self.links}
        totals = [0] * len(self.links)
        for row in self._rows["link_flits"]:
            for i, count in enumerate(row):
                totals[i] += count
        return {
            key: totals[i] / cycles for i, key in enumerate(self.links)
        }

    def hottest_links(self, n=8):
        """The ``n`` busiest directed links, ``(utilization, src, dst)``
        sorted hottest first (ties broken by link coordinates so the
        order is deterministic)."""
        util = self.link_utilization()
        ranked = sorted(
            ((u, src, dst) for (src, dst), u in util.items()),
            key=lambda t: (-t[0], t[1], t[2]),
        )
        return ranked[:n]

    def summary(self):
        """Aggregate congestion figures for quick printing."""
        cols = self.columns()
        out = {"samples": self.samples, "interval": self.interval}
        if self.samples == 0:
            return out
        import numpy as np

        util = self.link_utilization()
        out["max_link_utilization"] = max(util.values(), default=0.0)
        out["mean_link_utilization"] = (
            sum(util.values()) / len(util) if util else 0.0
        )
        out["peak_occupancy"] = int(cols["occupancy"].max(initial=0))
        out["peak_backlog"] = int(cols["backlog"].max(initial=0))
        active = cols["active_mean"]
        finite = active[np.isfinite(active)]
        out["mean_active_routers"] = (
            float(finite.mean()) if finite.size else math.nan
        )
        out["ejected_flits"] = int(cols["ejections"].sum())
        return out

    # ------------------------------------------------------------ display

    def heatmap_text(self, k):
        """Per-direction link-utilization grids, rendered as text.

        One ``k x k`` grid per direction (east/west/north/south); each
        cell is the utilization of the link *leaving* router ``(x, y)``
        in that direction, in percent of capacity (``..`` where no such
        link exists).  Rows print ``y`` descending so the mesh reads
        like the paper's figures (origin bottom-left).
        """
        util = self.link_utilization()
        by_dir = {"east": {}, "west": {}, "north": {}, "south": {}}
        for ((x, y), (nx, ny)), u in util.items():
            if nx == x + 1:
                by_dir["east"][(x, y)] = u
            elif nx == x - 1:
                by_dir["west"][(x, y)] = u
            elif ny == y + 1:
                by_dir["north"][(x, y)] = u
            else:
                by_dir["south"][(x, y)] = u
        lines = ["link utilization (% of one flit/cycle), by direction:"]
        for direction in ("east", "west", "north", "south"):
            grid = by_dir[direction]
            lines.append(f"  {direction}:")
            for y in range(k - 1, -1, -1):
                cells = []
                for x in range(k):
                    u = grid.get((x, y))
                    cells.append(".." if u is None else f"{round(u * 100):2d}")
                lines.append(f"    y={y}  " + " ".join(cells))
        return "\n".join(lines)

    def heatmap_figure(self, k, path):
        """Save a matplotlib heatmap of per-direction utilization.

        Optional dependency: raises RuntimeError with a clear message
        when matplotlib is unavailable (the text heatmap always works).
        """
        try:
            import matplotlib

            matplotlib.use("Agg")
            import matplotlib.pyplot as plt
        except ImportError as exc:
            raise RuntimeError(
                "matplotlib is not installed; use the text heatmap instead"
            ) from exc
        import numpy as np

        util = self.link_utilization()
        directions = {
            "east": (1, 0), "west": (-1, 0), "north": (0, 1), "south": (0, -1)
        }
        fig, axes = plt.subplots(1, 4, figsize=(4 * k, k), squeeze=False)
        for ax, (name, (dx, dy)) in zip(axes[0], directions.items()):
            grid = np.full((k, k), np.nan)
            for ((x, y), (nx, ny)), u in util.items():
                if (nx - x, ny - y) == (dx, dy):
                    grid[k - 1 - y, x] = u
            im = ax.imshow(grid, vmin=0.0, vmax=1.0, cmap="magma")
            ax.set_title(name)
            ax.set_xticks(range(k))
            ax.set_yticks(range(k))
            ax.set_yticklabels(range(k - 1, -1, -1))
        fig.colorbar(im, ax=axes[0].tolist(), fraction=0.02)
        fig.savefig(path, bbox_inches="tight")
        plt.close(fig)
        return path
