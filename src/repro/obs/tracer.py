"""Typed event tracing with a bounded ring buffer.

Every probe site in the simulator reduces to one flat record::

    (cycle, kind, node, pid, seq, vc, extra)

where ``kind`` is one of :data:`EVENT_KINDS`, ``node`` is the router or
NIC the event happened at (for ``link`` events, the *upstream* router),
``pid``/``seq`` identify the flit (``None`` for component-level events
like wake/sleep) and ``extra`` carries the kind-specific payload listed
in :data:`EXTRA_FIELD`.  Records are plain tuples of ints/strings so
recording is a single ``deque.append`` and the trace is deterministic:
no object ids, no wall-clock timestamps, nothing that varies from run
to run of the same seed.

The buffer is a bounded ring (``collections.deque(maxlen=...)``): when
full, the *oldest* events are dropped and counted in :attr:`Tracer.
dropped`, so a long run keeps its most recent window instead of
growing without bound.  Export helpers live in :mod:`repro.obs.export`.
"""

from __future__ import annotations

from collections import deque

#: The event vocabulary (DESIGN.md §7).  One entry per probe site.
EVENT_KINDS = (
    "inject",     # NIC VC-allocated a flit; link traversal is next cycle
    "route",      # router derived the flit's output-port set on arrival
    "vc_alloc",   # a downstream VC was allocated for a granted branch
    "sa_grant",   # mSA-II scheduled a crossbar traversal (bypass/buffer)
    "link",       # flit entered a router-to-router link
    "eject",      # NIC sank the flit
    "buf_write",  # flit written into an input-VC buffer
    "buf_read",   # flit popped from an input-VC buffer
    "wake",       # router entered the gated loop's active set
    "sleep",      # router left the active set
    "drop",       # fault engine discarded a flit (repro.noc.faults)
    "retransmit", # recovery stack re-injected a packet
    "fault",      # a scheduled hard fault fired (link/router death)
)

#: What the ``extra`` slot of each record holds.
EXTRA_FIELD = {
    "inject": "node",        # destination-bearing NIC == node; extra unused
    "route": "ports",        # sorted tuple of granted-output-port numbers
    "vc_alloc": "port",      # output port whose downstream VC was taken
    "sa_grant": "path",      # "bypass" (lookahead pass) or "buffer"
    "link": "dst",           # downstream router of the link
    "eject": None,
    "buf_write": "occupancy",  # buffer depth after the write
    "buf_read": "occupancy",   # buffer depth after the read
    "wake": None,
    "sleep": None,
    "drop": "reason",      # unreachable/corrupt/dead-link/squash/eject/...
    "retransmit": "mid",   # message whose packet was re-injected
    "fault": "detail",     # "link-dead:a-b" or "router-dead"
}

DEFAULT_CAPACITY = 65_536


class Tracer:
    """Bounded ring buffer of typed simulation events."""

    def __init__(self, capacity=DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("tracer capacity must be at least one event")
        self.capacity = capacity
        self.events = deque(maxlen=capacity)
        #: events ever recorded (monotonic; ``recorded - len(events)``
        #: of them were dropped by the ring)
        self.recorded = 0

    # The hot path: one bound-method call + one append per event.
    def record(self, cycle, kind, node, pid=None, seq=None, vc=None, extra=None):
        self.events.append((cycle, kind, node, pid, seq, vc, extra))
        self.recorded += 1

    @property
    def dropped(self):
        """Events pushed out of the ring by newer ones."""
        return self.recorded - len(self.events)

    def counts(self):
        """Events currently buffered, by kind."""
        by_kind = dict.fromkeys(EVENT_KINDS, 0)
        for event in self.events:
            by_kind[event[1]] += 1
        return by_kind

    def clear(self):
        self.events.clear()
        self.recorded = 0

    def __len__(self):
        return len(self.events)
