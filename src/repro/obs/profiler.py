"""Wall-clock phase timing for the simulator's cycle loop.

The observed step variants bracket each per-cycle stage group with
:meth:`PhaseProfiler.mark` calls, so the profile answers the question
the batched-kernel front needs answered: *where does the
object-per-flit loop actually spend its time* — draining arrivals,
stepping NICs, crossbar traversals, or the two allocation stages.

Timing uses :func:`time.perf_counter` and therefore varies run to run;
it lives strictly on the profiler object and never feeds back into the
simulation, which stays deterministic (the byte-identity tests run with
a profiler attached).
"""

from __future__ import annotations

from time import perf_counter

#: Stage groups of one simulator cycle, in execution order (DESIGN.md).
PHASES = ("receive", "nic", "st", "msa2", "msa1")


class PhaseProfiler:
    """Accumulates wall-clock seconds per cycle-loop stage group."""

    def __init__(self):
        self.phase_seconds = dict.fromkeys(PHASES, 0.0)
        self.cycles = 0
        self._last = 0.0
        self._wall_start = perf_counter()

    def begin_cycle(self):
        self._last = perf_counter()

    def mark(self, phase):
        """Attribute the time since the previous mark to ``phase``."""
        now = perf_counter()
        self.phase_seconds[phase] += now - self._last
        self._last = now

    def end_cycle(self):
        self.cycles += 1

    @property
    def wall_seconds(self):
        return perf_counter() - self._wall_start

    def report(self, events=0):
        """Run-telemetry dict: throughput plus the phase breakdown."""
        wall = self.wall_seconds
        in_phases = sum(self.phase_seconds.values())
        out = {
            "cycles": self.cycles,
            "wall_seconds": wall,
            "cycles_per_second": self.cycles / wall if wall > 0 else 0.0,
            "events": events,
            "events_per_cycle": events / self.cycles if self.cycles else 0.0,
            "phase_seconds": dict(self.phase_seconds),
            "phase_share": {
                name: (secs / in_phases if in_phases > 0 else 0.0)
                for name, secs in self.phase_seconds.items()
            },
        }
        return out
