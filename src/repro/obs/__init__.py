"""Observability: event tracing, congestion metrics, run profiling.

The subsystem is strictly opt-in (DESIGN.md §7): constructing an
:class:`Observer` and attaching it to a simulator installs probes into
the network's components; without one, every probe slot is ``None`` and
the simulator runs its uninstrumented fast path.  Observation is
read-only — an observed run produces byte-identical results.

Typical use::

    from repro.obs import Observer

    obs = Observer(sample=64, profile=True).attach(sim)
    stats = sim.run_experiment()
    obs.export_chrome_trace("run.trace.json")
    print(obs.sampler.heatmap_text(sim.cfg.k))
    obs.detach()
"""

from repro.obs.export import (
    chrome_trace,
    event_dicts,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.observer import Observer
from repro.obs.profiler import PhaseProfiler
from repro.obs.sampler import MetricsSampler
from repro.obs.tracer import EVENT_KINDS, Tracer

__all__ = [
    "EVENT_KINDS",
    "MetricsSampler",
    "Observer",
    "PhaseProfiler",
    "Tracer",
    "chrome_trace",
    "event_dicts",
    "write_chrome_trace",
    "write_jsonl",
]
