"""Power modelling: calibrated (silicon-proxy), ORION-style and post-layout."""

from repro.power.energy_model import CalibratedEnergyModel
from repro.power.meter import PowerBreakdown, PowerMeter
from repro.power.orion import OrionPowerModel
from repro.power.postlayout import PostLayoutPowerModel

__all__ = [
    "CalibratedEnergyModel",
    "OrionPowerModel",
    "PostLayoutPowerModel",
    "PowerBreakdown",
    "PowerMeter",
]
