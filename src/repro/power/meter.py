"""Turning activity counters into the paper's power buckets.

Figures 6 and 8 report three dynamic buckets — clocking circuit,
router logic and buffer, datapath (crossbar + link) — plus leakage.
:class:`PowerMeter` maps a window of
:class:`~repro.noc.metrics.ActivityCounters` onto those buckets using a
:class:`~repro.power.energy_model.CalibratedEnergyModel`; at 1 GHz one
pJ per cycle is one mW, and other frequencies scale linearly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.energy_model import CalibratedEnergyModel


@dataclass(frozen=True)
class PowerBreakdown:
    """Power in mW, split the way Fig. 6/8 plot it."""

    clock_mw: float
    buffers_mw: float
    logic_mw: float  # allocators + VC state + lookaheads
    datapath_mw: float  # crossbar + links
    leakage_mw: float

    @property
    def total_mw(self):
        return (
            self.clock_mw
            + self.buffers_mw
            + self.logic_mw
            + self.datapath_mw
            + self.leakage_mw
        )

    @property
    def dynamic_mw(self):
        return self.total_mw - self.leakage_mw

    @property
    def logic_and_buffers_mw(self):
        """The combined 'router logic and buffer' bar of Fig. 6/8."""
        return self.buffers_mw + self.logic_mw

    def reduction_vs(self, other):
        """Fractional total-power reduction relative to ``other``."""
        return 1.0 - self.total_mw / other.total_mw

    def as_dict(self):
        return {
            "clock_mw": self.clock_mw,
            "buffers_mw": self.buffers_mw,
            "logic_mw": self.logic_mw,
            "datapath_mw": self.datapath_mw,
            "leakage_mw": self.leakage_mw,
            "total_mw": self.total_mw,
        }


class PowerMeter:
    """Evaluates network power for one measurement window."""

    def __init__(self, model=None, low_swing=True, num_routers=16,
                 frequency_ghz=1.0):
        self.model = model or CalibratedEnergyModel()
        self.low_swing = low_swing
        self.num_routers = num_routers
        self.frequency_ghz = frequency_ghz

    def evaluate(self, activity, cycles):
        """Power breakdown for aggregate ``activity`` over ``cycles``.

        ``activity`` is the summed router counters of the window (see
        :func:`repro.noc.metrics.aggregate`).
        """
        if cycles <= 0:
            raise ValueError("window must contain at least one cycle")
        m = self.model
        per_cycle_scale = self.frequency_ghz / cycles  # pJ/cycle -> mW

        clock = self.num_routers * cycles * m.clock_pj_per_cycle
        vc_state = self.num_routers * cycles * m.vc_state_pj_per_cycle
        arb_state = self.num_routers * cycles * m.allocator_state_pj_per_cycle
        pointers = self.num_routers * cycles * m.buffer_pointer_pj_per_cycle

        buffers = (
            activity.buffer_writes * m.buffer_write_pj
            + activity.buffer_reads * m.buffer_read_pj
            + activity.bypasses * m.bypass_latch_pj
            + pointers
        )
        arbitration = (
            activity.msa1_grants + activity.msa2_grants
        ) * m.arbitration_pj
        lookaheads = activity.la_sent * m.lookahead_pj
        logic = arbitration + lookaheads + vc_state + arb_state

        ls = self.low_swing
        datapath = (
            activity.xbar_input_traversals
            * m.datapath_event_pj("xbar_input", ls)
            + activity.xbar_output_traversals
            * m.datapath_event_pj("xbar_output", ls)
            + activity.link_traversals * m.datapath_event_pj("link", ls)
            + activity.ejections * m.datapath_event_pj("ejection", ls)
        )

        return PowerBreakdown(
            clock_mw=clock * per_cycle_scale,
            buffers_mw=buffers * per_cycle_scale,
            logic_mw=logic * per_cycle_scale,
            datapath_mw=datapath * per_cycle_scale,
            leakage_mw=self.num_routers * m.leakage_mw_per_router,
        )

    def theoretical_floor_mw(self, activity, cycles):
        """The Section 4.1 power floor: clocking plus datapath only."""
        full = self.evaluate(activity, cycles)
        return full.clock_mw + full.datapath_mw
