"""Per-event router energies calibrated to the chip measurements.

This is the reproduction's stand-in for the silicon power measurements
(see DESIGN.md, substitutions): each microarchitectural event costs a
fixed energy, non-data-dependent components (clock tree, VC
bookkeeping state) burn energy every cycle, and leakage is constant.
The constants are fitted so that, driven by simulator activity
counters, the model lands on the paper's anchors:

* the Fig. 6 waterfall: -48.3% datapath (low swing), -13.9% router
  logic (router-level multicast), -32.2% buffers (bypass), -38.2%
  total from the full-swing unicast baseline — and the Fig. 6 bar
  totals themselves (~494 mW baseline, ~288 mW proposed); the chip's
  427.3 mW Table-2 figure additionally contains non-router circuits
  (NIC PRBS generators, scan, I/O) outside this model's scope;
* ~13.2 mW/router at near-zero load against a 5.6 mW/router
  theoretical floor, with VC state ~1.9, buffers ~2.0, allocators
  ~0.7 and lookaheads ~0.2 mW/router (Section 4.1).

The constants were fitted by least squares against these anchors with
simulated activity vectors (see ``tools/calibrate_power.py``).

Datapath events distinguish full-swing and low-swing variants; their
ratio (~1.9x at the power level, reflecting the measured 48.3%
datapath saving) is smaller than the raw 3.2x wire-energy advantage of
Fig. 7 because the datapath bucket also contains swing-independent
driver/enable/clocking overheads.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CalibratedEnergyModel:
    """Energy constants in pJ (per event or per router-cycle)."""

    # --- non-data-dependent, per router per cycle ---
    clock_pj_per_cycle: float = 5.51
    vc_state_pj_per_cycle: float = 1.97
    allocator_state_pj_per_cycle: float = 0.65  # arbiter priority flops
    # --- buffers, per flit event ---
    buffer_write_pj: float = 2.50
    buffer_read_pj: float = 0.89
    buffer_pointer_pj_per_cycle: float = 1.50  # FIFO pointers, clocked
    bypass_latch_pj: float = 1.25  # pipeline latch of a bypassing flit
    # --- control logic, per event ---
    arbitration_pj: float = 0.17  # one mSA-I or mSA-II grant
    lookahead_pj: float = 0.35  # generate + transmit one 15b lookahead
    # --- datapath, per traversal; full-swing vs low-swing ---
    xbar_input_fs_pj: float = 0.684
    xbar_output_fs_pj: float = 1.289
    link_fs_pj: float = 2.525
    ejection_fs_pj: float = 1.105
    xbar_input_ls_pj: float = 0.357
    xbar_output_ls_pj: float = 0.672
    link_ls_pj: float = 1.317
    ejection_ls_pj: float = 0.576
    # --- static ---
    leakage_mw_per_router: float = 76.7 / 16

    def datapath_event_pj(self, event, low_swing):
        """Energy of one datapath event of the given kind."""
        suffix = "ls" if low_swing else "fs"
        name = f"{event}_{suffix}_pj"
        if not hasattr(self, name):
            raise ValueError(f"unknown datapath event {event!r}")
        return getattr(self, name)

    def scaled(self, factor):
        """Uniformly scaled copy (used by estimator models)."""
        fields = {
            name: getattr(self, name) * factor
            for name in self.__dataclass_fields__
        }
        return replace(self, **fields)
