"""Post-layout-netlist style power estimation.

Section 4.4: transistor-level simulation of the extracted post-layout
netlist lands within 6-13% of silicon — it slightly *under*-estimates
buffers and arbitration logic and *over*-estimates clocking and
datapath — at the cost of days of simulation per operating point.

We model that fidelity profile as component-wise deviation factors
applied to the calibrated (silicon-proxy) model.  The factors encode
what extraction typically misses: post-layout netlists see idealised
clock edges (overestimating useful clock power), pessimistic wire
parasitics (overestimating datapath), and miss some data-dependent
glitching in the allocation logic and buffers (underestimating both).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.meter import PowerBreakdown, PowerMeter


@dataclass(frozen=True)
class PostLayoutDeviation:
    """Component-wise post-layout / silicon ratios."""

    clock: float = 1.51
    buffers: float = 0.85
    logic: float = 0.85
    datapath: float = 1.05
    leakage: float = 1.05


class PostLayoutPowerModel:
    """The calibrated model viewed through extraction-level deviations."""

    def __init__(self, model=None, low_swing=True, num_routers=16,
                 frequency_ghz=1.0, deviation=None):
        self.meter = PowerMeter(
            model=model,
            low_swing=low_swing,
            num_routers=num_routers,
            frequency_ghz=frequency_ghz,
        )
        self.deviation = deviation or PostLayoutDeviation()

    def evaluate(self, activity, cycles):
        base = self.meter.evaluate(activity, cycles)
        d = self.deviation
        return PowerBreakdown(
            clock_mw=base.clock_mw * d.clock,
            buffers_mw=base.buffers_mw * d.buffers,
            logic_mw=base.logic_mw * d.logic,
            datapath_mw=base.datapath_mw * d.datapath,
            leakage_mw=base.leakage_mw * d.leakage,
        )

    #: indicative wall-clock cost the paper reports for a full-NoC
    #: post-layout simulation ("several days"), exposed for docs/tests
    SIMULATION_DAYS = 3
