"""A from-scratch mini ORION 2.0 (Kahng et al., DATE 2009).

ORION is a template-based architectural power model: it derives
component capacitances from structural parameters (ports, VCs, buffer
depth, flit width) and generic transistor sizing rules, then charges
C*Vdd^2 per event.  Section 4.4 finds that ORION *over-estimates the
chip's power by 4.8-5.3x* — its assumed transistor/wire sizes are much
larger than the fabricated ones — while tracking *relative* savings
between designs well (32% predicted vs 38% measured).

This implementation follows ORION's structure (memory-cell based
buffer model, matrix crossbar wire model, arbiter gate counts, an
H-tree clock model) with its characteristically conservative sizing,
and reproduces exactly that behaviour against our calibrated model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.meter import PowerBreakdown


@dataclass(frozen=True)
class OrionParameters:
    """ORION-style structural/sizing assumptions (45nm template)."""

    vdd: float = 1.1
    # Generic oversized library, caps in fF.  These are 5-8x the
    # fabricated chip's effective capacitances — deliberately: ORION's
    # template transistors are "much larger than the actual sizes in
    # the chip" (Section 4.4), which is precisely why it lands 4.8-5.3x
    # above silicon while preserving relative comparisons.
    memory_cell_cap: float = 30.0  # per bit cell incl. wordline share
    bitline_cap_per_row: float = 20.0
    wordline_cap_per_col: float = 12.0
    xbar_wire_cap_per_port_bit: float = 75.0  # matrix crossbar wires
    link_cap_per_bit: float = 300.0  # 1mm link, oversized drivers
    arbiter_gate_cap: float = 19.0  # per request-pair gate group
    clock_cap_per_flop: float = 3.2
    flops_per_router: int = 2600
    state_pj_per_router_cycle: float = 23.5  # VC/arbiter state flops
    leakage_scale: float = 5.0  # oversized devices leak more


class OrionPowerModel:
    """Estimates router power from structure + activity, ORION style."""

    def __init__(self, config, params=None, frequency_ghz=1.0):
        self.cfg = config
        self.p = params or OrionParameters()
        self.frequency_ghz = frequency_ghz

    # ------------------------------------------------ component energies

    def _e(self, cap_ff):
        """Energy in pJ of switching ``cap_ff`` across the full supply."""
        return cap_ff * self.p.vdd**2 * 1e-3

    def buffer_access_energy_pj(self):
        """One flit write or read of the input buffer array."""
        bits = self.cfg.flit_bits
        depth = self.cfg.buffers_per_port
        cell = bits * self._e(self.p.memory_cell_cap)
        bitlines = bits * self._e(self.p.bitline_cap_per_row) * depth / 4
        wordline = depth * self._e(self.p.wordline_cap_per_col)
        return cell + bitlines + wordline

    def xbar_traversal_energy_pj(self):
        """One flit through the 5x5 matrix crossbar (per output)."""
        ports = 5
        return self.cfg.flit_bits * self._e(
            self.p.xbar_wire_cap_per_port_bit
        ) * (ports / 5.0)

    def link_traversal_energy_pj(self):
        return self.cfg.flit_bits * self._e(self.p.link_cap_per_bit)

    def arbitration_energy_pj(self):
        """Matrix arbiter: n*(n-1)/2 request-pair gate groups."""
        n = 5
        pairs = n * (n - 1) // 2
        return pairs * self._e(self.p.arbiter_gate_cap)

    def clock_power_mw_per_router(self):
        e = self.p.flops_per_router * self._e(self.p.clock_cap_per_flop)
        return e * self.frequency_ghz

    # ------------------------------------------------------- evaluation

    def evaluate(self, activity, cycles):
        """ORION's estimate for a window of aggregate router activity."""
        if cycles <= 0:
            raise ValueError("window must contain at least one cycle")
        n_routers = self.cfg.num_nodes
        scale = self.frequency_ghz / cycles

        buffers = (
            activity.buffer_writes + activity.buffer_reads
        ) * self.buffer_access_energy_pj()
        logic = (
            (activity.msa1_grants + activity.msa2_grants)
            * self.arbitration_energy_pj()
            # ORION clocks VC state every cycle, with oversized flops
            + n_routers * cycles * self.p.state_pj_per_router_cycle
        )
        datapath = (
            activity.xbar_output_traversals * self.xbar_traversal_energy_pj()
            + (activity.link_traversals + activity.ejections)
            * self.link_traversal_energy_pj()
        )
        clock = n_routers * cycles * (
            self.clock_power_mw_per_router() / self.frequency_ghz
        )
        leakage = n_routers * self.p.leakage_scale * (76.7 / 16)
        return PowerBreakdown(
            clock_mw=clock * scale,
            buffers_mw=buffers * scale,
            logic_mw=logic * scale,
            datapath_mw=datapath * scale,
            leakage_mw=leakage,
        )
