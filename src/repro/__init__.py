"""Reproduction of Park et al., "Approaching the Theoretical Limits of a
Mesh NoC with a 16-Node Chip Prototype in 45nm SOI" (DAC 2012).

Quickstart::

    from repro import proposed_network, Simulator
    from repro.traffic import BernoulliTraffic, MIXED_TRAFFIC

    sim = Simulator(proposed_network(), BernoulliTraffic(MIXED_TRAFFIC, 0.05))
    stats = sim.run_experiment()
    print(stats.avg_latency, stats.throughput_gbps)

Package map:

- :mod:`repro.noc` — cycle-accurate mesh/router/NIC substrate
- :mod:`repro.engine` — parallel experiment engine with a persistent
  result cache (CLI: ``python -m repro``)
- :mod:`repro.core` — the paper's design points (baseline/strawman/proposed)
- :mod:`repro.traffic` — synthetic traffic as injection process x mix x
  destination pattern: temporal processes (bernoulli, bursty on-off,
  MMP), the paper's mixes, and spatial patterns (transpose, tornado,
  hotspot, ...)
- :mod:`repro.analysis` — theoretical limits and prototype comparisons
- :mod:`repro.circuits` — low-swing RSD / wire / sense-amp circuit models
- :mod:`repro.power` — calibrated, ORION-style and post-layout power models
- :mod:`repro.physical` — critical-path timing and area models
- :mod:`repro.harness` — experiment drivers regenerating each table/figure
"""

from repro.core.presets import (
    baseline_network,
    proposed_network,
    strawman_network,
    textbook_network,
)
from repro.engine import Executor, JobSpec, ResultCache
from repro.noc import NocConfig, Simulator

__version__ = "1.1.0"

__all__ = [
    "Executor",
    "JobSpec",
    "NocConfig",
    "ResultCache",
    "Simulator",
    "__version__",
    "baseline_network",
    "proposed_network",
    "strawman_network",
    "textbook_network",
]
