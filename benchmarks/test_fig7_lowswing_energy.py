"""Fig. 7: energy efficiency of the tri-state RSD on PRBS data."""

import pytest

from benchmarks.conftest import run_once
from repro.harness import experiments as exp
from repro.harness.tables import format_table


def test_fig7_lowswing_energy(benchmark):
    rows = run_once(benchmark, exp.fig7_lowswing_energy, lengths_mm=(1.0, 2.0))
    one_mm = rows[0]
    two_mm = rows[1]
    # paper: up to 3.2x less energy than a full-swing repeater at 1mm
    assert one_mm["advantage"] == pytest.approx(3.2, rel=0.05)
    assert two_mm["advantage"] > one_mm["advantage"]  # repeaters add up
    # paper: single-cycle ST+LT at 5.4 GHz (1mm) and 2.6 GHz (2mm)
    assert one_mm["rsd_max_clock_ghz"] == pytest.approx(5.4, rel=0.05)
    assert two_mm["rsd_max_clock_ghz"] == pytest.approx(2.6, rel=0.05)
    print()
    print(
        format_table(
            ["link mm", "RSD fJ/b", "full-swing fJ/b", "advantage",
             "RSD fmax GHz"],
            [
                [r["length_mm"], r["rsd_energy_fj"], r["full_swing_energy_fj"],
                 f"{r['advantage']:.2f}x", r["rsd_max_clock_ghz"]]
                for r in rows
            ],
            title="Fig. 7: RSD vs full-swing repeater (paper: 3.2x, "
            "5.4/2.6 GHz)",
        )
    )
