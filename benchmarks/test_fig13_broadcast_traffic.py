"""Fig. 13 (Appendix D): throughput-latency with broadcast-only traffic."""

from benchmarks.conftest import run_once
from repro.harness import experiments as exp
from repro.harness.tables import format_series


def test_fig13_broadcast_traffic(benchmark):
    result = run_once(
        benchmark,
        exp.fig13_broadcast_traffic,
        rates=[0.01, 0.025, 0.04, 0.05, 0.06, 0.068],
        warmup=800,
        measure=4000,
        drain=4000,
    )
    summary = exp.summarize_sweeps(result)

    # paper: 55.1% latency reduction (more than mixed traffic's 48.7%)
    assert summary["low_load_latency_reduction"] > 0.5
    # paper: 2.2x saturation throughput improvement
    assert 1.5 < summary["throughput_ratio"] < 3.0
    # paper: 91% of the theoretical broadcast limit
    assert summary["max_delivered_gbps"] > 0.85 * result["throughput_limit_gbps"]

    print()
    series = {
        "proposed": [(p.injection_rate, p.avg_latency) for p in result["proposed"]],
        "baseline": [(p.injection_rate, p.avg_latency) for p in result["baseline"]],
    }
    print(
        format_series(
            series,
            "R",
            "latency (cyc)",
            title=(
                "Fig. 13: broadcast-only "
                f"(limit {result['latency_limit_cycles']:.1f} cyc)"
            ),
        )
    )
    print(
        "summary:",
        {k: round(v, 3) if isinstance(v, float) else v for k, v in summary.items()},
    )
