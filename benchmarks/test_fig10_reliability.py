"""Fig. 10: low-swing reliability vs energy-efficiency trade-off."""

import pytest

from benchmarks.conftest import run_once
from repro.harness import experiments as exp
from repro.harness.tables import format_table


def test_fig10_reliability(benchmark):
    rows = run_once(
        benchmark,
        exp.fig10_reliability,
        swings_mv=(100, 150, 200, 250, 300, 350, 400 - 25),
        runs=1000,  # the paper's 1000 Monte-Carlo runs
    )
    energies = [r["energy_fj"] for r in rows]
    failures = [r["failure_analytic"] for r in rows]
    # energy rises with swing, failure probability falls: the trade-off
    assert energies == sorted(energies)
    assert failures == sorted(failures, reverse=True)
    # the chip's 300mV point is the 3-sigma design rule
    p300 = next(r for r in rows if r["swing_mv"] == 300)
    assert p300["sigma_margin"] == pytest.approx(3.0)
    # Monte-Carlo agrees with the analytic Q-function where it resolves
    for r in rows:
        if r["failure_analytic"] > 5e-3:
            assert r["failure_monte_carlo"] == pytest.approx(
                r["failure_analytic"], abs=0.05
            )
    print()
    print(
        format_table(
            ["swing mV", "energy fJ/b", "P(fail) analytic", "P(fail) MC(1000)",
             "sigma margin"],
            [
                [r["swing_mv"], r["energy_fj"], r["failure_analytic"],
                 r["failure_monte_carlo"], r["sigma_margin"]]
                for r in rows
            ],
            title="Fig. 10: swing vs reliability (chip point: 300mV = 3 sigma)",
        )
    )
