"""Table 4: area of full-swing vs low-swing crossbars and routers."""

import pytest

from benchmarks.conftest import run_once
from repro.harness import experiments as exp
from repro.harness.tables import format_table


def test_table4_area(benchmark):
    area = run_once(benchmark, exp.table4_area)
    assert area.full_swing_crossbar_um2 == pytest.approx(26_840, rel=0.01)
    assert area.low_swing_crossbar_um2 == pytest.approx(83_200, rel=0.01)
    assert area.crossbar_overhead == pytest.approx(3.1, abs=0.05)
    assert area.full_swing_router_um2 == pytest.approx(227_230, rel=0.01)
    assert area.low_swing_router_um2 == pytest.approx(318_600, rel=0.01)
    assert area.router_overhead == pytest.approx(1.4, abs=0.02)
    assert area.bypass_overhead_fraction == pytest.approx(0.05, abs=0.005)
    print()
    print(
        format_table(
            ["block", "um^2", "paper um^2"],
            [
                ["full-swing crossbar", area.full_swing_crossbar_um2, 26_840],
                ["low-swing crossbar", area.low_swing_crossbar_um2, 83_200],
                ["router, full-swing xbar", area.full_swing_router_um2, 227_230],
                ["router, low-swing xbar", area.low_swing_router_um2, 318_600],
            ],
            title=(
                f"Table 4: area (xbar {area.crossbar_overhead:.1f}x, "
                f"router {area.router_overhead:.1f}x, "
                f"bypass logic {100 * area.bypass_overhead_fraction:.0f}%)"
            ),
        )
    )
