"""Table 3: critical-path analysis, baseline vs virtually bypassed."""

import pytest

from benchmarks.conftest import run_once
from repro.harness import experiments as exp
from repro.harness.tables import format_table


def test_table3_critical_path(benchmark):
    report = run_once(benchmark, exp.table3_critical_path)
    assert report.pre_layout_baseline_ps == pytest.approx(549, rel=0.02)
    assert report.pre_layout_overhead == pytest.approx(1.08, abs=0.02)
    assert report.post_layout_overhead == pytest.approx(1.21, abs=0.02)
    assert report.measured_bypassed_ps == pytest.approx(961, rel=0.02)
    assert report.measured_fmax_ghz == pytest.approx(1.04, abs=0.02)
    print()
    print(
        format_table(
            ["stage", "baseline ps", "bypassed ps", "overhead"],
            [
                [
                    "pre-layout",
                    report.pre_layout_baseline_ps,
                    report.pre_layout_bypassed_ps,
                    f"{report.pre_layout_overhead:.2f}x",
                ],
                [
                    "post-layout",
                    report.post_layout_baseline_ps,
                    report.post_layout_bypassed_ps,
                    f"{report.post_layout_overhead:.2f}x",
                ],
                [
                    "measured",
                    "-",
                    report.measured_bypassed_ps,
                    f"fmax {report.measured_fmax_ghz:.2f} GHz",
                ],
            ],
            title="Table 3: critical path (paper: 549/593, 658/793, 961 ps)",
        )
    )
