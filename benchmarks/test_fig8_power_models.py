"""Fig. 8: ORION 2.0 vs post-layout vs measured power estimates."""

import pytest

from benchmarks.conftest import run_once
from repro.harness import experiments as exp
from repro.harness.tables import format_table


def test_fig8_power_models(benchmark):
    result = run_once(benchmark, exp.fig8_power_models, warmup=800, measure=4000)
    s = result["summary"]

    # paper: ORION overestimates 4.8-5.3x but keeps relative accuracy (32%)
    assert 4.3 < s["orion_baseline_ratio"] < 5.8
    assert 4.3 < s["orion_proposed_ratio"] < 5.8
    assert s["orion_relative_reduction"] == pytest.approx(0.32, abs=0.05)
    # paper: post-layout within 6-13%, relative reduction 34%
    assert 1.0 < s["postlayout_baseline_ratio"] < 1.15
    assert 1.0 < s["postlayout_proposed_ratio"] < 1.16
    assert s["postlayout_relative_reduction"] == pytest.approx(0.34, abs=0.04)
    assert s["measured_relative_reduction"] == pytest.approx(0.382, abs=0.04)

    rows = []
    for model in ("orion", "postlayout", "measured"):
        base = result[model]["baseline"]
        prop = result[model]["proposed"]
        rows.append(
            [
                model,
                base.clock_mw, base.logic_and_buffers_mw, base.datapath_mw,
                base.total_mw,
                prop.total_mw,
                f"{100 * (1 - prop.total_mw / base.total_mw):.0f}%",
            ]
        )
    print()
    print(
        format_table(
            ["model", "base clk", "base logic+buf", "base dp", "base total",
             "prop total", "reduction"],
            rows,
            title="Fig. 8: power estimates (paper: ORION ~5x off / 32%, "
            "post-layout 6-13% / 34%, measured 38%)",
        )
    )
