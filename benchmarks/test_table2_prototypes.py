"""Table 2: mesh NoC chip prototype comparison."""

import pytest

from benchmarks.conftest import run_once
from repro.harness import experiments as exp
from repro.harness.tables import format_table


def test_table2_prototypes(benchmark):
    rows = run_once(benchmark, exp.table2_prototypes)
    by_name = {r["name"]: r for r in rows}
    work = by_name["This work"]
    teraflops = by_name["Intel Teraflops"]

    # this work dominates every broadcast metric
    for name, row in by_name.items():
        if name != "This work":
            assert work["zero_load_broadcast"] < row["zero_load_broadcast"]
            assert work["channel_load_broadcast"] < row["channel_load_broadcast"]

    # computed values track the paper's quoted ones
    assert teraflops["zero_load_unicast"] == teraflops["paper"]["zero_load_unicast"]
    assert work["zero_load_broadcast"] == work["paper"]["zero_load_broadcast"]
    assert work["bisection_gbps"] == work["paper"]["bisection_gbps"]
    assert teraflops["zero_load_broadcast"] == pytest.approx(
        teraflops["paper"]["zero_load_broadcast"], rel=0.02
    )

    headers = [
        "chip", "mesh", "GHz", "ns/hop",
        "0-load uni", "(paper)", "0-load bcast", "(paper)",
        "load uni xR", "load bcast xR", "bisection Gb/s",
    ]
    table = [
        [
            r["name"], r["mesh"], r["frequency_ghz"], r["delay_per_hop_ns"],
            r["zero_load_unicast"], r["paper"]["zero_load_unicast"],
            r["zero_load_broadcast"], r["paper"]["zero_load_broadcast"],
            r["channel_load_unicast"], r["channel_load_broadcast"],
            r["bisection_gbps"],
        ]
        for r in rows
    ]
    print()
    print(format_table(headers, table, title="Table 2: prototype comparison"))
