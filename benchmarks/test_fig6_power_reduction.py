"""Fig. 6: measured power reduction at ~653 Gb/s broadcast delivery.

The A -> B -> C -> D waterfall: full-swing unicast baseline, low-swing
datapath (-48.3% datapath), router-level broadcast support (-13.9%
router logic), multicast buffer bypass (-32.2% buffers); -38.2% total.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness import experiments as exp
from repro.harness.tables import format_table


def test_fig6_power_reduction(benchmark):
    result = run_once(
        benchmark, exp.fig6_power_reduction, warmup=800, measure=4000
    )
    red = result["reductions"]
    assert red["datapath_low_swing"] == pytest.approx(0.483, abs=0.03)
    assert red["logic_multicast"] == pytest.approx(0.139, abs=0.03)
    assert red["buffers_bypass"] == pytest.approx(0.322, abs=0.04)
    assert red["total"] == pytest.approx(0.382, abs=0.04)

    # the waterfall is monotone in total power
    totals = [result[c]["breakdown"].total_mw for c in "ABCD"]
    assert totals == sorted(totals, reverse=True)

    rows = []
    for label, desc in [
        ("A", "full-swing unicast"),
        ("B", "low-swing unicast"),
        ("C", "low-swing bcast, no bypass"),
        ("D", "low-swing bcast + bypass"),
    ]:
        bd = result[label]["breakdown"]
        rows.append(
            [
                f"{label}: {desc}",
                bd.clock_mw,
                bd.logic_and_buffers_mw,
                bd.datapath_mw,
                bd.leakage_mw,
                bd.total_mw,
                result[label]["delivered_gbps"],
            ]
        )
    print()
    print(
        format_table(
            ["config", "clock mW", "logic+buf mW", "datapath mW", "leak mW",
             "total mW", "Gb/s"],
            rows,
            title="Fig. 6 power waterfall (paper: -48.3% dp, -13.9% logic, "
            "-32.2% buf, -38.2% total)",
        )
    )
    print("reductions:", {k: f"{100 * v:.1f}%" for k, v in red.items()})
